"""Fig. 1 — time noise: identical prints drift apart.

The paper's Fig. 1 shows three side-channel recordings of the same G-code on
the same printer: aligned at the start, misaligned by the end.  This bench
regenerates the underlying quantity — the spread of total durations across
repeated identical prints — and confirms it is orders of magnitude above the
sampling period (so a point-by-point comparison must fail) yet small
relative to the whole print (so it is genuinely "noise").
"""

import numpy as np

from conftest import run_once
from repro.eval import fig1_time_noise


def test_fig1_time_noise(benchmark, um3_campaign, report):
    out = run_once(benchmark, lambda: fig1_time_noise(um3_campaign))

    durations = out["durations"]
    sample_period = 1.0 / 400.0  # scaled ACC rate
    lines = [
        "Fig. 1 — duration spread of identical benign prints (UM3)",
        f"  runs: {durations.size}",
        f"  mean duration: {out['mean']:.2f} s",
        f"  min/max:       {durations.min():.2f} / {durations.max():.2f} s",
        f"  spread:        {out['spread']*1000:.0f} ms "
        f"(= {out['spread']/sample_period:.0f} ACC sample periods)",
        f"  spread / duration: {out['spread']/out['mean']*100:.2f} %",
    ]
    report("fig1_time_noise", "\n".join(lines))

    assert out["spread"] > 10 * sample_period, (
        "time noise must dwarf the sampling period or Fig. 1 has no content"
    )
    assert out["spread"] < 0.2 * out["mean"], (
        "time noise must stay small relative to the print duration"
    )
