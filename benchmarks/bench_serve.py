"""Fleet detection service ingest benchmark (streams/core).

The serve path multiplexes many printer streams over a small pool of
shard workers; the capacity question is how many *real-time* printers one
deployment can carry per core it burns.  This benchmark replays the
canonical demo fleet — 64 concurrent streams — through a process-mode
:class:`~repro.serve.server.FleetServer` (2 shard workers + the listener)
with offline verification enabled, so the measured configuration is also
proven bit-identical to the offline engine on every stream.

The record lands in ``benchmarks/results/BENCH_serve.json`` with the
exact field names ``repro loadgen --bench-out`` writes, so the committed
baseline here gates the CI serve job's end-to-end run (and vice versa):
``ingest_p99_ms`` lower-is-better, ``serve_samples_per_s`` and
``streams_per_core`` higher-is-better, everything else bookkeeping (see
``scripts/check_bench_regression.py``).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve.py -q
"""

from __future__ import annotations

import asyncio
import os

from conftest import RESULTS_DIR, record_bench_stats

from repro.obs import telemetry
from repro.serve.loadgen import run_loadgen, synth_streams
from repro.serve.model import demo_model
from repro.serve.server import FleetServer

SERVE_STATS_PATH = RESULTS_DIR / "BENCH_serve.json"

#: The canonical scenario — keep in sync with the CI serve job's
#: ``repro loadgen`` flags so baseline and CI records are comparable.
N_STREAMS = 64
N_SAMPLES = 2_000
SAMPLE_RATE = 200.0
CHUNK_SAMPLES = 200
SHARDS = 2


def test_serve_ingest_64_streams(tmp_path, report):
    model = demo_model(n_samples=N_SAMPLES, sample_rate=SAMPLE_RATE)
    model_dir = tmp_path / "model"
    model.save(model_dir)
    streams = synth_streams(
        N_STREAMS, n_samples=N_SAMPLES, sample_rate=SAMPLE_RATE
    )

    async def scenario():
        server = FleetServer(str(model_dir), shards=SHARDS, port=0)
        await server.start()
        try:
            return await run_loadgen(
                ("127.0.0.1", server.port),
                streams,
                chunk_samples=CHUNK_SAMPLES,
                verify_model=model,
            )
        finally:
            await server.stop()

    try:
        result = asyncio.run(asyncio.wait_for(scenario(), timeout=600))
    finally:
        telemetry.reset_streams()

    # Correctness gate: every served verdict bit-identical to offline.
    assert result.mismatches == []
    assert result.n_streams == N_STREAMS
    assert result.total_samples == N_STREAMS * N_SAMPLES
    assert result.samples_per_s > 0

    cores_used = SHARDS + 1
    streams_per_core = result.samples_per_s / SAMPLE_RATE / cores_used
    record = {
        "n_streams": result.n_streams,
        "chunk_samples": CHUNK_SAMPLES,
        "pace": 0.0,
        "shards": SHARDS,
        "cores_used": cores_used,
        "cpu_count": os.cpu_count(),
        "total_samples": result.total_samples,
        "total_chunks": result.total_chunks,
        "elapsed_s": round(result.elapsed_s, 4),
        "ingest_p50_ms": round(result.ingest_p50_ms, 4),
        "ingest_p99_ms": round(result.ingest_p99_ms, 4),
        "ingest_mean_ms": round(result.ingest_mean_ms, 4),
        "serve_samples_per_s": round(result.samples_per_s, 1),
        "streams_per_core": round(streams_per_core, 3),
        "resumes": result.resumes,
        "verified": True,
        "mismatches": len(result.mismatches),
    }
    record_bench_stats(SERVE_STATS_PATH, "serve_loadgen", record)
    report(
        "serve_ingest",
        result.summary()
        + f"\nstreams_per_core   {streams_per_core:10.1f} "
        f"(cores_used={cores_used})",
    )
