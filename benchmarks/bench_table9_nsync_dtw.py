"""Table IX — NSYNC with (Fast)DTW as the synchronizer.

The paper could only run DTW on spectrograms ("it took forever" on raw
signals) and found it both slower and less accurate than DWM: several cells
collapse (MAG 0.26, EPT 0.24 accuracy-wise) while DWM's Table VIII stays at
~0.99.  We evaluate the same spectrogram-only grid with FastDTW radius 1
(the paper's fastest configuration).
"""

import numpy as np

from conftest import run_once
from repro.eval import format_ids_table, nsync_results
from repro.sync import FastDtwSynchronizer

CHANNELS = ("ACC", "MAG", "AUD", "EPT")


def test_table9_nsync_dtw(benchmark, campaigns, report):
    def evaluate():
        results = {}
        for printer, campaign in campaigns.items():
            for channel in CHANNELS:
                results[f"{printer} Spectro. {channel}"] = nsync_results(
                    campaign,
                    channel,
                    "Spectro.",
                    synchronizer=FastDtwSynchronizer(radius=1),
                    r=0.3,
                )
        return results

    results = run_once(benchmark, evaluate)
    table = format_ids_table(
        results,
        submodule_names=("c_disp", "h_dist", "v_dist", "duration"),
        title="Table IX — NSYNC/DTW (FastDTW, radius 1, spectrograms only)",
    )
    accuracies = [r.overall.accuracy for r in results.values()]
    summary = f"\nmean accuracy: {np.mean(accuracies):.3f} (DWM beats this)"
    report("table9_nsync_dtw", table + summary)

    # DTW still detects a fair share (it IS fine DSYNC)...
    assert np.mean([r.overall.tpr for r in results.values()]) >= 0.4
    # ...but cannot beat DWM overall — checked jointly in bench_fig12.
    assert np.mean(accuracies) <= 1.0
