"""Fig. 10 — h_disp is a property of the printing process, not the channel.

As in the paper, one benign printing process is observed through all SIX
side channels (Table II) and both transforms; DWM recovers h_disp from each.
Channels strongly correlated with printer state (ACC, AUD, MAG) must
produce near-identical traces; TMP and PWR come out noise-like and raw EPT
hum-locked — which is exactly why the paper drops them after this figure.
"""

import numpy as np

from conftest import run_once
from repro.eval import default_setup, fig10_hdisp_consistency, generate_campaign

ALL_CHANNELS = ("ACC", "TMP", "MAG", "AUD", "EPT", "PWR")


def test_fig10_hdisp_consistency(benchmark, report):
    # Fig. 10 needs one benign pair but all six channels; build a dedicated
    # minimal campaign rather than widening the shared one.
    campaign = generate_campaign(
        default_setup("UM3", object_height=0.6),
        channels=ALL_CHANNELS,
        n_train=0,
        n_benign_test=1,
        attacks=(),
        n_attack_runs=0,
        seed=10,
    )

    out = run_once(
        benchmark,
        lambda: fig10_hdisp_consistency(
            campaign, channels=ALL_CHANNELS, transforms=("Raw", "Spectro.")
        ),
    )

    def corr(a, b):
        n = min(a.size, b.size)
        if n < 3 or a[:n].std() == 0 or b[:n].std() == 0:
            return 0.0
        return float(np.corrcoef(a[:n], b[:n])[0, 1])

    anchor = out[("ACC", "Raw")]
    anchor_range = float(anchor.max() - anchor.min())
    lines = [
        "Fig. 10 — h_disp (seconds) per channel/transform vs ACC raw",
        f"  {'cell':<18} {'corr_with_ACC':>13} {'range_s':>9}",
    ]
    correlations, ranges = {}, {}
    for (channel, transform), h in sorted(out.items()):
        r = corr(anchor, h)
        span = float(h.max() - h.min())
        correlations[(channel, transform)] = r
        ranges[(channel, transform)] = span
        lines.append(
            f"  {channel + ' ' + transform:<18} {r:>13.2f} {span:>9.3f}"
        )
    report("fig10_hdisp_consistency", "\n".join(lines))

    # Strongly-correlated channels agree with ACC in shape AND scale.
    for cell in (("AUD", "Spectro."), ("ACC", "Spectro."), ("MAG", "Spectro.")):
        assert correlations[cell] > 0.6, cell
        assert ranges[cell] > 0.3 * anchor_range, cell
    # Raw EPT is hum-locked: a flat trace with no process information.
    assert (
        ranges[("EPT", "Raw")] < 0.3 * anchor_range
        or abs(correlations[("EPT", "Raw")]) < 0.3
    )
    # TMP never tracks the process in either transform.
    assert abs(correlations[("TMP", "Raw")]) < 0.6
