"""ROC analysis — the OCC margin as an operating-point dial (extension).

Section VII-C describes the FPR/FNR trade-off of the margin ``r`` but the
paper reports only two operating points.  This bench sweeps ``r`` for both
synchronizers on the UM3 ACC cell and compares full ROC curves / AUC —
showing that DWM dominates DTW across operating points, not just at
r = 0.3.
"""

import numpy as np

from conftest import run_once
from repro.eval import auc, roc_sweep
from repro.sync import FastDtwSynchronizer

R_VALUES = (0.0, 0.1, 0.3, 0.6, 1.0, 2.0, 4.0)


def test_roc_dwm_vs_dtw(benchmark, um3_campaign, report):
    def evaluate():
        dwm = roc_sweep(um3_campaign, "ACC", "Spectro.", r_values=R_VALUES)
        dtw = roc_sweep(
            um3_campaign,
            "ACC",
            "Spectro.",
            synchronizer=FastDtwSynchronizer(radius=1),
            r_values=R_VALUES,
        )
        return dwm, dtw

    dwm, dtw = run_once(benchmark, evaluate)

    lines = [
        "ROC — OCC margin sweep (UM3 / ACC spectrogram)",
        f"  {'r':>5} {'DWM fpr/tpr':>13} {'DTW fpr/tpr':>13}",
    ]
    for p_dwm, p_dtw in zip(dwm.points, dtw.points):
        lines.append(
            f"  {p_dwm.r:>5.1f} {p_dwm.fpr:>6.2f}/{p_dwm.tpr:<6.2f}"
            f" {p_dtw.fpr:>6.2f}/{p_dtw.tpr:<6.2f}"
        )
    lines.append(f"  AUC: DWM {auc(dwm):.3f}  DTW {auc(dtw):.3f}")
    lines.append(
        f"  best operating points: DWM r={dwm.best.r} acc={dwm.best.accuracy:.2f}"
        f"  DTW r={dtw.best.r} acc={dtw.best.accuracy:.2f}"
    )
    report("roc_dwm_vs_dtw", "\n".join(lines))

    assert auc(dwm) >= 0.9
    assert auc(dwm) >= auc(dtw) - 0.05
    # The paper's r = 0.3 sits at (or near) DWM's best operating point.
    assert dwm.best.accuracy >= 0.9
