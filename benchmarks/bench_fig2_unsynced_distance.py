"""Fig. 2 — correlation distances without synchronization.

Without DSYNC, the correlation distances of a *benign* process grow as time
noise desynchronizes it from the reference, ending up comparable to (or
larger than) a malicious process — the failure mode that motivates NSYNC.
"""

import numpy as np

from conftest import run_once
from repro.eval import fig2_unsynced_distances


def test_fig2_unsynced_distances(benchmark, um3_campaign, report):
    out = run_once(
        benchmark, lambda: fig2_unsynced_distances(um3_campaign, "ACC", "Raw")
    )
    benign, malicious = out["benign"], out["malicious"]

    # Ignore the first windows (signals are aligned at the start).
    settle = max(2, benign.size // 5)
    b_tail = benign[settle:]
    m_tail = malicious[settle : settle + b_tail.size]

    lines = [
        "Fig. 2 — window correlation distances with NO synchronization (UM3/ACC)",
        f"  benign    windows: {benign.size}, tail median {np.median(b_tail):.2f}, max {benign.max():.2f}",
        f"  malicious windows: {malicious.size}, tail median {np.median(m_tail):.2f}, max {malicious.max():.2f}",
        "  paper's point: benign tail distances are as large as malicious ones",
        f"  ratio benign/malicious tail medians: {np.median(b_tail)/max(np.median(m_tail), 1e-9):.2f}",
    ]
    report("fig2_unsynced_distances", "\n".join(lines))

    # The benign process must look as 'far' as the malicious one: within 2x.
    assert np.median(b_tail) > 0.3
    assert np.median(b_tail) > 0.5 * np.median(m_tail)
