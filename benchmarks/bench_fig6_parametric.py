"""Fig. 6 — parametric analysis of t_sigma, t_win, and eta.

Regenerates the h_disp traces of Fig. 6 for sweeps of the three DWM
parameters on one benign UM3 observation and reports the range (the
"brackets" shown in the paper's figure) plus a roughness measure, verifying
the qualitative claims of Section VI-C:

* very small t_win -> spiky h_disp;
* overly large t_win -> lower temporal resolution (fewer windows);
* eta near 1.0 can run away, moderate eta tracks.
"""

import numpy as np

from conftest import run_once
from repro.eval import fig6_parametric_analysis


def _roughness(h: np.ndarray) -> float:
    """Mean absolute step of h_disp — high when the trace is spiky."""
    return float(np.abs(np.diff(h)).mean()) if h.size > 1 else 0.0


def test_fig6_parametric_analysis(benchmark, um3_campaign, report):
    out = run_once(
        benchmark,
        lambda: fig6_parametric_analysis(
            um3_campaign,
            channel="ACC",
            t_sigma_values=(0.25, 0.5, 1.0, 2.0),
            t_win_values=(0.5, 2.0, 4.0, 8.0),
            eta_values=(0.05, 0.1, 0.3, 0.9),
        ),
    )

    lines = ["Fig. 6 — parametric analysis (UM3 / ACC raw)"]
    for param, sweeps in out.items():
        lines.append(f"  {param}:")
        for value, h in sorted(sweeps.items()):
            lines.append(
                f"    {value:>5}: windows={h.size:3d} "
                f"range=[{h.min():7.1f}, {h.max():7.1f}] "
                f"roughness={_roughness(h):7.1f}"
            )
    report("fig6_parametric", "\n".join(lines))

    # (b): a tiny window is spikier than the Table IV window.
    assert _roughness(out["t_win"][0.5]) > _roughness(out["t_win"][4.0])
    # (b): a larger window lowers the temporal resolution (fewer windows).
    assert out["t_win"][8.0].size < out["t_win"][2.0].size
    # (c): moderate eta must not run away (bounded displacement).
    assert np.abs(out["eta"][0.1]).max() < 2000
