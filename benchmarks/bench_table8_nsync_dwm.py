"""Table VIII — NSYNC with DWM: the paper's headline result.

Every (printer, transform, channel) cell of Table VIII, with the three
sub-module columns (c_disp / h_dist / v_dist; our duration extension is
reported as a fourth column).  Expected shape: FPR at or near 0.00 and TPR
at or near 1.00 on the strongly-correlated channels, i.e. accuracy ~0.99,
beating every baseline.  The paper's own EPT-raw row fails (TPR 0.06); see
EXPERIMENTS.md for where our simulation deviates there.
"""

import numpy as np

from conftest import run_once
from repro.eval import format_ids_table, nsync_results

CHANNELS = ("ACC", "MAG", "AUD", "EPT")


def test_table8_nsync_dwm(benchmark, campaigns, report):
    def evaluate():
        results = {}
        for printer, campaign in campaigns.items():
            for transform in ("Raw", "Spectro."):
                for channel in CHANNELS:
                    key = f"{printer} {transform:<8} {channel}"
                    results[key] = nsync_results(
                        campaign, channel, transform, r=0.3
                    )
        return results

    results = run_once(benchmark, evaluate)
    table = format_ids_table(
        results,
        submodule_names=("c_disp", "h_dist", "v_dist", "duration"),
        title="Table VIII — NSYNC/DWM (r = 0.3)",
    )
    strong = [
        r.overall.accuracy
        for key, r in results.items()
        if any(c in key for c in ("ACC", "AUD", "MAG"))
    ]
    summary = (
        f"\nmean accuracy (ACC/MAG/AUD cells): {np.mean(strong):.3f} "
        f"(paper: 0.99)"
    )
    report("table8_nsync_dwm", table + summary)

    # Headline: near-perfect on strongly-correlated channels.
    assert np.mean(strong) >= 0.9
    # FPR stays near zero everywhere (r = 0.3 is chosen for that).
    fprs = [r.overall.fpr for r in results.values()]
    assert np.mean(fprs) <= 0.1

    # ACC raw — the flagship cell — is perfect on both printers.
    for printer in ("UM3", "RM3"):
        cell = results[f"{printer} {'Raw':<8} ACC"]
        assert cell.overall.tpr == 1.0, f"{printer} ACC raw TPR"
        assert cell.overall.fpr <= 0.13, f"{printer} ACC raw FPR"
