"""Ablations of NSYNC's design choices (DESIGN.md's ablation list).

Each test switches off one stabiliser the paper argues for and shows the
resulting degradation on the UM3 campaign:

* TDEB's Gaussian bias (Fig. 5) — without it, periodic/noisy windows make
  the synchronizer jumpy, inflating benign CADHD.
* The spike-suppression minimum filter (Eq. 21-22) — without it, isolated
  time-noise spikes raise the learned thresholds and/or fire false alarms.
* The OCC margin r (Section VII-C) — the FPR/TPR trade-off.
"""

from dataclasses import replace

import numpy as np

from conftest import run_once
from repro.eval import nsync_results
from repro.eval.experiments import transform_signal
from repro.sync import DwmSynchronizer


def _benign_cadhd(campaign, params):
    """Final CADHD of every benign test run under the given DWM params."""
    reference = transform_signal(
        campaign.reference.signals["ACC"], "ACC", "Raw"
    )
    sync = DwmSynchronizer(params)
    out = []
    for run in campaign.benign_test:
        observed = transform_signal(run.signals["ACC"], "ACC", "Raw")
        result = sync.synchronize(observed, reference)
        out.append(float(result.cadhd()[-1]) if result.n_indexes else 0.0)
    return np.asarray(out)


def test_ablation_tdeb_bias(benchmark, um3_campaign, report):
    """Remove the Gaussian bias (t_sigma -> huge): benign CADHD inflates."""
    params = um3_campaign.setup.dwm_params

    def evaluate():
        biased = _benign_cadhd(um3_campaign, params)
        # t_sigma >> t_ext makes the Gaussian flat across the search range,
        # i.e. plain unbiased TDE.
        unbiased = _benign_cadhd(
            um3_campaign, replace(params, t_sigma=1e6)
        )
        return biased, unbiased

    biased, unbiased = run_once(benchmark, evaluate)
    report(
        "ablation_tdeb_bias",
        "Ablation — TDEB Gaussian bias (benign CADHD, UM3/ACC raw)\n"
        f"  with bias    : median {np.median(biased):8.0f}  max {biased.max():8.0f}\n"
        f"  without bias : median {np.median(unbiased):8.0f}  max {unbiased.max():8.0f}\n"
        f"  inflation    : {np.median(unbiased)/max(np.median(biased),1e-9):.1f}x",
    )
    assert np.median(unbiased) >= np.median(biased)


def test_ablation_spike_filter(benchmark, um3_campaign, report):
    """Disable the min-filter: the v_dist threshold inflates."""

    def evaluate():
        from repro.core import NsyncIds, OneClassTrainer
        from repro.core.discriminator import detection_features

        reference = transform_signal(
            um3_campaign.reference.signals["ACC"], "ACC", "Raw"
        )
        ids = NsyncIds(reference, DwmSynchronizer(um3_campaign.setup.dwm_params))

        thresholds = {}
        for window in (1, 3):
            trainer = OneClassTrainer(r=0.3)
            for run in um3_campaign.training:
                observed = transform_signal(run.signals["ACC"], "ACC", "Raw")
                sync = ids.synchronizer.synchronize(observed, reference)
                v = ids.comparator.vertical_distances(observed, reference, sync)
                trainer.add_run(detection_features(sync, v, filter_window=window))
            thresholds[window] = trainer.thresholds()
        return thresholds

    thresholds = run_once(benchmark, evaluate)
    report(
        "ablation_spike_filter",
        "Ablation — spike-suppression min filter (UM3/ACC raw)\n"
        f"  filter window 3 (paper): v_c = {thresholds[3].v_c:.3f}, "
        f"h_c = {thresholds[3].h_c:.1f}\n"
        f"  filter window 1 (off)  : v_c = {thresholds[1].v_c:.3f}, "
        f"h_c = {thresholds[1].h_c:.1f}\n"
        "  higher thresholds = less sensitive discriminator",
    )
    # Without the filter the learned thresholds can only grow.
    assert thresholds[1].v_c >= thresholds[3].v_c
    assert thresholds[1].h_c >= thresholds[3].h_c


def test_ablation_occ_margin(benchmark, um3_campaign, report):
    """Sweep r: FPR falls (and eventually TPR) as the margin widens."""

    def evaluate():
        return {
            r: nsync_results(um3_campaign, "ACC", "Raw", r=r)
            for r in (0.0, 0.3, 1.0, 3.0)
        }

    sweep = run_once(benchmark, evaluate)
    lines = ["Ablation — OCC margin r (UM3/ACC raw)"]
    for r, result in sorted(sweep.items()):
        lines.append(
            f"  r={r:<4}: FPR={result.overall.fpr:.2f} "
            f"TPR={result.overall.tpr:.2f} acc={result.overall.accuracy:.2f}"
        )
    report("ablation_occ_margin", "\n".join(lines))

    fprs = [sweep[r].overall.fpr for r in sorted(sweep)]
    assert fprs == sorted(fprs, reverse=True), "FPR must fall as r grows"
    tprs = [sweep[r].overall.tpr for r in sorted(sweep)]
    assert tprs == sorted(tprs, reverse=True), "TPR must not rise as r grows"


def test_ablation_fusion_policy(benchmark, um3_campaign, report):
    """Fuse three channels: the policy trades FPR against TPR."""
    from repro.core import MultiChannelNsyncIds
    from repro.eval.metrics import DetectionStats

    channels = ("ACC", "MAG", "AUD")

    def evaluate():
        reference = {
            cid: um3_campaign.reference.signals[cid] for cid in channels
        }
        training = [
            {cid: run.signals[cid] for cid in channels}
            for run in um3_campaign.training
        ]
        stats = {}
        for policy in ("any", "majority", 3):
            ids = MultiChannelNsyncIds(
                reference,
                synchronizer_factory=lambda: DwmSynchronizer(
                    um3_campaign.setup.dwm_params
                ),
                policy=policy,
            )
            ids.fit(training, r=0.3)
            s = DetectionStats()
            for run in um3_campaign.benign_test:
                observed = {cid: run.signals[cid] for cid in channels}
                s.record(False, ids.detect(observed).is_intrusion)
            for run in um3_campaign.all_malicious():
                observed = {cid: run.signals[cid] for cid in channels}
                s.record(True, ids.detect(observed).is_intrusion)
            stats[str(policy)] = s
        return stats

    stats = run_once(benchmark, evaluate)
    lines = ["Ablation — multi-channel fusion policy (UM3, ACC+MAG+AUD raw)"]
    for policy, s in stats.items():
        lines.append(
            f"  {policy:<9}: FPR={s.fpr:.2f} TPR={s.tpr:.2f} "
            f"acc={s.accuracy:.2f}"
        )
    report("ablation_fusion_policy", "\n".join(lines))

    # Sensitivity ordering: any >= majority >= unanimity in TPR,
    # and the reverse (weakly) in FPR.
    assert stats["any"].tpr >= stats["majority"].tpr >= stats["3"].tpr
    assert stats["any"].fpr >= stats["majority"].fpr >= stats["3"].fpr
    # Fusion at 'majority' keeps the headline accuracy.
    assert stats["majority"].accuracy >= 0.85


def test_ablation_online_dtw(benchmark, um3_campaign, report):
    """Streaming banded DTW as the synchronizer: usable, still below DWM."""
    from repro.eval import nsync_results
    from repro.sync import OnlineDtwSynchronizer

    def evaluate():
        online = nsync_results(
            um3_campaign,
            "ACC",
            "Spectro.",
            synchronizer=OnlineDtwSynchronizer(band=32),
        )
        dwm = nsync_results(um3_campaign, "ACC", "Spectro.")
        return online, dwm

    online, dwm = run_once(benchmark, evaluate)
    report(
        "ablation_online_dtw",
        "Ablation — online (streaming) DTW vs DWM (UM3/ACC spectrogram)\n"
        f"  online DTW: {online.cell()}  acc={online.overall.accuracy:.2f}\n"
        f"  DWM       : {dwm.cell()}  acc={dwm.overall.accuracy:.2f}",
    )
    assert online.overall.tpr >= 0.5  # it does work as a synchronizer
    assert dwm.overall.accuracy >= online.overall.accuracy - 0.05


def test_ablation_lookahead_planner(benchmark, report):
    """Swap the stop-to-stop planner for junction look-ahead: NSYNC/DWM must
    keep working on the smoother (less burst-rich) signals."""
    from dataclasses import replace

    from repro.eval import default_setup, generate_campaign, nsync_results

    def evaluate():
        base_setup = default_setup("UM3", object_height=0.6)
        smooth_setup = replace(
            base_setup, machine=replace(base_setup.machine, lookahead=True)
        )
        results = {}
        for name, setup in (("stop-to-stop", base_setup),
                            ("lookahead", smooth_setup)):
            campaign = generate_campaign(
                setup,
                channels=("ACC",),
                n_train=6,
                n_benign_test=6,
                n_attack_runs=1,
                seed=5,
            )
            results[name] = (
                nsync_results(campaign, "ACC", "Raw"),
                campaign.reference.duration,
            )
        return results

    results = run_once(benchmark, evaluate)
    lines = ["Ablation — motion planner (UM3/ACC raw, NSYNC/DWM)"]
    for name, (result, duration) in results.items():
        lines.append(
            f"  {name:<13}: print {duration:5.1f} s, "
            f"{result.cell()}  acc={result.overall.accuracy:.2f}"
        )
    report("ablation_lookahead", "\n".join(lines))

    # Look-ahead shortens the print...
    assert results["lookahead"][1] < results["stop-to-stop"][1]
    # ...and NSYNC still detects attacks on the smoother signal.
    assert results["lookahead"][0].overall.tpr >= 0.8
