"""Micro-benchmarks of the hot kernels (regression tracking).

Unlike the table/figure benches (single-shot experiment reproductions),
these use pytest-benchmark's statistical timing: the kernels here are the
ones whose constants decide whether the IDS runs in real time, so a
regression in any of them matters.

Rough expectations on commodity hardware:
* correlation_profile: sub-millisecond for a 4 s ACC window;
* one full DWM synchronization of an 80 s raw ACC pair: tens of ms;
* STFT of the same signal: a few ms.
"""

import numpy as np
import pytest

from repro.attacks import PrintJob
from repro.printer import TimeNoiseModel, ULTIMAKER3
from repro.printer.arcs import segment_arcs
from repro.printer.firmware import Firmware
from repro.signals import Signal, SpectrogramConfig, spectrogram
from repro.slicer import SlicerConfig, gear_outline
from repro.sync import DwmSynchronizer, UM3_DWM_PARAMS, fastdtw_path, tdeb
from repro.sync.tde import correlation_profile


@pytest.fixture(scope="module")
def acc_like_pair():
    """Two 80 s, 400 Hz, 6-channel signals with realistic structure."""
    rng = np.random.default_rng(0)
    base = np.cumsum(rng.standard_normal((32000, 6)), axis=0)
    base -= np.linspace(0, 1, 32000)[:, None] * base[-1]
    a = Signal(base + 0.05 * rng.standard_normal(base.shape), 400.0)
    b = Signal(base + 0.05 * rng.standard_normal(base.shape), 400.0)
    return a, b


def test_kernel_correlation_profile(benchmark, acc_like_pair):
    a, b = acc_like_pair
    window = a.data[:1600]            # one 4 s analysis window
    segment = b.data[:3200]           # its extended search window
    result = benchmark(correlation_profile, segment, window)
    assert result.shape == (1601,)
    assert result.max() > 0.9


def test_kernel_tdeb(benchmark, acc_like_pair):
    a, b = acc_like_pair
    window = a.data[800:2400]         # planted at delay 800 in the segment
    segment = b.data[:3200]
    result = benchmark(tdeb, segment, window, 400.0)
    assert abs(result.delay - 800) < 40


def test_kernel_dwm_full_sync(benchmark, acc_like_pair):
    a, b = acc_like_pair
    sync = benchmark(DwmSynchronizer(UM3_DWM_PARAMS).synchronize, a, b)
    assert sync.n_indexes > 30
    # Real-time requirement: well under the 80 s of signal.
    assert benchmark.stats["mean"] < 8.0


def test_kernel_stft(benchmark, acc_like_pair):
    a, _ = acc_like_pair
    config = SpectrogramConfig(delta_f=2.0, delta_t=0.125)
    spec = benchmark(spectrogram, a, config)
    assert spec.n_samples > 100


def test_kernel_fastdtw(benchmark):
    rng = np.random.default_rng(1)
    base = np.cumsum(rng.standard_normal((800, 8)), axis=0)
    a, b = base[:760], base[20:780]
    cost, path = benchmark(fastdtw_path, a, b, 1)
    assert path[0] == (0, 0)


# ---------------------------------------------------------------------------
# Firmware sampling kernels: vectorized vs loop-reference regression
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def scheduled_print():
    """Segments + events of one noisy gear print (the _sample workload)."""
    job = PrintJob.slice(
        gear_outline(),
        SlicerConfig(object_height=0.6, infill_spacing=6.0),
        center=(110.0, 110.0),
    )
    firmware = Firmware(ULTIMAKER3, TimeNoiseModel())
    noise = TimeNoiseModel().start(np.random.default_rng(3))
    segments, events = firmware._schedule(
        segment_arcs(job.program), noise
    )
    return firmware, segments, events


def test_kernel_sample_vectorized(benchmark, scheduled_print):
    firmware, segments, events = scheduled_print
    trace = benchmark(firmware._sample, segments, events)
    reference = firmware._sample_loop(segments, events)
    for name in (
        "position", "velocity", "acceleration", "extrusion_rate",
        "hotend_temp", "bed_temp", "fan",
    ):
        a = getattr(trace, name)
        b = getattr(reference, name)
        assert np.max(np.abs(a - b)) <= 1e-9
    assert np.array_equal(trace.command_index, reference.command_index)
    assert np.array_equal(trace.layer_index, reference.layer_index)


def test_kernel_sample_loop_reference(benchmark, scheduled_print):
    firmware, segments, events = scheduled_print
    trace = benchmark(firmware._sample_loop, segments, events)
    assert trace.n_samples > 1000


def test_kernel_thermal_track(benchmark, scheduled_print):
    firmware, segments, events = scheduled_print
    times = np.arange(40_000) / ULTIMAKER3.sim_rate
    hot = benchmark(
        firmware._thermal_track, times, events["hotend"], ULTIMAKER3.hotend_tau
    )
    reference = firmware._thermal_track_loop(
        times, events["hotend"], ULTIMAKER3.hotend_tau
    )
    assert np.max(np.abs(hot - reference)) <= 1e-9
