"""Micro-benchmarks of the hot kernels (regression tracking).

Unlike the table/figure benches (single-shot experiment reproductions),
these use pytest-benchmark's statistical timing: the kernels here are the
ones whose constants decide whether the IDS runs in real time, so a
regression in any of them matters.

Rough expectations on commodity hardware:
* correlation_profile: sub-millisecond for a 4 s ACC window;
* one full DWM synchronization of an 80 s raw ACC pair: tens of ms;
* STFT of the same signal: a few ms.
"""

import numpy as np
import pytest

from repro.signals import Signal, SpectrogramConfig, spectrogram
from repro.sync import DwmSynchronizer, UM3_DWM_PARAMS, fastdtw_path, tdeb
from repro.sync.tde import correlation_profile


@pytest.fixture(scope="module")
def acc_like_pair():
    """Two 80 s, 400 Hz, 6-channel signals with realistic structure."""
    rng = np.random.default_rng(0)
    base = np.cumsum(rng.standard_normal((32000, 6)), axis=0)
    base -= np.linspace(0, 1, 32000)[:, None] * base[-1]
    a = Signal(base + 0.05 * rng.standard_normal(base.shape), 400.0)
    b = Signal(base + 0.05 * rng.standard_normal(base.shape), 400.0)
    return a, b


def test_kernel_correlation_profile(benchmark, acc_like_pair):
    a, b = acc_like_pair
    window = a.data[:1600]            # one 4 s analysis window
    segment = b.data[:3200]           # its extended search window
    result = benchmark(correlation_profile, segment, window)
    assert result.shape == (1601,)
    assert result.max() > 0.9


def test_kernel_tdeb(benchmark, acc_like_pair):
    a, b = acc_like_pair
    window = a.data[800:2400]         # planted at delay 800 in the segment
    segment = b.data[:3200]
    result = benchmark(tdeb, segment, window, 400.0)
    assert abs(result.delay - 800) < 40


def test_kernel_dwm_full_sync(benchmark, acc_like_pair):
    a, b = acc_like_pair
    sync = benchmark(DwmSynchronizer(UM3_DWM_PARAMS).synchronize, a, b)
    assert sync.n_indexes > 30
    # Real-time requirement: well under the 80 s of signal.
    assert benchmark.stats["mean"] < 8.0


def test_kernel_stft(benchmark, acc_like_pair):
    a, _ = acc_like_pair
    config = SpectrogramConfig(delta_f=2.0, delta_t=0.125)
    spec = benchmark(spectrogram, a, config)
    assert spec.n_samples > 100


def test_kernel_fastdtw(benchmark):
    rng = np.random.default_rng(1)
    base = np.cumsum(rng.standard_normal((800, 8)), axis=0)
    a, b = base[:760], base[20:780]
    cost, path = benchmark(fastdtw_path, a, b, 1)
    assert path[0] == (0, 0)
