"""Table VII — Gatlin's IDS: layer timing + per-layer fingerprints.

Coarse (layer-level) DSYNC: better than no synchronization, still below
NSYNC.  The paper's Table VII shows TPR 1.00 nearly everywhere with FPRs of
0.05-0.53; the Time sub-module does most of the work.
"""

import numpy as np

from conftest import run_once
from repro.baselines import GatlinIds
from repro.eval import baseline_results, format_ids_table

CHANNELS = ("ACC", "MAG", "AUD", "EPT")


def test_table7_gatlin(benchmark, campaigns, report):
    def evaluate():
        results = {}
        for printer, campaign in campaigns.items():
            for channel in CHANNELS:
                results[f"{printer} {channel}"] = baseline_results(
                    campaign, GatlinIds(), channel, "Raw"
                )
        return results

    results = run_once(benchmark, evaluate)
    table = format_ids_table(
        results,
        submodule_names=("time", "match"),
        title="Table VII — Gatlin (layer timing + fingerprints)",
    )
    report("table7_gatlin", table)

    tprs = [r.overall.tpr for r in results.values()]
    accuracies = [r.overall.accuracy for r in results.values()]
    # Timing attacks are caught through the layer-change moments...
    assert np.mean(tprs) >= 0.6
    # ...and overall it lands between the no-DSYNC IDSs and NSYNC.
    assert 0.5 <= np.mean(accuracies) <= 1.0

    # The Time sub-module dominates, as in the paper.
    time_tpr = np.mean(
        [r.submodules["time"].tpr for r in results.values()]
    )
    match_tpr = np.mean(
        [r.submodules["match"].tpr for r in results.values()]
    )
    assert time_tpr >= match_tpr
