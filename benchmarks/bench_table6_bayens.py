"""Table VI — Bayens' windowed acoustic-fingerprint IDS (AUD only).

Two retrieval window sizes are evaluated per printer.  The paper used 90 s
and 120 s windows on hours-long prints; our prints last ~1 minute, so the
windows scale to 8 s and 12 s (same windows-per-print ratio).

Expected shape: the sequence sub-module is hair-triggered by time noise —
it fires on benign prints too (the paper saw FPR 1.00 on UM3), dragging the
overall accuracy toward 0.5 despite a perfect-looking TPR.
"""

import numpy as np

from conftest import run_once
from repro.baselines import BayensIds
from repro.eval import baseline_results, format_ids_table

WINDOW_SIZES = (8.0, 12.0)


def test_table6_bayens(benchmark, campaigns, report):
    def evaluate():
        results = {}
        for printer, campaign in campaigns.items():
            for window in WINDOW_SIZES:
                key = f"{printer} AUD window={window:.0f}s"
                results[key] = baseline_results(
                    campaign,
                    BayensIds(window_seconds=window),
                    "AUD",
                    "Raw",
                )
        return results

    results = run_once(benchmark, evaluate)
    table = format_ids_table(
        results,
        submodule_names=("sequence", "threshold"),
        title="Table VI — Bayens (windows scaled from the paper's 90/120 s)",
    )
    report("table6_bayens", table)

    # TPR is high (content attacks do break retrieval)...
    tprs = [r.overall.tpr for r in results.values()]
    assert np.mean(tprs) >= 0.5
    # ...but the sequence check also fires on benign runs (time noise),
    # keeping the accuracy far from NSYNC's.
    accuracies = [r.overall.accuracy for r in results.values()]
    assert np.mean(accuracies) < 0.95
