"""Fig. 11 — time to synchronize one second of spectrogram, DWM vs DTW.

The paper measures the average wall-clock time both synchronizers need per
second of side-channel spectrogram (at Table III's 20-240 frames/s) and
finds DTW much slower even in its fastest (radius-1 FastDTW) configuration.

Two DTW implementations are measured:

* ``reference`` — a faithful port of the standard pure-Python FastDTW the
  paper ran (per-cell Python arithmetic; this is Fig. 11's DTW bar);
* ``vectorized`` — this repository's re-engineered FastDTW (same output
  path, numpy-vectorized rows), showing how much of the published gap is
  implementation constant rather than algorithm.
"""

import numpy as np

from conftest import run_once
from repro.eval import fig11_time_ratio

CHANNELS = ("ACC", "MAG", "AUD", "EPT")


def test_fig11_time_ratio(benchmark, um3_campaign, report):
    def evaluate():
        return {
            channel: fig11_time_ratio(um3_campaign, channel)
            for channel in CHANNELS
        }

    per_channel = run_once(benchmark, evaluate)

    dwm = np.mean([v["dwm_time_ratio"] for v in per_channel.values()])
    dtw_vec = np.mean([v["dtw_time_ratio"] for v in per_channel.values()])
    dtw_ref = np.mean(
        [v["dtw_reference_time_ratio"] for v in per_channel.values()]
    )
    lines = [
        "Fig. 11 — seconds of compute per second of spectrogram (UM3)",
        f"  {'channel':<8} {'DWM':>10} {'DTW(vec)':>10} {'DTW(ref)':>10}",
    ]
    for channel, v in per_channel.items():
        lines.append(
            f"  {channel:<8} {v['dwm_time_ratio']:>10.5f} "
            f"{v['dtw_time_ratio']:>10.5f} "
            f"{v['dtw_reference_time_ratio']:>10.5f}"
        )
    lines.append(
        f"  {'mean':<8} {dwm:>10.5f} {dtw_vec:>10.5f} {dtw_ref:>10.5f}"
    )
    lines.append(
        f"  DWM vs paper-style DTW: {dtw_ref/dwm:.0f}x faster "
        f"(vs our vectorized DTW: {dtw_vec/dwm:.1f}x)"
    )
    report("fig11_time_ratio", "\n".join(lines))

    # The paper's claim, against the implementation class the paper used.
    assert dtw_ref > 2.5 * dwm
    # DWM runs far faster than real time (required for a real-time IDS).
    assert dwm < 0.5
    # Our re-engineered FastDTW demonstrates most of the published gap was
    # implementation constant: it lands within an order of magnitude of DWM.
    assert dtw_vec < 10.0 * dwm
