"""Campaign engine benchmarks: parallel fan-out + content-addressed cache.

Measures the three execution regimes of the same small UM3 campaign:

* ``cold serial``    — workers=0, no cache (the pre-engine baseline);
* ``cold parallel``  — workers=4, no cache (pure fan-out speedup);
* ``warm cache``     — workers=0, cache populated (zero simulations).

All three produce bit-identical campaigns (asserted).  Timings and cache
stats are appended to ``benchmarks/results/BENCH_campaign.json`` so the
perf trajectory is tracked across PRs.  The parallel-scaling assertion is
gated on the host actually having >= 4 cores; the cache assertion holds on
any machine because a warm campaign does no simulation at all.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro import obs
from repro.attacks import TABLE_I_ATTACKS
from repro.eval import CampaignEngine, default_setup, generate_campaign

from conftest import record_campaign_stats

CAMPAIGN_KW = dict(
    channels=("ACC", "AUD"),
    n_train=2,
    n_benign_test=2,
    n_attack_runs=1,
    seed=11,
)


def _flat_runs(campaign):
    return [
        campaign.reference,
        *campaign.training,
        *campaign.benign_test,
        *campaign.all_malicious(),
    ]


def _assert_identical(a, b):
    for run_a, run_b in zip(_flat_runs(a), _flat_runs(b)):
        assert run_a.label == run_b.label
        assert run_a.layer_times == run_b.layer_times
        for channel in run_a.signals:
            assert np.array_equal(
                run_a.signals[channel].data, run_b.signals[channel].data
            )


def test_engine_cache_and_parallel_speedup(tmp_path, report):
    setup = default_setup("UM3", object_height=0.6)
    attacks = TABLE_I_ATTACKS()

    t0 = time.perf_counter()
    serial = generate_campaign(setup, attacks=attacks, **CAMPAIGN_KW)
    cold_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = generate_campaign(
        setup, attacks=attacks, workers=4, **CAMPAIGN_KW
    )
    cold_parallel = time.perf_counter() - t0

    cold_engine = CampaignEngine(workers=0, cache=tmp_path / "cache")
    t0 = time.perf_counter()
    populated = generate_campaign(
        setup, attacks=attacks, engine=cold_engine, **CAMPAIGN_KW
    )
    cold_cached = time.perf_counter() - t0

    # The warm pass is additionally traced so the record carries the
    # engine's span/counter snapshot next to its timing.
    warm_engine = CampaignEngine(workers=0, cache=tmp_path / "cache")
    was_enabled = obs.enabled()
    obs.reset()
    obs.enable()
    t0 = time.perf_counter()
    try:
        warm = generate_campaign(
            setup, attacks=attacks, engine=warm_engine, **CAMPAIGN_KW
        )
    finally:
        warm_time = time.perf_counter() - t0
        warm_metrics = obs.snapshot()
        obs.reset()
        if not was_enabled:
            obs.disable()

    _assert_identical(serial, parallel)
    _assert_identical(serial, populated)
    _assert_identical(serial, warm)
    assert warm_engine.stats.simulated == 0
    assert warm_engine.stats.cache_hits == cold_engine.stats.cache_misses

    warm_speedup = cold_serial / max(warm_time, 1e-9)
    parallel_speedup = cold_serial / max(cold_parallel, 1e-9)
    record = {
        "cold_serial": cold_serial,
        "cold_parallel_w4": cold_parallel,
        "cold_cached": cold_cached,
        "warm_cache": warm_time,
        "warm_speedup": warm_speedup,
        "parallel_speedup_w4": parallel_speedup,
        "cpu_count": os.cpu_count(),
    }
    record_campaign_stats(
        "engine_speedup", {**record, "metrics": warm_metrics}
    )
    report(
        "BENCH_engine_speedup",
        "\n".join(f"{k}: {v}" for k, v in record.items()),
    )

    # A warm cache skips every simulation; anything under 4x would mean the
    # payload IO regressed to the same order as the simulator itself.
    assert warm_speedup >= 4.0
    # Fan-out scaling only holds when the cores exist to fan out onto.
    if (os.cpu_count() or 1) >= 4:
        assert parallel_speedup >= 2.0
