"""Extension: where NSYNC's detection envelope ends.

Table I's five attacks all perturb the *toolpath or its timing*, which is
what the side channels (and DWM's timing analysis) see.  Two further
sabotage classes from the literature preserve the toolpath exactly:

* FanOff   — part-cooling fan disabled (overhangs deform);
* Temp-25  — hotend 25 degC low (interlayer bonding collapses).

This bench shows the boundary of the method: Table I attacks are detected
near-perfectly, while the geometry-preserving attacks largely evade every
channel.  The cause is structural — NSYNC's correlation metric is
deliberately gain-invariant (Section VII-A) to survive sensor-gain drift,
and a fan or temperature change manifests precisely as a level change.
Catching these attacks needs level-sensitive features (e.g. per-band energy
alongside correlation), which the paper leaves to future work.
"""

import numpy as np

from conftest import run_once
from repro.attacks import FanAttack, TABLE_I_ATTACKS, TemperatureAttack
from repro.eval import default_setup, generate_campaign, nsync_results

CHANNELS = ("ACC", "AUD", "PWR", "TMP")


def test_extension_attack_envelope(benchmark, report):
    def evaluate():
        attacks = TABLE_I_ATTACKS() + [FanAttack(), TemperatureAttack()]
        campaign = generate_campaign(
            default_setup("UM3", object_height=0.6),
            channels=CHANNELS,
            n_train=6,
            n_benign_test=6,
            attacks=attacks,
            n_attack_runs=2,
            seed=9,
        )
        return {
            channel: nsync_results(campaign, channel, "Raw")
            for channel in CHANNELS
        }

    results = run_once(benchmark, evaluate)

    table_i = [a.name for a in TABLE_I_ATTACKS()]
    stealth = ["FanOff", "Temp-25"]
    lines = [
        "Extension — geometry-preserving attacks vs NSYNC/DWM (UM3, raw)",
        f"  {'channel':<8} {'FPR':>5} {'TableI TPR':>11} {'stealth TPR':>12}",
    ]
    toolpath_tprs, stealth_tprs = [], []
    for channel, result in results.items():
        t = np.mean([result.per_attack_tpr.get(a, 0.0) for a in table_i])
        s = np.mean([result.per_attack_tpr.get(a, 0.0) for a in stealth])
        toolpath_tprs.append(t)
        stealth_tprs.append(s)
        lines.append(
            f"  {channel:<8} {result.overall.fpr:>5.2f} {t:>11.2f} {s:>12.2f}"
        )
    lines.append(
        "  -> gain-invariant correlation cannot see pure level changes; "
        "the stealth attacks sit outside the method's envelope."
    )
    report("extension_attacks", "\n".join(lines))

    # Motion channels catch the toolpath attacks...
    assert max(toolpath_tprs) >= 0.9
    # ...but the geometry-preserving attacks largely evade everywhere.
    assert max(stealth_tprs) <= 0.6
