"""Fig. 12 — average accuracy of the seven IDSs.

The paper's summary figure: as the level of dynamic synchronization rises
from none (Moore, Bayens, Belikovetsky) through coarse/layer-level (Gao,
Gatlin) to fine (NSYNC/DTW, NSYNC/DWM), average accuracy rises, with
NSYNC/DWM on top at 0.99.  This bench reruns all seven IDSs over the UM3
campaign's channels and transforms and prints the ranking.
"""

import numpy as np

from conftest import run_once
from repro.eval import fig12_overall_accuracy, format_accuracy_ranking

# Fig. 12 groups (paper): none -> coarse -> fine DSYNC.
DSYNC_LEVEL = {
    "moore": 0,
    "bayens": 0,
    "belikovetsky": 0,
    "gao": 1,
    "gatlin": 1,
    "nsync_dtw": 2,
    "nsync_dwm": 2,
}


def test_fig12_overall_accuracy(benchmark, um3_campaign, report):
    accuracies = run_once(
        benchmark,
        lambda: fig12_overall_accuracy(
            um3_campaign, channels=("ACC", "MAG", "AUD", "EPT")
        ),
    )

    ranking = format_accuracy_ranking(accuracies)
    by_level = {}
    for name, acc in accuracies.items():
        by_level.setdefault(DSYNC_LEVEL[name], []).append(acc)
    level_means = {
        level: float(np.mean(values)) for level, values in by_level.items()
    }
    summary = (
        "\nmean accuracy by DSYNC level: "
        f"none={level_means[0]:.2f}  coarse={level_means[1]:.2f}  "
        f"fine={level_means[2]:.2f}"
    )
    report("fig12_overall_accuracy", ranking + summary)

    assert set(accuracies) == set(DSYNC_LEVEL)
    # The paper's headline ordering.
    assert accuracies["nsync_dwm"] >= max(
        accuracies[k] for k in DSYNC_LEVEL if k != "nsync_dwm"
    )
    # Accuracy rises with the DSYNC level.
    assert level_means[2] >= level_means[1] - 0.05
    assert level_means[1] >= level_means[0] - 0.05
    # NSYNC/DWM approaches the paper's 0.99.
    assert accuracies["nsync_dwm"] >= 0.9
