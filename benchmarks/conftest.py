"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper's evaluation on
a simulated campaign.  Campaigns are expensive (dozens of firmware + sensor
simulations), so they are session-scoped, shared across benchmark files,
and executed through the :class:`~repro.eval.engine.CampaignEngine`: runs
fan out over ``REPRO_BENCH_WORKERS`` processes (default ``cpu_count - 1``)
and are memoized in a content-addressed cache (``REPRO_CACHE_DIR``,
default ``benchmarks/.cache``) so re-running any benchmark file hits the
cache instead of re-simulating.

Scale: the paper ran 151 benign + 100 malicious prints per printer; the
benchmark campaigns keep the same structure at 1 reference + 8 training +
8 benign-test + 2 runs of each of the 5 attacks per printer.  Regenerated
rows are printed AND appended to ``benchmarks/results/*.txt`` so they
survive pytest's output capture; campaign wall-clock and cache-hit stats
accumulate in ``benchmarks/results/BENCH_campaign.json`` to track the perf
trajectory across PRs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro import obs
from repro.eval import Campaign, CampaignEngine, default_setup, generate_campaign

RESULTS_DIR = Path(__file__).parent / "results"
CAMPAIGN_STATS_PATH = RESULTS_DIR / "BENCH_campaign.json"
ENGINE_THROUGHPUT_PATH = RESULTS_DIR / "BENCH_engine_throughput.json"

N_TRAIN = 8
N_BENIGN_TEST = 8
N_ATTACK_RUNS = 2
CHANNELS = ("ACC", "MAG", "AUD", "EPT")


def bench_cache_dir() -> str:
    return os.environ.get(
        "REPRO_CACHE_DIR", str(Path(__file__).parent / ".cache")
    )


def bench_workers() -> int:
    env = os.environ.get("REPRO_BENCH_WORKERS")
    if env is not None:
        return int(env)
    return max(0, (os.cpu_count() or 1) - 1)


def record_bench_stats(path: Path, name: str, record: dict) -> None:
    """Append one perf record to a ``BENCH_*.json`` history file.

    Every history file shares the record shape the regression gate
    (``scripts/check_bench_regression.py``) expects: a JSON list of dicts,
    each with a ``name``, a wall-clock ``time`` stamp, and free-form
    numeric fields.  A corrupt or missing file restarts the history.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    history = []
    if path.exists():
        try:
            history = json.loads(path.read_text())
        except (ValueError, OSError):
            history = []
    history.append({"name": name, "time": time.time(), **record})
    path.write_text(json.dumps(history, indent=2) + "\n")


def record_campaign_stats(name: str, record: dict) -> None:
    """Append one perf record to benchmarks/results/BENCH_campaign.json."""
    record_bench_stats(CAMPAIGN_STATS_PATH, name, record)


def _timed_campaign(printer: str, seed: int) -> Campaign:
    engine = CampaignEngine(workers=bench_workers(), cache=bench_cache_dir())
    # Trace the campaign so each record carries a per-stage span snapshot
    # alongside the wall-clock numbers.  The registry is reset first so one
    # campaign's spans don't bleed into the next record, and the previous
    # enabled/disabled state is restored afterwards.
    was_enabled = obs.enabled()
    obs.reset()
    obs.enable()
    t0 = time.perf_counter()
    try:
        campaign = generate_campaign(
            default_setup(printer, object_height=0.6),
            channels=CHANNELS,
            n_train=N_TRAIN,
            n_benign_test=N_BENIGN_TEST,
            n_attack_runs=N_ATTACK_RUNS,
            seed=seed,
            engine=engine,
        )
    finally:
        wall_clock = time.perf_counter() - t0
        metrics = obs.snapshot()
        obs.reset()
        if not was_enabled:
            obs.disable()
    import resource

    record_campaign_stats(
        f"{printer.lower()}_campaign",
        {
            "wall_clock": wall_clock,
            # Informational in the regression gate (verdict "info"): RSS
            # ceilings vary with allocator/page-cache pressure across
            # machines, but the trend is worth recording.
            "peak_rss_mb": round(
                resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0,
                1,
            ),
            "workers": engine.workers,
            "cpu_count": os.cpu_count(),
            **engine.stats.as_dict(),
            "metrics": metrics,
        },
    )
    return campaign


@pytest.fixture(scope="session")
def um3_campaign() -> Campaign:
    return _timed_campaign("UM3", seed=1)


@pytest.fixture(scope="session")
def rm3_campaign() -> Campaign:
    return _timed_campaign("RM3", seed=2)


@pytest.fixture(scope="session")
def campaigns(um3_campaign, rm3_campaign):
    return {"UM3": um3_campaign, "RM3": rm3_campaign}


@pytest.fixture(scope="session")
def report():
    """Print a result block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(name: str, text: str) -> None:
        banner = f"\n===== {name} =====\n{text}\n"
        print(banner)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _report


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
