"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper's evaluation on
a simulated campaign.  Campaigns are expensive (dozens of firmware + sensor
simulations), so they are session-scoped and shared across benchmark files.

Scale: the paper ran 151 benign + 100 malicious prints per printer; the
benchmark campaigns keep the same structure at 1 reference + 8 training +
8 benign-test + 2 runs of each of the 5 attacks per printer.  Regenerated
rows are printed AND appended to ``benchmarks/results/*.txt`` so they
survive pytest's output capture.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.eval import Campaign, default_setup, generate_campaign

RESULTS_DIR = Path(__file__).parent / "results"

N_TRAIN = 8
N_BENIGN_TEST = 8
N_ATTACK_RUNS = 2
CHANNELS = ("ACC", "MAG", "AUD", "EPT")


@pytest.fixture(scope="session")
def um3_campaign() -> Campaign:
    return generate_campaign(
        default_setup("UM3", object_height=0.6),
        channels=CHANNELS,
        n_train=N_TRAIN,
        n_benign_test=N_BENIGN_TEST,
        n_attack_runs=N_ATTACK_RUNS,
        seed=1,
    )


@pytest.fixture(scope="session")
def rm3_campaign() -> Campaign:
    return generate_campaign(
        default_setup("RM3", object_height=0.6),
        channels=CHANNELS,
        n_train=N_TRAIN,
        n_benign_test=N_BENIGN_TEST,
        n_attack_runs=N_ATTACK_RUNS,
        seed=2,
    )


@pytest.fixture(scope="session")
def campaigns(um3_campaign, rm3_campaign):
    return {"UM3": um3_campaign, "RM3": rm3_campaign}


@pytest.fixture(scope="session")
def report():
    """Print a result block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(name: str, text: str) -> None:
        banner = f"\n===== {name} =====\n{text}\n"
        print(banner)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _report


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
