"""Table V — Moore's and Gao's IDSs (plus the Belikovetsky paragraph).

Moore compares point-by-point with no synchronization at all; Gao re-aligns
at layer changes (coarse DSYNC).  Belikovetsky (PCA + cosine, no sync,
fixed 0.63 threshold) appears in the paper as a standalone paragraph with
FPR/TPR = 1.00/1.00 (UM3); it shares this campaign.

Expected shape: without fine DSYNC these IDSs sit far below NSYNC —
accuracies scattered around 0.5-0.8 with either high FPR or low TPR.
"""

import numpy as np

from conftest import run_once
from repro.baselines import BelikovetskyIds, GaoIds, MooreIds
from repro.eval import baseline_results, format_ids_table

CHANNELS = ("ACC", "MAG", "AUD", "EPT")


def test_table5_moore_gao(benchmark, campaigns, report):
    def evaluate():
        results = {}
        for printer, campaign in campaigns.items():
            for method_name, factory in (("Moore", MooreIds), ("Gao", GaoIds)):
                for channel in CHANNELS:
                    for transform in ("Raw", "Spectro."):
                        if channel == "EPT" and transform == "Raw":
                            continue  # greyed/dropped in the paper
                        key = f"{printer} {method_name:<5} {channel} {transform}"
                        results[key] = baseline_results(
                            campaign, factory(), channel, transform
                        )
        # Belikovetsky: AUD only, raw audio (it builds its own spectrogram).
        for printer, campaign in campaigns.items():
            results[f"{printer} Belikovetsky AUD"] = baseline_results(
                campaign, BelikovetskyIds(), "AUD", "Raw"
            )
        return results

    results = run_once(benchmark, evaluate)

    table = format_ids_table(
        results, submodule_names=(), title="Table V — Moore / Gao (+ Belikovetsky)"
    )
    accuracies = [r.overall.accuracy for r in results.values()]
    summary = (
        f"\nmean accuracy over cells: {np.mean(accuracies):.2f} "
        f"(paper: 0.50-0.88 band for non-fine-DSYNC IDSs)"
    )
    report("table5_moore_gao", table + summary)

    # Shape assertions: coarse/no DSYNC stays well below NSYNC's 0.99.
    assert np.mean(accuracies) < 0.9
    moore_accs = [
        r.overall.accuracy for k, r in results.items() if "Moore" in k
    ]
    assert np.mean(moore_accs) < 0.85
