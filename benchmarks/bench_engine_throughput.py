"""Steady-state DetectionEngine throughput (samples/s/core).

The detection engine is single-threaded, so the samples/s measured here is
samples/s per core — the number that bounds how many live sensor streams
one ingest core can carry.  The workload, timing discipline (cold vs warm,
push-loop-only), and the disabled-observability overhead probe all live in
:mod:`repro.eval.throughput`; this file records the numbers into the
regression-gated ``benchmarks/results/BENCH_engine_throughput.json``
history and enforces the two structural guarantees of the hot path:

* a disabled observability layer adds < 3% to streaming ``push()`` time;
* the disabled hot path performs **zero** obs-layer touches (no span is
  entered, no instrument resolved) — checked by swapping in a counting
  probe, not by timing.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_throughput.py -q
"""

from __future__ import annotations

from conftest import ENGINE_THROUGHPUT_PATH, record_bench_stats

from repro.eval.throughput import (
    RECORD_NAME,
    ThroughputWorkload,
    count_hot_path_obs_calls,
    measure_engine_throughput,
    render_comparison,
)

#: Disabled observability may cost at most this fraction of push() time.
MAX_DISABLED_OBS_OVERHEAD = 0.03


def test_engine_throughput(report):
    record = measure_engine_throughput(ThroughputWorkload(), repeats=3)

    # Sanity: the workload must actually exercise the steady-state loop.
    assert float(record["streaming_warm_samples_per_s"]) > 0.0
    assert float(record["batch_warm_samples_per_s"]) > 0.0
    # Structural guarantee: the disabled hot path never touches the obs
    # layer, so its measured overhead must be noise-level.
    assert int(record["hot_path_obs_calls"]) == 0
    assert float(record["disabled_obs_overhead"]) < MAX_DISABLED_OBS_OVERHEAD
    # Chunk-latency percentiles ride along for the regression gate
    # (p99 is gated lower-is-better; p50 is informational).
    assert 0.0 < float(record["streaming_chunk_p50_ms"]) <= float(
        record["streaming_chunk_p99_ms"]
    )

    record_bench_stats(ENGINE_THROUGHPUT_PATH, RECORD_NAME, record)
    report("engine_throughput", render_comparison(record, baseline=None))


def test_disabled_hot_path_never_touches_obs():
    """Structural check, independent of the timing measurement above.

    A short disabled-observability streaming run under the counting probe
    must not enter a single span or resolve a single instrument.  The
    probe itself is exercised first so the zero assertion is not vacuous.
    """
    from repro.eval.throughput import _ObsProbe

    probe = _ObsProbe()
    assert probe.enabled() is False
    with probe.trace("x"):
        pass
    probe.counter("c").inc()
    assert probe.touches == 2

    assert count_hot_path_obs_calls(ThroughputWorkload(n_samples=2_000)) == 0
