"""Quickstart: protect one printing process with NSYNC, end to end.

Pipeline: slice the paper's gear -> simulate benign prints on an Ultimaker 3
(with time noise) -> record the accelerometer side channel -> train NSYNC's
thresholds from benign runs only (one-class classification) -> screen new
prints, including all five Table I attacks.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    DwmSynchronizer,
    NsyncIds,
    PrintJob,
    TABLE_I_ATTACKS,
    TimeNoiseModel,
    ULTIMAKER3,
    UM3_DWM_PARAMS,
    default_daq,
    gear_outline,
    simulate_print,
)
from repro.slicer import SlicerConfig


def acquire_acc(program, seed, daq, noise):
    """Print once and record the printhead accelerometer."""
    trace = simulate_print(program, ULTIMAKER3, noise, seed=seed)
    signals = daq.acquire(trace, np.random.default_rng(seed + 10_000), channels=["ACC"])
    return signals["ACC"]


def main() -> None:
    # 1. The part to protect: a thin slice of the paper's 60 mm gear.
    outline = gear_outline(n_teeth=20, outer_diameter=60.0)
    config = SlicerConfig(object_height=0.6, layer_height=0.2, infill_spacing=6.0)
    job = PrintJob.slice(outline, config)
    print(f"sliced gear: {len(job.program)} G-code commands, "
          f"{config.n_layers} layers")

    daq = default_daq()
    noise = TimeNoiseModel()  # the asynchrony NSYNC exists to tolerate

    # 2. Reference run + OCC training runs (benign only — no attack
    #    knowledge is needed, unlike binary-classification IDSs).
    reference = acquire_acc(job.program, seed=0, daq=daq, noise=noise)
    print(f"reference signal: {reference}")

    ids = NsyncIds(reference, DwmSynchronizer(UM3_DWM_PARAMS))
    training = [
        acquire_acc(job.program, seed, daq, noise) for seed in range(1, 13)
    ]
    thresholds = ids.fit(training, r=0.4)
    print(f"learned thresholds: c_c={thresholds.c_c:.0f} "
          f"h_c={thresholds.h_c:.0f} v_c={thresholds.v_c:.3f} "
          f"d_c={thresholds.d_c:.1f}")

    # 3. Screen three new benign prints.
    print("\nbenign prints:")
    for seed in (101, 102, 103):
        verdict = ids.detect(acquire_acc(job.program, seed, daq, noise))
        status = "INTRUSION" if verdict.is_intrusion else "ok"
        print(f"  seed {seed}: {status}")

    # 4. Screen one print per Table I attack.
    print("\nmalicious prints (Table I):")
    for attack in TABLE_I_ATTACKS():
        attacked = attack.apply(job)
        verdict = ids.detect(
            acquire_acc(attacked.program, seed=200, daq=daq, noise=noise)
        )
        status = "INTRUSION" if verdict.is_intrusion else "MISSED"
        fired = ",".join(verdict.fired_submodules()) or "-"
        print(f"  {attack.name:<11} {status:<10} (sub-modules: {fired})")


if __name__ == "__main__":
    main()
