"""Fig. 10 workflow: which side channels are worth deploying?

Records all six Table II side channels of the same pair of benign prints,
runs DWM on each (raw and spectrogram), and checks whether the recovered
h_disp agrees with the accelerometer's.  Channels that agree are "strongly
correlated with the printer state" and usable for intrusion detection; the
rest (TMP, PWR, raw EPT in the paper) should be dropped.

Run:  python examples/multi_channel_survey.py
"""

import numpy as np

from repro import (
    DwmSynchronizer,
    PrintJob,
    TimeNoiseModel,
    ULTIMAKER3,
    UM3_DWM_PARAMS,
    default_daq,
    gear_outline,
    simulate_print,
    spectrogram,
)
from repro.signals import resample_linear, scaled_spectrogram_config
from repro.slicer import SlicerConfig

CHANNELS = ("ACC", "TMP", "MAG", "AUD", "EPT", "PWR")


def main() -> None:
    outline = gear_outline(n_teeth=20, outer_diameter=60.0)
    config = SlicerConfig(object_height=0.6, layer_height=0.2, infill_spacing=6.0)
    job = PrintJob.slice(outline, config)
    daq = default_daq()
    noise = TimeNoiseModel()

    ref_trace = simulate_print(job.program, ULTIMAKER3, noise, seed=0)
    obs_trace = simulate_print(job.program, ULTIMAKER3, noise, seed=1)
    ref_signals = daq.acquire(ref_trace, np.random.default_rng(0))
    obs_signals = daq.acquire(obs_trace, np.random.default_rng(1))

    def h_disp_seconds(channel, transform):
        obs, ref = obs_signals[channel], ref_signals[channel]
        if transform == "spectrogram":
            cfg = scaled_spectrogram_config(channel, obs.sample_rate)
            obs, ref = spectrogram(obs, cfg), spectrogram(ref, cfg)
        sync = DwmSynchronizer(UM3_DWM_PARAMS).synchronize(obs, ref)
        h = sync.h_disp / obs.sample_rate
        return resample_linear(h, 40) if h.size >= 2 else np.zeros(40)

    anchor = h_disp_seconds("ACC", "raw")
    anchor_range = float(anchor.max() - anchor.min())

    print(f"{'channel':<8} {'transform':<12} {'agree_with_ACC':>14} "
          f"{'range_s':>8} verdict")
    print("-" * 60)
    for channel in CHANNELS:
        for transform in ("raw", "spectrogram"):
            h = h_disp_seconds(channel, transform)
            if anchor.std() > 0 and h.std() > 0:
                agreement = float(np.corrcoef(anchor, h)[0, 1])
            else:
                agreement = 0.0
            h_range = float(h.max() - h.min())
            # A usable channel must recover both the SHAPE of the true
            # timing drift and its SCALE (raw EPT locks onto the 60 Hz hum
            # phase: a flat, tiny h_disp that "does not make sense").
            keep = agreement > 0.5 and h_range > 0.3 * anchor_range
            verdict = "KEEP" if keep else "drop"
            print(f"{channel:<8} {transform:<12} {agreement:>14.2f} "
                  f"{h_range:>8.2f} {verdict}")

    print(
        "\npaper's conclusion (Section VIII-B): h_disp is a property of the "
        "printing process, not of the side channel — every channel that "
        "truly tracks the printer state recovers the same curve.  TMP and "
        "PWR (and raw EPT) do not, and are dropped from the evaluation."
    )


if __name__ == "__main__":
    main()
