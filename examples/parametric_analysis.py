"""Fig. 6 workflow: choosing DWM parameters for a new printer.

Section VI-C prescribes how to pick t_sigma, t_win, and eta; this example
runs those sweeps on a fresh pair of benign recordings and prints an ASCII
rendition of Fig. 6 — the h_disp trace per parameter value, with the range
bracket the paper annotates.

Run:  python examples/parametric_analysis.py
"""

from dataclasses import replace

import numpy as np

from repro import (
    DwmSynchronizer,
    PrintJob,
    TimeNoiseModel,
    ULTIMAKER3,
    UM3_DWM_PARAMS,
    default_daq,
    gear_outline,
    simulate_print,
)
from repro.slicer import SlicerConfig


def sparkline(values: np.ndarray, width: int = 48) -> str:
    """Render a 1-D array as a unicode sparkline."""
    if values.size == 0:
        return "(empty)"
    blocks = "▁▂▃▄▅▆▇█"
    idx = np.linspace(0, values.size - 1, width).astype(int)
    v = values[idx]
    lo, hi = v.min(), v.max()
    span = hi - lo if hi > lo else 1.0
    return "".join(blocks[int(7 * (x - lo) / span)] for x in v)


def main() -> None:
    outline = gear_outline(n_teeth=20, outer_diameter=60.0)
    config = SlicerConfig(object_height=0.6, layer_height=0.2, infill_spacing=6.0)
    job = PrintJob.slice(outline, config)
    daq = default_daq()
    noise = TimeNoiseModel()

    def acc(seed):
        trace = simulate_print(job.program, ULTIMAKER3, noise, seed=seed)
        return daq.acquire(trace, np.random.default_rng(seed), channels=["ACC"])["ACC"]

    reference, observed = acc(0), acc(1)
    base = UM3_DWM_PARAMS

    def h_disp_for(params):
        return DwmSynchronizer(params).synchronize(observed, reference).h_disp

    print("(a) t_sigma sweep — too small cannot follow drift, too large is "
          "distractable:")
    for t_sigma in (0.25, 0.5, 1.0, 2.0):
        h = h_disp_for(replace(base, t_sigma=t_sigma, t_ext=2 * t_sigma))
        print(f"  t_sigma={t_sigma:<5} [{h.min():6.0f}, {h.max():6.0f}]  "
              f"{sparkline(h)}")

    print("\n(b) t_win sweep — small windows are spiky, large windows lose "
          "temporal resolution:")
    for t_win in (0.5, 1.0, 2.0, 4.0, 8.0):
        h = h_disp_for(replace(base, t_win=t_win, t_hop=t_win / 2))
        step = np.abs(np.diff(h)).mean() if h.size > 1 else 0.0
        print(f"  t_win={t_win:<5} windows={h.size:<4} "
              f"roughness={step:6.1f}  {sparkline(h)}")

    print("\n(c) eta sweep — the inertia of the low-frequency displacement "
          "track:")
    for eta in (0.0, 0.05, 0.1, 0.3, 0.9):
        h = h_disp_for(replace(base, eta=eta))
        print(f"  eta={eta:<5} [{h.min():6.0f}, {h.max():6.0f}]  "
              f"{sparkline(h)}")

    print("\npaper's procedure: pick t_sigma above the largest benign "
          "window-to-window drift, t_win where the h_disp shape stops "
          "changing, and the smallest eta that converges (Table IV: "
          "t_win=4s t_hop=2s t_ext=2s t_sigma=1s eta=0.1 for UM3).")


if __name__ == "__main__":
    main()
