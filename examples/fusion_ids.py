"""Multi-channel fusion: spend all six sensors, not one.

The paper evaluates channels one at a time; Fig. 10 shows that every
well-correlated channel recovers the same timing relationship, so their
verdicts can be fused.  This example trains one NSYNC per channel (ACC,
MAG, AUD) and compares three fusion policies on benign prints and on the
Table I attacks:

* any        — alarm if any channel alarms (max sensitivity),
* majority   — alarm if 2 of 3 channels alarm (robust to one flaky channel),
* k=3        — alarm only on unanimity (min false alarms).

Run:  python examples/fusion_ids.py
"""

import numpy as np

from repro import (
    DwmSynchronizer,
    PrintJob,
    TABLE_I_ATTACKS,
    TimeNoiseModel,
    ULTIMAKER3,
    UM3_DWM_PARAMS,
    default_daq,
    gear_outline,
    simulate_print,
)
from repro.core import MultiChannelNsyncIds
from repro.slicer import SlicerConfig

CHANNELS = ("ACC", "MAG", "AUD")


def main() -> None:
    outline = gear_outline(n_teeth=20, outer_diameter=60.0)
    config = SlicerConfig(object_height=0.6, layer_height=0.2, infill_spacing=6.0)
    job = PrintJob.slice(outline, config)
    daq = default_daq()
    noise = TimeNoiseModel()

    def observe(program, seed):
        trace = simulate_print(program, ULTIMAKER3, noise, seed=seed)
        return daq.acquire(
            trace, np.random.default_rng(seed), channels=CHANNELS
        )

    print(f"training one NSYNC per channel {CHANNELS}...")
    reference = observe(job.program, 0)
    training = [observe(job.program, s) for s in range(1, 9)]

    systems = {}
    for policy in ("any", "majority", 3):
        ids = MultiChannelNsyncIds(
            reference,
            synchronizer_factory=lambda: DwmSynchronizer(UM3_DWM_PARAMS),
            policy=policy,
        )
        ids.fit(training, r=0.3)
        systems[str(policy)] = ids

    print(f"\n{'process':<12}", end="")
    for name in systems:
        print(f"{name:>10}", end="")
    print("   (votes)")

    def screen(label, program, seed):
        print(f"{label:<12}", end="")
        votes = None
        for ids in systems.values():
            verdict = ids.detect(observe(program, seed))
            votes = verdict.votes
            print(f"{'ALARM' if verdict.is_intrusion else 'ok':>10}", end="")
        print(f"   {votes}/{len(CHANNELS)}")

    for seed in (101, 102, 103):
        screen(f"benign#{seed}", job.program, seed)
    for attack in TABLE_I_ATTACKS():
        screen(attack.name, attack.apply(job).program, 200)

    print(
        "\n'any' maximizes sensitivity; 'majority' tolerates one flaky "
        "channel; unanimity minimizes false alarms.  Fig. 10's consistency "
        "result is what makes these votes meaningful."
    )


if __name__ == "__main__":
    main()
