"""Design-model pipeline: STL file -> sliced G-code -> protected print.

The attacks of Sturm et al. [25] (the source of Table I's Void and
Scale0.95) tamper with the STL design file itself.  This example runs the
whole chain on a design model: build a gear mesh, write/read a real binary
STL, slice it at the print plane, print it under NSYNC protection, and show
that an STL-level scale attack is caught just like its G-code twin.

Run:  python examples/stl_pipeline.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    DwmSynchronizer,
    NsyncIds,
    PrintJob,
    TimeNoiseModel,
    ULTIMAKER3,
    UM3_DWM_PARAMS,
    default_daq,
    gear_outline,
    simulate_print,
)
from repro.slicer import (
    SlicerConfig,
    extrude_outline,
    load_stl,
    mesh_bounds,
    save_stl,
    slice_mesh,
)


def job_from_stl(path, config):
    """What a print server does: load STL, slice, generate G-code."""
    mesh = load_stl(path)
    lo, hi = mesh_bounds(mesh)
    mid_z = (lo[2] + hi[2]) / 2.0
    outline = slice_mesh(mesh, mid_z)[0]
    return PrintJob.slice(outline, config)


def main() -> None:
    config = SlicerConfig(object_height=0.6, layer_height=0.2, infill_spacing=6.0)
    daq = default_daq()
    noise = TimeNoiseModel()

    with tempfile.TemporaryDirectory() as tmp:
        # 1. The designer exports the part as STL.
        gear_stl = Path(tmp) / "gear.stl"
        mesh = extrude_outline(gear_outline(n_teeth=20, outer_diameter=60.0), 7.5)
        save_stl(mesh, gear_stl)
        print(f"designed part: {mesh.shape[0]} triangles -> {gear_stl.name} "
              f"({gear_stl.stat().st_size} bytes)")

        # 2. The attacker tampers with the FILE: a 5% uniform shrink.
        #    (Exactly the dr0wned-style supply chain scenario.)
        sabotaged_stl = Path(tmp) / "gear_tampered.stl"
        save_stl(mesh * 0.95, sabotaged_stl)

        benign_job = job_from_stl(gear_stl, config)
        attacked_job = job_from_stl(sabotaged_stl, config)
        print(f"benign G-code: {len(benign_job.program)} commands; "
              f"tampered: {len(attacked_job.program)} commands")

        # 3. Train NSYNC on prints of the genuine file.
        def acc(program, seed):
            trace = simulate_print(program, ULTIMAKER3, noise, seed=seed)
            return daq.acquire(
                trace, np.random.default_rng(seed), channels=["ACC"]
            )["ACC"]

        ids = NsyncIds(acc(benign_job.program, 0), DwmSynchronizer(UM3_DWM_PARAMS))
        ids.fit([acc(benign_job.program, s) for s in range(1, 9)], r=0.4)

        # 4. Screen prints of both files.
        for label, job, seed in (
            ("genuine STL", benign_job, 50),
            ("tampered STL", attacked_job, 51),
        ):
            verdict = ids.detect(acc(job.program, seed))
            status = "INTRUSION" if verdict.is_intrusion else "ok"
            fired = ", ".join(verdict.fired_submodules()) or "-"
            print(f"  {label:<13} -> {status:<10} ({fired})")

    print(
        "\nthe IDS never saw the STL — the 5% shrink surfaces in the "
        "side-channel timing and content, exactly as with the G-code-level "
        "Scale0.95 attack of Table I."
    )


if __name__ == "__main__":
    main()
