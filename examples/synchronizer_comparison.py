"""DWM vs DTW: accuracy and cost of the two dynamic synchronizers.

Synchronizes the same pair of benign recordings with DWM (window-based,
streaming-capable) and FastDTW (point-based, offline), then compares the
recovered timing relationship and the wall-clock cost — the essence of the
paper's Tables VIII/IX and Fig. 11.

Run:  python examples/synchronizer_comparison.py
"""

import time

import numpy as np

from repro import (
    Comparator,
    DwmSynchronizer,
    FastDtwSynchronizer,
    PrintJob,
    TimeNoiseModel,
    ULTIMAKER3,
    UM3_DWM_PARAMS,
    default_daq,
    gear_outline,
    simulate_print,
    spectrogram,
)
from repro.signals import SpectrogramConfig, scaled_spectrogram_config
from repro.signals.spectrogram import PAPER_SPECTROGRAMS
from repro.slicer import SlicerConfig


def main() -> None:
    outline = gear_outline(n_teeth=20, outer_diameter=60.0)
    config = SlicerConfig(object_height=0.6, layer_height=0.2, infill_spacing=6.0)
    job = PrintJob.slice(outline, config)
    daq = default_daq()
    noise = TimeNoiseModel()

    def acc_spec(seed):
        """ACC spectrogram at the paper's temporal resolution (80 frames/s).

        The bin structure follows the scaled Table III config, but the hop
        keeps the paper's delta_t: DTW's cost scales with the frame count,
        so comparing at a toy frame rate would flatter it.
        """
        trace = simulate_print(job.program, ULTIMAKER3, noise, seed=seed)
        raw = daq.acquire(trace, np.random.default_rng(seed), channels=["ACC"])["ACC"]
        scaled = scaled_spectrogram_config("ACC", raw.sample_rate)
        config = SpectrogramConfig(
            delta_f=scaled.delta_f,
            delta_t=PAPER_SPECTROGRAMS["ACC"].delta_t,
            window=scaled.window,
        )
        return spectrogram(raw, config)

    reference, observed = acc_spec(0), acc_spec(1)
    print(f"comparing two benign runs on the ACC spectrogram "
          f"({observed.n_samples} frames x {observed.n_channels} channels)")

    comparator = Comparator()
    results = {}
    for name, sync in (
        ("DWM", DwmSynchronizer(UM3_DWM_PARAMS)),
        ("FastDTW", FastDtwSynchronizer(radius=1)),
    ):
        t0 = time.perf_counter()
        result = sync.synchronize(observed, reference)
        elapsed = time.perf_counter() - t0
        v_dist = comparator.vertical_distances(observed, reference, result)
        results[name] = (result, v_dist, elapsed)
        # express displacement in seconds for comparability
        h_seconds = result.h_disp / observed.sample_rate
        print(
            f"\n{name}:"
            f"\n  mode              : {result.mode}"
            f"\n  indexes           : {result.n_indexes}"
            f"\n  h_disp range      : [{h_seconds.min():+.2f} s, "
            f"{h_seconds.max():+.2f} s]"
            f"\n  final drift       : {h_seconds[-1]:+.2f} s"
            f"\n  median v_dist     : {np.median(v_dist):.3f}"
            f"\n  wall time         : {elapsed*1000:.0f} ms "
            f"({elapsed/observed.duration:.4f} s per signal-second)"
        )

    dwm_time = results["DWM"][2]
    dtw_time = results["FastDTW"][2]
    if dtw_time >= dwm_time:
        print(f"\nDWM is {dtw_time / dwm_time:.1f}x faster on this pair.")
    else:
        print(f"\nFastDTW wins on this one cell ({dwm_time / dtw_time:.1f}x)"
              " — the 606-bin ACC spectrogram is DWM's worst case; averaged"
              " over the side channels DWM is an order of magnitude faster"
              " (run benchmarks/bench_fig11_time_ratio.py).")

    print(
        "\nnote the v_dist medians: DTW warps every point onto its best "
        "match, so its vertical distances collapse toward zero and stop "
        "discriminating — the paper's Table IX shows the same effect "
        "(v_dist sub-module TPR 0.00 under DTW).  DWM's windowed distances "
        "retain contrast, and only DWM can run while the print is still in "
        "progress."
    )


if __name__ == "__main__":
    main()
