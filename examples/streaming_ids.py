"""Real-time intrusion detection: stop the printer mid-print.

NSYNC is designed for *real-time* operation (the reason DWM exists — DTW
needs the whole signal).  This example trains thresholds offline, then
replays a firmware-compromised print chunk by chunk through
``StreamingNsyncIds``, exactly as a DAQ would deliver samples, and reports
the moment the IDS would have halted the machine.

Run:  python examples/streaming_ids.py
"""

import numpy as np

from repro import (
    DwmSynchronizer,
    Firmware,
    NsyncIds,
    PrintJob,
    StreamingNsyncIds,
    TimeNoiseModel,
    ULTIMAKER3,
    UM3_DWM_PARAMS,
    default_daq,
    gear_outline,
    simulate_print,
)
from repro.attacks import FirmwareSpeedAttack
from repro.slicer import SlicerConfig

CHUNK = 512  # samples per DAQ delivery (~1.3 s at the scaled ACC rate)


def main() -> None:
    outline = gear_outline(n_teeth=20, outer_diameter=60.0)
    config = SlicerConfig(object_height=0.6, layer_height=0.2, infill_spacing=6.0)
    job = PrintJob.slice(outline, config)
    daq = default_daq()
    noise = TimeNoiseModel()

    def acc_of(trace, seed):
        return daq.acquire(
            trace, np.random.default_rng(seed), channels=["ACC"]
        )["ACC"]

    # Offline: reference + threshold training on benign prints.
    reference = acc_of(simulate_print(job.program, ULTIMAKER3, noise, seed=0), 0)
    batch_ids = NsyncIds(reference, DwmSynchronizer(UM3_DWM_PARAMS))
    batch_ids.fit(
        [
            acc_of(simulate_print(job.program, ULTIMAKER3, noise, seed=s), s)
            for s in range(1, 9)
        ],
        r=0.3,
    )
    print(f"trained thresholds: {batch_ids.thresholds}")

    # The attack: compromised FIRMWARE silently slows every move by 10%.
    # The G-code sent to the printer is 100% benign.
    firmware = Firmware(
        ULTIMAKER3, noise, transformer=FirmwareSpeedAttack(factor=0.90)
    )
    malicious_trace = firmware.run(job.program, np.random.default_rng(77))
    malicious_acc = acc_of(malicious_trace, 77)
    print(f"\nmalicious print started ({malicious_acc.duration:.0f} s of "
          "signal, arriving in chunks)...")

    # Online: feed the stream, stop at the first alert.
    stream = StreamingNsyncIds(
        reference, UM3_DWM_PARAMS, batch_ids.thresholds
    )
    for start in range(0, malicious_acc.n_samples, CHUNK):
        alerts = stream.push(malicious_acc.data[start : start + CHUNK])
        if alerts:
            alert = alerts[0]
            t_alert = start / malicious_acc.sample_rate
            print(
                f"!! intrusion at window {alert.window_index} "
                f"(~{t_alert:.0f} s into the print): sub-module "
                f"{alert.submodule}, value {alert.value:.1f} > "
                f"threshold {alert.threshold:.1f}"
            )
            print("   -> printer stopped; "
                  f"{malicious_acc.duration - t_alert:.0f} s of sabotaged "
                  "printing avoided")
            break
    else:
        print("print finished without alerts (attack missed)")

    # Contrast: a benign stream passes untouched.
    benign_acc = acc_of(simulate_print(job.program, ULTIMAKER3, noise, seed=300), 300)
    stream = StreamingNsyncIds(reference, UM3_DWM_PARAMS, batch_ids.thresholds)
    for start in range(0, benign_acc.n_samples, CHUNK):
        if stream.push(benign_acc.data[start : start + CHUNK]):
            print("\nbenign print raised a false alarm!")
            break
    else:
        print("\nbenign print completed with zero alerts")


if __name__ == "__main__":
    main()
