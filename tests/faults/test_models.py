"""Unit tests for the fault models (repro.faults.models)."""

import numpy as np
import pytest

from repro.faults import (
    ChannelDropout,
    ChunkDuplication,
    ChunkTruncation,
    DaqDisconnect,
    FaultChain,
    FaultModel,
    NanBurst,
    SampleRateSkew,
    Saturation,
)
from repro.signals import Signal

FS = 100.0


def textured(n=1000, seed=0, channels=1):
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.standard_normal((n, channels)), axis=0)


def sig(n=1000, seed=0, channels=1):
    return Signal(textured(n, seed, channels), FS)


def chunked(data, size):
    return [data[i : i + size] for i in range(0, data.shape[0], size)]


class TestDeterminism:
    @pytest.mark.parametrize(
        "fault",
        [
            NanBurst(1.0, 0.5, fraction=0.3),
            FaultChain((NanBurst(1.0, 0.5, fraction=0.5), SampleRateSkew(1.01))),
        ],
    )
    def test_same_seed_same_output(self, fault):
        s = sig()
        a = fault.apply(s, np.random.default_rng(7)).data
        b = fault.apply(s, np.random.default_rng(7)).data
        assert np.array_equal(a, b, equal_nan=True)

    def test_input_never_mutated(self):
        s = sig()
        before = s.data.copy()
        for fault in (
            ChannelDropout(1.0, 2.0),
            NanBurst(1.0, 2.0),
            Saturation(0.5),
            SampleRateSkew(1.1),
            ChunkDuplication(1.0, 1.0),
            ChunkTruncation(1.0, 1.0),
            DaqDisconnect(1.0, 1.0),
        ):
            fault.apply(s, np.random.default_rng(0))
        assert np.array_equal(s.data, before)


class TestChannelDropout:
    def test_span_goes_constant(self):
        out = ChannelDropout(2.0, 1.0, value=3.5).apply(sig(), None)
        assert np.all(out.data[200:300, 0] == 3.5)
        assert np.array_equal(out.data[:200], sig().data[:200])

    def test_channel_selection(self):
        out = ChannelDropout(0.0, 1.0, channels=(1,)).apply(
            sig(channels=3), None
        )
        assert np.all(out.data[:100, 1] == 0.0)
        assert np.array_equal(out.data[:, 0], sig(channels=3).data[:, 0])

    def test_span_clipped_to_signal(self):
        out = ChannelDropout(9.0, 100.0).apply(sig(), None)
        assert np.all(out.data[900:, 0] == 0.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            ChannelDropout(-1.0, 1.0)


class TestNanBurst:
    def test_solid_burst(self):
        out = NanBurst(1.0, 0.5).apply(sig(), None)
        assert np.isnan(out.data[100:150, 0]).all()
        assert np.isfinite(out.data[150:, 0]).all()

    def test_scattered_fraction(self):
        out = NanBurst(0.0, 10.0, fraction=0.25).apply(
            sig(), np.random.default_rng(3)
        )
        frac = np.isnan(out.data[:, 0]).mean()
        assert 0.15 < frac < 0.35

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            NanBurst(0.0, 1.0, fraction=0.0)
        with pytest.raises(ValueError):
            NanBurst(0.0, 1.0, fraction=1.5)


class TestSaturation:
    def test_clamps_to_limit(self):
        out = Saturation(limit=1.0).apply(sig(), None)
        assert np.abs(out.data).max() <= 1.0

    def test_windowed_clip(self):
        s = sig()
        out = Saturation(limit=0.5, start_s=2.0, duration_s=1.0).apply(s, None)
        assert np.abs(out.data[200:300, 0]).max() <= 0.5
        assert np.array_equal(out.data[:200], s.data[:200])
        assert np.array_equal(out.data[300:], s.data[300:])

    def test_limit_validated(self):
        with pytest.raises(ValueError):
            Saturation(limit=0.0)


class TestSampleRateSkew:
    def test_stretches_stream(self):
        out = SampleRateSkew(1.05).apply(sig(), None)
        assert out.n_samples == 1050

    def test_compresses_stream(self):
        out = SampleRateSkew(0.9).apply(sig(), None)
        assert out.n_samples == 900

    def test_identity_factor(self):
        s = sig()
        assert SampleRateSkew(1.0).apply(s, None) is s

    def test_endpoints_preserved(self):
        s = sig()
        out = SampleRateSkew(1.1).apply(s, None)
        assert out.data[0, 0] == pytest.approx(s.data[0, 0])
        assert out.data[-1, 0] == pytest.approx(s.data[-1, 0])

    def test_factor_validated(self):
        with pytest.raises(ValueError):
            SampleRateSkew(0.0)


class TestChunkFaults:
    def test_duplication_lengthens(self):
        out = ChunkDuplication(1.0, 0.5).apply(sig(), None)
        assert out.n_samples == 1050
        assert np.array_equal(out.data[100:150], out.data[150:200])

    def test_truncation_shortens(self):
        s = sig()
        out = ChunkTruncation(1.0, 0.5).apply(s, None)
        assert out.n_samples == 950
        assert np.array_equal(out.data[100:], s.data[150:])

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError):
            ChunkDuplication(1.0, 0.0)
        with pytest.raises(ValueError):
            ChunkTruncation(1.0, 0.0)


class TestDaqDisconnect:
    def test_nan_mode(self):
        out = DaqDisconnect(1.0, 1.0, mode="nan").apply(sig(), None)
        assert np.isnan(out.data[100:200, 0]).all()

    def test_zeros_mode(self):
        out = DaqDisconnect(1.0, 1.0, mode="zeros").apply(sig(), None)
        assert np.all(out.data[100:200, 0] == 0.0)

    def test_drop_mode_shortens(self):
        out = DaqDisconnect(1.0, 1.0, mode="drop").apply(sig(), None)
        assert out.n_samples == 900

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            DaqDisconnect(1.0, 1.0, mode="ffff")

    @pytest.mark.parametrize("mode", ["nan", "zeros", "drop"])
    @pytest.mark.parametrize("size", [33, 100, 250])
    def test_chunked_matches_batch(self, mode, size):
        """The streaming override must agree with the batch transform."""
        fault = DaqDisconnect(1.7, 2.3, mode=mode)
        data = textured()
        batch = fault.apply(Signal(data, FS), None).data
        streamed = np.concatenate(
            list(fault.apply_chunks(chunked(data, size), FS, None)), axis=0
        )
        assert np.array_equal(batch, streamed, equal_nan=True)


class TestChunkStreamFallback:
    def test_generic_fallback_matches_batch(self):
        """The buffered fallback re-emits original chunk sizes."""
        fault = Saturation(limit=0.8)
        data = textured()
        out = list(fault.apply_chunks(chunked(data, 64), FS, None))
        assert [c.shape[0] for c in out[:-1]] == [64] * (len(out) - 1)
        joined = np.concatenate(out, axis=0)
        assert np.array_equal(joined, fault.apply(Signal(data, FS), None).data)

    def test_length_changing_fault_emits_trailing_chunk(self):
        fault = SampleRateSkew(1.1)
        data = textured(500)
        out = list(fault.apply_chunks(chunked(data, 100), FS, None))
        assert sum(c.shape[0] for c in out) == 550

    def test_empty_stream(self):
        assert list(Saturation(1.0).apply_chunks([], FS, None)) == []

    def test_one_d_chunks_normalized(self):
        out = list(
            Saturation(1.0).apply_chunks([np.zeros(10), np.ones(5)], FS, None)
        )
        assert all(c.ndim == 2 for c in out)


class TestFaultChain:
    def test_empty_chain_is_identity(self):
        s = sig()
        assert FaultChain().apply(s, None) is s

    def test_applied_left_to_right(self):
        # Dropout to 5.0 then saturate to 1.0: the dark span must end up
        # at the clip limit, which only happens in that order.
        chain = FaultChain((ChannelDropout(0.0, 1.0, value=5.0), Saturation(1.0)))
        out = chain.apply(sig(), None)
        assert np.all(out.data[:100, 0] == 1.0)

    def test_chunked_chain(self):
        chain = FaultChain((Saturation(0.9), ChannelDropout(1.0, 0.5)))
        data = textured()
        joined = np.concatenate(
            list(chain.apply_chunks(chunked(data, 77), FS, None)), axis=0
        )
        assert np.array_equal(
            joined, chain.apply(Signal(data, FS), None).data
        )

    def test_base_class_apply_abstract(self):
        with pytest.raises(NotImplementedError):
            FaultModel().apply(sig(), None)
