"""Integration tests for the fault campaign harness."""

import json

import numpy as np
import pytest

from repro.core.health import SanitizePolicy
from repro.faults import (
    ChannelDropout,
    FaultCase,
    FaultChain,
    NanBurst,
    default_fault_matrix,
    render_fault_table,
    run_fault_campaign,
)
from repro.eval.dataset import default_setup


@pytest.fixture(scope="module")
def setup():
    # A short print keeps the whole module's simulations cheap.
    return default_setup(object_height=0.4)


POLICY = SanitizePolicy(max_dark_s=1.0)

SMALL_MATRIX = [
    FaultCase("clean", FaultChain(())),
    FaultCase("nan_burst", NanBurst(start_s=2.0, duration_s=0.4)),
    FaultCase(
        "dark",
        ChannelDropout(start_s=2.0, duration_s=2.5),
        expect_sensor_fault=True,
    ),
]


@pytest.fixture(scope="module")
def campaign(setup):
    return run_fault_campaign(
        setup=setup, n_train=2, seed=3, policy=POLICY, cases=SMALL_MATRIX
    )


class TestDefaultMatrix:
    def test_covers_every_model(self):
        cases = default_fault_matrix(duration_s=30.0)
        names = {c.name for c in cases}
        assert "clean" in names
        assert len(names) == len(cases), "case names must be unique"
        assert len(cases) >= 10

    def test_dark_cases_expect_sensor_fault(self):
        cases = default_fault_matrix(duration_s=30.0)
        expecting = {c.name for c in cases if c.expect_sensor_fault}
        assert "dropout_dark" in expecting
        assert "disconnect_nan" in expecting


class TestRunFaultCampaign:
    def test_small_matrix_all_pass(self, campaign):
        assert campaign.all_passed, render_fault_table(campaign)
        assert campaign.n_failed == 0
        # 3 cases x 2 detectors.
        assert len(campaign.results) == 6

    def test_dark_case_fails_closed_everywhere(self, campaign):
        dark = [r for r in campaign.results if r.case.name == "dark"]
        assert len(dark) == 2
        assert all(r.sensor_fault for r in dark)

    def test_clean_case_no_fault(self, campaign):
        clean = [r for r in campaign.results if r.case.name == "clean"]
        assert all(not r.sensor_fault for r in clean)
        assert all(r.error is None for r in clean)

    def test_to_dict_json_safe(self, campaign):
        doc = campaign.to_dict()
        json.dumps(doc)
        assert doc["n_cases"] == 6
        assert doc["all_passed"] is True
        assert {r["detector"] for r in doc["results"]} == {"batch", "streaming"}

    def test_render_table(self, campaign):
        table = render_fault_table(campaign)
        assert "dark" in table
        assert "streaming" in table

    def test_detector_selection(self, setup):
        result = run_fault_campaign(
            setup=setup,
            n_train=2,
            seed=3,
            policy=POLICY,
            cases=SMALL_MATRIX[:1],
            detectors=("batch",),
        )
        assert {r.detector for r in result.results} == {"batch"}

    def test_unknown_detector_rejected(self, setup):
        with pytest.raises(ValueError, match="detector"):
            run_fault_campaign(setup=setup, detectors=("quantum",))
