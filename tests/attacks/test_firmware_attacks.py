"""Unit tests for firmware-level attacks."""

import numpy as np
import pytest

from repro.attacks import FirmwareSpeedAttack, FirmwareZShiftAttack
from repro.printer import (
    Firmware,
    NO_TIME_NOISE,
    ULTIMAKER3,
    parse_gcode,
    parse_line,
)


class TestFirmwareSpeedAttack:
    def test_feedrate_scaled(self):
        attack = FirmwareSpeedAttack(factor=0.9)
        cmd = parse_line("G1 X10 F1000")
        assert attack(cmd).get("F") == pytest.approx(900.0)

    def test_non_moves_untouched(self):
        attack = FirmwareSpeedAttack(factor=0.9)
        cmd = parse_line("M104 S200")
        assert attack(cmd) is cmd

    def test_moves_without_f_untouched(self):
        attack = FirmwareSpeedAttack(factor=0.9)
        cmd = parse_line("G1 X10")
        assert attack(cmd) is cmd

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            FirmwareSpeedAttack(factor=-1.0)

    def test_slows_whole_print(self):
        program = parse_gcode(["G1 X50 F3000", "G1 X0 F3000"])
        benign = Firmware(ULTIMAKER3, NO_TIME_NOISE).run(program)
        attacked = Firmware(
            ULTIMAKER3, NO_TIME_NOISE, transformer=FirmwareSpeedAttack(0.5)
        ).run(program)
        assert attacked.duration > benign.duration * 1.5

    def test_gcode_file_unchanged(self):
        """The point of a firmware attack: the G-code itself stays benign."""
        program = parse_gcode(["G1 X50 F3000"])
        Firmware(
            ULTIMAKER3, NO_TIME_NOISE, transformer=FirmwareSpeedAttack(0.5)
        ).run(program)
        assert program[0].get("F") == 3000.0


class TestFirmwareZShiftAttack:
    def test_shift_above_trigger(self):
        attack = FirmwareZShiftAttack(z_trigger=3.0, z_offset=0.1)
        assert attack(parse_line("G1 Z5.0")).get("Z") == pytest.approx(5.1)

    def test_no_shift_below_trigger(self):
        attack = FirmwareZShiftAttack(z_trigger=3.0, z_offset=0.1)
        cmd = parse_line("G1 Z1.0")
        assert attack(cmd) is cmd

    def test_moves_without_z_untouched(self):
        attack = FirmwareZShiftAttack()
        cmd = parse_line("G1 X5 Y5")
        assert attack(cmd) is cmd

    def test_executed_z_shifted(self):
        program = parse_gcode(["G1 Z5 F6000", "G1 X10 F3000"])
        trace = Firmware(
            ULTIMAKER3,
            NO_TIME_NOISE,
            transformer=FirmwareZShiftAttack(z_trigger=3.0, z_offset=0.2),
        ).run(program)
        assert trace.position[-1, 2] == pytest.approx(5.2)
