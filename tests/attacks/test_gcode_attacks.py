"""Unit tests for the Table I attack suite."""

import numpy as np
import pytest

from repro.attacks import (
    InfillGridAttack,
    LayerHeightAttack,
    PrintJob,
    ScaleAttack,
    SpeedAttack,
    TABLE_I_ATTACKS,
    VoidAttack,
    spans_from_indices,
)
from repro.slicer import SlicerConfig, square_outline


@pytest.fixture(scope="module")
def job():
    return PrintJob.slice(
        square_outline(30.0),
        SlicerConfig(object_height=0.6, layer_height=0.2, infill_spacing=4.0),
    )


def total_extrusion(program):
    e_values = [c.get("E") for c in program if c.get("E") is not None]
    return max(e_values) if e_values else 0.0


class TestVoid:
    def test_material_removed(self, job):
        attacked = VoidAttack(radius=8.0).apply(job)
        assert total_extrusion(attacked.program) < total_extrusion(job.program)

    def test_voided_moves_marked_and_fast(self, job):
        attacked = VoidAttack(radius=8.0).apply(job)
        voided = [c for c in attacked.program if c.comment == "voided"]
        assert voided, "some moves must be voided"
        travel_f = job.config.travel_speed * 60.0
        assert all(c.code == "G0" for c in voided)
        assert all(c.get("E") is None for c in voided)
        assert all(c.get("F") == travel_f for c in voided)

    def test_only_middle_layers_affected(self, job):
        attacked = VoidAttack(radius=8.0).apply(job)
        z = None
        voided_z = set()
        for c in attacked.program:
            if c.is_move and c.get("Z") is not None:
                z = c.get("Z")
            if c.comment == "voided":
                voided_z.add(z)
        # 3 layers at z = 0.2, 0.4, 0.6: the middle band is z = 0.4.
        assert voided_z == {0.4}

    def test_geometry_outside_disk_untouched(self, job):
        attacked = VoidAttack(radius=2.0).apply(job)
        originals = [c for c in job.program if c.get("E") is not None]
        kept = [c for c in attacked.program if c.get("E") is not None]
        # A tiny void removes few moves.
        assert len(originals) - len(kept) <= 4

    def test_benign_job_not_mutated(self, job):
        before = len(job.program)
        VoidAttack().apply(job)
        assert len(job.program) == before


class TestSpeed:
    def test_all_feedrates_scaled(self, job):
        attacked = SpeedAttack(factor=0.95).apply(job)
        for orig, mal in zip(job.program, attacked.program):
            f_orig, f_mal = orig.get("F"), mal.get("F")
            if orig.is_move and f_orig is not None:
                assert f_mal == pytest.approx(f_orig * 0.95)
            else:
                assert mal.params == orig.params

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            SpeedAttack(factor=0.0)

    def test_geometry_unchanged(self, job):
        attacked = SpeedAttack().apply(job)
        xs = lambda p: [c.get("X") for c in p if c.get("X") is not None]
        assert xs(attacked.program) == xs(job.program)


class TestLayerHeight:
    def test_fewer_layers(self, job):
        attacked = LayerHeightAttack(layer_height=0.3).apply(job)
        count = lambda p: sum(
            1 for c in p if c.comment and c.comment.startswith("LAYER:")
        )
        assert count(attacked.program) == 2  # 0.6 / 0.3
        assert count(job.program) == 3       # 0.6 / 0.2

    def test_config_updated(self, job):
        attacked = LayerHeightAttack(layer_height=0.3).apply(job)
        assert attacked.config.layer_height == 0.3
        assert job.config.layer_height == 0.2

    def test_invalid_height(self):
        with pytest.raises(ValueError):
            LayerHeightAttack(layer_height=-0.1)


class TestScale:
    def test_object_shrunk(self, job):
        attacked = ScaleAttack(factor=0.95).apply(job)

        def span(p):
            xs = [c.get("X") for c in p if c.is_move and c.get("X") is not None]
            return max(xs) - min(xs)

        assert span(attacked.program) == pytest.approx(
            span(job.program) * 0.95, rel=0.02
        )

    def test_compounding_scale(self, job):
        once = ScaleAttack(factor=0.95).apply(job)
        twice = ScaleAttack(factor=0.95).apply(once)
        assert twice.config.scale == pytest.approx(0.95**2)


class TestInfillGrid:
    def test_pattern_switched(self, job):
        attacked = InfillGridAttack().apply(job)
        assert attacked.config.infill_pattern == "grid"
        assert job.config.infill_pattern == "lines"

    def test_program_differs(self, job):
        attacked = InfillGridAttack().apply(job)
        assert attacked.program.to_text() != job.program.to_text()


class TestSuite:
    def test_five_attacks(self):
        attacks = TABLE_I_ATTACKS()
        assert [a.name for a in attacks] == [
            "Void", "InfillGrid", "Speed0.95", "Layer0.3", "Scale0.95",
        ]

    def test_fresh_instances(self):
        a, b = TABLE_I_ATTACKS(), TABLE_I_ATTACKS()
        assert all(x is not y for x, y in zip(a, b))

    def test_every_attack_changes_program(self, job):
        for attack in TABLE_I_ATTACKS():
            attacked = attack.apply(job)
            assert attacked.program.to_text() != job.program.to_text(), attack.name

    def test_center_preserved(self):
        job_delta = PrintJob.slice(
            square_outline(30.0),
            SlicerConfig(object_height=0.6, layer_height=0.2),
            center=(0.0, 0.0),
        )
        for attack in TABLE_I_ATTACKS():
            assert attack.apply(job_delta).center == (0.0, 0.0), attack.name


class TestTamperedSpans:
    """Every attack must annotate its ground-truth tampered instructions."""

    def test_benign_job_has_no_spans(self, job):
        assert job.tampered_spans == ()

    def test_every_attack_annotates_spans(self, job):
        for attack in TABLE_I_ATTACKS():
            attacked = attack.apply(job)
            assert attacked.tampered_spans, attack.name
            for lo, hi in attacked.tampered_spans:
                assert 0 <= lo < hi <= len(attacked.program), attack.name

    def test_resliced_attacks_own_whole_program(self, job):
        attacked = ScaleAttack(factor=0.95).apply(job)
        assert attacked.tampered_spans == ((0, len(attacked.program)),)

    def test_void_spans_point_at_voided_moves(self, job):
        attacked = VoidAttack().apply(job)
        for lo, hi in attacked.tampered_spans:
            for i in range(lo, hi):
                command = attacked.program[i]
                assert command.code == "G0", (i, command)

    def test_speed_spans_cover_rescaled_feedrates(self, job):
        attacked = SpeedAttack(0.95).apply(job)
        tampered = set()
        for lo, hi in attacked.tampered_spans:
            tampered.update(range(lo, hi))
        for i, (benign, rewritten) in enumerate(
            zip(job.program, attacked.program)
        ):
            if benign.get("F") is not None and benign.is_move:
                assert i in tampered


class TestSpansFromIndices:
    def test_empty(self):
        assert spans_from_indices([]) == ()

    def test_consecutive_runs_merge(self):
        assert spans_from_indices([1, 2, 3, 7, 8, 12]) == (
            (1, 4), (7, 9), (12, 13),
        )

    def test_unsorted_duplicates_normalized(self):
        assert spans_from_indices([3, 1, 2, 2]) == ((1, 4),)
