"""Tests for the extension attacks (fan / temperature sabotage)."""

import numpy as np
import pytest

from repro.attacks import FanAttack, PrintJob, TemperatureAttack
from repro.printer import NO_TIME_NOISE, ULTIMAKER3, simulate_print
from repro.slicer import SlicerConfig, square_outline


@pytest.fixture(scope="module")
def job():
    return PrintJob.slice(
        square_outline(20.0),
        SlicerConfig(object_height=0.8, layer_height=0.2, infill_spacing=5.0,
                     fan_from_layer=1),
    )


class TestFanAttack:
    def test_fan_commands_zeroed(self, job):
        attacked = FanAttack(factor=0.0).apply(job)
        fans = [c.get("S") for c in attacked.program if c.code == "M106"]
        assert fans and all(s == 0.0 for s in fans)

    def test_partial_throttle(self, job):
        attacked = FanAttack(factor=0.5).apply(job)
        fans = [c.get("S") for c in attacked.program if c.code == "M106"]
        assert all(s == pytest.approx(127.5) for s in fans)

    def test_toolpath_untouched(self, job):
        attacked = FanAttack().apply(job)
        moves = lambda p: [c.to_line() for c in p if c.is_move]
        assert moves(attacked.program) == moves(job.program)

    def test_trace_fan_stays_off(self, job):
        attacked = FanAttack().apply(job)
        trace = simulate_print(attacked.program, ULTIMAKER3, NO_TIME_NOISE)
        assert trace.fan.max() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FanAttack(factor=1.5)


class TestTemperatureAttack:
    def test_targets_lowered(self, job):
        attacked = TemperatureAttack(offset=-25.0).apply(job)
        original = [c.get("S") for c in job.program
                    if c.code in ("M104", "M109") and c.get("S", 0) > 0]
        modified = [c.get("S") for c in attacked.program
                    if c.code in ("M104", "M109") and c.get("S", 0) > 0]
        assert len(modified) == len(original)
        for o, m in zip(original, modified):
            assert m == pytest.approx(o - 25.0)

    def test_shutdown_zero_untouched(self, job):
        attacked = TemperatureAttack(offset=-25.0).apply(job)
        zeros = [c for c in attacked.program
                 if c.code == "M104" and c.get("S") == 0.0]
        assert zeros, "the final cool-down command must stay at 0"

    def test_trace_temperature_lower(self, job):
        benign = simulate_print(job.program, ULTIMAKER3, NO_TIME_NOISE)
        attacked_job = TemperatureAttack(offset=-25.0).apply(job)
        attacked = simulate_print(attacked_job.program, ULTIMAKER3, NO_TIME_NOISE)
        assert attacked.hotend_temp.max() < benign.hotend_temp.max()

    def test_toolpath_untouched(self, job):
        attacked = TemperatureAttack().apply(job)
        moves = lambda p: [c.to_line() for c in p if c.is_move]
        assert moves(attacked.program) == moves(job.program)
