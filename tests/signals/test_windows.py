"""Unit tests for tapering windows."""

import numpy as np
import pytest

from repro.signals import (
    blackman_harris_window,
    boxcar_window,
    gaussian_window,
    get_window,
)


class TestGaussian:
    def test_peak_at_centre(self):
        w = gaussian_window(101, sigma=10.0)
        assert w[50] == pytest.approx(1.0)
        assert np.argmax(w) == 50

    def test_even_length_symmetric(self):
        w = gaussian_window(100, sigma=20.0)
        assert np.allclose(w, w[::-1])

    def test_odd_length_symmetric(self):
        w = gaussian_window(51, sigma=5.0)
        assert np.allclose(w, w[::-1])

    def test_sigma_controls_width(self):
        narrow = gaussian_window(101, sigma=5.0)
        wide = gaussian_window(101, sigma=50.0)
        assert narrow[0] < wide[0]

    def test_known_value(self):
        w = gaussian_window(3, sigma=1.0)
        assert w[0] == pytest.approx(np.exp(-0.5))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            gaussian_window(0, 1.0)
        with pytest.raises(ValueError):
            gaussian_window(10, 0.0)
        with pytest.raises(ValueError):
            gaussian_window(10, -1.0)


class TestBlackmanHarris:
    def test_endpoints_near_zero(self):
        w = blackman_harris_window(64)
        assert abs(w[0]) < 1e-4
        assert abs(w[-1]) < 1e-4

    def test_peak_near_centre(self):
        w = blackman_harris_window(65)
        assert np.argmax(w) == 32
        assert w[32] == pytest.approx(1.0, abs=1e-3)

    def test_symmetric(self):
        w = blackman_harris_window(50)
        assert np.allclose(w, w[::-1], atol=1e-12)

    def test_length_one(self):
        assert np.allclose(blackman_harris_window(1), [1.0])

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            blackman_harris_window(0)


class TestBoxcar:
    def test_all_ones(self):
        assert np.allclose(boxcar_window(17), np.ones(17))

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            boxcar_window(-1)


class TestGetWindow:
    @pytest.mark.parametrize("name", ["BH", "bh", "blackman-harris"])
    def test_bh_aliases(self, name):
        assert np.allclose(
            get_window(name, 32), blackman_harris_window(32)
        )

    def test_boxcar(self):
        assert np.allclose(get_window("Boxcar", 8), np.ones(8))

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown window"):
            get_window("hann", 8)
