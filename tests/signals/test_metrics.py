"""Unit + property tests for similarity functions and distance metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.signals import (
    DISTANCE_METRICS,
    SIMILARITY_FUNCTIONS,
    correlation_distance,
    correlation_similarity,
    cosine_distance,
    cosine_similarity,
    euclidean_distance,
    manhattan_distance,
    mean_absolute_error,
)


def vectors(n=16):
    return arrays(
        np.float64,
        (n,),
        elements=st.floats(-100, 100, allow_nan=False, width=64),
    )


class TestCorrelation:
    def test_perfect_correlation(self):
        u = np.array([1.0, 2.0, 3.0, 4.0])
        assert correlation_similarity(u, u) == pytest.approx(1.0)
        assert correlation_distance(u, u) == pytest.approx(0.0)

    def test_anticorrelation(self):
        u = np.array([1.0, 2.0, 3.0])
        assert correlation_similarity(u, -u) == pytest.approx(-1.0)
        assert correlation_distance(u, -u) == pytest.approx(2.0)

    def test_gain_invariance(self):
        """The property NSYNC relies on: gain changes don't affect it."""
        rng = np.random.default_rng(0)
        u = rng.standard_normal(50)
        assert correlation_similarity(u, 3.7 * u + 11.0) == pytest.approx(1.0)

    def test_constant_vector_gives_zero(self):
        u = np.ones(10)
        v = np.arange(10.0)
        assert correlation_similarity(u, v) == 0.0

    def test_multichannel_averages(self):
        u = np.column_stack([np.arange(5.0), np.ones(5)])
        v = np.column_stack([np.arange(5.0), np.arange(5.0)])
        # channel 0 correlates perfectly (1.0); channel 1 is constant (0.0)
        assert correlation_similarity(u, v) == pytest.approx(0.5)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            correlation_similarity(np.ones(3), np.ones(4))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            correlation_similarity(np.ones(0), np.ones(0))

    @given(u=vectors(), v=vectors())
    @settings(max_examples=50, deadline=None)
    def test_bounded(self, u, v):
        r = correlation_similarity(u, v)
        assert -1.0 - 1e-9 <= r <= 1.0 + 1e-9

    @given(u=vectors(), v=vectors())
    @settings(max_examples=50, deadline=None)
    def test_symmetric(self, u, v):
        assert correlation_similarity(u, v) == pytest.approx(
            correlation_similarity(v, u)
        )


class TestCosine:
    def test_identity(self):
        u = np.array([1.0, 2.0, 3.0])
        assert cosine_similarity(u, u) == pytest.approx(1.0)
        assert cosine_distance(u, u) == pytest.approx(0.0)

    def test_orthogonal(self):
        assert cosine_similarity(
            np.array([1.0, 0.0]), np.array([0.0, 1.0])
        ) == pytest.approx(0.0)

    def test_zero_vector_gives_zero(self):
        assert cosine_similarity(np.zeros(4), np.ones(4)) == 0.0

    def test_scale_invariance(self):
        u = np.array([3.0, -1.0, 2.0])
        assert cosine_similarity(u, 5.0 * u) == pytest.approx(1.0)


class TestGainSensitiveMetrics:
    def test_mae(self):
        assert mean_absolute_error(
            np.array([1.0, 2.0]), np.array([2.0, 4.0])
        ) == pytest.approx(1.5)

    def test_euclidean(self):
        assert euclidean_distance(
            np.array([0.0, 0.0]), np.array([3.0, 4.0])
        ) == pytest.approx(5.0)

    def test_manhattan(self):
        assert manhattan_distance(
            np.array([0.0, 0.0]), np.array([3.0, 4.0])
        ) == pytest.approx(7.0)

    @pytest.mark.parametrize("metric", [mean_absolute_error, euclidean_distance, manhattan_distance])
    def test_identity_is_zero(self, metric):
        u = np.array([1.0, -2.0, 3.0])
        assert metric(u, u) == pytest.approx(0.0)

    @pytest.mark.parametrize("metric", [mean_absolute_error, euclidean_distance, manhattan_distance])
    def test_gain_sensitivity(self, metric):
        """Why the paper rejects these metrics: gain changes hurt them."""
        u = np.array([1.0, 2.0, 3.0])
        assert metric(u, 2.0 * u) > 0.0

    @given(u=vectors(), v=vectors())
    @settings(max_examples=50, deadline=None)
    def test_mae_nonnegative_and_symmetric(self, u, v):
        assert mean_absolute_error(u, v) >= 0.0
        assert mean_absolute_error(u, v) == pytest.approx(
            mean_absolute_error(v, u)
        )

    @given(u=vectors(), v=vectors(), w=vectors())
    @settings(max_examples=30, deadline=None)
    def test_euclidean_triangle_inequality(self, u, v, w):
        duv = euclidean_distance(u, v)
        dvw = euclidean_distance(v, w)
        duw = euclidean_distance(u, w)
        assert duw <= duv + dvw + 1e-6


class TestRegistries:
    def test_all_distances_registered(self):
        assert set(DISTANCE_METRICS) == {
            "correlation", "cosine", "mae", "euclidean", "manhattan",
        }

    def test_all_similarities_registered(self):
        assert set(SIMILARITY_FUNCTIONS) == {"correlation", "cosine"}

    @pytest.mark.parametrize("name", sorted(DISTANCE_METRICS))
    def test_registered_metrics_callable(self, name):
        u = np.array([1.0, 2.0, 4.0])
        v = np.array([1.5, 2.5, 3.5])
        value = DISTANCE_METRICS[name](u, v)
        assert np.isfinite(value)
