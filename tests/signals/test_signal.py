"""Unit tests for the Signal container."""

import numpy as np
import pytest

from repro.signals import Signal


class TestConstruction:
    def test_1d_promoted_to_single_channel(self):
        s = Signal([1.0, 2.0, 3.0], sample_rate=10.0)
        assert s.data.shape == (3, 1)
        assert s.n_channels == 1

    def test_2d_kept(self):
        s = Signal(np.zeros((5, 3)), sample_rate=10.0)
        assert s.n_samples == 5
        assert s.n_channels == 3

    def test_3d_rejected(self):
        with pytest.raises(ValueError, match="1-D or 2-D"):
            Signal(np.zeros((2, 2, 2)), sample_rate=10.0)

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ValueError, match="sample_rate"):
            Signal([1.0], sample_rate=0.0)
        with pytest.raises(ValueError, match="sample_rate"):
            Signal([1.0], sample_rate=-5.0)

    def test_data_is_float64(self):
        s = Signal(np.array([1, 2, 3], dtype=np.int32), sample_rate=1.0)
        assert s.data.dtype == np.float64

    def test_channel_names_checked(self):
        Signal(np.zeros((4, 2)), 1.0, channel_names=["a", "b"])
        with pytest.raises(ValueError, match="channel names"):
            Signal(np.zeros((4, 2)), 1.0, channel_names=["a"])

    def test_repr_mentions_shape(self):
        s = Signal(np.zeros((7, 2)), sample_rate=50.0)
        assert "n_samples=7" in repr(s)
        assert "n_channels=2" in repr(s)


class TestProperties:
    def test_duration(self):
        s = Signal(np.zeros(100), sample_rate=50.0)
        assert s.duration == pytest.approx(2.0)

    def test_times_axis(self):
        s = Signal(np.zeros(4), sample_rate=2.0)
        assert np.allclose(s.times, [0.0, 0.5, 1.0, 1.5])

    def test_len(self):
        assert len(Signal(np.zeros(9), 1.0)) == 9

    def test_equality(self):
        a = Signal([1.0, 2.0], 10.0)
        b = Signal([1.0, 2.0], 10.0)
        c = Signal([1.0, 3.0], 10.0)
        d = Signal([1.0, 2.0], 20.0)
        assert a == b
        assert a != c
        assert a != d
        assert a != "not a signal"


class TestSlicing:
    def test_basic_slice(self):
        s = Signal(np.arange(10.0), 1.0)
        sl = s.slice(2, 5)
        assert np.allclose(sl.data[:, 0], [2.0, 3.0, 4.0])

    def test_slice_clips_out_of_range(self):
        s = Signal(np.arange(10.0), 1.0)
        assert s.slice(-5, 3).n_samples == 3
        assert s.slice(8, 100).n_samples == 2
        assert s.slice(20, 30).n_samples == 0

    def test_slice_preserves_rate_and_names(self):
        s = Signal(np.zeros((5, 2)), 7.0, channel_names=["p", "q"])
        sl = s.slice(1, 4)
        assert sl.sample_rate == 7.0
        assert sl.channel_names == ("p", "q")

    def test_slice_seconds(self):
        s = Signal(np.arange(100.0), 10.0)
        sl = s.slice_seconds(1.0, 2.0)
        assert sl.n_samples == 10
        assert sl.data[0, 0] == 10.0

    def test_channel_accessor(self):
        data = np.arange(12.0).reshape(4, 3)
        s = Signal(data, 1.0)
        assert np.allclose(s.channel(1), data[:, 1])


class TestWindowing:
    def test_n_windows(self):
        s = Signal(np.zeros(10), 1.0)
        assert s.n_windows(n_win=4, n_hop=2) == 4  # starts 0,2,4,6
        assert s.n_windows(n_win=10, n_hop=1) == 1
        assert s.n_windows(n_win=11, n_hop=1) == 0

    def test_window_contents(self):
        s = Signal(np.arange(10.0), 1.0)
        w = s.window(2, n_win=3, n_hop=2)
        assert w.index == 2
        assert w.start == 4
        assert np.allclose(w.data[:, 0], [4.0, 5.0, 6.0])

    def test_window_with_offset_matches_eq8(self):
        s = Signal(np.arange(20.0), 1.0)
        w = s.window(1, n_win=4, n_hop=4, offset=3)
        assert w.start == 7
        assert np.allclose(w.data[:, 0], [7.0, 8.0, 9.0, 10.0])

    def test_window_truncated_at_boundary(self):
        s = Signal(np.arange(10.0), 1.0)
        w = s.window(0, n_win=5, n_hop=1, offset=8)
        assert w.length == 2

    def test_iter_windows_covers_all(self):
        s = Signal(np.arange(10.0), 1.0)
        windows = list(s.iter_windows(n_win=4, n_hop=2))
        assert len(windows) == s.n_windows(4, 2)
        assert all(w.length == 4 for w in windows)
        assert [w.index for w in windows] == list(range(len(windows)))


class TestConstruction2:
    def test_concatenate(self):
        a = Signal(np.ones(3), 5.0)
        b = Signal(np.zeros(2), 5.0)
        c = Signal.concatenate([a, b])
        assert c.n_samples == 5
        assert np.allclose(c.data[:, 0], [1, 1, 1, 0, 0])

    def test_concatenate_rejects_rate_mismatch(self):
        with pytest.raises(ValueError, match="rates"):
            Signal.concatenate([Signal(np.ones(2), 5.0), Signal(np.ones(2), 6.0)])

    def test_concatenate_rejects_channel_mismatch(self):
        with pytest.raises(ValueError, match="channel"):
            Signal.concatenate(
                [Signal(np.ones((2, 1)), 5.0), Signal(np.ones((2, 2)), 5.0)]
            )

    def test_concatenate_empty_rejected(self):
        with pytest.raises(ValueError):
            Signal.concatenate([])

    def test_pad_to(self):
        s = Signal(np.ones(3), 1.0)
        padded = s.pad_to(5)
        assert padded.n_samples == 5
        assert np.allclose(padded.data[3:, 0], 0.0)

    def test_pad_to_noop_when_long_enough(self):
        s = Signal(np.ones(5), 1.0)
        assert s.pad_to(3) is s

    def test_with_data_keeps_rate(self):
        s = Signal(np.ones(3), 9.0)
        t = s.with_data(np.zeros(7))
        assert t.sample_rate == 9.0
        assert t.n_samples == 7

    def test_with_data_drops_stale_names(self):
        s = Signal(np.ones((3, 2)), 9.0, channel_names=["a", "b"])
        t = s.with_data(np.zeros((3, 4)))
        assert t.channel_names is None
