"""Unit + property tests for the discriminator's array filters."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.signals import (
    decimate,
    moving_average,
    resample_linear,
    trailing_min_filter,
)


def float_arrays(min_n=1, max_n=40):
    return arrays(
        np.float64,
        st.integers(min_n, max_n),
        elements=st.floats(-1e6, 1e6, allow_nan=False, width=64),
    )


class TestTrailingMinFilter:
    def test_kills_isolated_spike(self):
        """The paper's reason for the filter: one-sample spikes vanish."""
        x = np.array([0.1, 0.1, 5.0, 0.1, 0.1])
        f = trailing_min_filter(x, window=3)
        assert f.max() < 5.0

    def test_preserves_sustained_level(self):
        x = np.array([0.1, 0.1, 5.0, 5.0, 5.0, 0.1])
        f = trailing_min_filter(x, window=3)
        assert f.max() == pytest.approx(5.0)

    def test_exact_values(self):
        x = np.array([3.0, 1.0, 2.0, 5.0, 4.0])
        f = trailing_min_filter(x, window=3)
        assert np.allclose(f, [3.0, 1.0, 1.0, 1.0, 2.0])

    def test_window_one_is_identity(self):
        x = np.array([4.0, 2.0, 9.0])
        assert np.allclose(trailing_min_filter(x, window=1), x)

    def test_rampup_uses_available_samples(self):
        x = np.array([7.0, 3.0])
        f = trailing_min_filter(x, window=5)
        assert np.allclose(f, [7.0, 3.0])

    def test_empty(self):
        assert trailing_min_filter(np.zeros(0), 3).size == 0

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            trailing_min_filter(np.ones(3), 0)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            trailing_min_filter(np.ones((3, 2)), 2)

    @given(x=float_arrays())
    @settings(max_examples=50, deadline=None)
    def test_never_exceeds_input(self, x):
        f = trailing_min_filter(x, window=3)
        assert np.all(f <= x + 1e-12)

    @given(x=float_arrays(), w=st.integers(1, 6))
    @settings(max_examples=50, deadline=None)
    def test_never_below_global_min(self, x, w):
        f = trailing_min_filter(x, window=w)
        assert np.all(f >= x.min() - 1e-12)


class TestMovingAverage:
    def test_constant_preserved(self):
        x = np.full(10, 3.5)
        assert np.allclose(moving_average(x, 4), x)

    def test_exact_values(self):
        x = np.array([2.0, 4.0, 6.0])
        assert np.allclose(moving_average(x, 2), [2.0, 3.0, 5.0])

    def test_empty(self):
        assert moving_average(np.zeros(0), 3).size == 0

    @given(x=float_arrays(), w=st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_bounded_by_extremes(self, x, w):
        f = moving_average(x, w)
        tol = 1e-9 * (1.0 + np.abs(x).max())  # cumsum round-off scales with |x|
        assert np.all(f <= x.max() + tol)
        assert np.all(f >= x.min() - tol)


class TestDecimate:
    def test_every_other(self):
        x = np.arange(10.0)
        assert np.allclose(decimate(x, 2), [0, 2, 4, 6, 8])

    def test_factor_one_identity(self):
        x = np.arange(5.0)
        assert np.allclose(decimate(x, 1), x)

    def test_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            decimate(np.ones(3), 0)


class TestResampleLinear:
    def test_endpoint_preservation(self):
        x = np.array([1.0, 5.0, 2.0])
        y = resample_linear(x, 7)
        assert y[0] == pytest.approx(1.0)
        assert y[-1] == pytest.approx(2.0)

    def test_linear_ramp_stays_linear(self):
        x = np.linspace(0, 10, 11)
        y = resample_linear(x, 21)
        assert np.allclose(y, np.linspace(0, 10, 21))

    def test_2d_resample(self):
        x = np.column_stack([np.arange(5.0), np.arange(5.0) * 2])
        y = resample_linear(x, 9)
        assert y.shape == (9, 2)
        assert np.allclose(y[:, 1], 2 * y[:, 0])

    def test_upsample_then_identity_length(self):
        x = np.array([3.0, 1.0, 4.0])
        assert resample_linear(x, 3).shape == (3,)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            resample_linear(np.zeros(0), 5)

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            resample_linear(np.ones(4), 0)
