"""Tests for the absolute-indexed sample ring (repro.signals.ringbuffer).

The ring is the detection hot path's buffer: the engine and the streaming
DWM cursor address it by *absolute sample index* so trimming never shifts
anyone's coordinates.  The model-based test drives it against a naive
"keep everything" reference to pin the addressing semantics.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.signals import SampleRing


class TestBasics:
    def test_empty(self):
        ring = SampleRing(1)
        assert len(ring) == 0
        assert ring.start == 0
        assert ring.end == 0
        assert ring.tail().shape == (0, 1)

    def test_append_and_view(self):
        ring = SampleRing(2)
        data = np.arange(10.0).reshape(5, 2)
        ring.append(data)
        assert len(ring) == 5
        assert ring.end == 5
        np.testing.assert_array_equal(ring.view(1, 4), data[1:4])
        np.testing.assert_array_equal(ring.tail(), data)

    def test_one_dimensional_ring(self):
        ring = SampleRing(None)
        ring.append(np.arange(4.0))
        assert ring.tail().ndim == 1
        np.testing.assert_array_equal(ring.view(2, 4), [2.0, 3.0])

    def test_bool_dtype(self):
        ring = SampleRing(None, dtype=bool)
        ring.append(np.array([True, False, True]))
        assert ring.tail().dtype == bool
        assert ring.view(0, 2).tolist() == [True, False]

    def test_growth_past_initial_capacity(self):
        ring = SampleRing(1)
        chunks = [np.full((37, 1), float(i)) for i in range(20)]
        for chunk in chunks:
            ring.append(chunk)
        np.testing.assert_array_equal(ring.tail(), np.concatenate(chunks))

    def test_view_clamps_stop_like_a_python_slice(self):
        ring = SampleRing(1)
        ring.append(np.zeros((3, 1)))
        assert ring.view(1, 100).shape == (2, 1)
        assert ring.view(5, 100).shape == (0, 1)

    def test_view_before_trimmed_start_raises(self):
        ring = SampleRing(1)
        ring.append(np.zeros((10, 1)))
        ring.trim_to(4)
        with pytest.raises(IndexError, match="already trimmed"):
            ring.view(3, 6)

    def test_trim_is_logical_not_physical(self):
        """Trimming moves ``start`` forward; kept samples stay addressable
        at their original absolute indexes."""
        ring = SampleRing(1)
        data = np.arange(10.0).reshape(10, 1)
        ring.append(data)
        ring.trim_to(6)
        assert ring.start == 6
        assert ring.end == 10
        assert len(ring) == 4
        np.testing.assert_array_equal(ring.view(6, 10), data[6:])

    def test_trim_backwards_is_a_noop(self):
        ring = SampleRing(1)
        ring.append(np.zeros((5, 1)))
        ring.trim_to(3)
        ring.trim_to(1)
        assert ring.start == 3

    def test_compaction_reclaims_trimmed_prefix(self):
        """After heavy trimming, appends reuse the buffer instead of
        growing it without bound."""
        ring = SampleRing(1, capacity=64)
        for i in range(1000):
            ring.append(np.full((8, 1), float(i)))
            ring.trim_to(ring.end - 16)
        assert ring._data.shape[0] < 8 * 1000
        expected = np.concatenate(
            [np.full((8, 1), 998.0), np.full((8, 1), 999.0)]
        )[-len(ring):]
        np.testing.assert_array_equal(ring.tail(), expected)

    def test_view_is_a_view_not_a_copy(self):
        ring = SampleRing(1)
        ring.append(np.zeros((4, 1)))
        v = ring.view(0, 4)
        assert v.base is not None

    def test_load_round_trip(self):
        ring = SampleRing(2)
        ring.append(np.arange(12.0).reshape(6, 2))
        ring.trim_to(2)
        restored = SampleRing(2)
        restored.load(ring.tail().copy(), ring.start)
        assert restored.start == ring.start
        assert restored.end == ring.end
        np.testing.assert_array_equal(restored.tail(), ring.tail())


class TestModelBased:
    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(st.just("append"), st.integers(0, 25)),
                st.tuples(st.just("trim"), st.integers(0, 30)),
            ),
            min_size=1,
            max_size=40,
        ),
        channels=st.sampled_from([None, 1, 3]),
    )
    @settings(deadline=None, max_examples=60)
    def test_matches_keep_everything_model(self, ops, channels):
        """Absolute-index reads always match a model that never discards."""
        rng = np.random.default_rng(0)
        ring = SampleRing(channels, capacity=4)
        shape = (0,) if channels is None else (0, channels)
        model = np.zeros(shape)
        model_start = 0
        for op, arg in ops:
            if op == "append":
                chunk_shape = (arg,) if channels is None else (arg, channels)
                chunk = rng.standard_normal(chunk_shape)
                ring.append(chunk)
                model = np.concatenate([model, chunk])
            else:
                target = min(model_start + arg, model.shape[0])
                ring.trim_to(target)
                model_start = max(model_start, target)
            assert ring.start == model_start
            assert ring.end == model.shape[0]
            np.testing.assert_array_equal(
                ring.tail(), model[model_start:]
            )
            if model.shape[0] > model_start:
                lo = model_start
                hi = model.shape[0]
                mid = (lo + hi) // 2
                np.testing.assert_array_equal(
                    ring.view(mid, hi), model[mid:hi]
                )
