"""Unit tests for the STFT spectrogram front-end (Table III)."""

import numpy as np
import pytest

from repro.signals import (
    PAPER_SPECTROGRAMS,
    Signal,
    SpectrogramConfig,
    spectrogram,
)


def tone(freq, fs=1000.0, seconds=2.0, channels=1):
    t = np.arange(0, seconds, 1 / fs)
    data = np.sin(2 * np.pi * freq * t)
    if channels > 1:
        data = np.column_stack([data] * channels)
    return Signal(data, fs)


class TestConfig:
    def test_window_length_from_delta_f(self):
        cfg = SpectrogramConfig(delta_f=20.0, delta_t=0.0125)
        assert cfg.n_window(1000.0) == 50  # 1000 / 20

    def test_hop_from_delta_t(self):
        cfg = SpectrogramConfig(delta_f=20.0, delta_t=0.025)
        assert cfg.n_hop(1000.0) == 25  # round(0.025 * 1000)

    def test_n_bins(self):
        cfg = SpectrogramConfig(delta_f=20.0, delta_t=0.0125)
        assert cfg.n_bins(1000.0) == 26  # 50 // 2 + 1

    def test_minimum_sizes(self):
        cfg = SpectrogramConfig(delta_f=1e6, delta_t=1e-9)
        assert cfg.n_window(100.0) >= 1
        assert cfg.n_hop(100.0) >= 1


class TestSpectrogram:
    def test_output_shape(self):
        cfg = SpectrogramConfig(delta_f=10.0, delta_t=0.05)
        spec = spectrogram(tone(50.0), cfg)
        n_win, n_hop = cfg.n_window(1000.0), cfg.n_hop(1000.0)
        expected_frames = 1 + (2000 - n_win) // n_hop
        assert spec.n_samples == expected_frames
        assert spec.n_channels == n_win // 2 + 1

    def test_output_rate_is_frame_rate(self):
        cfg = SpectrogramConfig(delta_f=10.0, delta_t=0.05)
        spec = spectrogram(tone(50.0), cfg)
        assert spec.sample_rate == pytest.approx(1000.0 / cfg.n_hop(1000.0))

    def test_tone_lands_in_right_bin(self):
        cfg = SpectrogramConfig(delta_f=10.0, delta_t=0.05)
        spec = spectrogram(tone(50.0), cfg)
        mean_mag = spec.data.mean(axis=0)
        assert np.argmax(mean_mag) == 5  # 50 Hz / 10 Hz per bin

    def test_two_tones_two_peaks(self):
        fs = 1000.0
        t = np.arange(0, 2, 1 / fs)
        sig = Signal(np.sin(2 * np.pi * 100 * t) + np.sin(2 * np.pi * 300 * t), fs)
        cfg = SpectrogramConfig(delta_f=20.0, delta_t=0.05)
        spec = spectrogram(sig, cfg)
        mean_mag = spec.data.mean(axis=0)
        top2 = set(np.argsort(mean_mag)[-2:])
        assert top2 == {5, 15}  # 100/20 and 300/20

    def test_multichannel_layout_channel_major(self):
        fs = 1000.0
        t = np.arange(0, 2, 1 / fs)
        two = Signal(
            np.column_stack(
                [np.sin(2 * np.pi * 100 * t), np.sin(2 * np.pi * 300 * t)]
            ),
            fs,
        )
        cfg = SpectrogramConfig(delta_f=20.0, delta_t=0.05)
        spec = spectrogram(two, cfg)
        n_bins = cfg.n_bins(fs)
        assert spec.n_channels == 2 * n_bins
        ch0 = spec.data[:, :n_bins].mean(axis=0)
        ch1 = spec.data[:, n_bins:].mean(axis=0)
        assert np.argmax(ch0) == 5
        assert np.argmax(ch1) == 15

    def test_too_short_signal_rejected(self):
        cfg = SpectrogramConfig(delta_f=10.0, delta_t=0.05)
        with pytest.raises(ValueError, match="STFT window"):
            spectrogram(Signal(np.zeros(10), 1000.0), cfg)

    def test_boxcar_window_supported(self):
        cfg = SpectrogramConfig(delta_f=10.0, delta_t=0.05, window="Boxcar")
        spec = spectrogram(tone(50.0), cfg)
        assert spec.n_samples > 0

    def test_magnitudes_nonnegative(self):
        cfg = SpectrogramConfig(delta_f=10.0, delta_t=0.05)
        spec = spectrogram(tone(50.0), cfg)
        assert np.all(spec.data >= 0)


class TestPaperConfigs:
    def test_all_six_channels_configured(self):
        assert set(PAPER_SPECTROGRAMS) == {
            "ACC", "TMP", "MAG", "AUD", "EPT", "PWR",
        }

    def test_pwr_uses_boxcar(self):
        assert PAPER_SPECTROGRAMS["PWR"].window == "Boxcar"

    def test_others_use_bh(self):
        for cid in ("ACC", "TMP", "MAG", "AUD", "EPT"):
            assert PAPER_SPECTROGRAMS[cid].window == "BH"

    def test_table_iii_bin_counts_at_paper_rates(self):
        """At the paper's native rates the bin counts match Table III."""
        # ACC: 4000 Hz / 20 Hz -> 200-sample window -> 101 bins
        assert PAPER_SPECTROGRAMS["ACC"].n_bins(4000.0) == 101
        # MAG: 100 Hz / 5 Hz -> 20-sample window -> 11 bins
        assert PAPER_SPECTROGRAMS["MAG"].n_bins(100.0) == 11
        # AUD: 48000 / 120 -> 400 window -> 201 bins
        assert PAPER_SPECTROGRAMS["AUD"].n_bins(48000.0) == 201
        # EPT: 96000 / 120 -> 800 window -> 401 bins
        assert PAPER_SPECTROGRAMS["EPT"].n_bins(96000.0) == 401
        # PWR: 12000 / 60 -> 200 window -> 101 bins
        assert PAPER_SPECTROGRAMS["PWR"].n_bins(12000.0) == 101
