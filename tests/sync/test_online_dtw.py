"""Unit tests for the online (streaming) DTW synchronizer."""

import numpy as np
import pytest

from repro.signals import Signal
from repro.sync import OnlineDtw, OnlineDtwSynchronizer


def random_walk(n, seed=0, channels=1):
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.standard_normal((n, channels)), axis=0)


class TestOnlineDtw:
    def test_identical_signals_zero_displacement(self):
        base = random_walk(300, 0)
        ref = Signal(base, 10.0)
        online = OnlineDtw(ref, band=20)
        out = online.push(base)
        assert len(out) == 300
        h = np.array([d for _, d in out])
        assert np.abs(h).max() <= 1

    def test_constant_shift_recovered(self):
        base = random_walk(400, 1)
        ref = Signal(base, 10.0)          # reference = full walk
        obs = base[15:315]                # observation starts 15 samples in
        online = OnlineDtw(ref, band=40)
        online.push(obs)
        h = online.result().h_disp
        # steady state: obs[i] = ref[i + 15]
        assert np.median(h[50:]) == pytest.approx(15, abs=2)

    def test_incremental_matches_batch(self):
        base = random_walk(300, 2)
        ref = Signal(base, 10.0)
        obs = base[5:205]
        stream = OnlineDtw(ref, band=30)
        for start in range(0, 200, 17):
            stream.push(obs[start : start + 17])
        batch = OnlineDtwSynchronizer(band=30).synchronize(
            Signal(obs, 10.0), ref
        )
        assert np.allclose(stream.result().h_disp, batch.h_disp)

    def test_emits_one_estimate_per_sample(self):
        ref = Signal(random_walk(100, 3), 10.0)
        online = OnlineDtw(ref, band=10)
        assert len(online.push(random_walk(7, 4))) == 7
        assert online.n_samples_done == 7

    def test_monotone_reference_progress(self):
        base = random_walk(300, 5)
        ref = Signal(base, 10.0)
        online = OnlineDtw(ref, band=25)
        online.push(base[:250])
        h = online.result().h_disp
        match = h + np.arange(h.size)
        assert np.all(np.diff(match) >= 0)

    def test_exhausted_flag(self):
        base = random_walk(50, 6)
        ref = Signal(base, 10.0)
        online = OnlineDtw(ref, band=60)
        online.push(np.concatenate([base, base[-1:] * np.ones((30, 1))]))
        assert online.exhausted

    def test_channel_mismatch_rejected(self):
        ref = Signal(np.zeros((50, 2)), 10.0)
        with pytest.raises(ValueError, match="channels"):
            OnlineDtw(ref).push(np.zeros((5, 3)))

    def test_invalid_band(self):
        ref = Signal(np.zeros(10), 10.0)
        with pytest.raises(ValueError):
            OnlineDtw(ref, band=0)
        with pytest.raises(ValueError):
            OnlineDtwSynchronizer(band=0)

    def test_result_is_point_mode_with_pairs(self):
        ref = Signal(random_walk(100, 7), 10.0)
        online = OnlineDtw(ref, band=10)
        online.push(random_walk(60, 7))
        result = online.result()
        assert result.mode == "point"
        assert len(result.pairs) == 60


class TestSynchronizerAdapter:
    def test_rate_mismatch_rejected(self):
        a = Signal(np.zeros(10), 10.0)
        b = Signal(np.zeros(10), 20.0)
        with pytest.raises(ValueError):
            OnlineDtwSynchronizer().synchronize(a, b)

    def test_usable_in_nsync_pipeline(self):
        from repro.core import NsyncIds

        base = random_walk(600, 8)
        ref = Signal(base, 10.0)
        ids = NsyncIds(ref, OnlineDtwSynchronizer(band=30))
        ids.fit([Signal(base + 0.05 * random_walk(600, 9), 10.0)], r=0.5)
        verdict = ids.detect(Signal(base + 0.05 * random_walk(600, 10), 10.0))
        assert verdict is not None
