"""Unit + property tests for Time Delay Estimation (plain and biased)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.signals.metrics import correlation_similarity, cosine_similarity
from repro.sync import similarity_profile, tde, tdeb
from repro.sync.tde import correlation_profile


def embedded_template(delay=30, n_x=200, n_y=40, channels=1, noise=0.0, seed=0):
    """Random x with a template y planted at the given delay."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n_x, channels))
    y = x[delay : delay + n_y].copy()
    if noise:
        y = y + noise * rng.standard_normal(y.shape)
    return x, y


class TestSimilarityProfile:
    def test_length_matches_eq1(self):
        x, y = embedded_template()
        s = similarity_profile(x, y)
        assert s.shape == (200 - 40 + 1,)

    def test_peak_at_planted_delay(self):
        x, y = embedded_template(delay=57)
        s = similarity_profile(x, y)
        assert np.argmax(s) == 57
        assert s[57] == pytest.approx(1.0)

    def test_multichannel(self):
        x, y = embedded_template(delay=12, channels=4)
        s = similarity_profile(x, y)
        assert np.argmax(s) == 12

    def test_custom_similarity_fallback(self):
        x, y = embedded_template(delay=20)
        s = similarity_profile(x, y, similarity=cosine_similarity)
        assert np.argmax(s) == 20

    def test_channel_mismatch_rejected(self):
        with pytest.raises(ValueError, match="channel"):
            similarity_profile(np.zeros((10, 2)), np.zeros((5, 3)))

    def test_y_longer_than_x_rejected(self):
        with pytest.raises(ValueError, match="shorter"):
            similarity_profile(np.zeros(5), np.ones(10))

    def test_empty_y_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            similarity_profile(np.zeros(5), np.zeros(0))

    def test_vectorized_matches_loop(self):
        """The fast path must agree with Eq. (3) applied per shift."""
        rng = np.random.default_rng(3)
        x = rng.standard_normal((80, 3))
        y = rng.standard_normal((17, 3))
        fast = correlation_profile(x, y)
        slow = np.array(
            [correlation_similarity(x[n : n + 17], y) for n in range(64)]
        )
        assert np.allclose(fast, slow, atol=1e-10)

    def test_vectorized_handles_constant_windows(self):
        x = np.ones((50, 1))
        x[20:30, 0] = np.arange(10)
        y = np.ones((10, 1))
        s = correlation_profile(x, y)
        assert np.all(np.isfinite(s))

    @given(delay=st.integers(0, 160))
    @settings(max_examples=25, deadline=None)
    def test_recovers_any_delay(self, delay):
        x, y = embedded_template(delay=delay, n_x=200, n_y=40, seed=delay)
        assert int(np.argmax(similarity_profile(x, y))) == delay


class TestTde:
    def test_returns_argmax(self):
        x, y = embedded_template(delay=42)
        result = tde(x, y)
        assert result.delay == 42
        assert result.score == pytest.approx(1.0)

    def test_noisy_template_still_found(self):
        x, y = embedded_template(delay=42, noise=0.3, seed=7)
        assert tde(x, y).delay == 42

    def test_scores_array_exposed(self):
        x, y = embedded_template()
        result = tde(x, y)
        assert result.scores.shape == (161,)
        assert result.scores[result.delay] == pytest.approx(result.score)


class TestTdeb:
    def test_bias_resolves_periodic_ambiguity(self):
        """Fig. 5's scenario: periodic content has many equal peaks; the
        bias must pick the one near the centre."""
        t = np.arange(400)
        x = np.sin(2 * np.pi * t / 25.0)[:, np.newaxis]  # period 25
        y = x[150:250].copy()  # many perfect matches, 25 samples apart
        unbiased = tde(x, y)
        biased = tdeb(x, y, sigma=10.0)
        centre = (400 - 100) // 2
        assert abs(biased.delay - centre) <= abs(unbiased.delay - centre) + 25
        assert abs(biased.delay - centre) <= 12

    def test_bias_on_pure_noise_stays_near_centre(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((300, 1))
        y = rng.standard_normal((50, 1))  # unrelated noise
        delays = [
            tdeb(x, y, sigma=10.0, centre=125).delay for _ in range(1)
        ]
        assert abs(delays[0] - 125) <= 40

    def test_strong_peak_overrides_bias(self):
        x, y = embedded_template(delay=140, n_x=200, n_y=40)
        result = tdeb(x, y, sigma=60.0)
        assert result.delay == 140

    def test_custom_centre(self):
        x, y = embedded_template(delay=10)
        result = tdeb(x, y, sigma=5.0, centre=10)
        assert result.delay == 10

    def test_score_is_unbiased_similarity(self):
        x, y = embedded_template(delay=80)
        result = tdeb(x, y, sigma=80.0)
        assert result.score == pytest.approx(1.0, abs=1e-9)

    def test_invalid_sigma(self):
        x, y = embedded_template()
        with pytest.raises(ValueError, match="sigma"):
            tdeb(x, y, sigma=0.0)

    def test_negative_scores_not_inverted(self):
        """Regression: multiplying negative scores by a small Gaussian tail
        must not make far-away anti-correlated shifts look good."""
        t = np.arange(300)
        x = np.sin(2 * np.pi * t / 40.0)[:, np.newaxis]
        y = x[100:160].copy()
        result = tdeb(x, y, sigma=15.0, centre=100)
        assert result.score > 0.9
