"""Unit tests for exact DTW and FastDTW."""

import numpy as np
import pytest

from repro.signals import Signal
from repro.sync import (
    DtwSynchronizer,
    FastDtwSynchronizer,
    dtw_path,
    fastdtw_path,
    path_to_h_disp,
)


def random_walk(n, seed=0, channels=1):
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.standard_normal((n, channels)), axis=0)


class TestDtwPath:
    def test_identical_signals_diagonal_path(self):
        a = random_walk(30)
        cost, path = dtw_path(a, a)
        assert cost == pytest.approx(0.0)
        assert path == [(i, i) for i in range(30)]

    def test_path_endpoints(self):
        a, b = random_walk(20, 1), random_walk(25, 2)
        _, path = dtw_path(a, b)
        assert path[0] == (0, 0)
        assert path[-1] == (19, 24)

    def test_path_monotone_nondecreasing(self):
        a, b = random_walk(20, 3), random_walk(25, 4)
        _, path = dtw_path(a, b)
        for (i1, j1), (i2, j2) in zip(path, path[1:]):
            assert 0 <= i2 - i1 <= 1
            assert 0 <= j2 - j1 <= 1
            assert (i2 - i1) + (j2 - j1) >= 1

    def test_known_small_example(self):
        a = np.array([[0.0], [1.0], [2.0]])
        b = np.array([[0.0], [2.0]])
        cost, path = dtw_path(a, b)
        # Optimal: (0,0), (1,?) 1->0 or 1->2 costs 1, (2,1) -> total 1.
        assert cost == pytest.approx(1.0)

    def test_shifted_copy_low_cost(self):
        base = random_walk(60, 5)
        a, b = base[:50], base[5:55]
        cost, _ = dtw_path(a, b)
        direct = float(np.abs(a - b).sum())
        assert cost < direct

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            dtw_path(np.zeros((0, 1)), np.zeros((5, 1)))

    def test_channel_mismatch_rejected(self):
        with pytest.raises(ValueError, match="channel"):
            dtw_path(np.zeros((5, 1)), np.zeros((5, 2)))

    def test_window_constraint_respected(self):
        a, b = random_walk(10, 6), random_walk(10, 7)
        window = {(i, j) for i in range(10) for j in range(10) if abs(i - j) <= 1}
        _, path = dtw_path(a, b, window=window)
        assert all(abs(i - j) <= 1 for i, j in path)

    def test_window_excluding_terminal_raises(self):
        a, b = random_walk(5, 8), random_walk(5, 9)
        window = {(0, 0)}  # cannot reach (4, 4)
        with pytest.raises(RuntimeError, match="terminal"):
            dtw_path(a, b, window=window)


class TestPathToHdisp:
    def test_diagonal_is_zero(self):
        path = [(i, i) for i in range(5)]
        assert np.allclose(path_to_h_disp(path, 5), 0.0)

    def test_constant_offset(self):
        path = [(i, i + 3) for i in range(5)]
        assert np.allclose(path_to_h_disp(path, 5), 3.0)

    def test_duplicate_i_averaged_eq5(self):
        path = [(0, 0), (1, 1), (1, 2), (1, 3), (2, 4)]
        h = path_to_h_disp(path, 3)
        assert h[1] == pytest.approx((0 + 1 + 2) / 3)

    def test_missing_i_repeats_last(self):
        path = [(0, 2), (3, 5)]
        h = path_to_h_disp(path, 4)
        assert np.allclose(h, [2.0, 2.0, 2.0, 2.0])


class TestFastDtw:
    def test_small_inputs_exact(self):
        a, b = random_walk(20, 10), random_walk(20, 11)
        exact_cost, exact_path = dtw_path(a, b)
        fast_cost, fast_path = fastdtw_path(a, b, radius=1)
        assert fast_cost == pytest.approx(exact_cost)
        assert fast_path == exact_path

    def test_large_inputs_close_to_exact(self):
        base = random_walk(300, 12)
        a, b = base[:280], base[10:290]
        exact_cost, _ = dtw_path(a, b)
        fast_cost, _ = fastdtw_path(a, b, radius=2)
        assert fast_cost <= exact_cost * 1.5 + 1e-9

    def test_path_endpoints(self):
        a, b = random_walk(200, 13), random_walk(190, 14)
        _, path = fastdtw_path(a, b, radius=1)
        assert path[0] == (0, 0)
        assert path[-1] == (199, 189)

    def test_identical_signals_zero_cost(self):
        a = random_walk(256, 15)
        cost, _ = fastdtw_path(a, a, radius=1)
        assert cost == pytest.approx(0.0)

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            fastdtw_path(np.zeros((10, 1)), np.zeros((10, 1)), radius=-1)


class TestSynchronizers:
    def test_dtw_synchronizer_result(self):
        base = random_walk(80, 16)
        a = Signal(base[:70], 10.0)
        b = Signal(base[5:75], 10.0)
        sync = DtwSynchronizer().synchronize(a, b)
        assert sync.mode == "point"
        assert sync.pairs is not None
        assert sync.h_disp.shape == (70,)
        # a[i] = base[i], b[j] = base[j+5]: a matches b 5 earlier -> -5.
        assert np.median(sync.h_disp[20:60]) == pytest.approx(-5, abs=2)

    def test_fastdtw_synchronizer_matches_mode(self):
        a = Signal(random_walk(150, 17), 10.0)
        sync = FastDtwSynchronizer(radius=1).synchronize(a, a)
        assert sync.mode == "point"
        assert np.allclose(sync.h_disp, 0.0)

    def test_rate_mismatch_rejected(self):
        a = Signal(np.zeros(10), 10.0)
        b = Signal(np.zeros(10), 20.0)
        with pytest.raises(ValueError):
            DtwSynchronizer().synchronize(a, b)
        with pytest.raises(ValueError):
            FastDtwSynchronizer().synchronize(a, b)

    def test_fastdtw_invalid_radius(self):
        with pytest.raises(ValueError):
            FastDtwSynchronizer(radius=-2)


class TestReferenceFastDtw:
    """The pure-Python reference implementation must agree with ours."""

    def test_matches_vectorized_on_small_input(self):
        from repro.sync import fastdtw_path, fastdtw_reference_path

        base = random_walk(60, 20, channels=2)
        a, b = base[:50], base[5:55]
        cost_vec, path_vec = fastdtw_path(a, b, radius=1)
        cost_ref, path_ref = fastdtw_reference_path(
            a.tolist(), b.tolist(), radius=1
        )
        assert cost_ref == pytest.approx(cost_vec, rel=1e-9)
        assert path_ref[0] == (0, 0)
        assert path_ref[-1] == (49, 49)

    def test_identical_signals_zero_cost(self):
        from repro.sync import fastdtw_reference_path

        a = random_walk(100, 21).tolist()
        cost, path = fastdtw_reference_path(a, a, radius=1)
        assert cost == pytest.approx(0.0)
        assert path == [(i, i) for i in range(100)]

    def test_synchronizer_wrapper(self):
        from repro.sync import ReferenceFastDtwSynchronizer

        base = random_walk(120, 22)
        a = Signal(base[:100], 10.0)
        b = Signal(base[5:105], 10.0)
        sync = ReferenceFastDtwSynchronizer(radius=1).synchronize(a, b)
        assert sync.mode == "point"
        assert np.median(sync.h_disp[20:80]) == pytest.approx(-5, abs=2)

    def test_invalid_radius(self):
        from repro.sync import ReferenceFastDtwSynchronizer, fastdtw_reference_path

        with pytest.raises(ValueError):
            ReferenceFastDtwSynchronizer(radius=-1)
        with pytest.raises(ValueError):
            fastdtw_reference_path([[0.0]], [[0.0]], radius=-1)

    def test_rate_mismatch_rejected(self):
        from repro.sync import ReferenceFastDtwSynchronizer

        a = Signal(np.zeros(10), 10.0)
        b = Signal(np.zeros(10), 20.0)
        with pytest.raises(ValueError):
            ReferenceFastDtwSynchronizer().synchronize(a, b)
