"""Unit tests for SyncResult (CADHD, h_dist) and the Synchronizer protocol."""

import numpy as np
import pytest

from repro.signals import Signal
from repro.sync import DwmSynchronizer, FastDtwSynchronizer, SyncResult
from repro.sync.base import Synchronizer


class TestSyncResult:
    def test_mode_validation(self):
        with pytest.raises(ValueError, match="mode"):
            SyncResult(h_disp=np.zeros(3), mode="diagonal")

    def test_h_dist_is_abs(self):
        r = SyncResult(h_disp=np.array([-2.0, 0.0, 3.0]), mode="window")
        assert np.allclose(r.h_dist, [2.0, 0.0, 3.0])

    def test_n_indexes(self):
        r = SyncResult(h_disp=np.zeros(7), mode="point")
        assert r.n_indexes == 7

    def test_cadhd_eq17(self):
        """c_disp[i] = sum |h[j] - h[j-1]| with h[-1] = 0."""
        r = SyncResult(h_disp=np.array([2.0, 5.0, 1.0]), mode="window")
        # |2-0| + |5-2| + |1-5| = 2, 5, 9 cumulative
        assert np.allclose(r.cadhd(), [2.0, 5.0, 9.0])

    def test_cadhd_monotone(self):
        rng = np.random.default_rng(0)
        r = SyncResult(h_disp=rng.standard_normal(50), mode="window")
        c = r.cadhd()
        assert np.all(np.diff(c) >= 0)

    def test_cadhd_empty(self):
        r = SyncResult(h_disp=np.zeros(0), mode="window")
        assert r.cadhd().size == 0

    def test_cadhd_flat_displacement_counts_initial_jump(self):
        r = SyncResult(h_disp=np.full(4, 3.0), mode="window")
        assert np.allclose(r.cadhd(), [3.0, 3.0, 3.0, 3.0])


class TestProtocol:
    def test_dwm_satisfies_protocol(self):
        from repro.sync import UM3_DWM_PARAMS

        assert isinstance(DwmSynchronizer(UM3_DWM_PARAMS), Synchronizer)

    def test_fastdtw_satisfies_protocol(self):
        assert isinstance(FastDtwSynchronizer(), Synchronizer)


class TestBatchCursorDifferential:
    """BatchSyncCursor wrapping DwmSynchronizer must be bit-identical to the
    native incremental DwmSynchronizer.cursor() — the one fast/reference
    pair whose equivalence is otherwise only implied by the engine tests.
    """

    @staticmethod
    def _signals(n_obs=260, rate=50.0, n_channels=2, seed=11):
        rng = np.random.default_rng(seed)
        t = np.arange(max(300, n_obs)) / rate
        base = np.stack(
            [
                np.sin(2 * np.pi * (1.0 + c) * t)
                + 0.2 * rng.standard_normal(t.size)
                for c in range(n_channels)
            ],
            axis=1,
        )
        reference = Signal(base[:300].copy(), rate)
        observed = base[:n_obs] + 0.05 * rng.standard_normal(
            (n_obs, n_channels)
        )
        return reference, observed

    @staticmethod
    def _chunked(observed, sizes):
        spans, pos = [], 0
        k = 0
        while pos < observed.shape[0]:
            step = min(max(1, sizes[k % len(sizes)]), observed.shape[0] - pos)
            spans.append(observed[pos : pos + step])
            pos += step
            k += 1
        return spans

    def _run_both(self, sizes):
        from repro.sync import UM3_DWM_PARAMS
        from repro.sync.base import BatchSyncCursor
        from repro.sync.dwm import DwmParams

        params = DwmParams(t_win=0.4, t_hop=0.2, t_ext=0.2, t_sigma=0.1)
        synchronizer = DwmSynchronizer(params)
        reference, observed = self._signals()

        native = synchronizer.cursor(reference)
        batch = BatchSyncCursor(synchronizer, reference)
        native_emitted, batch_early = [], []
        for chunk in self._chunked(observed, sizes):
            native_emitted.extend(native.push(chunk.copy()))
            batch_early.extend(batch.push(chunk.copy()))
        assert batch_early == []  # deferred-collapse path emits nothing early
        native_emitted.extend(native.finalize())
        batch_emitted = batch.finalize()
        return native, native_emitted, batch, batch_emitted

    @pytest.mark.parametrize(
        "sizes",
        [[1], [7], [260], [1, 13, 2, 40], [3, 3, 100]],
        ids=["dribble", "small", "one-shot", "ragged", "mixed"],
    )
    def test_emitted_pairs_bit_identical(self, sizes):
        _, native_emitted, _, batch_emitted = self._run_both(sizes)
        assert len(native_emitted) > 0
        assert native_emitted == batch_emitted  # (i, h_disp) exact

    def test_results_bit_identical_under_random_chunkings(self):
        hypothesis = pytest.importorskip("hypothesis")
        from hypothesis import given, settings, strategies as st

        @settings(max_examples=15, deadline=None)
        @given(sizes=st.lists(st.integers(1, 80), min_size=1, max_size=6))
        def check(sizes):
            native, native_emitted, batch, batch_emitted = self._run_both(
                sizes
            )
            assert native_emitted == batch_emitted
            n_res, b_res = native.result(), batch.result()
            assert n_res.mode == b_res.mode
            assert (n_res.n_win, n_res.n_hop) == (b_res.n_win, b_res.n_hop)
            assert np.array_equal(n_res.h_disp, b_res.h_disp)
            assert np.array_equal(n_res.scores, b_res.scores)

        check()
