"""Unit tests for SyncResult (CADHD, h_dist) and the Synchronizer protocol."""

import numpy as np
import pytest

from repro.signals import Signal
from repro.sync import DwmSynchronizer, FastDtwSynchronizer, SyncResult
from repro.sync.base import Synchronizer


class TestSyncResult:
    def test_mode_validation(self):
        with pytest.raises(ValueError, match="mode"):
            SyncResult(h_disp=np.zeros(3), mode="diagonal")

    def test_h_dist_is_abs(self):
        r = SyncResult(h_disp=np.array([-2.0, 0.0, 3.0]), mode="window")
        assert np.allclose(r.h_dist, [2.0, 0.0, 3.0])

    def test_n_indexes(self):
        r = SyncResult(h_disp=np.zeros(7), mode="point")
        assert r.n_indexes == 7

    def test_cadhd_eq17(self):
        """c_disp[i] = sum |h[j] - h[j-1]| with h[-1] = 0."""
        r = SyncResult(h_disp=np.array([2.0, 5.0, 1.0]), mode="window")
        # |2-0| + |5-2| + |1-5| = 2, 5, 9 cumulative
        assert np.allclose(r.cadhd(), [2.0, 5.0, 9.0])

    def test_cadhd_monotone(self):
        rng = np.random.default_rng(0)
        r = SyncResult(h_disp=rng.standard_normal(50), mode="window")
        c = r.cadhd()
        assert np.all(np.diff(c) >= 0)

    def test_cadhd_empty(self):
        r = SyncResult(h_disp=np.zeros(0), mode="window")
        assert r.cadhd().size == 0

    def test_cadhd_flat_displacement_counts_initial_jump(self):
        r = SyncResult(h_disp=np.full(4, 3.0), mode="window")
        assert np.allclose(r.cadhd(), [3.0, 3.0, 3.0, 3.0])


class TestProtocol:
    def test_dwm_satisfies_protocol(self):
        from repro.sync import UM3_DWM_PARAMS

        assert isinstance(DwmSynchronizer(UM3_DWM_PARAMS), Synchronizer)

    def test_fastdtw_satisfies_protocol(self):
        assert isinstance(FastDtwSynchronizer(), Synchronizer)
