"""Unit tests for Dynamic Window Matching (batch and streaming)."""

import numpy as np
import pytest

from repro.signals import Signal
from repro.sync import (
    DwmParams,
    DwmSynchronizer,
    RM3_DWM_PARAMS,
    StreamingDwm,
    UM3_DWM_PARAMS,
)


def chirpy_signal(n=4000, fs=100.0, seed=0):
    """A non-periodic broadband signal DWM can lock onto."""
    rng = np.random.default_rng(seed)
    base = rng.standard_normal(n)
    kernel = np.exp(-np.arange(20) / 5.0)
    return np.convolve(base, kernel, mode="same")


def shifted_pair(shift=25, n=4000, fs=100.0):
    """Reference and a copy delayed by a constant number of samples."""
    data = chirpy_signal(n + abs(shift) + 10, fs)
    ref = Signal(data[: n], fs)
    obs = Signal(data[shift : n + shift], fs)  # obs[i] = ref[i + shift]
    return obs, ref


class TestDwmParams:
    def test_table_iv_values(self):
        assert UM3_DWM_PARAMS == DwmParams(4.0, 2.0, 2.0, 1.0, 0.1)
        assert RM3_DWM_PARAMS == DwmParams(1.0, 0.5, 0.1, 0.05, 0.1)

    def test_sample_conversion(self):
        p = DwmParams(2.0, 1.0, 0.5, 0.25)
        assert p.n_win(100.0) == 200
        assert p.n_hop(100.0) == 100
        assert p.n_ext(100.0) == 50
        assert p.n_sigma(100.0) == pytest.approx(25.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DwmParams(0.0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError, match="t_hop"):
            DwmParams(1.0, 2.0, 1.0, 1.0)  # hop > win
        with pytest.raises(ValueError):
            DwmParams(1.0, 0.5, 0.0, 1.0)
        with pytest.raises(ValueError):
            DwmParams(1.0, 0.5, 1.0, -1.0)
        with pytest.raises(ValueError, match="eta"):
            DwmParams(1.0, 0.5, 1.0, 1.0, eta=1.5)

    def test_scaled(self):
        p = DwmParams(4.0, 2.0, 2.0, 1.0, 0.1).scaled(0.5)
        assert p == DwmParams(2.0, 1.0, 1.0, 0.5, 0.1)


class TestDwmBatch:
    PARAMS = DwmParams(t_win=1.0, t_hop=0.5, t_ext=0.5, t_sigma=0.25, eta=0.2)

    def test_identical_signals_zero_displacement(self):
        sig = Signal(chirpy_signal(), 100.0)
        sync = DwmSynchronizer(self.PARAMS).synchronize(sig, sig)
        assert sync.mode == "window"
        assert np.allclose(sync.h_disp, 0.0)
        assert np.allclose(sync.scores, 1.0, atol=1e-9)

    def test_constant_shift_recovered(self):
        obs, ref = shifted_pair(shift=25)
        sync = DwmSynchronizer(self.PARAMS).synchronize(obs, ref)
        # obs[i] = ref[i + 25] so windows of obs match ref 25 samples later.
        assert np.median(sync.h_disp[2:]) == pytest.approx(25, abs=2)

    def test_negative_shift_recovered(self):
        data = chirpy_signal(4100)
        ref = Signal(data[30:4030], 100.0)
        obs = Signal(data[:4000], 100.0)
        sync = DwmSynchronizer(self.PARAMS).synchronize(obs, ref)
        assert np.median(sync.h_disp[2:]) == pytest.approx(-30, abs=2)

    def test_growing_drift_tracked(self):
        """A 2% rate difference — the Fig. 1 scenario."""
        fs = 100.0
        n = 6000
        data = chirpy_signal(int(n * 1.05) + 10, fs)
        ref = Signal(data[:n], fs)
        # Observation runs 2% fast: obs(t) = ref(1.02 t).
        t_obs = np.arange(int(n / 1.02)) * 1.02
        obs = Signal(np.interp(t_obs, np.arange(n), data[:n]), fs)
        sync = DwmSynchronizer(self.PARAMS).synchronize(obs, ref)
        # By the last window, ref is ~2% of elapsed time ahead.
        i_last = sync.n_indexes - 1
        expected = 0.02 * (i_last * self.PARAMS.n_hop(fs))
        assert sync.h_disp[i_last] == pytest.approx(expected, rel=0.3)

    def test_rate_mismatch_rejected(self):
        a = Signal(np.zeros(100), 10.0)
        b = Signal(np.zeros(100), 20.0)
        with pytest.raises(ValueError, match="rates"):
            DwmSynchronizer(self.PARAMS).synchronize(a, b)

    def test_short_reference_stops_early(self):
        obs = Signal(chirpy_signal(4000), 100.0)
        ref = Signal(chirpy_signal(2000), 100.0)
        sync = DwmSynchronizer(self.PARAMS).synchronize(obs, ref)
        assert sync.n_indexes < obs.n_windows(
            self.PARAMS.n_win(100.0), self.PARAMS.n_hop(100.0)
        )

    def test_multichannel_signals(self):
        data = chirpy_signal(4000)
        two = np.column_stack([data, np.roll(data, 3)])
        sig = Signal(two, 100.0)
        sync = DwmSynchronizer(self.PARAMS).synchronize(sig, sig)
        assert np.allclose(sync.h_disp, 0.0)

    def test_cadhd_zero_for_identical(self):
        sig = Signal(chirpy_signal(), 100.0)
        sync = DwmSynchronizer(self.PARAMS).synchronize(sig, sig)
        assert sync.cadhd()[-1] == pytest.approx(0.0)

    def test_eta_zero_still_tracks_constant_shift(self):
        params = DwmParams(1.0, 0.5, 0.5, 0.25, eta=0.0)
        obs, ref = shifted_pair(shift=10)
        sync = DwmSynchronizer(params).synchronize(obs, ref)
        assert np.median(sync.h_disp[2:]) == pytest.approx(10, abs=2)


class TestStreamingDwm:
    PARAMS = DwmParams(t_win=1.0, t_hop=0.5, t_ext=0.5, t_sigma=0.25, eta=0.2)

    def test_matches_batch_result(self):
        obs, ref = shifted_pair(shift=15)
        batch = DwmSynchronizer(self.PARAMS).synchronize(obs, ref)

        stream = StreamingDwm(ref, self.PARAMS)
        emitted = []
        for start in range(0, obs.n_samples, 173):  # awkward chunk size
            emitted.extend(stream.push(obs.data[start : start + 173]))
        result = stream.result()

        assert [i for i, _ in emitted] == list(range(batch.n_indexes))
        assert np.allclose(result.h_disp, batch.h_disp)
        assert np.allclose(result.scores, batch.scores)

    def test_incremental_emission(self):
        obs, ref = shifted_pair(shift=0)
        stream = StreamingDwm(ref, self.PARAMS)
        n_win = self.PARAMS.n_win(100.0)
        # Not enough samples yet: nothing emitted.
        assert stream.push(obs.data[: n_win - 1]) == []
        # One more sample completes the first window.
        out = stream.push(obs.data[n_win - 1 : n_win])
        assert len(out) == 1
        assert out[0][0] == 0

    def test_channel_mismatch_rejected(self):
        ref = Signal(np.zeros((100, 2)), 10.0)
        stream = StreamingDwm(ref, DwmParams(1.0, 0.5, 0.5, 0.25))
        with pytest.raises(ValueError, match="channels"):
            stream.push(np.zeros((5, 3)))

    def test_exhausted_reference_stops_emitting(self):
        obs = Signal(chirpy_signal(4000), 100.0)
        ref = Signal(chirpy_signal(1000), 100.0)
        stream = StreamingDwm(ref, self.PARAMS)
        stream.push(obs.data)
        n_before = stream.n_windows_done
        assert stream.push(np.zeros((500, 1))) == []
        assert stream.n_windows_done == n_before

    def test_1d_chunks_accepted(self):
        ref = Signal(chirpy_signal(1000), 100.0)
        stream = StreamingDwm(ref, self.PARAMS)
        out = stream.push(chirpy_signal(1000))
        assert len(out) > 0


class TestFastPathDifferential:
    """The hoisted fast step vs the instrumented reference step.

    With observability disabled the streaming cursor takes ``_step_fast``
    (no span wrappers, cached Gaussian bias, direct correlation kernel);
    with it enabled it takes the original ``_dwm_step``.  Both must emit
    bit-identical displacements and scores — the fast path is an
    *overhead* optimization, never a numerical one.
    """

    PARAMS = DwmParams(t_win=1.0, t_hop=0.5, t_ext=0.5, t_sigma=0.25, eta=0.2)

    @staticmethod
    def _run(obs_sig, ref, params, chunk, enable_obs):
        from repro import obs as obs_mod

        stream = StreamingDwm(ref, params)
        emitted = []
        was_enabled = obs_mod.enabled()
        if enable_obs:
            obs_mod.enable()
        try:
            for start in range(0, obs_sig.n_samples, chunk):
                emitted.extend(
                    stream.push(obs_sig.data[start : start + chunk])
                )
        finally:
            if enable_obs and not was_enabled:
                obs_mod.disable()
        return emitted, stream.result()

    @pytest.mark.parametrize("shift", [0, 15, -20])
    @pytest.mark.parametrize("chunk", [1, 97, 4000])
    def test_fast_and_slow_paths_bit_identical(self, shift, chunk):
        obs_sig, ref = shifted_pair(shift=shift, n=2000)
        fast_emitted, fast = self._run(
            obs_sig, ref, self.PARAMS, chunk, enable_obs=False
        )
        slow_emitted, slow = self._run(
            obs_sig, ref, self.PARAMS, chunk, enable_obs=True
        )
        assert fast_emitted == slow_emitted
        assert np.array_equal(fast.h_disp, slow.h_disp)
        assert np.array_equal(fast.scores, slow.scores)

    def test_fast_path_matches_drifting_stream(self):
        """A drifting (resampled) observed stream exercises non-trivial
        search centres and clamping on both paths."""
        data = chirpy_signal(3000)
        drift = np.interp(
            np.linspace(0, data.size - 1, data.size) * 1.01,
            np.arange(data.size),
            data,
        )
        ref = Signal(data, 100.0)
        obs_sig = Signal(drift, 100.0)
        _, fast = self._run(obs_sig, ref, self.PARAMS, 50, enable_obs=False)
        _, slow = self._run(obs_sig, ref, self.PARAMS, 50, enable_obs=True)
        assert np.array_equal(fast.h_disp, slow.h_disp)
        assert np.array_equal(fast.scores, slow.scores)

    def test_custom_similarity_never_takes_fast_path(self):
        """A non-correlation similarity must use the generic step even
        with observability disabled (the fast kernel hard-codes
        correlation)."""
        from repro.signals.metrics import correlation_similarity

        def wrapped(x, y):
            return correlation_similarity(x, y)

        obs_sig, ref = shifted_pair(shift=10, n=1500)
        generic = StreamingDwm(ref, self.PARAMS, similarity=wrapped)
        generic.push(obs_sig.data)
        fast = StreamingDwm(ref, self.PARAMS)
        fast.push(obs_sig.data)
        assert np.array_equal(
            generic.result().h_disp, fast.result().h_disp
        )
