"""Unit tests for the slicer (outline -> G-code)."""

import numpy as np
import pytest

from repro.slicer import Slicer, SlicerConfig, slice_model, square_outline


def simple_config(**overrides):
    params = dict(object_height=0.4, layer_height=0.2, infill_spacing=4.0)
    params.update(overrides)
    return SlicerConfig(**params)


class TestConfig:
    def test_n_layers(self):
        assert simple_config().n_layers == 2
        assert simple_config(object_height=7.5, layer_height=0.2).n_layers == 38
        assert simple_config(object_height=7.5, layer_height=0.3).n_layers == 25

    def test_validation(self):
        with pytest.raises(ValueError):
            SlicerConfig(layer_height=0.0)
        with pytest.raises(ValueError):
            SlicerConfig(object_height=0.1, layer_height=0.2)
        with pytest.raises(ValueError):
            SlicerConfig(print_speed=-1.0)
        with pytest.raises(ValueError):
            SlicerConfig(infill_spacing=0.0)
        with pytest.raises(ValueError):
            SlicerConfig(infill_pattern="gyroid")
        with pytest.raises(ValueError):
            SlicerConfig(scale=0.0)

    def test_with_updates(self):
        cfg = simple_config().with_updates(infill_pattern="grid")
        assert cfg.infill_pattern == "grid"
        assert cfg.layer_height == 0.2


class TestSlicing:
    OUTLINE = square_outline(20.0)

    def slice(self, **overrides):
        return slice_model(self.OUTLINE, simple_config(**overrides))

    def test_has_preamble(self):
        program = self.slice()
        codes = [c.code for c in program][:6]
        assert codes == ["M140", "M104", "M190", "M109", "G28", "G92"]

    def test_has_shutdown(self):
        program = self.slice()
        tail = [c.code for c in program][-4:]
        assert tail == ["M107", "M104", "M140", "G28"]

    def test_layer_count_in_gcode(self):
        program = self.slice()
        layer_moves = [
            c for c in program if c.comment and c.comment.startswith("LAYER:")
        ]
        assert len(layer_moves) == 2
        assert layer_moves[0].get("Z") == pytest.approx(0.2)
        assert layer_moves[1].get("Z") == pytest.approx(0.4)

    def test_extrusion_monotone(self):
        program = self.slice()
        e_values = [c.get("E") for c in program if c.get("E") is not None]
        # skip the G92 E0 reset at index 0
        increasing = e_values[1:]
        assert all(b >= a for a, b in zip(increasing, increasing[1:]))

    def test_perimeter_before_infill(self):
        """First extruding moves of a layer trace the outline vertices."""
        program = self.slice()
        moves = [c for c in program if c.code == "G1" and c.get("X") is not None]
        first = moves[0]
        corner = np.array([first.get("X"), first.get("Y")])
        outline_pts = self.OUTLINE + np.array([110.0, 110.0])
        distances = np.linalg.norm(outline_pts - corner, axis=1)
        assert distances.min() < 1e-6

    def test_travel_moves_do_not_extrude(self):
        program = self.slice()
        for c in program:
            if c.code == "G0":
                assert c.get("E") is None

    def test_scale_applied(self):
        small = slice_model(self.OUTLINE, simple_config(scale=0.5))
        xs = [c.get("X") for c in small if c.is_move and c.get("X") is not None]
        span = max(xs) - min(xs)
        assert span == pytest.approx(10.0, abs=1.0)

    def test_center_applied(self):
        program = slice_model(self.OUTLINE, simple_config(), center=(0.0, 0.0))
        xs = [c.get("X") for c in program if c.is_move and c.get("X") is not None]
        assert abs(np.mean(xs)) < 2.0

    def test_grid_pattern_mixes_angles_within_layer(self):
        def layer0_angles(program):
            angles = set()
            prev = None
            layer = -1
            for c in program:
                if c.comment and c.comment.startswith("LAYER:"):
                    layer += 1
                if layer != 0 or not c.is_move:
                    continue
                x, y = c.get("X"), c.get("Y")
                if x is None or y is None:
                    continue
                point = np.array([x, y])
                if prev is not None and c.code == "G1" and c.get("E") is not None:
                    d = point - prev
                    if np.linalg.norm(d) > 1e-9:
                        angles.add(round(np.degrees(np.arctan2(d[1], d[0])) % 180, 1))
                prev = point
            return angles

        lines_infill_angles = layer0_angles(self.slice(infill_pattern="lines")) - {0.0, 90.0}
        grid_infill_angles = layer0_angles(self.slice(infill_pattern="grid")) - {0.0, 90.0}
        # lines: one diagonal family in layer 0; grid: both diagonals.
        assert lines_infill_angles == {45.0}
        assert grid_infill_angles == {45.0, 135.0}

    def test_fan_enabled_at_configured_layer(self):
        program = slice_model(
            square_outline(10.0),
            SlicerConfig(object_height=1.0, layer_height=0.2, fan_from_layer=2),
        )
        codes = [c.code for c in program]
        assert "M106" in codes

    def test_feedrates_match_config(self):
        program = self.slice(print_speed=33.0, travel_speed=99.0)
        printing = {c.get("F") for c in program if c.code == "G1" and c.get("E") is not None}
        travels = {c.get("F") for c in program if c.code == "G0"}
        assert printing == {33.0 * 60.0}
        assert travels == {99.0 * 60.0}
