"""Unit + property tests for 2-D polygon geometry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.slicer import (
    bounding_box,
    clip_segments,
    point_in_polygon,
    polygon_area,
    polygon_centroid,
    polygon_perimeter,
    scale_polygon,
    translate_polygon,
)

SQUARE = np.array([[0.0, 0.0], [2.0, 0.0], [2.0, 2.0], [0.0, 2.0]])
TRIANGLE = np.array([[0.0, 0.0], [4.0, 0.0], [0.0, 3.0]])


class TestAreaPerimeter:
    def test_square_area(self):
        assert polygon_area(SQUARE) == pytest.approx(4.0)

    def test_triangle_area(self):
        assert polygon_area(TRIANGLE) == pytest.approx(6.0)

    def test_clockwise_negative(self):
        assert polygon_area(SQUARE[::-1]) == pytest.approx(-4.0)

    def test_square_perimeter(self):
        assert polygon_perimeter(SQUARE) == pytest.approx(8.0)

    def test_triangle_perimeter(self):
        assert polygon_perimeter(TRIANGLE) == pytest.approx(12.0)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            polygon_area(np.array([[0.0, 0.0], [1.0, 1.0]]))


class TestCentroidTransforms:
    def test_square_centroid(self):
        assert np.allclose(polygon_centroid(SQUARE), [1.0, 1.0])

    def test_translate(self):
        moved = translate_polygon(SQUARE, [5.0, -1.0])
        assert np.allclose(polygon_centroid(moved), [6.0, 0.0])

    def test_scale_preserves_centroid(self):
        scaled = scale_polygon(SQUARE, 0.5)
        assert np.allclose(polygon_centroid(scaled), [1.0, 1.0])

    def test_scale_area_quadratic(self):
        scaled = scale_polygon(SQUARE, 0.95)
        assert polygon_area(scaled) == pytest.approx(4.0 * 0.95**2)

    @given(factor=st.floats(0.1, 3.0))
    @settings(max_examples=30, deadline=None)
    def test_scale_perimeter_linear(self, factor):
        scaled = scale_polygon(TRIANGLE, factor)
        assert polygon_perimeter(scaled) == pytest.approx(12.0 * factor)


class TestContainment:
    def test_inside(self):
        assert point_in_polygon(SQUARE, (1.0, 1.0))

    def test_outside(self):
        assert not point_in_polygon(SQUARE, (3.0, 1.0))
        assert not point_in_polygon(SQUARE, (-0.1, 1.0))

    def test_concave_polygon(self):
        # A "C" shape: inside the notch is outside the polygon.
        c_shape = np.array(
            [[0, 0], [3, 0], [3, 1], [1, 1], [1, 2], [3, 2], [3, 3], [0, 3]],
            dtype=float,
        )
        assert point_in_polygon(c_shape, (0.5, 1.5))
        assert not point_in_polygon(c_shape, (2.0, 1.5))

    def test_bounding_box(self):
        lo, hi = bounding_box(TRIANGLE)
        assert np.allclose(lo, [0.0, 0.0])
        assert np.allclose(hi, [4.0, 3.0])


class TestClipSegments:
    def test_line_through_square(self):
        segs = clip_segments(SQUARE, np.array([-1.0, 1.0]), np.array([3.0, 1.0]))
        assert len(segs) == 1
        (a, b), = segs
        assert np.allclose(a, [0.0, 1.0])
        assert np.allclose(b, [2.0, 1.0])

    def test_line_missing_square(self):
        segs = clip_segments(SQUARE, np.array([-1.0, 5.0]), np.array([3.0, 5.0]))
        assert segs == []

    def test_line_inside_only(self):
        segs = clip_segments(SQUARE, np.array([0.5, 0.5]), np.array([1.5, 1.5]))
        assert len(segs) == 1
        (a, b), = segs
        assert np.allclose(a, [0.5, 0.5])
        assert np.allclose(b, [1.5, 1.5])

    def test_concave_produces_two_segments(self):
        c_shape = np.array(
            [[0, 0], [3, 0], [3, 1], [1, 1], [1, 2], [3, 2], [3, 3], [0, 3]],
            dtype=float,
        )
        # A vertical line at x=2 crosses the two arms of the C.
        segs = clip_segments(
            c_shape, np.array([2.0, -1.0]), np.array([2.0, 4.0])
        )
        assert len(segs) == 2

    def test_zero_length_segment(self):
        assert clip_segments(SQUARE, np.array([1.0, 1.0]), np.array([1.0, 1.0])) == []

    def test_clipped_total_length_bounded(self):
        p0, p1 = np.array([-5.0, 1.0]), np.array([5.0, 1.0])
        segs = clip_segments(SQUARE, p0, p1)
        total = sum(np.linalg.norm(b - a) for a, b in segs)
        assert total <= 10.0 + 1e-9
        assert total == pytest.approx(2.0)
