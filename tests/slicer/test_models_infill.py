"""Unit tests for part models and infill generation."""

import numpy as np
import pytest

from repro.slicer import (
    PAPER_GEAR,
    circle_outline,
    gear_outline,
    grid_infill,
    infill_for_layer,
    line_infill,
    point_in_polygon,
    polygon_area,
    square_outline,
)


class TestGear:
    def test_paper_gear_dimensions(self):
        radii = np.linalg.norm(PAPER_GEAR, axis=1)
        assert radii.max() == pytest.approx(30.0, abs=0.01)
        assert radii.min() == pytest.approx(27.0, abs=0.01)

    def test_tooth_count_via_radius_peaks(self):
        gear = gear_outline(n_teeth=8, points_per_tooth=20)
        radii = np.linalg.norm(gear, axis=1)
        at_tip = radii > radii.max() - 1e-6
        # Count contiguous runs of tip samples.
        transitions = np.sum(np.diff(at_tip.astype(int)) == 1)
        assert transitions == 8

    def test_gear_is_closed_simple_polygon(self):
        gear = gear_outline()
        assert polygon_area(gear) > 0  # counter-clockwise

    def test_validation(self):
        with pytest.raises(ValueError):
            gear_outline(n_teeth=2)
        with pytest.raises(ValueError):
            gear_outline(outer_diameter=0)
        with pytest.raises(ValueError):
            gear_outline(tooth_depth=100.0)
        with pytest.raises(ValueError):
            gear_outline(points_per_tooth=2)


class TestSimpleShapes:
    def test_circle_area_approaches_pi_r2(self):
        c = circle_outline(diameter=10.0, n_points=256)
        assert polygon_area(c) == pytest.approx(np.pi * 25.0, rel=0.01)

    def test_square(self):
        s = square_outline(4.0)
        assert polygon_area(s) == pytest.approx(16.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            circle_outline(diameter=-1.0)
        with pytest.raises(ValueError):
            circle_outline(n_points=2)
        with pytest.raises(ValueError):
            square_outline(0.0)


class TestInfill:
    SQ = square_outline(10.0)

    def test_lines_inside_outline(self):
        for a, b in line_infill(self.SQ, spacing=2.0, angle_deg=0.0):
            mid = (a + b) / 2
            assert point_in_polygon(self.SQ, mid)

    def test_horizontal_lines_have_constant_y(self):
        for a, b in line_infill(self.SQ, spacing=2.0, angle_deg=0.0):
            assert a[1] == pytest.approx(b[1])

    def test_spacing_respected(self):
        segs = line_infill(self.SQ, spacing=2.0, angle_deg=0.0)
        ys = sorted({round(a[1], 6) for a, _ in segs})
        diffs = np.diff(ys)
        assert np.allclose(diffs, 2.0)

    def test_boustrophedon_ordering(self):
        segs = line_infill(self.SQ, spacing=2.0, angle_deg=0.0)
        directions = [np.sign(b[0] - a[0]) for a, b in segs]
        assert any(d > 0 for d in directions)
        assert any(d < 0 for d in directions)

    def test_angled_lines(self):
        for a, b in line_infill(self.SQ, spacing=3.0, angle_deg=45.0):
            d = b - a
            angle = np.degrees(np.arctan2(d[1], d[0])) % 180
            assert angle == pytest.approx(45.0, abs=1e-6)

    def test_grid_has_two_directions(self):
        segs = grid_infill(self.SQ, spacing=2.0, angle_deg=0.0)
        angles = {
            round(np.degrees(np.arctan2(*(b - a)[::-1])) % 180, 3)
            for a, b in segs
        }
        assert angles == {0.0, 90.0}

    def test_grid_total_length_comparable_to_lines(self):
        lines = line_infill(self.SQ, spacing=2.0, angle_deg=0.0)
        grid = grid_infill(self.SQ, spacing=2.0, angle_deg=0.0)
        length = lambda segs: sum(np.linalg.norm(b - a) for a, b in segs)
        assert length(grid) == pytest.approx(length(lines), rel=0.3)

    def test_layer_dispatch_alternates_angle(self):
        l0 = infill_for_layer(self.SQ, 2.0, layer=0, pattern="lines", base_angle=0.0)
        l1 = infill_for_layer(self.SQ, 2.0, layer=1, pattern="lines", base_angle=0.0)
        a0 = np.degrees(np.arctan2(*(l0[0][1] - l0[0][0])[::-1])) % 180
        a1 = np.degrees(np.arctan2(*(l1[0][1] - l1[0][0])[::-1])) % 180
        assert abs(a0 - a1) == pytest.approx(90.0)

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError, match="unknown infill"):
            infill_for_layer(self.SQ, 2.0, 0, pattern="honeycomb")

    def test_invalid_spacing(self):
        with pytest.raises(ValueError):
            line_infill(self.SQ, spacing=0.0, angle_deg=0.0)

    def test_gear_infill_nonempty(self):
        segs = line_infill(PAPER_GEAR, spacing=4.0, angle_deg=45.0)
        assert len(segs) >= 10


class TestTriangleInfill:
    SQ = square_outline(12.0)

    def test_three_angle_families(self):
        from repro.slicer import triangle_infill

        segs = triangle_infill(self.SQ, spacing=2.0, angle_deg=0.0)
        angles = {
            round(np.degrees(np.arctan2(*(b - a)[::-1])) % 180, 1)
            for a, b in segs
        }
        assert angles == {0.0, 60.0, 120.0}

    def test_segments_inside(self):
        from repro.slicer import point_in_polygon, triangle_infill

        for a, b in triangle_infill(self.SQ, spacing=2.0):
            assert point_in_polygon(self.SQ, (a + b) / 2)


class TestConcentricInfill:
    def test_rings_are_closed(self):
        from repro.slicer import concentric_infill

        segs = concentric_infill(square_outline(12.0), spacing=2.0)
        assert segs
        # Segments chain: each ring's ends meet (total endpoint mismatch 0).
        starts = {tuple(np.round(a, 6)) for a, _ in segs}
        ends = {tuple(np.round(b, 6)) for _, b in segs}
        assert starts == ends

    def test_rings_shrink_toward_centroid(self):
        from repro.slicer import concentric_infill

        segs = concentric_infill(square_outline(12.0), spacing=2.0)
        radii = sorted({round(max(abs(a[0]), abs(a[1])), 4) for a, _ in segs})
        assert len(radii) >= 2
        assert radii[0] < radii[-1] < 6.0  # all strictly inside the outline

    def test_invalid_spacing(self):
        from repro.slicer import concentric_infill

        with pytest.raises(ValueError):
            concentric_infill(square_outline(10.0), spacing=0.0)

    def test_slicer_accepts_new_patterns(self):
        from repro.slicer import SlicerConfig, slice_model

        for pattern in ("triangles", "concentric"):
            program = slice_model(
                square_outline(10.0),
                SlicerConfig(object_height=0.4, layer_height=0.2,
                             infill_pattern=pattern),
            )
            assert len(program) > 10, pattern


class TestInfillDensityAttack:
    def test_less_material(self):
        from repro.attacks import InfillDensityAttack, PrintJob
        from repro.slicer import SlicerConfig

        job = PrintJob.slice(
            square_outline(20.0),
            SlicerConfig(object_height=0.4, layer_height=0.2, infill_spacing=3.0),
        )
        attacked = InfillDensityAttack(spacing_factor=2.0).apply(job)
        e = lambda p: max(c.get("E") for c in p if c.get("E") is not None)
        assert e(attacked.program) < e(job.program)

    def test_validation(self):
        from repro.attacks import InfillDensityAttack

        with pytest.raises(ValueError):
            InfillDensityAttack(spacing_factor=0.0)
