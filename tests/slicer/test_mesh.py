"""Unit + property tests for the mesh/STL substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.slicer import (
    extrude_outline,
    gear_outline,
    load_stl,
    mesh_bounds,
    polygon_area,
    save_stl,
    slice_mesh,
    square_outline,
)


@pytest.fixture(scope="module")
def gear_mesh():
    return extrude_outline(gear_outline(n_teeth=8, outer_diameter=30.0), 5.0)


class TestExtrude:
    def test_triangle_count(self):
        square = square_outline(10.0)
        mesh = extrude_outline(square, 2.0)
        # 4 edges x (2 side + 2 cap) triangles
        assert mesh.shape == (16, 3, 3)

    def test_bounds(self):
        mesh = extrude_outline(square_outline(10.0), 2.0)
        lo, hi = mesh_bounds(mesh)
        assert np.allclose(lo, [-5.0, -5.0, 0.0])
        assert np.allclose(hi, [5.0, 5.0, 2.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            extrude_outline(np.zeros((2, 2)), 1.0)
        with pytest.raises(ValueError):
            extrude_outline(square_outline(5.0), 0.0)


class TestSliceMesh:
    def test_mid_slice_recovers_outline(self, gear_mesh):
        gear = gear_outline(n_teeth=8, outer_diameter=30.0)
        polys = slice_mesh(gear_mesh, 2.5)
        assert len(polys) == 1
        assert abs(polygon_area(polys[0])) == pytest.approx(
            abs(polygon_area(gear)), rel=1e-6
        )

    def test_slice_outside_mesh_empty(self, gear_mesh):
        assert slice_mesh(gear_mesh, 7.0) == []
        assert slice_mesh(gear_mesh, -1.0) == []

    def test_square_slice_is_square(self):
        mesh = extrude_outline(square_outline(10.0), 4.0)
        polys = slice_mesh(mesh, 1.0)
        assert len(polys) == 1
        assert abs(polygon_area(polys[0])) == pytest.approx(100.0, rel=1e-6)

    def test_bad_mesh_shape(self):
        with pytest.raises(ValueError):
            slice_mesh(np.zeros((4, 3)), 1.0)

    @given(z=st.floats(0.3, 4.7))
    @settings(max_examples=15, deadline=None)
    def test_any_interior_height_same_area(self, z):
        """A prism's cross-section is constant — the slicer invariant."""
        mesh = extrude_outline(square_outline(8.0), 5.0)
        polys = slice_mesh(mesh, z)
        total = sum(abs(polygon_area(p)) for p in polys)
        assert total == pytest.approx(64.0, rel=1e-5)


class TestStlRoundtrip:
    def test_binary_roundtrip(self, gear_mesh, tmp_path):
        save_stl(gear_mesh, tmp_path / "gear.stl")
        loaded = load_stl(tmp_path / "gear.stl")
        assert loaded.shape == gear_mesh.shape
        assert np.abs(loaded - gear_mesh).max() < 1e-5  # float32 storage

    def test_ascii_parsing(self, tmp_path):
        text = """solid demo
facet normal 0 0 1
  outer loop
    vertex 0 0 0
    vertex 1 0 0
    vertex 0 1 0
  endloop
endfacet
endsolid demo
"""
        (tmp_path / "tri.stl").write_text(text)
        mesh = load_stl(tmp_path / "tri.stl")
        assert mesh.shape == (1, 3, 3)
        assert np.allclose(mesh[0][1], [1, 0, 0])

    def test_truncated_binary_rejected(self, tmp_path):
        (tmp_path / "bad.stl").write_bytes(b"\0" * 83)
        with pytest.raises(ValueError, match="truncated"):
            load_stl(tmp_path / "bad.stl")

    def test_wrong_count_rejected(self, tmp_path):
        import struct

        raw = b"\0" * 80 + struct.pack("<I", 5) + b"\0" * 10
        (tmp_path / "bad.stl").write_bytes(raw)
        with pytest.raises(ValueError, match="truncated"):
            load_stl(tmp_path / "bad.stl")

    def test_empty_ascii_rejected(self, tmp_path):
        (tmp_path / "empty.stl").write_text("solid nothing facet\nendsolid")
        with pytest.raises(ValueError, match="no facets"):
            load_stl(tmp_path / "empty.stl")

    def test_save_validates_shape(self, tmp_path):
        with pytest.raises(ValueError):
            save_stl(np.zeros((3, 3)), tmp_path / "x.stl")


class TestStlToGcodePipeline:
    def test_stl_to_print_job(self, gear_mesh, tmp_path):
        """The full design-model path: STL -> slice -> G-code."""
        from repro.attacks import PrintJob
        from repro.slicer import SlicerConfig

        save_stl(gear_mesh, tmp_path / "part.stl")
        mesh = load_stl(tmp_path / "part.stl")
        outline = slice_mesh(mesh, 2.5)[0]
        job = PrintJob.slice(
            outline,
            SlicerConfig(object_height=0.4, layer_height=0.2, infill_spacing=6.0),
        )
        assert len(job.program) > 10
        assert any(c.is_move for c in job.program)
