"""Shared fixtures: tiny print jobs and a session-scoped mini campaign.

Simulation is the expensive part of this test suite, so everything derived
from the simulator is session-scoped and deliberately small (a 2-3 layer
slice of the paper's gear, one or two side channels).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

try:
    from hypothesis import HealthCheck, settings

    # CI profile: no wall-clock deadline (shared runners stall), a bounded
    # example budget, and printed reproduction blobs so a red property run
    # in the log is replayable locally.  Select with HYPOTHESIS_PROFILE=ci;
    # the default profile stays untouched for local runs.
    settings.register_profile(
        "ci",
        deadline=None,
        max_examples=30,
        print_blob=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
except ImportError:  # pragma: no cover - hypothesis ships with [dev]
    pass

from repro.attacks import PrintJob
from repro.eval import Campaign, default_setup, generate_campaign
from repro.printer import (
    NO_TIME_NOISE,
    TimeNoiseModel,
    ULTIMAKER3,
    simulate_print,
)
from repro.sensors import default_daq
from repro.signals import Signal
from repro.slicer import SlicerConfig, gear_outline


@pytest.fixture(scope="session")
def gear_outline_small() -> np.ndarray:
    return gear_outline(n_teeth=12, outer_diameter=30.0, tooth_depth=2.0)


@pytest.fixture(scope="session")
def tiny_config() -> SlicerConfig:
    return SlicerConfig(
        object_height=0.4, layer_height=0.2, infill_spacing=6.0
    )


@pytest.fixture(scope="session")
def tiny_job(gear_outline_small, tiny_config) -> PrintJob:
    return PrintJob.slice(gear_outline_small, tiny_config)


@pytest.fixture(scope="session")
def tiny_trace(tiny_job):
    """Deterministic (noise-free) trace of the tiny job."""
    return simulate_print(tiny_job.program, ULTIMAKER3, NO_TIME_NOISE, seed=0)


@pytest.fixture(scope="session")
def noisy_trace(tiny_job):
    return simulate_print(
        tiny_job.program, ULTIMAKER3, TimeNoiseModel(), seed=1
    )


@pytest.fixture(scope="session")
def acc_pair(tiny_job):
    """(observed, reference) ACC signals of two noisy runs of the same job."""
    daq = default_daq()
    ref_trace = simulate_print(
        tiny_job.program, ULTIMAKER3, TimeNoiseModel(), seed=10
    )
    obs_trace = simulate_print(
        tiny_job.program, ULTIMAKER3, TimeNoiseModel(), seed=11
    )
    ref = daq.acquire(ref_trace, np.random.default_rng(0), channels=["ACC"])["ACC"]
    obs = daq.acquire(obs_trace, np.random.default_rng(1), channels=["ACC"])["ACC"]
    return obs, ref


@pytest.fixture(scope="session")
def mini_campaign() -> Campaign:
    """Smallest meaningful campaign: ACC only, 3+3 benign, 1 run/attack."""
    setup = default_setup("UM3", object_height=0.4)
    return generate_campaign(
        setup,
        channels=("ACC",),
        n_train=3,
        n_benign_test=3,
        n_attack_runs=1,
        seed=42,
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture()
def sine_signal() -> Signal:
    t = np.arange(0, 2.0, 1 / 100.0)
    return Signal(np.sin(2 * np.pi * 5 * t), sample_rate=100.0)
