"""Unit tests for persistence (signals, thresholds, DWM params)."""

import numpy as np
import pytest

from repro.core import Thresholds
from repro.io import (
    LazyRunPayload,
    load_dwm_params,
    load_run_payload,
    load_signal,
    load_signals,
    load_thresholds,
    save_dwm_params,
    save_run_payload,
    save_signal,
    save_signals,
    save_thresholds,
)
from repro.signals import Signal
from repro.sync import UM3_DWM_PARAMS


class TestSignalRoundtrip:
    def test_basic_roundtrip(self, tmp_path):
        rng = np.random.default_rng(0)
        original = Signal(rng.standard_normal((100, 3)), 400.0)
        save_signal(original, tmp_path / "sig.npz")
        loaded = load_signal(tmp_path / "sig.npz")
        assert loaded == original

    def test_channel_names_preserved(self, tmp_path):
        original = Signal(
            np.zeros((10, 2)), 10.0, channel_names=["ax", "ay"]
        )
        save_signal(original, tmp_path / "sig.npz")
        loaded = load_signal(tmp_path / "sig.npz")
        assert loaded.channel_names == ("ax", "ay")

    def test_no_channel_names(self, tmp_path):
        original = Signal(np.zeros(5), 10.0)
        save_signal(original, tmp_path / "sig.npz")
        assert load_signal(tmp_path / "sig.npz").channel_names is None

    def test_multi_signal_directory(self, tmp_path):
        signals = {
            "ACC": Signal(np.ones((20, 6)), 400.0),
            "AUD": Signal(np.ones((50, 2)), 2000.0),
        }
        save_signals(signals, tmp_path / "run0")
        loaded = load_signals(tmp_path / "run0")
        assert set(loaded) == {"ACC", "AUD"}
        assert loaded["AUD"].sample_rate == 2000.0

    def test_empty_directory_rejected(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(FileNotFoundError):
            load_signals(tmp_path / "empty")


class TestThresholdsRoundtrip:
    def test_roundtrip(self, tmp_path):
        original = Thresholds(c_c=123.4, h_c=56.7, v_c=0.89, d_c=2.0)
        save_thresholds(original, tmp_path / "t.json")
        assert load_thresholds(tmp_path / "t.json") == original

    def test_infinite_d_c(self, tmp_path):
        original = Thresholds(c_c=1.0, h_c=1.0, v_c=1.0)
        save_thresholds(original, tmp_path / "t.json")
        assert load_thresholds(tmp_path / "t.json").d_c == float("inf")

    def test_file_is_human_readable(self, tmp_path):
        save_thresholds(Thresholds(1.0, 2.0, 3.0), tmp_path / "t.json")
        text = (tmp_path / "t.json").read_text()
        assert '"c_c"' in text
        assert '"v_c"' in text


class TestDwmParamsRoundtrip:
    def test_roundtrip(self, tmp_path):
        save_dwm_params(UM3_DWM_PARAMS, tmp_path / "p.json")
        assert load_dwm_params(tmp_path / "p.json") == UM3_DWM_PARAMS

    def test_default_eta_backfill(self, tmp_path):
        (tmp_path / "p.json").write_text(
            '{"t_win": 4.0, "t_hop": 2.0, "t_ext": 2.0, "t_sigma": 1.0}'
        )
        assert load_dwm_params(tmp_path / "p.json").eta == 0.1


class TestDeploymentRoundtrip:
    def test_train_save_reload_detect(self, tmp_path, acc_pair):
        """The deployment loop: train, persist, reload into a fresh IDS."""
        from repro.core import NsyncIds
        from repro.sync import DwmSynchronizer

        obs, ref = acc_pair
        ids = NsyncIds(ref, DwmSynchronizer(UM3_DWM_PARAMS))
        ids.fit([obs], r=0.5)

        save_signal(ref, tmp_path / "reference.npz")
        save_thresholds(ids.thresholds, tmp_path / "thresholds.json")
        save_dwm_params(UM3_DWM_PARAMS, tmp_path / "params.json")

        reloaded = NsyncIds(
            load_signal(tmp_path / "reference.npz"),
            DwmSynchronizer(load_dwm_params(tmp_path / "params.json")),
        )
        reloaded.thresholds = load_thresholds(tmp_path / "thresholds.json")
        verdict = reloaded.detect(obs)
        assert not verdict.is_intrusion  # its own training run must pass


class TestLazyRunPayload:
    def _payload(self):
        rng = np.random.default_rng(3)
        signals = {
            "ACC": Signal(rng.standard_normal((60, 3)), 400.0,
                          channel_names=["ax", "ay", "az"]),
            "AUD": Signal(rng.standard_normal(90), 2000.0),
        }
        return signals, (0.5, 1.25, 2.0), 2.5

    def test_roundtrip_matches_eager_loader(self, tmp_path):
        signals, layer_times, duration = self._payload()
        save_run_payload(tmp_path / "run.npz", signals, layer_times, duration)
        with LazyRunPayload(tmp_path / "run.npz") as lazy:
            assert lazy.channels == ("ACC", "AUD")
            assert lazy.layer_times == layer_times
            assert lazy.duration == duration
            got = lazy.materialize()
        eager = load_run_payload(tmp_path / "run.npz")
        assert got[1] == eager[1] and got[2] == eager[2]
        for cid in signals:
            assert np.array_equal(got[0][cid].data, eager[0][cid].data)
            assert np.array_equal(got[0][cid].data, signals[cid].data)
            assert got[0][cid].sample_rate == signals[cid].sample_rate
        assert got[0]["ACC"].channel_names == ("ax", "ay", "az")
        assert got[0]["AUD"].channel_names is None

    def test_channel_data_is_memmap_backed(self, tmp_path):
        signals, layer_times, duration = self._payload()
        save_run_payload(tmp_path / "run.npz", signals, layer_times, duration)
        lazy = LazyRunPayload(tmp_path / "run.npz")
        sig = lazy.signal("ACC")
        base = sig.data
        while isinstance(base, np.ndarray) and not isinstance(base, np.memmap):
            base = base.base
        assert isinstance(base, np.memmap)
        assert np.array_equal(sig.data, signals["ACC"].data)

    def test_partial_channel_load(self, tmp_path):
        signals, layer_times, duration = self._payload()
        save_run_payload(tmp_path / "run.npz", signals, layer_times, duration)
        with LazyRunPayload(tmp_path / "run.npz") as lazy:
            got = lazy.signals(channels=("AUD",))
            assert list(got) == ["AUD"]
            assert np.array_equal(got["AUD"].data, signals["AUD"].data)
            # Only the requested channel is resident in the handle cache.
            assert list(lazy._signals) == ["AUD"]

    def test_metadata_without_touching_data(self, tmp_path):
        signals, layer_times, duration = self._payload()
        save_run_payload(tmp_path / "run.npz", signals, layer_times, duration)
        lazy = LazyRunPayload(tmp_path / "run.npz")
        assert lazy.rate("ACC") == 400.0
        assert lazy.rate("AUD") == 2000.0
        assert lazy._signals == {}  # nothing loaded yet

    def test_unknown_channel_raises_with_inventory(self, tmp_path):
        signals, layer_times, duration = self._payload()
        save_run_payload(tmp_path / "run.npz", signals, layer_times, duration)
        with pytest.raises(KeyError, match="ACC"):
            LazyRunPayload(tmp_path / "run.npz").signal("MAG")

    def test_empty_channel_array(self, tmp_path):
        signals = {"ACC": Signal(np.zeros((0, 3)), 400.0)}
        save_run_payload(tmp_path / "run.npz", signals, (), 0.0)
        with LazyRunPayload(tmp_path / "run.npz") as lazy:
            assert lazy.signal("ACC").data.shape == (0, 3)

    def test_signals_stay_valid_after_close(self, tmp_path):
        signals, layer_times, duration = self._payload()
        save_run_payload(tmp_path / "run.npz", signals, layer_times, duration)
        lazy = LazyRunPayload(tmp_path / "run.npz")
        sig = lazy.signal("ACC")
        lazy.close()
        assert np.array_equal(sig.data, signals["ACC"].data)
