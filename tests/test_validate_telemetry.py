"""Tests for the CI telemetry contract check (scripts/validate_telemetry.py)."""

import importlib.util
from pathlib import Path

SCRIPT = (
    Path(__file__).resolve().parent.parent
    / "scripts" / "validate_telemetry.py"
)

spec = importlib.util.spec_from_file_location("validate_telemetry", SCRIPT)
vt = importlib.util.module_from_spec(spec)
spec.loader.exec_module(vt)


def _live_scrape(stream="printer-A", alerts=True):
    """A real render from the telemetry module, isolated per call."""
    from repro.obs import telemetry

    registry = telemetry.StreamHealthRegistry()
    row = registry.register(stream, 200.0)
    for _ in range(3):
        row.observe_chunk(50, 0.002, 4, 1, False)
    if alerts:
        row.note_alert("c_disp", 1.5)
    return telemetry.render_prometheus(
        metrics_snapshot={
            "version": 1, "counters": {}, "gauges": {},
            "histograms": {}, "spans": {},
        },
        stream_rows=registry.snapshot(),
    )


class TestParseExposition:
    def test_live_render_is_clean(self):
        problems, types, samples = vt.parse_exposition(_live_scrape())
        assert problems == []
        assert types["repro_stream_up"] == "gauge"
        assert any(name == "repro_stream_up" for name, _, _ in samples)

    def test_rejects_unannounced_sample(self):
        problems, _, _ = vt.parse_exposition("repro_orphan 1.0\n")
        assert any("no preceding # TYPE" in p for p in problems)

    def test_rejects_bad_value_and_duplicate_type(self):
        text = (
            "# TYPE repro_x gauge\n"
            "repro_x oops\n"
            "# TYPE repro_x gauge\n"
        )
        problems, _, _ = vt.parse_exposition(text)
        assert any("non-numeric" in p for p in problems)
        assert any("announced twice" in p for p in problems)

    def test_accepts_escaped_labels_and_inf(self):
        text = (
            "# TYPE repro_x gauge\n"
            'repro_x{stream="we\\"ird\\\\id\\n"} +Inf\n'
        )
        problems, _, samples = vt.parse_exposition(text)
        assert problems == []
        assert samples[0][1]["stream"] == 'we\\"ird\\\\id\\n'

    def test_summary_children_belong_to_family(self):
        problems, _, _ = vt.parse_exposition(_live_scrape())
        assert not any("_count" in p for p in problems)


class TestStreamSchema:
    def _checked(self, text, streams, min_chunks=1):
        problems, types, samples = vt.parse_exposition(text)
        assert problems == []
        return vt.check_stream_schema(types, samples, streams, min_chunks)

    def test_complete_stream_passes(self):
        assert self._checked(_live_scrape(), ["printer-A"]) == []

    def test_alert_free_stream_still_passes(self):
        scrape = _live_scrape(stream="quiet", alerts=False)
        assert self._checked(scrape, ["quiet"]) == []

    def test_missing_stream_reports_every_family(self):
        problems = self._checked(_live_scrape(), ["ghost"])
        assert len(problems) == len(vt.STREAM_FAMILIES)

    def test_min_chunks_guards_racing_scrapes(self):
        problems = self._checked(
            _live_scrape(), ["printer-A"], min_chunks=10
        )
        assert any("chunks scored" in p for p in problems)

    def test_quantile_series_required(self):
        scrape = _live_scrape()
        stripped = "\n".join(
            line
            for line in scrape.splitlines()
            if 'quantile="0.99"' not in line
        )
        problems, types, samples = vt.parse_exposition(stripped)
        assert problems == []
        problems = vt.check_stream_schema(types, samples, ["printer-A"], 1)
        assert any("'0.99' missing" in p for p in problems)


class TestMain:
    def test_ok_exit_zero(self, tmp_path, capsys):
        path = tmp_path / "scrape.prom"
        path.write_text(_live_scrape())
        assert vt.main([str(path), "--require-stream", "printer-A"]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_violation_exit_one(self, tmp_path, capsys):
        path = tmp_path / "scrape.prom"
        path.write_text(_live_scrape())
        assert vt.main([str(path), "--require-stream", "ghost"]) == 1
        assert "invalid telemetry" in capsys.readouterr().err

    def test_missing_file_exit_two(self, tmp_path):
        assert vt.main([str(tmp_path / "nope.prom")]) == 2
