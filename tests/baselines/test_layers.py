"""Tests for signal-based layer-change detection."""

import numpy as np
import pytest

from repro.baselines import LayerDetector, detect_layer_changes
from repro.signals import Signal


def bursty_signal(burst_times, duration=60.0, fs=200.0, seed=0, amplitude=8.0):
    """Quiet noise with short strong bursts at the given times."""
    rng = np.random.default_rng(seed)
    n = int(duration * fs)
    data = 0.1 * rng.standard_normal(n)
    for t in burst_times:
        start = int(t * fs)
        data[start : start + int(0.3 * fs)] += amplitude
    return Signal(data, fs)


class TestLayerDetector:
    def test_detects_planted_bursts(self):
        sig = bursty_signal([20.0, 40.0])
        events = LayerDetector(channel=0).detect(sig)
        assert len(events) == 2
        assert events[0] == pytest.approx(20.0, abs=0.5)
        assert events[1] == pytest.approx(40.0, abs=0.5)

    def test_trim_boundary_drops_edge_events(self):
        sig = bursty_signal([2.0, 30.0, 58.0])
        trimmed = LayerDetector(channel=0).detect(sig, trim_boundary=True)
        untrimmed = LayerDetector(channel=0).detect(sig, trim_boundary=False)
        assert len(untrimmed) == 3
        assert len(trimmed) == 1
        assert trimmed[0] == pytest.approx(30.0, abs=0.5)

    def test_close_bursts_merge(self):
        sig = bursty_signal([30.0, 30.5])
        events = LayerDetector(channel=0, min_gap_seconds=2.0).detect(sig)
        assert len(events) == 1

    def test_quiet_signal_no_events(self):
        rng = np.random.default_rng(1)
        sig = Signal(0.1 * rng.standard_normal(5000), 100.0)
        assert LayerDetector(channel=0).detect(sig) == []

    def test_channel_fallback_to_mean(self):
        sig = bursty_signal([30.0])
        detector = LayerDetector(channel=99)  # out of range -> mean
        events = detector.detect(sig)
        assert len(events) == 1


class TestExpectedCountTuning:
    def test_returns_expected_count_when_achievable(self):
        sig = bursty_signal([20.0, 30.0, 40.0])
        events = detect_layer_changes(sig, channel=0, expected=3)
        assert len(events) == 3

    def test_best_effort_when_not_achievable(self):
        sig = bursty_signal([30.0])
        events = detect_layer_changes(sig, channel=0, expected=5)
        assert len(events) >= 1


class TestOnSimulatedPrint(object):
    def test_recovers_true_layer_changes(self, noisy_trace):
        from repro.sensors import default_daq

        acc = default_daq().acquire(
            noisy_trace, np.random.default_rng(0), channels=["ACC"]
        )["ACC"]
        true = list(noisy_trace.layer_change_times)
        detected = detect_layer_changes(acc, expected=len(true))
        assert len(detected) == len(true)
        for t_true, t_det in zip(sorted(true), sorted(detected)):
            assert t_det == pytest.approx(t_true, abs=0.6)
