"""Unit tests for the five prior-work IDSs, on controlled synthetic data."""

import numpy as np
import pytest

from repro.baselines import (
    BayensIds,
    BelikovetskyIds,
    GaoIds,
    GatlinIds,
    MooreIds,
    Pca,
    ProcessRecording,
)
from repro.signals import Signal

FS = 200.0


def textured(n, seed):
    rng = np.random.default_rng(seed)
    base = np.cumsum(rng.standard_normal(n))
    return base - np.linspace(0, base[-1], n)


def recording(seed, n=4000, noise=0.05, layer_every=2.5, base_seed=100):
    """Benign-family recording: shared texture + per-run noise."""
    rng = np.random.default_rng(seed)
    base = textured(n, base_seed)
    sig = Signal(base + noise * rng.standard_normal(n), FS)
    layers = tuple(np.arange(layer_every, n / FS, layer_every))
    return ProcessRecording(signal=sig, layer_times=layers)


def malicious_recording(seed, n=4000, layer_every=2.5):
    rng = np.random.default_rng(seed)
    sig = Signal(np.cumsum(rng.standard_normal(n)), FS)
    layers = tuple(np.arange(layer_every, n / FS, layer_every))
    return ProcessRecording(signal=sig, layer_times=layers)


class TestProcessRecording:
    def test_layer_slices_cover_signal(self):
        rec = recording(0)
        slices = rec.layer_slices()
        assert sum(s.n_samples for s in slices) == pytest.approx(
            rec.signal.n_samples, abs=len(slices)
        )

    def test_no_layers_single_slice(self):
        rec = ProcessRecording(signal=Signal(np.ones(100), FS))
        assert len(rec.layer_slices()) == 1


class TestMoore:
    def test_benign_vs_malicious(self):
        ids = MooreIds(r=0.1)
        ids.fit(recording(0), [recording(s) for s in range(1, 6)])
        assert not ids.detect(recording(20)).is_intrusion
        assert ids.detect(malicious_recording(30)).is_intrusion

    def test_fit_required(self):
        with pytest.raises(RuntimeError):
            MooreIds().detect(recording(0))

    def test_fit_needs_runs(self):
        with pytest.raises(ValueError):
            MooreIds().fit(recording(0), [])

    def test_blind_to_global_time_shift(self):
        """The defining weakness: a shifted benign signal looks malicious."""
        ids = MooreIds(r=0.1)
        ids.fit(recording(0), [recording(s) for s in range(1, 6)])
        base = recording(40)
        shifted = ProcessRecording(
            signal=Signal(np.roll(base.signal.data, 400, axis=0), FS),
            layer_times=base.layer_times,
        )
        assert ids.detect(shifted).is_intrusion

    def test_invalid_block(self):
        with pytest.raises(ValueError):
            MooreIds(block=0)


class TestGao:
    def test_benign_vs_malicious(self):
        ids = GaoIds(r=0.1)
        ids.fit(recording(0), [recording(s) for s in range(1, 6)])
        assert not ids.detect(recording(21)).is_intrusion
        assert ids.detect(malicious_recording(31)).is_intrusion

    def test_layer_count_change_detected(self):
        ids = GaoIds(r=0.1)
        ids.fit(recording(0), [recording(s) for s in range(1, 6)])
        fewer_layers = ProcessRecording(
            signal=recording(22).signal,
            layer_times=recording(22).layer_times[::2],
        )
        detection = ids.detect(fewer_layers)
        assert detection.submodules["layers"]

    def test_layer_resync_absorbs_interlayer_stall(self):
        """Coarse DSYNC: a stall inserted AT a layer boundary is invisible
        to Gao (per-layer realignment) but poisons Moore (global offset)."""
        ids_gao = GaoIds(r=0.3)
        ids_moore = MooreIds(r=0.3)
        training = [recording(s) for s in range(1, 6)]
        ids_gao.fit(recording(0), training)
        ids_moore.fit(recording(0), training)

        base = recording(41)
        boundary = base.layer_times[2]
        cut = int(boundary * FS)
        stall = np.repeat(base.signal.data[cut : cut + 1], 200, axis=0)
        stalled = np.concatenate(
            [base.signal.data[:cut], stall, base.signal.data[cut:]]
        )
        moved = ProcessRecording(
            signal=Signal(stalled, FS),
            layer_times=tuple(
                t + (1.0 if t >= boundary else 0.0) for t in base.layer_times
            ),
        )
        assert not ids_gao.detect(moved).submodules["v_dist"]
        assert ids_moore.detect(moved).is_intrusion


def tonal_recording(seed, n=4000, noise=0.05):
    """Printer-audio-like recording: a tone whose pitch follows a fixed
    schedule (motor whine tracking the toolpath).  Peak fingerprinting
    needs tonal content — it is an *audio* retrieval method."""
    rng = np.random.default_rng(seed)
    t = np.arange(n) / FS
    freq = 40.0 + 25.0 * np.sin(2 * np.pi * 0.11 * t) + 10.0 * np.sign(
        np.sin(2 * np.pi * 0.37 * t)
    )
    phase = 2 * np.pi * np.cumsum(freq) / FS
    sig = np.sin(phase) + noise * rng.standard_normal(n)
    return ProcessRecording(signal=Signal(sig, FS))


class TestBayens:
    def test_in_sequence_benign(self):
        ids = BayensIds(window_seconds=2.0)
        ids.fit(tonal_recording(0), [tonal_recording(s) for s in range(1, 5)])
        detection = ids.detect(tonal_recording(23))
        assert not detection.submodules["sequence"]

    def test_shuffled_content_flagged(self):
        ids = BayensIds(window_seconds=2.0)
        ids.fit(tonal_recording(0), [tonal_recording(s) for s in range(1, 5)])
        data = tonal_recording(24).signal.data.copy()
        half = len(data) // 2
        shuffled = np.concatenate([data[half:], data[:half]])
        detection = ids.detect(
            ProcessRecording(signal=Signal(shuffled, FS))
        )
        assert detection.is_intrusion

    def test_reference_too_short_rejected(self):
        ids = BayensIds(window_seconds=1000.0)
        with pytest.raises(ValueError, match="window"):
            ids.fit(recording(0), [recording(1)])

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            BayensIds(window_seconds=0.0)


class TestBelikovetsky:
    def test_identical_signal_benign(self):
        ids = BelikovetskyIds()
        ref = recording(0)
        ids.fit(ref, [])
        assert not ids.detect(ref).is_intrusion

    def test_unrelated_signal_flagged(self):
        ids = BelikovetskyIds()
        ids.fit(recording(0), [])
        assert ids.detect(malicious_recording(32)).is_intrusion

    def test_fit_required(self):
        with pytest.raises(RuntimeError):
            BelikovetskyIds().detect(recording(0))


class TestPca:
    def test_components_shape(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((100, 10))
        pca = Pca(3).fit(x)
        assert pca.components_.shape == (3, 10)
        assert pca.transform(x).shape == (100, 3)

    def test_captures_dominant_direction(self):
        rng = np.random.default_rng(1)
        direction = np.array([1.0, 2.0, -1.0]) / np.sqrt(6)
        x = np.outer(rng.standard_normal(200) * 10, direction)
        x += 0.01 * rng.standard_normal(x.shape)
        pca = Pca(1).fit(x)
        cos = abs(float(pca.components_[0] @ direction))
        assert cos == pytest.approx(1.0, abs=1e-3)

    def test_transform_centred(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((50, 4)) + 100.0
        pca = Pca(2).fit(x)
        z = pca.transform(x)
        assert np.allclose(z.mean(axis=0), 0.0, atol=1e-9)

    def test_k_capped_by_dims(self):
        x = np.random.default_rng(3).standard_normal((50, 2))
        pca = Pca(10).fit(x)
        assert pca.components_.shape[0] == 2

    def test_fit_required(self):
        with pytest.raises(RuntimeError):
            Pca(2).transform(np.zeros((3, 3)))

    def test_validation(self):
        with pytest.raises(ValueError):
            Pca(0)
        with pytest.raises(ValueError):
            Pca(2).fit(np.zeros(5))


class TestGatlin:
    def test_benign_vs_layer_timing_attack(self):
        # layer_time_noise=0 -> the oracle variant, deterministic for unit
        # testing the thresholding logic itself.
        ids = GatlinIds(r=0.2, layer_time_noise=0.0, gross_error_rate=0.0)
        ids.fit(recording(0), [recording(s) for s in range(1, 6)])
        assert not ids.detect(recording(25)).is_intrusion
        # Push every layer change 1.5 s late: a gross timing violation.
        late = ProcessRecording(
            signal=recording(26).signal,
            layer_times=tuple(t + 1.5 for t in recording(26).layer_times),
        )
        detection = ids.detect(late)
        assert detection.submodules["time"]

    def test_content_mismatch_detected(self):
        ids = GatlinIds(r=0.2, layer_time_noise=0.0, gross_error_rate=0.0)
        ids.fit(recording(0), [recording(s) for s in range(1, 6)])
        detection = ids.detect(malicious_recording(33))
        assert detection.is_intrusion

    def test_missing_layer_counts_as_mismatch(self):
        ids = GatlinIds(r=0.2, layer_time_noise=0.0, gross_error_rate=0.0)
        ids.fit(recording(0), [recording(s) for s in range(1, 6)])
        fewer = ProcessRecording(
            signal=recording(27).signal,
            layer_times=recording(27).layer_times[:-3],
        )
        assert ids.detect(fewer).is_intrusion

    def test_invalid_fingerprint_size(self):
        with pytest.raises(ValueError):
            GatlinIds(fingerprint_size=2)

    def test_invalid_noise_params(self):
        with pytest.raises(ValueError):
            GatlinIds(layer_time_noise=-0.1)
        with pytest.raises(ValueError):
            GatlinIds(gross_error_rate=1.5)

    def test_estimation_noise_raises_false_positive_pressure(self):
        """With heavy estimation noise, some benign runs get flagged via
        the Time sub-module — the paper's nonzero FPRs."""
        noisy = GatlinIds(r=0.0, layer_time_noise=0.1,
                          gross_error_rate=0.8, gross_error_scale=3.0)
        noisy.fit(recording(0), [recording(s) for s in range(1, 4)])
        flags = [noisy.detect(recording(s)).is_intrusion for s in range(40, 52)]
        assert any(flags)

    def test_fit_needs_runs(self):
        with pytest.raises(ValueError):
            GatlinIds().fit(recording(0), [])
