"""The public API surface: everything advertised must import and work."""

import importlib

import pytest

import repro


class TestTopLevelNamespace:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize(
        "module",
        [
            "repro.signals",
            "repro.sync",
            "repro.core",
            "repro.printer",
            "repro.slicer",
            "repro.attacks",
            "repro.sensors",
            "repro.baselines",
            "repro.eval",
            "repro.faults",
            "repro.io",
            "repro.cli",
        ],
    )
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        assert mod.__all__, module
        for name in mod.__all__:
            assert hasattr(mod, name), f"{module}.{name}"

    def test_key_symbols_at_top_level(self):
        for name in (
            "Signal",
            "DwmSynchronizer",
            "NsyncIds",
            "StreamingNsyncIds",
            "PrintJob",
            "TABLE_I_ATTACKS",
            "simulate_print",
            "default_daq",
            "gear_outline",
            "UM3_DWM_PARAMS",
            "RM3_DWM_PARAMS",
        ):
            assert name in repro.__all__, name

    def test_legacy_detector_surface_still_imports(self):
        """The pre-engine import paths and signatures keep working.

        `NsyncIds`/`StreamingNsyncIds` became facades over
        `repro.core.engine.DetectionEngine`; existing callers must not
        notice (same modules, same constructor signatures, `Alert` and
        `TRUNCATED_WINDOW_DISTANCE` still importable from
        `repro.core.streaming`).
        """
        import inspect
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.core.pipeline import AnalysisResult, NsyncIds
            from repro.core.streaming import (
                Alert,
                StreamingNsyncIds,
                TRUNCATED_WINDOW_DISTANCE,
            )

        assert TRUNCATED_WINDOW_DISTANCE == 2.0
        assert AnalysisResult is not None
        batch = inspect.signature(NsyncIds.__init__)
        assert list(batch.parameters) == [
            "self", "reference", "synchronizer", "metric",
            "filter_window", "policy",
        ]
        stream = inspect.signature(StreamingNsyncIds.__init__)
        assert list(stream.parameters) == [
            "self", "reference", "params", "thresholds", "metric",
            "filter_window", "policy",
        ]
        alert_fields = [
            f.name for f in __import__("dataclasses").fields(Alert)
        ]
        assert alert_fields == [
            "window_index", "submodule", "value", "threshold", "time_s",
        ]

    def test_docstrings_everywhere_public(self):
        """Every public module, class, and function carries a docstring."""
        import inspect

        missing = []
        for module_name in (
            "repro.signals.signal",
            "repro.signals.metrics",
            "repro.sync.dwm",
            "repro.sync.tde",
            "repro.core.engine",
            "repro.core.pipeline",
            "repro.core.streaming",
            "repro.core.discriminator",
            "repro.core.health",
            "repro.faults.models",
            "repro.faults.campaign",
            "repro.printer.firmware",
            "repro.slicer.slicer",
            "repro.sensors.daq",
            "repro.baselines.moore",
            "repro.eval.experiments",
        ):
            mod = importlib.import_module(module_name)
            if not mod.__doc__:
                missing.append(module_name)
            for name in getattr(mod, "__all__", []):
                obj = getattr(mod, name)
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not inspect.getdoc(obj):
                        missing.append(f"{module_name}.{name}")
        assert not missing, f"undocumented public items: {missing}"
