"""Tests for the CI perf-regression gate (scripts/check_bench_regression.py)."""

import importlib.util
import json
from pathlib import Path

import pytest

SCRIPT = (
    Path(__file__).resolve().parent.parent
    / "scripts" / "check_bench_regression.py"
)

spec = importlib.util.spec_from_file_location("check_bench_regression", SCRIPT)
gate = importlib.util.module_from_spec(spec)
spec.loader.exec_module(gate)


def _record(name, **fields):
    return {"name": name, "time": 0.0, **fields}


def _write(path, records):
    path.write_text(json.dumps(records))
    return path


class TestSingleFileMode:
    def test_identical_first_and_last_pass(self, tmp_path, capsys):
        base = _record("bench", wall_clock=2.0, cpu_count=4)
        path = _write(tmp_path / "h.json", [base, dict(base)])
        assert gate.main([str(path)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_slowdown_beyond_tolerance_fails(self, tmp_path, capsys):
        path = _write(tmp_path / "h.json", [
            _record("bench", wall_clock=2.0, cpu_count=4),
            _record("bench", wall_clock=2.6, cpu_count=4),
        ])
        assert gate.main([str(path), "--tolerance", "0.25"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_slowdown_within_tolerance_passes(self, tmp_path):
        path = _write(tmp_path / "h.json", [
            _record("bench", wall_clock=2.0, cpu_count=4),
            _record("bench", wall_clock=2.4, cpu_count=4),
        ])
        assert gate.main([str(path), "--tolerance", "0.25"]) == 0

    def test_speedup_drop_fails(self, tmp_path):
        path = _write(tmp_path / "h.json", [
            _record("bench", warm_speedup=4.0, cpu_count=4),
            _record("bench", warm_speedup=2.0, cpu_count=4),
        ])
        assert gate.main([str(path)]) == 1

    def test_speedup_gain_passes(self, tmp_path):
        path = _write(tmp_path / "h.json", [
            _record("bench", warm_speedup=4.0, cpu_count=4),
            _record("bench", warm_speedup=8.0, cpu_count=4),
        ])
        assert gate.main([str(path)]) == 0

    def test_single_record_is_skipped_and_passes(self, tmp_path, capsys):
        path = _write(
            tmp_path / "h.json", [_record("bench", wall_clock=2.0)]
        )
        assert gate.main([str(path)]) == 0
        assert "skipped" in capsys.readouterr().out

    def test_cross_machine_compares_only_speedups(self, tmp_path):
        """Absolute timings from different machine shapes are not gated."""
        path = _write(tmp_path / "h.json", [
            _record("bench", wall_clock=1.0, warm_speedup=4.0, cpu_count=1),
            _record("bench", wall_clock=9.0, warm_speedup=4.1, cpu_count=8),
        ])
        assert gate.main([str(path)]) == 0

    def test_metadata_and_dict_fields_ignored(self, tmp_path):
        path = _write(tmp_path / "h.json", [
            _record("bench", wall_clock=1.0, cpu_count=4, cache_hits=0,
                    metrics={"spans": {}}),
            _record("bench", wall_clock=1.0, cpu_count=4, cache_hits=999,
                    metrics={"spans": {"x": {}}}),
        ])
        assert gate.main([str(path)]) == 0


class TestThroughputFields:
    """samples/s fields are higher-is-better and machine-bound."""

    def test_throughput_drop_beyond_tolerance_fails(self, tmp_path):
        path = _write(tmp_path / "h.json", [
            _record("thr", streaming_warm_samples_per_s=300e3, cpu_count=4),
            _record("thr", streaming_warm_samples_per_s=200e3, cpu_count=4),
        ])
        assert gate.main([str(path), "--tolerance", "0.25"]) == 1

    def test_throughput_gain_passes(self, tmp_path):
        path = _write(tmp_path / "h.json", [
            _record("thr", streaming_warm_samples_per_s=300e3, cpu_count=4),
            _record("thr", streaming_warm_samples_per_s=900e3, cpu_count=4),
        ])
        assert gate.main([str(path)]) == 0

    def test_throughput_drop_within_tolerance_passes(self, tmp_path):
        path = _write(tmp_path / "h.json", [
            _record("thr", batch_warm_samples_per_s=1000e3, cpu_count=4),
            _record("thr", batch_warm_samples_per_s=800e3, cpu_count=4),
        ])
        assert gate.main([str(path), "--tolerance", "0.25"]) == 0

    def test_cold_config_and_overhead_fields_not_gated(self, tmp_path):
        """Only warm throughput gates; cold numbers and the workload/probe
        bookkeeping may move arbitrarily without failing the build."""
        path = _write(tmp_path / "h.json", [
            _record("thr", streaming_warm_samples_per_s=300e3,
                    streaming_cold_samples_per_s=300e3,
                    batch_cold_samples_per_s=1000e3,
                    disabled_obs_overhead=0.0, hot_path_obs_calls=0,
                    chunk_samples=10, n_samples=40000, sample_rate=200.0,
                    cpu_count=4),
            _record("thr", streaming_warm_samples_per_s=300e3,
                    streaming_cold_samples_per_s=10e3,
                    batch_cold_samples_per_s=10e3,
                    disabled_obs_overhead=0.5, hot_path_obs_calls=99,
                    chunk_samples=1, n_samples=100, sample_rate=1.0,
                    cpu_count=4),
        ])
        assert gate.main([str(path), "--tolerance", "0.25"]) == 0

    def test_cross_machine_skips_absolute_throughput(self, tmp_path):
        """samples/s is machine-absolute: never compared across cpu_counts."""
        path = _write(tmp_path / "h.json", [
            _record("thr", streaming_warm_samples_per_s=900e3, cpu_count=64),
            _record("thr", streaming_warm_samples_per_s=100e3, cpu_count=1),
        ])
        assert gate.main([str(path)]) == 0

    def test_committed_throughput_baseline_parses(self):
        """The gate must accept the repo's committed throughput history."""
        path = (
            SCRIPT.parent.parent
            / "benchmarks" / "results" / "BENCH_engine_throughput.json"
        )
        assert gate.main([str(path)]) == 0


class TestTwoFileMode:
    def test_compares_last_records_across_files(self, tmp_path):
        baseline = _write(tmp_path / "b.json", [
            _record("bench", wall_clock=5.0, cpu_count=4),
            _record("bench", wall_clock=2.0, cpu_count=4),
        ])
        current = _write(tmp_path / "c.json", [
            _record("bench", wall_clock=2.1, cpu_count=4),
        ])
        assert gate.main([
            "--baseline", str(baseline), "--current", str(current)
        ]) == 0

    def test_requires_both_flags(self, tmp_path, capsys):
        baseline = _write(tmp_path / "b.json", [])
        assert gate.main(["--baseline", str(baseline)]) == 2

    def test_summary_line_printed(self, tmp_path, capsys):
        baseline = _write(tmp_path / "b.json", [
            _record("bench", wall_clock=2.0, cpu_count=4),
        ])
        current = _write(tmp_path / "c.json", [
            _record("bench", wall_clock=2.0, cpu_count=4),
        ])
        assert gate.main([
            "--baseline", str(baseline), "--current", str(current)
        ]) == 0
        assert "summary:" in capsys.readouterr().out


class TestMultiFileMode:
    def test_two_clean_files_pass_with_per_file_summary(
        self, tmp_path, capsys
    ):
        a = _write(tmp_path / "a.json", [
            _record("alpha", wall_clock=2.0, cpu_count=4),
            _record("alpha", wall_clock=2.0, cpu_count=4),
        ])
        b = _write(tmp_path / "b.json", [
            _record("beta", warm_samples_per_s=1e5, cpu_count=4),
            _record("beta", warm_samples_per_s=2e5, cpu_count=4),
        ])
        assert gate.main([str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert f"summary: {a}: ok" in out
        assert f"summary: {b}: ok" in out

    def test_one_regressed_file_fails_overall(self, tmp_path, capsys):
        good = _write(tmp_path / "good.json", [
            _record("alpha", wall_clock=2.0, cpu_count=4),
            _record("alpha", wall_clock=2.0, cpu_count=4),
        ])
        bad = _write(tmp_path / "bad.json", [
            _record("beta", wall_clock=2.0, cpu_count=4),
            _record("beta", wall_clock=9.0, cpu_count=4),
        ])
        assert gate.main([str(good), str(bad)]) == 1
        out = capsys.readouterr().out
        assert f"summary: {good}: ok" in out
        assert f"summary: {bad}: FAIL" in out

    def test_single_file_also_gets_summary(self, tmp_path, capsys):
        path = _write(tmp_path / "h.json", [
            _record("bench", wall_clock=2.0, cpu_count=4),
            _record("bench", wall_clock=2.0, cpu_count=4),
        ])
        assert gate.main([str(path)]) == 0
        assert f"summary: {path}: ok" in capsys.readouterr().out


class TestBadInput:
    def test_missing_file_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read"):
            gate.main([str(tmp_path / "nope.json")])

    def test_invalid_json_errors(self, tmp_path):
        path = tmp_path / "h.json"
        path.write_text("{not json")
        with pytest.raises(SystemExit, match="not valid JSON"):
            gate.main([str(path)])

    def test_non_list_errors(self, tmp_path):
        path = _write(tmp_path / "h.json", [])
        path.write_text('{"a": 1}')
        with pytest.raises(SystemExit, match="JSON list"):
            gate.main([str(path)])

    def test_negative_tolerance_rejected(self, tmp_path, capsys):
        path = _write(tmp_path / "h.json", [])
        with pytest.raises(SystemExit):
            gate.main([str(path), "--tolerance", "-1"])

    def test_committed_baseline_parses(self):
        """The gate must accept the repo's real committed history file."""
        assert gate.main([str(gate.DEFAULT_PATH)]) == 0


class TestLatencyGating:
    """Chunk-latency fields: p99 gated lower-is-better, p50 never gated."""

    def _throughput_record(self, p50, p99, cpu=4, warm=1000.0):
        return _record(
            "engine_throughput",
            streaming_warm_samples_per_s=warm,
            streaming_chunk_p50_ms=p50,
            streaming_chunk_p99_ms=p99,
            cpu_count=cpu,
        )

    def test_p99_regression_fails(self, tmp_path, capsys):
        path = _write(tmp_path / "h.json", [
            self._throughput_record(0.02, 0.20),
            self._throughput_record(0.02, 0.30),
        ])
        assert gate.main([str(path), "--tolerance", "0.25"]) == 1
        out = capsys.readouterr().out
        assert "streaming_chunk_p99_ms" in out
        assert "FAIL" in out

    def test_p99_within_tolerance_passes(self, tmp_path, capsys):
        path = _write(tmp_path / "h.json", [
            self._throughput_record(0.02, 0.20),
            self._throughput_record(0.02, 0.24),
        ])
        assert gate.main([str(path), "--tolerance", "0.25"]) == 0

    def test_p99_improvement_passes(self, tmp_path):
        path = _write(tmp_path / "h.json", [
            self._throughput_record(0.02, 0.20),
            self._throughput_record(0.02, 0.10),
        ])
        assert gate.main([str(path)]) == 0

    def test_p50_is_never_gated(self, tmp_path, capsys):
        path = _write(tmp_path / "h.json", [
            self._throughput_record(0.02, 0.20),
            self._throughput_record(9.99, 0.20),  # wild p50 regression
        ])
        assert gate.main([str(path), "--tolerance", "0.25"]) == 0
        assert "streaming_chunk_p50_ms" not in capsys.readouterr().out

    def test_latency_skipped_across_machines(self, tmp_path, capsys):
        path = _write(tmp_path / "h.json", [
            self._throughput_record(0.02, 0.20, cpu=4),
            self._throughput_record(0.02, 0.90, cpu=16),
        ])
        assert gate.main([str(path)]) == 0
        assert "streaming_chunk_p99_ms" not in capsys.readouterr().out


class TestServeFields:
    """Fleet-service ingest records (BENCH_serve.json gate rules)."""

    def _serve_record(self, p50=0.2, p99=1.0, sps=400e3, spc=100.0,
                      cpu=4, resumes=0, mismatches=0):
        return _record(
            "serve_loadgen",
            n_streams=64, chunk_samples=200, pace=0.0, shards=2,
            cores_used=3, cpu_count=cpu,
            total_samples=128000, total_chunks=640,
            elapsed_s=1.0,
            ingest_p50_ms=p50, ingest_p99_ms=p99, ingest_mean_ms=0.4,
            serve_samples_per_s=sps, streams_per_core=spc,
            resumes=resumes, verified=True, mismatches=mismatches,
        )

    def test_streams_per_core_drop_fails(self, tmp_path, capsys):
        path = _write(tmp_path / "h.json", [
            self._serve_record(spc=100.0),
            self._serve_record(spc=60.0),
        ])
        assert gate.main([str(path), "--tolerance", "0.25"]) == 1
        out = capsys.readouterr().out
        assert "streams_per_core" in out
        assert "FAIL" in out

    def test_streams_per_core_gain_passes(self, tmp_path):
        path = _write(tmp_path / "h.json", [
            self._serve_record(spc=100.0),
            self._serve_record(spc=200.0),
        ])
        assert gate.main([str(path)]) == 0

    def test_serve_throughput_drop_fails(self, tmp_path):
        path = _write(tmp_path / "h.json", [
            self._serve_record(sps=400e3),
            self._serve_record(sps=200e3),
        ])
        assert gate.main([str(path), "--tolerance", "0.25"]) == 1

    def test_ingest_p99_regression_fails(self, tmp_path, capsys):
        path = _write(tmp_path / "h.json", [
            self._serve_record(p99=1.0),
            self._serve_record(p99=2.0),
        ])
        assert gate.main([str(path), "--tolerance", "0.25"]) == 1
        assert "ingest_p99_ms" in capsys.readouterr().out

    def test_ingest_p50_is_never_gated(self, tmp_path, capsys):
        path = _write(tmp_path / "h.json", [
            self._serve_record(p50=0.2),
            self._serve_record(p50=50.0),
        ])
        assert gate.main([str(path), "--tolerance", "0.25"]) == 0
        assert "ingest_p50_ms" not in capsys.readouterr().out

    def test_workload_shape_and_resume_counts_not_gated(
        self, tmp_path, capsys
    ):
        # A crashy run resumes more and re-pushes rewound chunks; neither
        # bookkeeping figure is a performance measurement.
        path = _write(tmp_path / "h.json", [
            self._serve_record(resumes=0),
            self._serve_record(resumes=37, mismatches=0),
        ])
        assert gate.main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "resumes" not in out
        assert "mismatches" not in out

    def test_cross_machine_skips_absolute_serve_fields(self, tmp_path):
        path = _write(tmp_path / "h.json", [
            self._serve_record(spc=100.0, sps=400e3, p99=1.0, cpu=64),
            self._serve_record(spc=10.0, sps=40e3, p99=9.0, cpu=2),
        ])
        assert gate.main([str(path)]) == 0

    def test_committed_serve_baseline_parses(self):
        path = (
            SCRIPT.parent.parent
            / "benchmarks" / "results" / "BENCH_serve.json"
        )
        assert gate.main([str(path)]) == 0


class TestInformationalFields:
    def test_peak_rss_growth_never_fails(self, tmp_path, capsys):
        path = _write(tmp_path / "h.json", [
            _record("campaign", wall_clock_s=2.0, peak_rss_mb=150.0,
                    cpu_count=4),
            _record("campaign", wall_clock_s=2.0, peak_rss_mb=900.0,
                    cpu_count=4),
        ])
        assert gate.main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "info" in out  # trend is visible ...
        assert "peak_rss_mb" in out

    def test_peak_rss_shown_alongside_gated_fields(self, tmp_path, capsys):
        # A real wall-clock regression still fails; the memory column just
        # rides along informationally.
        path = _write(tmp_path / "h.json", [
            _record("campaign", wall_clock_s=2.0, peak_rss_mb=150.0,
                    cpu_count=4),
            _record("campaign", wall_clock_s=9.0, peak_rss_mb=120.0,
                    cpu_count=4),
        ])
        assert gate.main([str(path), "--tolerance", "0.25"]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "info" in out
