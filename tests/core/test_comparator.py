"""Unit tests for the comparator (vertical-distance calculation)."""

import numpy as np
import pytest

from repro.core import Comparator, vertical_distances
from repro.signals import Signal
from repro.sync import SyncResult


def make_signal(n=100, fs=10.0, seed=0, channels=1):
    rng = np.random.default_rng(seed)
    return Signal(rng.standard_normal((n, channels)), fs)


def window_sync(n_indexes, n_win=10, n_hop=5, h_disp=None):
    h = np.zeros(n_indexes) if h_disp is None else np.asarray(h_disp, float)
    return SyncResult(h_disp=h, mode="window", n_win=n_win, n_hop=n_hop)


class TestWindowMode:
    def test_identical_signals_zero_distance(self):
        s = make_signal()
        v = vertical_distances(s, s, window_sync(10))
        assert np.allclose(v, 0.0, atol=1e-12)

    def test_gain_change_still_zero_with_correlation(self):
        s = make_signal()
        scaled = s.with_data(s.data * 7.5)
        v = vertical_distances(scaled, s, window_sync(10))
        assert np.allclose(v, 0.0, atol=1e-9)

    def test_displacement_applied(self):
        """With the correct h_disp, a shifted copy scores near zero."""
        data = np.random.default_rng(1).standard_normal(200)
        ref = Signal(data, 10.0)
        obs = Signal(data[5:150], 10.0)  # obs[i] = ref[i + 5]
        sync = window_sync(10, h_disp=np.full(10, 5.0))
        v = vertical_distances(obs, ref, sync)
        assert np.allclose(v, 0.0, atol=1e-12)

        wrong = vertical_distances(obs, ref, window_sync(10))
        assert wrong.mean() > 0.5

    def test_unrelated_signals_high_distance(self):
        v = vertical_distances(
            make_signal(seed=1), make_signal(seed=2), window_sync(10)
        )
        assert v.mean() > 0.5

    def test_boundary_window_reports_max_distance(self):
        """A window pushed off the reference end must score 2.0 (worst)."""
        obs = make_signal(100)
        ref = make_signal(100)
        sync = window_sync(1, h_disp=[99.0])  # only 1 overlapping sample
        v = vertical_distances(obs, ref, sync)
        assert v[0] == pytest.approx(2.0)

    def test_custom_metric_by_name(self):
        s = make_signal()
        shifted = s.with_data(s.data + 1.0)
        v = Comparator("mae").vertical_distances(s, shifted, window_sync(5))
        assert np.allclose(v, 1.0)

    def test_custom_metric_callable(self):
        calls = []

        def metric(u, v):
            calls.append(1)
            return 0.25

        s = make_signal()
        v = Comparator(metric).vertical_distances(s, s, window_sync(4))
        assert np.allclose(v, 0.25)
        assert len(calls) == 4

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="unknown distance"):
            Comparator("chebyshev")

    def test_fractional_h_disp_rounded(self):
        s = make_signal(200)
        sync = window_sync(5, h_disp=[0.4, -0.4, 0.0, 0.49, -0.49])
        v = vertical_distances(s, s, sync)
        assert np.allclose(v, 0.0, atol=1e-12)


class TestPointMode:
    def test_point_mode_needs_pairs(self):
        s = make_signal()
        sync = SyncResult(h_disp=np.zeros(10), mode="point", pairs=None)
        with pytest.raises(ValueError, match="warping path"):
            vertical_distances(s, s, sync)

    def test_identity_path_zero_distance(self):
        s = make_signal(20, channels=3)
        pairs = [(i, i) for i in range(20)]
        sync = SyncResult(h_disp=np.zeros(20), mode="point", pairs=pairs)
        v = vertical_distances(s, s, sync)
        assert np.allclose(v, 0.0, atol=1e-9)

    def test_duplicate_pairs_averaged_eq15(self):
        obs = Signal(np.array([[1.0, 2.0]]), 1.0)
        ref = Signal(np.array([[1.0, 2.0], [2.0, 1.0]]), 1.0)
        pairs = [(0, 0), (0, 1)]
        sync = SyncResult(h_disp=np.zeros(1), mode="point", pairs=pairs)
        v = Comparator("mae").vertical_distances(obs, ref, sync)
        # d(a0, b0) = 0; d(a0, b1) = mean(|1-2|, |2-1|) = 1 -> average 0.5
        assert v[0] == pytest.approx(0.5)

    def test_out_of_range_pairs_skipped(self):
        s = make_signal(5)
        pairs = [(0, 0), (10, 2), (1, 99)]
        sync = SyncResult(h_disp=np.zeros(5), mode="point", pairs=pairs)
        v = vertical_distances(s, s, sync)
        assert v.shape == (5,)


class TestDegenerateWindows:
    """Regression tests: zero-variance / non-finite inputs must map to
    explicit worst-case (or zero) distances, never NaN and never a crash."""

    def test_constant_window_vs_varying_is_max_distance(self):
        """Pre-fix: Pearson's r on a constant window degenerated and v_dist
        could go NaN, which compares benign against every threshold."""
        obs = make_signal(100)
        frozen = obs.with_data(np.zeros_like(obs.data))
        v = vertical_distances(frozen, obs, window_sync(10))
        assert np.isfinite(v).all()
        assert np.allclose(v, 2.0)

    def test_identical_constant_windows_are_zero(self):
        s = Signal(np.full(100, 3.25), 10.0)
        v = vertical_distances(s, s, window_sync(10))
        assert np.allclose(v, 0.0)

    def test_different_constant_windows_are_max(self):
        a = Signal(np.full(100, 1.0), 10.0)
        b = Signal(np.full(100, -1.0), 10.0)
        v = vertical_distances(a, b, window_sync(10))
        assert np.allclose(v, 2.0)

    def test_non_finite_h_disp_does_not_crash(self):
        """Pre-fix: int(round(nan)) raised mid-detection."""
        s = make_signal(200)
        sync = window_sync(5, h_disp=[0.0, np.nan, np.inf, -np.inf, 0.0])
        v = vertical_distances(s, s, sync)
        assert np.isfinite(v).all()
        assert v[1] == v[2] == v[3] == pytest.approx(2.0)
        assert v[0] == pytest.approx(0.0, abs=1e-9)

    def test_huge_negative_offset_is_max_distance(self):
        """An offset so negative the reference window clamps to nothing
        must score as a walk-off, like an overrun does."""
        s = make_signal(200)
        sync = window_sync(3, h_disp=[0.0, -1e6, -200.0])
        v = vertical_distances(s, s, sync)
        assert np.isfinite(v).all()
        assert v[1] == pytest.approx(2.0)
        assert v[2] == pytest.approx(2.0)

    def test_nan_returning_metric_clamped(self):
        """Whatever a custom metric emits, v_dist stays finite."""
        s = make_signal()
        v = Comparator(lambda u, w: float("nan")).vertical_distances(
            s, s, window_sync(4)
        )
        assert np.allclose(v, 2.0)

    def test_constant_special_case_is_correlation_only(self):
        """Other metrics are well-defined on constants and stay untouched."""
        a = Signal(np.full(100, 2.0), 10.0)
        b = Signal(np.full(100, 5.0), 10.0)
        v = Comparator("mae").vertical_distances(a, b, window_sync(5))
        assert np.allclose(v, 3.0)

    def test_pair_distance_public_contract(self):
        comp = Comparator("correlation")
        varying = np.random.default_rng(0).standard_normal((20, 1))
        const = np.full((20, 1), 1.5)
        assert comp.pair_distance(const, varying) == 2.0
        assert comp.pair_distance(const, const.copy()) == 0.0
        assert np.isfinite(comp.pair_distance(varying, varying))


class TestBatchedDifferential:
    """The vectorized comparator paths vs their scalar bit-oracles.

    ``_window_distances_scalar`` / ``pair_distance`` are kept verbatim as
    references; the batched implementations must reproduce them *bit for
    bit* (not approximately) so chunking invariance and forensic replay
    stay exact.
    """

    @staticmethod
    def _windows(seed, k, n, c, special):
        """A (k, n, c) stack with optional degenerate windows mixed in."""
        rng = np.random.default_rng(seed)
        w = rng.standard_normal((k, n, c))
        for j in range(k):
            kind = special[j % len(special)] if special else "normal"
            if kind == "const":
                w[j] = float(j)
            elif kind == "nan":
                w[j, n // 2, 0] = np.nan
        return w

    def test_pair_distances_matches_pair_distance(self):
        comp = Comparator("correlation")
        specials = ["normal", "const", "nan", "normal"]
        wa = self._windows(1, 8, 12, 2, specials)
        wb = self._windows(2, 8, 12, 2, ["normal", "const"])
        batched = comp.pair_distances(wa, wb)
        scalar = np.array(
            [comp.pair_distance(wa[j], wb[j]) for j in range(8)]
        )
        assert np.array_equal(batched, scalar)

    def test_pair_distances_identical_constants_zero(self):
        comp = Comparator("correlation")
        wa = np.full((3, 10, 1), 4.0)
        wb = wa.copy()
        wb[1] += 1.0  # different constant -> worst case
        batched = comp.pair_distances(wa, wb)
        assert batched[0] == 0.0
        assert batched[1] == 2.0
        assert batched[2] == 0.0

    def test_pair_distances_shape_mismatch_rejected(self):
        comp = Comparator("correlation")
        with pytest.raises(ValueError, match="window stacks"):
            comp.pair_distances(np.zeros((2, 5, 1)), np.zeros((2, 6, 1)))

    def test_pair_distances_empty_stack(self):
        assert Comparator().pair_distances(
            np.zeros((0, 5, 1)), np.zeros((0, 5, 1))
        ).shape == (0,)

    def test_pair_distances_noncorrelation_falls_back(self):
        comp = Comparator("mae")
        wa = self._windows(3, 4, 9, 1, [])
        wb = self._windows(4, 4, 9, 1, [])
        batched = comp.pair_distances(wa, wb)
        scalar = np.array(
            [comp.pair_distance(wa[j], wb[j]) for j in range(4)]
        )
        assert np.array_equal(batched, scalar)

    def test_window_distances_matches_scalar_reference(self):
        """Mixed clean / clipped / walked-off / NaN-displaced windows."""
        comp = Comparator("correlation")
        a = make_signal(200, seed=3, channels=2)
        b = make_signal(220, seed=4, channels=2)
        h = [0.0, 3.0, -2.4, np.nan, 1e9, -1e9, 215.0, 0.5, np.inf, 7.0]
        sync = window_sync(10, n_win=16, n_hop=8, h_disp=h)
        fast = comp._window_distances(a, b, sync)
        scalar = comp._window_distances_scalar(a, b, sync)
        assert np.array_equal(fast, scalar)

    def test_window_distances_quarantined_nan_windows(self):
        """NaN samples (as left by a disabled sanitizer) score identically
        through the batched and scalar routes."""
        comp = Comparator("correlation")
        data = np.random.default_rng(5).standard_normal((200, 1))
        data[30:40] = np.nan
        a = Signal(data, 10.0)
        b = make_signal(200, seed=6)
        sync = window_sync(20, n_win=12, n_hop=6)
        fast = comp._window_distances(a, b, sync)
        scalar = comp._window_distances_scalar(a, b, sync)
        assert np.array_equal(fast, scalar)

    def test_window_distances_hypothesis_bit_identical(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        comp = Comparator("correlation")

        @given(
            seed=st.integers(0, 2**16),
            channels=st.sampled_from([1, 3]),
            n_win=st.integers(2, 10),
            n_hop=st.integers(1, 8),
            disps=st.lists(
                st.one_of(
                    st.floats(-40, 40),
                    st.sampled_from(
                        [np.nan, np.inf, -np.inf, 1e300, -1e300]
                    ),
                ),
                min_size=1,
                max_size=12,
            ),
            zero_var=st.booleans(),
        )
        @settings(deadline=None, max_examples=75)
        def property_case(seed, channels, n_win, n_hop, disps, zero_var):
            rng = np.random.default_rng(seed)
            n = max(n_hop * len(disps) + n_win, n_win) + 5
            da = rng.standard_normal((n, channels))
            db = rng.standard_normal((n + 13, channels))
            if zero_var:
                da[: n // 2] = 1.25  # constant prefix windows
            a, b = Signal(da, 10.0), Signal(db, 10.0)
            sync = window_sync(
                len(disps), n_win=n_win, n_hop=n_hop, h_disp=disps
            )
            fast = comp._window_distances(a, b, sync)
            scalar = comp._window_distances_scalar(a, b, sync)
            assert np.array_equal(fast, scalar)

        property_case()
