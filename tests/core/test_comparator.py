"""Unit tests for the comparator (vertical-distance calculation)."""

import numpy as np
import pytest

from repro.core import Comparator, vertical_distances
from repro.signals import Signal
from repro.sync import SyncResult


def make_signal(n=100, fs=10.0, seed=0, channels=1):
    rng = np.random.default_rng(seed)
    return Signal(rng.standard_normal((n, channels)), fs)


def window_sync(n_indexes, n_win=10, n_hop=5, h_disp=None):
    h = np.zeros(n_indexes) if h_disp is None else np.asarray(h_disp, float)
    return SyncResult(h_disp=h, mode="window", n_win=n_win, n_hop=n_hop)


class TestWindowMode:
    def test_identical_signals_zero_distance(self):
        s = make_signal()
        v = vertical_distances(s, s, window_sync(10))
        assert np.allclose(v, 0.0, atol=1e-12)

    def test_gain_change_still_zero_with_correlation(self):
        s = make_signal()
        scaled = s.with_data(s.data * 7.5)
        v = vertical_distances(scaled, s, window_sync(10))
        assert np.allclose(v, 0.0, atol=1e-9)

    def test_displacement_applied(self):
        """With the correct h_disp, a shifted copy scores near zero."""
        data = np.random.default_rng(1).standard_normal(200)
        ref = Signal(data, 10.0)
        obs = Signal(data[5:150], 10.0)  # obs[i] = ref[i + 5]
        sync = window_sync(10, h_disp=np.full(10, 5.0))
        v = vertical_distances(obs, ref, sync)
        assert np.allclose(v, 0.0, atol=1e-12)

        wrong = vertical_distances(obs, ref, window_sync(10))
        assert wrong.mean() > 0.5

    def test_unrelated_signals_high_distance(self):
        v = vertical_distances(
            make_signal(seed=1), make_signal(seed=2), window_sync(10)
        )
        assert v.mean() > 0.5

    def test_boundary_window_reports_max_distance(self):
        """A window pushed off the reference end must score 2.0 (worst)."""
        obs = make_signal(100)
        ref = make_signal(100)
        sync = window_sync(1, h_disp=[99.0])  # only 1 overlapping sample
        v = vertical_distances(obs, ref, sync)
        assert v[0] == pytest.approx(2.0)

    def test_custom_metric_by_name(self):
        s = make_signal()
        shifted = s.with_data(s.data + 1.0)
        v = Comparator("mae").vertical_distances(s, shifted, window_sync(5))
        assert np.allclose(v, 1.0)

    def test_custom_metric_callable(self):
        calls = []

        def metric(u, v):
            calls.append(1)
            return 0.25

        s = make_signal()
        v = Comparator(metric).vertical_distances(s, s, window_sync(4))
        assert np.allclose(v, 0.25)
        assert len(calls) == 4

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="unknown distance"):
            Comparator("chebyshev")

    def test_fractional_h_disp_rounded(self):
        s = make_signal(200)
        sync = window_sync(5, h_disp=[0.4, -0.4, 0.0, 0.49, -0.49])
        v = vertical_distances(s, s, sync)
        assert np.allclose(v, 0.0, atol=1e-12)


class TestPointMode:
    def test_point_mode_needs_pairs(self):
        s = make_signal()
        sync = SyncResult(h_disp=np.zeros(10), mode="point", pairs=None)
        with pytest.raises(ValueError, match="warping path"):
            vertical_distances(s, s, sync)

    def test_identity_path_zero_distance(self):
        s = make_signal(20, channels=3)
        pairs = [(i, i) for i in range(20)]
        sync = SyncResult(h_disp=np.zeros(20), mode="point", pairs=pairs)
        v = vertical_distances(s, s, sync)
        assert np.allclose(v, 0.0, atol=1e-9)

    def test_duplicate_pairs_averaged_eq15(self):
        obs = Signal(np.array([[1.0, 2.0]]), 1.0)
        ref = Signal(np.array([[1.0, 2.0], [2.0, 1.0]]), 1.0)
        pairs = [(0, 0), (0, 1)]
        sync = SyncResult(h_disp=np.zeros(1), mode="point", pairs=pairs)
        v = Comparator("mae").vertical_distances(obs, ref, sync)
        # d(a0, b0) = 0; d(a0, b1) = mean(|1-2|, |2-1|) = 1 -> average 0.5
        assert v[0] == pytest.approx(0.5)

    def test_out_of_range_pairs_skipped(self):
        s = make_signal(5)
        pairs = [(0, 0), (10, 2), (1, 99)]
        sync = SyncResult(h_disp=np.zeros(5), mode="point", pairs=pairs)
        v = vertical_distances(s, s, sync)
        assert v.shape == (5,)


class TestDegenerateWindows:
    """Regression tests: zero-variance / non-finite inputs must map to
    explicit worst-case (or zero) distances, never NaN and never a crash."""

    def test_constant_window_vs_varying_is_max_distance(self):
        """Pre-fix: Pearson's r on a constant window degenerated and v_dist
        could go NaN, which compares benign against every threshold."""
        obs = make_signal(100)
        frozen = obs.with_data(np.zeros_like(obs.data))
        v = vertical_distances(frozen, obs, window_sync(10))
        assert np.isfinite(v).all()
        assert np.allclose(v, 2.0)

    def test_identical_constant_windows_are_zero(self):
        s = Signal(np.full(100, 3.25), 10.0)
        v = vertical_distances(s, s, window_sync(10))
        assert np.allclose(v, 0.0)

    def test_different_constant_windows_are_max(self):
        a = Signal(np.full(100, 1.0), 10.0)
        b = Signal(np.full(100, -1.0), 10.0)
        v = vertical_distances(a, b, window_sync(10))
        assert np.allclose(v, 2.0)

    def test_non_finite_h_disp_does_not_crash(self):
        """Pre-fix: int(round(nan)) raised mid-detection."""
        s = make_signal(200)
        sync = window_sync(5, h_disp=[0.0, np.nan, np.inf, -np.inf, 0.0])
        v = vertical_distances(s, s, sync)
        assert np.isfinite(v).all()
        assert v[1] == v[2] == v[3] == pytest.approx(2.0)
        assert v[0] == pytest.approx(0.0, abs=1e-9)

    def test_huge_negative_offset_is_max_distance(self):
        """An offset so negative the reference window clamps to nothing
        must score as a walk-off, like an overrun does."""
        s = make_signal(200)
        sync = window_sync(3, h_disp=[0.0, -1e6, -200.0])
        v = vertical_distances(s, s, sync)
        assert np.isfinite(v).all()
        assert v[1] == pytest.approx(2.0)
        assert v[2] == pytest.approx(2.0)

    def test_nan_returning_metric_clamped(self):
        """Whatever a custom metric emits, v_dist stays finite."""
        s = make_signal()
        v = Comparator(lambda u, w: float("nan")).vertical_distances(
            s, s, window_sync(4)
        )
        assert np.allclose(v, 2.0)

    def test_constant_special_case_is_correlation_only(self):
        """Other metrics are well-defined on constants and stay untouched."""
        a = Signal(np.full(100, 2.0), 10.0)
        b = Signal(np.full(100, 5.0), 10.0)
        v = Comparator("mae").vertical_distances(a, b, window_sync(5))
        assert np.allclose(v, 3.0)

    def test_pair_distance_public_contract(self):
        comp = Comparator("correlation")
        varying = np.random.default_rng(0).standard_normal((20, 1))
        const = np.full((20, 1), 1.5)
        assert comp.pair_distance(const, varying) == 2.0
        assert comp.pair_distance(const, const.copy()) == 0.0
        assert np.isfinite(comp.pair_distance(varying, varying))
