"""Tests for the unified incremental detection core (`repro.core.engine`).

Two pillars:

* **Chunking invariance** (hypothesis property): feeding a signal in *any*
  chunk decomposition — 1-sample dribbles, uneven splits, one big chunk —
  produces bit-identical evidence, alerts, health verdicts, detection
  output, and emitted event stream as the single-chunk batch call.
* **Checkpoint/resume**: `DetectorState` serialized mid-stream (through
  strict JSON) and restored into a fresh engine finishes the run with
  output identical to the uninterrupted one, including a dark-channel run
  spanning the checkpoint.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DetectionEngine,
    DetectorState,
    NsyncIds,
    StreamingNsyncIds,
    Thresholds,
)
from repro.core.engine import STATE_SCHEMA, STATE_VERSION
from repro.obs import events
from repro.signals import Signal
from repro.sync import DwmParams, DwmSynchronizer, FastDtwSynchronizer

PARAMS = DwmParams(t_win=1.0, t_hop=0.5, t_ext=0.5, t_sigma=0.25, eta=0.2)
FS = 100.0
N = 1500

STRICT = Thresholds(c_c=50.0, h_c=20.0, v_c=0.5)


def textured(n=N, seed=0):
    rng = np.random.default_rng(seed)
    base = np.cumsum(rng.standard_normal(n))
    return base - np.linspace(0, base[-1], n)


@pytest.fixture(scope="module")
def reference():
    return Signal(textured(seed=1), FS)


def make_observed(scenario: str) -> np.ndarray:
    """Observed streams covering the interesting engine regimes."""
    data = textured(seed=2).reshape(-1, 1)
    if scenario == "clean":
        return data
    if scenario == "nan_burst":
        out = data.copy()
        out[400:430] = np.nan  # short burst: repaired + quarantined
        return out
    if scenario == "dark_run":
        out = data.copy()
        out[600:780] = out[599]  # 1.8 s frozen: SENSOR_FAULT fires
        return out
    if scenario == "leading_nan":
        out = data.copy()
        out[:15] = np.nan  # no finite seed yet: zero-fill path
        return out
    if scenario == "corrupted":
        rng = np.random.default_rng(9)
        return np.cumsum(rng.standard_normal((N, 1)), axis=0)  # alarms fire
    raise AssertionError(scenario)


SCENARIOS = ("clean", "nan_burst", "dark_run", "leading_nan", "corrupted")


def run_engine(reference, chunks, thresholds=STRICT):
    """One full engine run over the given chunk decomposition."""
    engine = DetectionEngine(
        reference, DwmSynchronizer(PARAMS), thresholds=thresholds
    )
    for chunk in chunks:
        engine.push(chunk)
    return engine, engine.finalize()


def record_events(reference, chunks, thresholds=STRICT):
    """Run + capture the emitted event stream (volatile fields stripped)."""
    events.enable()
    try:
        engine, result = run_engine(reference, chunks, thresholds)
        stream = [
            {k: v for k, v in record.items() if k not in ("ts", "seq")}
            for record in events.tail()
        ]
    finally:
        events.disable()
    return engine, result, stream


def split(data: np.ndarray, cuts) -> list:
    """Chunk decomposition of ``data`` at the given sorted cut points."""
    bounds = [0, *cuts, data.shape[0]]
    return [data[a:b] for a, b in zip(bounds[:-1], bounds[1:])]


class TestChunkingInvariance:
    """Any chunking == the single-chunk batch call, bit for bit."""

    @settings(max_examples=20, deadline=None)
    @given(
        scenario=st.sampled_from(SCENARIOS),
        cuts=st.lists(
            st.integers(1, N - 1), unique=True, min_size=1, max_size=8
        ).map(sorted),
        dribble=st.booleans(),
    )
    def test_any_chunking_is_bit_identical(
        self, reference, scenario, cuts, dribble
    ):
        observed = make_observed(scenario)
        chunks = split(observed, cuts)
        if dribble:
            # Stress the ring buffer's worst case: explode the largest
            # chunk into 1-sample pushes.
            j = max(range(len(chunks)), key=lambda k: chunks[k].shape[0])
            ones = [chunks[j][i : i + 1] for i in range(chunks[j].shape[0])]
            chunks = chunks[:j] + ones + chunks[j + 1 :]
        eng_a, res_a, ev_a = record_events(reference, [observed])
        eng_b, res_b, ev_b = record_events(reference, chunks)

        # Window evidence, bit-exact.
        for key in ("c_disp_curve", "h_dist_filtered", "v_dist_filtered"):
            assert np.array_equal(
                eng_a.evidence()[key], eng_b.evidence()[key]
            ), key
        assert np.array_equal(res_a.v_dist, res_b.v_dist)
        assert np.array_equal(res_a.sync.h_disp, res_b.sync.h_disp)
        # Alerts (dataclass equality covers index/value/threshold/time).
        assert res_a.alerts == res_b.alerts
        # Health verdict (includes dark spans and fault reasons).
        assert res_a.health == res_b.health
        assert eng_a.health_dict() == eng_b.health_dict()
        assert res_a.quarantined_windows == res_b.quarantined_windows
        # Full detection verdict.
        assert res_a.detection.to_dict() == res_b.detection.to_dict()
        # The emitted event stream, record for record.
        assert ev_a == ev_b

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_one_sample_dribble(self, reference, scenario):
        """The degenerate chunking: one sample at a time, every scenario."""
        observed = make_observed(scenario)[:600]
        _, res_a, ev_a = record_events(reference, [observed])
        chunks = [observed[i : i + 1] for i in range(observed.shape[0])]
        _, res_b, ev_b = record_events(reference, chunks)
        assert np.array_equal(res_a.v_dist, res_b.v_dist)
        assert np.array_equal(res_a.sync.h_disp, res_b.sync.h_disp)
        assert res_a.alerts == res_b.alerts
        assert res_a.health == res_b.health
        assert res_a.detection.to_dict() == res_b.detection.to_dict()
        assert ev_a == ev_b

    def test_facades_share_the_engine(self, reference):
        """NsyncIds.detect == StreamingNsyncIds push+finalize, exactly."""
        observed = make_observed("corrupted")
        ids = NsyncIds(reference, DwmSynchronizer(PARAMS))
        ids.thresholds = STRICT
        verdict = ids.detect(Signal(observed, FS))

        stream = StreamingNsyncIds(reference, PARAMS, STRICT)
        for start in range(0, observed.shape[0], 97):
            stream.push(observed[start : start + 97])
        result = stream.finalize()
        assert result.detection.to_dict() == verdict.to_dict()
        assert [a.to_dict() for a in result.alerts] == [
            a.to_dict() for a in stream.alerts
        ]

    def test_batch_synchronizer_rides_the_same_engine(self, reference):
        """A point-mode (DTW) synchronizer adapted behind BatchSyncCursor
        produces the same result chunked as in one shot."""
        short_ref = Signal(textured(n=400, seed=1), FS)
        observed = textured(n=400, seed=2).reshape(-1, 1)

        def run(chunks):
            engine = DetectionEngine(
                short_ref, FastDtwSynchronizer(), thresholds=STRICT
            )
            for chunk in chunks:
                engine.push(chunk)
            return engine.finalize()

        res_a = run([observed])
        res_b = run([observed[:113], observed[113:287], observed[287:]])
        assert res_a.sync.mode == "point"
        assert np.array_equal(res_a.v_dist, res_b.v_dist)
        assert res_a.detection.to_dict() == res_b.detection.to_dict()


class TestDetectorState:
    """Mid-stream checkpoint/resume through strict JSON."""

    def _resume_run(self, reference, observed, checkpoint_at):
        """Uninterrupted vs checkpointed-and-restored; returns both."""
        plain = DetectionEngine(
            reference, DwmSynchronizer(PARAMS), thresholds=STRICT
        )
        plain.push(observed)
        res_plain = plain.finalize()

        first = DetectionEngine(
            reference, DwmSynchronizer(PARAMS), thresholds=STRICT
        )
        first.push(observed[:checkpoint_at])
        payload = json.dumps(first.state().to_dict())

        resumed = DetectionEngine(
            reference, DwmSynchronizer(PARAMS), thresholds=STRICT
        )
        resumed.restore(DetectorState.from_dict(json.loads(payload)))
        resumed.push(observed[checkpoint_at:])
        return res_plain, resumed.finalize()

    @pytest.mark.parametrize("scenario", SCENARIOS)
    @pytest.mark.parametrize("checkpoint_at", (1, 640, 701, N - 1))
    def test_resume_matches_uninterrupted(
        self, reference, scenario, checkpoint_at
    ):
        observed = make_observed(scenario)
        res_a, res_b = self._resume_run(reference, observed, checkpoint_at)
        assert np.array_equal(res_a.sync.h_disp, res_b.sync.h_disp)
        assert np.array_equal(res_a.v_dist, res_b.v_dist)
        assert res_a.alerts == res_b.alerts
        assert res_a.health == res_b.health
        assert res_a.detection.to_dict() == res_b.detection.to_dict()

    def test_dark_run_spans_checkpoint(self, reference):
        """The dark run starts before the checkpoint and crosses the
        policy limit after it: the carry must survive serialization."""
        observed = make_observed("clean").copy()
        observed[600:780] = observed[599]  # dark 600..780
        # Checkpoint mid-run at 650: run is 50 samples old, fires ~700.
        res_a, res_b = self._resume_run(reference, observed, 650)
        assert res_a.health.sensor_fault and res_b.health.sensor_fault
        assert res_a.health == res_b.health
        assert res_a.alerts == res_b.alerts
        fault = [a for a in res_b.alerts if a.submodule == "sensor_fault"]
        assert len(fault) == 1

    def test_streaming_facade_state_round_trip(self, reference):
        observed = make_observed("nan_burst")
        a = StreamingNsyncIds(reference, PARAMS, STRICT)
        a.push(observed[:800])
        payload = json.dumps(a.state().to_dict())
        b = StreamingNsyncIds(reference, PARAMS, STRICT)
        b.restore(DetectorState.from_dict(json.loads(payload)))
        a.push(observed[800:])
        b.push(observed[800:])
        assert a.health() == b.health()
        assert a.alerts == b.alerts
        for key in ("c_disp_curve", "h_dist_filtered", "v_dist_filtered"):
            assert np.array_equal(a.evidence()[key], b.evidence()[key])

    def test_batch_cursor_state_round_trip(self, reference):
        """Checkpointing also works for a BatchSyncCursor-adapted run."""
        short_ref = Signal(textured(n=400, seed=1), FS)
        observed = textured(n=400, seed=2).reshape(-1, 1)

        def fresh():
            return DetectionEngine(
                short_ref, FastDtwSynchronizer(), thresholds=STRICT
            )

        a = fresh()
        a.push(observed)
        res_a = a.finalize()

        b = fresh()
        b.push(observed[:250])
        payload = json.dumps(b.state().to_dict())
        c = fresh()
        c.restore(DetectorState.from_dict(json.loads(payload)))
        c.push(observed[250:])
        res_c = c.finalize()
        assert np.array_equal(res_a.v_dist, res_c.v_dist)
        assert res_a.detection.to_dict() == res_c.detection.to_dict()

    def test_to_dict_round_trips_exactly(self, reference):
        observed = make_observed("leading_nan")
        engine = DetectionEngine(
            reference, DwmSynchronizer(PARAMS), thresholds=STRICT
        )
        engine.push(observed[:777])
        doc = engine.state().to_dict()
        clone = DetectorState.from_dict(json.loads(json.dumps(doc)))
        assert clone.to_dict() == doc

    def test_schema_and_version_are_validated(self):
        with pytest.raises(ValueError, match="schema"):
            DetectorState.from_dict({"schema": "something/else"})
        with pytest.raises(ValueError, match="version"):
            DetectorState.from_dict(
                {"schema": STATE_SCHEMA, "version": STATE_VERSION + 1}
            )

    def test_config_mismatch_is_rejected(self, reference):
        engine = DetectionEngine(reference, DwmSynchronizer(PARAMS))
        engine.push(make_observed("clean")[:200])
        state = engine.state()
        other = DetectionEngine(
            reference, DwmSynchronizer(PARAMS), filter_window=5
        )
        with pytest.raises(ValueError, match="filter_window"):
            other.restore(state)

    def test_snapshot_after_finalize_is_rejected(self, reference):
        engine = DetectionEngine(reference, DwmSynchronizer(PARAMS))
        engine.push(make_observed("clean")[:200])
        engine.finalize()
        with pytest.raises(RuntimeError):
            engine.state()


class TestEngineLifecycle:
    def test_push_after_finalize_raises(self, reference):
        engine = DetectionEngine(reference, DwmSynchronizer(PARAMS))
        engine.push(make_observed("clean")[:200])
        engine.finalize()
        with pytest.raises(RuntimeError):
            engine.push(make_observed("clean")[:10])

    def test_finalize_twice_raises(self, reference):
        engine = DetectionEngine(reference, DwmSynchronizer(PARAMS))
        engine.finalize()
        with pytest.raises(RuntimeError):
            engine.finalize()

    def test_alert_time_s_is_required(self):
        from repro.core import Alert

        with pytest.raises(TypeError):
            Alert(0, "c_disp", 1.0, 0.5)  # no silent time_s default

    def test_unarmed_engine_raises_no_alerts(self, reference):
        observed = make_observed("corrupted")
        engine = DetectionEngine(reference, DwmSynchronizer(PARAMS))
        engine.push(observed)
        result = engine.finalize()
        assert result.detection is None
        assert result.alerts == ()
        assert result.features.v_dist_filtered.size > 0

    def test_buffer_is_trimmed(self, reference):
        """O(window) memory: the engine keeps only the unconsumed tail."""
        engine = DetectionEngine(reference, DwmSynchronizer(PARAMS))
        data = make_observed("clean")
        for start in range(0, N, 100):
            engine.push(data[start : start + 100])
        n_hop = round(PARAMS.t_hop * FS)
        kept = len(engine._ring)
        assert kept < N
        assert kept == N - engine.n_indexes * n_hop
        assert len(engine._bad_ring) == kept
        assert engine._ring.start == engine.n_indexes * n_hop


class TestStatePayloadValidation:
    """A malformed checkpoint fails with a ValueError naming the field.

    The fleet service treats that ValueError as "checkpoint unusable,
    restart the stream from scratch"; a raw KeyError from deep inside
    restore (the original bug) would crash the shard worker instead.
    """

    @pytest.fixture(scope="class")
    def doc(self, reference):
        engine = DetectionEngine(
            reference, DwmSynchronizer(PARAMS), thresholds=STRICT
        )
        engine.push(make_observed("nan_burst")[:800])
        return engine.state().to_dict()

    def clone(self, doc):
        return json.loads(json.dumps(doc))

    @pytest.mark.parametrize(
        "section",
        ("config", "progress", "sanitize", "sync", "evidence",
         "alerts", "fired"),
    )
    def test_missing_section_is_named(self, doc, section):
        broken = {k: v for k, v in doc.items() if k != section}
        with pytest.raises(ValueError, match=section):
            DetectorState.from_dict(broken)

    def test_ill_typed_section_is_named(self, doc):
        broken = self.clone(doc)
        broken["progress"] = [1, 2, 3]
        with pytest.raises(ValueError, match="progress"):
            DetectorState.from_dict(broken)
        broken = self.clone(doc)
        broken["alerts"] = "none"
        with pytest.raises(ValueError, match="alerts"):
            DetectorState.from_dict(broken)

    @pytest.mark.parametrize(
        "section, key",
        [
            ("config", "n_channels"),
            ("config", "sample_rate"),
            ("progress", "samples_seen"),
            ("progress", "buffer"),
            ("sanitize", "last_good"),
            ("evidence", "v_hist"),
        ],
    )
    def test_missing_nested_field_is_named(self, doc, section, key):
        broken = self.clone(doc)
        assert key in broken[section], f"fixture lacks {section}.{key}"
        del broken[section][key]
        with pytest.raises(ValueError) as exc:
            DetectorState.from_dict(broken)
        assert section in str(exc.value) and key in str(exc.value)

    def test_malformed_alert_entries_are_named(self, doc):
        broken = self.clone(doc)
        broken["alerts"] = [{"window_index": 3}]  # everything else missing
        with pytest.raises(ValueError, match="alert #0"):
            DetectorState.from_dict(broken)
        broken["alerts"] = [7]
        with pytest.raises(ValueError, match="alert #0"):
            DetectorState.from_dict(broken)

    def test_any_single_deletion_never_escapes_as_keyerror(self, doc):
        """Exhaustive: deleting *any* nested key either still loads or
        raises ValueError — never KeyError/TypeError."""
        for section, body in doc.items():
            if not isinstance(body, dict):
                continue
            for key in body:
                broken = self.clone(doc)
                del broken[section][key]
                try:
                    state = DetectorState.from_dict(broken)
                except ValueError:
                    continue
                assert isinstance(state, DetectorState)
