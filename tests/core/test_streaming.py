"""Unit tests for the real-time (streaming) NSYNC pipeline."""

import numpy as np
import pytest

from repro import obs
from repro.core import NsyncIds, StreamingNsyncIds, Thresholds
from repro.core.comparator import MAX_CORRELATION_DISTANCE
from repro.core.streaming import TRUNCATED_WINDOW_DISTANCE
from repro.obs import events
from repro.signals import Signal
from repro.sync import DwmParams, DwmSynchronizer

PARAMS = DwmParams(t_win=1.0, t_hop=0.5, t_ext=0.5, t_sigma=0.25, eta=0.2)
FS = 100.0


def textured(n=3000, seed=0):
    rng = np.random.default_rng(seed)
    base = np.cumsum(rng.standard_normal(n))
    return base - np.linspace(0, base[-1], n)


@pytest.fixture()
def reference():
    return Signal(textured(seed=1), FS)


@pytest.fixture()
def lenient():
    return Thresholds(c_c=1e9, h_c=1e9, v_c=1e9)


@pytest.fixture()
def strict():
    return Thresholds(c_c=50.0, h_c=20.0, v_c=0.5)


class TestStreamingNsync:
    def test_identical_stream_no_alerts(self, reference, strict):
        ids = StreamingNsyncIds(reference, PARAMS, strict)
        for start in range(0, reference.n_samples, 250):
            ids.push(reference.data[start : start + 250])
        assert not ids.intrusion_detected
        assert ids.alerts == []

    def test_corrupted_stream_alerts(self, reference, strict):
        ids = StreamingNsyncIds(reference, PARAMS, strict)
        rng = np.random.default_rng(9)
        corrupted = np.cumsum(rng.standard_normal((reference.n_samples, 1)), axis=0)
        alerts = ids.push(corrupted)
        assert ids.intrusion_detected
        assert alerts, "corrupted stream must raise at least one alert"
        assert alerts[0].submodule in ("c_disp", "h_dist", "v_dist")
        assert alerts[0].value > alerts[0].threshold

    def test_alert_contains_window_index(self, reference, strict):
        ids = StreamingNsyncIds(reference, PARAMS, strict)
        rng = np.random.default_rng(10)
        ids.push(np.cumsum(rng.standard_normal((2000, 1)), axis=0))
        indexes = [a.window_index for a in ids.alerts]
        assert indexes == sorted(indexes)

    def test_evidence_snapshot(self, reference, lenient):
        ids = StreamingNsyncIds(reference, PARAMS, lenient)
        ids.push(reference.data[:1500])
        ev = ids.evidence()
        assert ev["h_disp"].size > 0
        assert ev["h_dist_filtered"].size == ev["h_disp"].size
        assert ev["v_dist_filtered"].size == ev["h_disp"].size
        assert ev["c_disp"] >= 0.0

    def test_streaming_matches_batch_evidence(self, reference, lenient):
        """Chunked streaming must produce the same h_disp/v_dist as batch."""
        obs = Signal(textured(seed=2), FS)

        stream = StreamingNsyncIds(reference, PARAMS, lenient)
        for start in range(0, obs.n_samples, 97):
            stream.push(obs.data[start : start + 97])
        ev = stream.evidence()

        batch = NsyncIds(reference, DwmSynchronizer(PARAMS))
        analysis = batch.analyze(obs)

        n = min(ev["h_disp"].size, analysis.sync.n_indexes)
        assert np.allclose(ev["h_disp"][:n], analysis.sync.h_disp[:n])
        assert np.allclose(
            ev["v_dist_filtered"][:n],
            analysis.features.v_dist_filtered[:n],
            atol=1e-9,
        )

    def test_invalid_filter_window(self, reference, lenient):
        with pytest.raises(ValueError):
            StreamingNsyncIds(reference, PARAMS, lenient, filter_window=0)

    def test_first_alert_is_earliest_violation(self, reference):
        """v_c violated from the start: the first alert is window 0."""
        tight = Thresholds(c_c=1e9, h_c=1e9, v_c=1e-6)
        ids = StreamingNsyncIds(reference, PARAMS, tight)
        rng = np.random.default_rng(11)
        noise = rng.standard_normal((reference.n_samples, 1))
        ids.push(noise)
        v_alerts = [a for a in ids.alerts if a.submodule == "v_dist"]
        assert v_alerts and v_alerts[0].window_index == 0

    def test_alert_time_s_from_window_geometry(self, reference):
        """time_s = window_index * hop / sample rate."""
        tight = Thresholds(c_c=1e9, h_c=1e9, v_c=1e-6)
        ids = StreamingNsyncIds(reference, PARAMS, tight)
        rng = np.random.default_rng(12)
        ids.push(rng.standard_normal((reference.n_samples, 1)))
        n_hop = round(PARAMS.t_hop * FS)
        for alert in ids.alerts:
            assert alert.time_s == pytest.approx(
                alert.window_index * n_hop / FS
            )


@pytest.fixture()
def event_ring():
    """Memory-only event log, torn down even on failure."""
    events.enable()
    yield
    events.disable()


class TestAlarmProvenance:
    """Every alert pairs with exactly one ``alarm`` event, in order.

    (Batch-vs-streaming evidence parity is no longer asserted here: both
    facades run the same :class:`~repro.core.engine.DetectionEngine`, and
    chunking invariance is covered by the hypothesis property in
    ``tests/core/test_engine.py``.)
    """

    def test_alarm_events_match_alerts(self, reference, event_ring):
        strict = Thresholds(c_c=50.0, h_c=20.0, v_c=0.5)
        ids = StreamingNsyncIds(reference, PARAMS, strict)
        rng = np.random.default_rng(9)
        ids.push(np.cumsum(rng.standard_normal((reference.n_samples, 1)),
                           axis=0))
        assert ids.intrusion_detected
        alarm_events = events.tail(etype="alarm")
        assert len(alarm_events) == len(ids.alerts)
        for event, alert in zip(alarm_events, ids.alerts):
            assert event["window"] == alert.window_index
            assert event["submodule"] == alert.submodule
            assert event["time_s"] == pytest.approx(alert.time_s)


class TestTruncatedWindows:
    def test_constant_is_max_correlation_distance(self):
        assert TRUNCATED_WINDOW_DISTANCE == MAX_CORRELATION_DISTANCE == 2.0

    def test_truncated_window_emits_event_and_counter(
        self, reference, lenient, event_ring
    ):
        """A displacement beyond the reference end leaves no overlap: the
        window reports the named worst-case distance and is accounted."""
        ids = StreamingNsyncIds(reference, PARAMS, lenient)
        ids.push(reference.data[:400])
        obs.reset()
        obs.enable()
        try:
            ids.engine._ingest(
                [(ids.engine.n_indexes, float(reference.n_samples + 1000))],
                v_pre=None,
            )
        finally:
            snapshot = obs.snapshot()
            obs.disable()
        assert ids.engine._v_hist[-1] == TRUNCATED_WINDOW_DISTANCE
        truncated = events.tail(etype="window_truncated")
        assert truncated and truncated[-1]["n"] < 2
        assert snapshot["counters"][
            "repro.core.engine.truncated_windows"
        ] == 1.0


class TestStreamingSanitization:
    """Degenerate chunks are repaired in-stream; dark channels fail closed."""

    def test_nan_chunk_repaired_and_quarantined(self, reference, lenient):
        ids = StreamingNsyncIds(reference, PARAMS, lenient)
        data = textured(seed=5)
        data[500:530] = np.nan  # 0.3 s burst, under the dark limit
        for start in range(0, data.size, 250):
            ids.push(data[start : start + 250])
        ev = ids.evidence()
        assert np.isfinite(ev["h_disp"]).all()
        assert np.isfinite(ev["v_dist_filtered"]).all()
        health = ids.health()
        assert health["n_nonfinite"] == 30
        assert health["quarantined_windows"]
        assert not health["sensor_fault"]
        assert not ids.intrusion_detected

    def test_leading_nan_first_chunk(self, reference, lenient):
        """NaNs before any good sample fall back to zeros, not a crash."""
        ids = StreamingNsyncIds(reference, PARAMS, lenient)
        data = textured(seed=6)
        data[:10] = np.nan
        # The first chunk (97 samples) completes no window, so the engine's
        # sanitized buffer is still untrimmed and inspectable.
        ids.push(data[:97])
        assert np.isfinite(ids.engine._ring.tail()).all()
        assert np.all(ids.engine._ring.tail()[:10, 0] == 0.0)
        for start in range(97, data.size, 97):
            ids.push(data[start : start + 97])
        ev = ids.evidence()
        assert np.isfinite(ev["h_disp"]).all()
        assert np.isfinite(ev["v_dist_filtered"]).all()
        assert ids.health()["n_nonfinite"] == 10

    def test_dark_stream_fails_closed(self, reference, strict):
        ids = StreamingNsyncIds(reference, PARAMS, strict)
        data = textured(seed=7)
        data[1000:1300] = data[999]  # 3 s frozen at fs=100
        for start in range(0, data.size, 50):
            ids.push(data[start : start + 50])
        health = ids.health()
        assert health["sensor_fault"]
        assert "dark_channel" in health["reasons"]
        assert ids.intrusion_detected
        faults = [a for a in ids.alerts if a.submodule == "sensor_fault"]
        assert len(faults) == 1, "SENSOR_FAULT must fire exactly once"

    def test_dark_run_spans_chunk_boundaries(self, reference, strict):
        """A constant run split across many tiny chunks must still trip."""
        ids = StreamingNsyncIds(reference, PARAMS, strict)
        data = textured(seed=8)
        data[700:900] = -2.5  # 2 s dark, pushed 25 samples at a time
        for start in range(0, data.size, 25):
            ids.push(data[start : start + 25])
        assert ids.health()["sensor_fault"]

    def test_sensor_fault_event_emitted(self, reference, strict, event_ring):
        ids = StreamingNsyncIds(reference, PARAMS, strict)
        data = textured(seed=9)
        data[500:800] = 0.0
        ids.push(data.reshape(-1, 1))
        assert events.tail(etype="sensor_fault")

    def test_quarantine_event_emitted(self, reference, lenient, event_ring):
        ids = StreamingNsyncIds(reference, PARAMS, lenient)
        data = textured(seed=10)
        data[400:420] = np.inf
        ids.push(data.reshape(-1, 1))
        quarantine = events.tail(etype="window_quarantined")
        assert quarantine
        assert all(e["n_bad"] > 0 for e in quarantine)

    def test_disabled_policy_repairs_without_fault(self, reference, lenient):
        from repro.core import SanitizePolicy

        ids = StreamingNsyncIds(
            reference, PARAMS, lenient, policy=SanitizePolicy(enabled=False)
        )
        data = textured(seed=11)
        data[500:900] = 1.0
        ids.push(data.reshape(-1, 1))
        assert not ids.health()["sensor_fault"]
        assert not ids.intrusion_detected

    def test_clean_stream_health(self, reference, lenient):
        ids = StreamingNsyncIds(reference, PARAMS, lenient)
        ids.push(textured(seed=12).reshape(-1, 1))
        health = ids.health()
        assert health["n_nonfinite"] == 0
        assert health["bad_fraction"] == 0.0
        assert health["quarantined_windows"] == []
