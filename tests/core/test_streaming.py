"""Unit tests for the real-time (streaming) NSYNC pipeline."""

import numpy as np
import pytest

from repro.core import NsyncIds, StreamingNsyncIds, Thresholds
from repro.signals import Signal
from repro.sync import DwmParams, DwmSynchronizer

PARAMS = DwmParams(t_win=1.0, t_hop=0.5, t_ext=0.5, t_sigma=0.25, eta=0.2)
FS = 100.0


def textured(n=3000, seed=0):
    rng = np.random.default_rng(seed)
    base = np.cumsum(rng.standard_normal(n))
    return base - np.linspace(0, base[-1], n)


@pytest.fixture()
def reference():
    return Signal(textured(seed=1), FS)


@pytest.fixture()
def lenient():
    return Thresholds(c_c=1e9, h_c=1e9, v_c=1e9)


@pytest.fixture()
def strict():
    return Thresholds(c_c=50.0, h_c=20.0, v_c=0.5)


class TestStreamingNsync:
    def test_identical_stream_no_alerts(self, reference, strict):
        ids = StreamingNsyncIds(reference, PARAMS, strict)
        for start in range(0, reference.n_samples, 250):
            ids.push(reference.data[start : start + 250])
        assert not ids.intrusion_detected
        assert ids.alerts == []

    def test_corrupted_stream_alerts(self, reference, strict):
        ids = StreamingNsyncIds(reference, PARAMS, strict)
        rng = np.random.default_rng(9)
        corrupted = np.cumsum(rng.standard_normal((reference.n_samples, 1)), axis=0)
        alerts = ids.push(corrupted)
        assert ids.intrusion_detected
        assert alerts, "corrupted stream must raise at least one alert"
        assert alerts[0].submodule in ("c_disp", "h_dist", "v_dist")
        assert alerts[0].value > alerts[0].threshold

    def test_alert_contains_window_index(self, reference, strict):
        ids = StreamingNsyncIds(reference, PARAMS, strict)
        rng = np.random.default_rng(10)
        ids.push(np.cumsum(rng.standard_normal((2000, 1)), axis=0))
        indexes = [a.window_index for a in ids.alerts]
        assert indexes == sorted(indexes)

    def test_evidence_snapshot(self, reference, lenient):
        ids = StreamingNsyncIds(reference, PARAMS, lenient)
        ids.push(reference.data[:1500])
        ev = ids.evidence()
        assert ev["h_disp"].size > 0
        assert ev["h_dist_filtered"].size == ev["h_disp"].size
        assert ev["v_dist_filtered"].size == ev["h_disp"].size
        assert ev["c_disp"] >= 0.0

    def test_streaming_matches_batch_evidence(self, reference, lenient):
        """Chunked streaming must produce the same h_disp/v_dist as batch."""
        obs = Signal(textured(seed=2), FS)

        stream = StreamingNsyncIds(reference, PARAMS, lenient)
        for start in range(0, obs.n_samples, 97):
            stream.push(obs.data[start : start + 97])
        ev = stream.evidence()

        batch = NsyncIds(reference, DwmSynchronizer(PARAMS))
        analysis = batch.analyze(obs)

        n = min(ev["h_disp"].size, analysis.sync.n_indexes)
        assert np.allclose(ev["h_disp"][:n], analysis.sync.h_disp[:n])
        assert np.allclose(
            ev["v_dist_filtered"][:n],
            analysis.features.v_dist_filtered[:n],
            atol=1e-9,
        )

    def test_invalid_filter_window(self, reference, lenient):
        with pytest.raises(ValueError):
            StreamingNsyncIds(reference, PARAMS, lenient, filter_window=0)

    def test_first_alert_is_earliest_violation(self, reference):
        """v_c violated from the start: the first alert is window 0."""
        tight = Thresholds(c_c=1e9, h_c=1e9, v_c=1e-6)
        ids = StreamingNsyncIds(reference, PARAMS, tight)
        rng = np.random.default_rng(11)
        noise = rng.standard_normal((reference.n_samples, 1))
        ids.push(noise)
        v_alerts = [a for a in ids.alerts if a.submodule == "v_dist"]
        assert v_alerts and v_alerts[0].window_index == 0
