"""Unit tests for the input-sanitization stage (repro.core.health)."""

import numpy as np
import pytest

from repro.core import SanitizePolicy, constant_runs, sanitize_signal
from repro.core.health import ChannelHealth
from repro.signals import Signal


def textured(n=500, seed=0):
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.standard_normal(n))


class TestConstantRuns:
    def test_healthy_data_yields_unit_runs(self):
        runs = constant_runs(np.array([1.0, 2.0, 3.0]))
        assert runs == [(0, 1), (1, 2), (2, 3)]

    def test_constant_stretch_is_one_run(self):
        runs = constant_runs(np.array([1.0, 5.0, 5.0, 5.0, 2.0]))
        assert (1, 4) in runs

    def test_nan_extends_runs(self):
        """A NaN is as dead as a repeated constant: it must join runs."""
        runs = constant_runs(np.array([1.0, np.nan, np.nan, 1.0, 2.0]))
        assert (0, 4) in runs

    def test_eps_tolerance(self):
        x = np.array([1.0, 1.0 + 1e-9, 1.0 - 1e-9, 5.0])
        assert (0, 3) in constant_runs(x, eps=1e-6)

    def test_empty_input(self):
        assert constant_runs(np.array([])) == []

    def test_every_sample_covered_once(self):
        rng = np.random.default_rng(3)
        x = rng.integers(0, 3, size=50).astype(float)
        runs = constant_runs(x)
        covered = sorted(i for a, b in runs for i in range(a, b))
        assert covered == list(range(50))


class TestSanitizePolicy:
    def test_defaults_valid(self):
        policy = SanitizePolicy()
        assert policy.enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_dark_s": 0.0},
            {"max_dark_s": -1.0},
            {"max_bad_fraction": 0.0},
            {"max_bad_fraction": 1.5},
            {"dark_eps": -1e-9},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SanitizePolicy(**kwargs)

    def test_min_dark_samples_scales_with_rate(self):
        policy = SanitizePolicy(max_dark_s=0.5)
        assert policy.min_dark_samples(100.0) == 50
        assert policy.min_dark_samples(1.0) == 2  # floor of 2 samples


class TestSanitizeSignal:
    def test_clean_signal_untouched(self):
        sig = Signal(textured(), 100.0)
        out = sanitize_signal(sig)
        assert out.signal is sig  # no copy for the common case
        assert not out.bad_samples.any()
        assert out.health.is_clean
        assert not out.health.sensor_fault

    def test_nan_forward_filled(self):
        data = textured(400)
        data[100:110] = np.nan
        out = sanitize_signal(Signal(data, 100.0))
        repaired = out.signal.data[:, 0]
        assert np.isfinite(repaired).all()
        assert np.all(repaired[100:110] == data[99])
        assert out.bad_samples[100:110].all()
        assert not out.bad_samples[:100].any()
        assert out.health.n_nonfinite == 10

    def test_leading_nan_becomes_zero(self):
        data = textured(300)
        data[:5] = np.inf
        out = sanitize_signal(Signal(data, 100.0))
        assert np.all(out.signal.data[:5, 0] == 0.0)

    def test_short_burst_no_sensor_fault(self):
        data = textured(1000)
        data[200:220] = np.nan  # 0.2 s << max_dark_s
        out = sanitize_signal(Signal(data, 100.0))
        assert not out.health.sensor_fault

    def test_dark_channel_trips_sensor_fault(self):
        data = textured(1000)
        data[300:500] = 4.2  # 2 s constant at fs=100
        out = sanitize_signal(Signal(data, 100.0), SanitizePolicy(max_dark_s=1.0))
        assert out.health.sensor_fault
        assert "dark_channel" in out.health.reasons
        assert any(a <= 300 and b >= 500 for a, b in out.health.dark_spans)
        assert out.health.longest_dark_s >= 2.0

    def test_nan_flood_counts_as_dark(self):
        data = textured(1000)
        data[300:500] = np.nan
        out = sanitize_signal(Signal(data, 100.0))
        assert out.health.sensor_fault
        assert "dark_channel" in out.health.reasons

    def test_bad_fraction_rule(self):
        rng = np.random.default_rng(0)
        data = textured(1000)
        # Scatter NaNs so no single run is long, but the fraction is high.
        bad = rng.random(1000) < 0.5
        bad[::2] = False  # never two adjacent -> short runs
        data[bad] = np.nan
        out = sanitize_signal(Signal(data, 100.0))
        assert out.health.bad_fraction > 0.2
        assert "nonfinite_fraction" in out.health.reasons

    def test_disabled_policy_repairs_but_never_faults(self):
        data = textured(1000)
        data[300:600] = 0.0
        out = sanitize_signal(
            Signal(data, 100.0), SanitizePolicy(enabled=False)
        )
        assert not out.health.sensor_fault
        assert out.health.reasons == ()
        assert np.isfinite(out.signal.data).all()

    def test_multichannel_dark_on_one_channel(self):
        rng = np.random.default_rng(1)
        data = rng.standard_normal((1000, 3)).cumsum(axis=0)
        data[100:400, 1] = -1.0
        out = sanitize_signal(Signal(data, 100.0))
        assert out.health.sensor_fault
        # The healthy channels must be untouched.
        assert np.array_equal(out.signal.data[:, 0], data[:, 0])

    def test_health_to_dict_json_safe(self):
        import json

        data = textured(500)
        data[50:60] = np.nan
        out = sanitize_signal(Signal(data, 100.0))
        doc = out.health.to_dict()
        json.dumps(doc)
        assert doc["n_nonfinite"] == 10
        assert isinstance(out.health, ChannelHealth)
