"""Extra streaming-pipeline coverage: exhaustion, chunk sizes, parity."""

import numpy as np
import pytest

from repro.core import StreamingNsyncIds, Thresholds
from repro.signals import Signal
from repro.sync import DwmParams

PARAMS = DwmParams(t_win=1.0, t_hop=0.5, t_ext=0.5, t_sigma=0.25, eta=0.2)
FS = 100.0


def textured(n=2500, seed=0):
    rng = np.random.default_rng(seed)
    base = np.cumsum(rng.standard_normal(n))
    return base - np.linspace(0, base[-1], n)


def lenient():
    return Thresholds(c_c=1e9, h_c=1e9, v_c=1e9)


class TestChunkSizeInvariance:
    @pytest.mark.parametrize("chunk", [1, 7, 64, 500, 10_000])
    def test_evidence_independent_of_chunking(self, chunk):
        ref = Signal(textured(seed=1), FS)
        obs = textured(seed=2)

        baseline = StreamingNsyncIds(ref, PARAMS, lenient())
        baseline.push(obs)
        expected = baseline.evidence()

        stream = StreamingNsyncIds(ref, PARAMS, lenient())
        for start in range(0, obs.size, chunk):
            stream.push(obs[start : start + chunk])
        got = stream.evidence()

        assert np.allclose(got["h_disp"], expected["h_disp"])
        assert np.allclose(
            got["v_dist_filtered"], expected["v_dist_filtered"]
        )


class TestExhaustion:
    def test_observation_longer_than_reference(self):
        """When the print outruns its reference, the stream stops emitting
        windows instead of crashing — the duration check (batch mode) or an
        operator timeout handles the verdict."""
        ref = Signal(textured(1200, seed=3), FS)
        stream = StreamingNsyncIds(ref, PARAMS, lenient())
        long_obs = np.concatenate([textured(1200, seed=3), textured(2000, seed=4)])
        stream.push(long_obs)
        n = stream.evidence()["h_disp"].size
        assert n < Signal(long_obs, FS).n_windows(
            PARAMS.n_win(FS), PARAMS.n_hop(FS)
        )
        # Pushing more data after exhaustion is a no-op, not an error.
        assert stream.push(textured(500, seed=5)) == []

    def test_empty_push(self):
        ref = Signal(textured(seed=6), FS)
        stream = StreamingNsyncIds(ref, PARAMS, lenient())
        assert stream.push(np.zeros((0, 1))) == []
        assert stream.evidence()["h_disp"].size == 0


class TestAlertOrdering:
    def test_alert_values_exceed_thresholds(self):
        ref = Signal(textured(seed=7), FS)
        tight = Thresholds(c_c=1.0, h_c=1e9, v_c=1e9)
        stream = StreamingNsyncIds(ref, PARAMS, tight)
        rng = np.random.default_rng(8)
        stream.push(np.cumsum(rng.standard_normal(2500)))
        assert stream.intrusion_detected
        for alert in stream.alerts:
            assert alert.value > alert.threshold
            assert alert.submodule == "c_disp"
