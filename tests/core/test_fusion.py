"""Unit tests for multi-channel fusion."""

import numpy as np
import pytest

from repro.core import MultiChannelNsyncIds
from repro.core.fusion import _required_votes
from repro.signals import Signal
from repro.sync import DwmParams, DwmSynchronizer

PARAMS = DwmParams(t_win=1.0, t_hop=0.5, t_ext=0.5, t_sigma=0.25, eta=0.2)
FS = 100.0


def textured(n=2500, seed=0):
    rng = np.random.default_rng(seed)
    base = np.cumsum(rng.standard_normal(n))
    return base - np.linspace(0, base[-1], n)


def benign_run(seed):
    """Two channels observing the same process (different noise)."""
    rng = np.random.default_rng(seed)
    base = textured(seed=999)
    return {
        "A": Signal(base + 0.05 * rng.standard_normal(base.size), FS),
        "B": Signal(2.0 * base + 0.1 * rng.standard_normal(base.size), FS),
    }


def malicious_run(seed):
    rng = np.random.default_rng(seed)
    walk = np.cumsum(rng.standard_normal(2500))
    return {"A": Signal(walk, FS), "B": Signal(walk * 2.0, FS)}


def build(policy="any"):
    ids = MultiChannelNsyncIds(
        benign_run(0),
        synchronizer_factory=lambda: DwmSynchronizer(PARAMS),
        policy=policy,
    )
    ids.fit([benign_run(s) for s in range(1, 7)], r=0.5)
    return ids


class TestPolicies:
    def test_required_votes(self):
        assert _required_votes("any", 6) == 1
        assert _required_votes("majority", 6) == 4
        assert _required_votes("majority", 5) == 3
        assert _required_votes(2, 6) == 2

    def test_bad_policy(self):
        with pytest.raises(ValueError):
            _required_votes("consensus", 3)
        with pytest.raises(ValueError):
            _required_votes(0, 3)
        with pytest.raises(ValueError):
            _required_votes(7, 3)


class TestFusion:
    def test_benign_passes(self):
        ids = build("any")
        verdict = ids.detect(benign_run(50))
        assert not verdict.is_intrusion
        assert verdict.votes == 0
        assert verdict.n_channels == 2

    def test_malicious_caught_on_all_channels(self):
        ids = build("majority")
        verdict = ids.detect(malicious_run(60))
        assert verdict.is_intrusion
        assert verdict.votes == 2
        assert set(verdict.alarming_channels()) == {"A", "B"}

    def test_single_channel_attack_any_vs_majority(self):
        """An attack visible on one channel only: 'any' fires, 'majority'
        (here 2-of-2) does not."""
        run = benign_run(70)
        corrupted = dict(run)
        rng = np.random.default_rng(71)
        corrupted["B"] = Signal(np.cumsum(rng.standard_normal(2500)), FS)

        any_ids = build("any")
        maj_ids = build("majority")
        assert any_ids.detect(corrupted).is_intrusion
        assert not maj_ids.detect(corrupted).is_intrusion

    def test_missing_channel_rejected(self):
        ids = build()
        with pytest.raises(KeyError, match="'B'"):
            ids.detect({"A": benign_run(0)["A"]})

    def test_missing_channel_in_training_rejected(self):
        ids = MultiChannelNsyncIds(
            benign_run(0), lambda: DwmSynchronizer(PARAMS)
        )
        with pytest.raises(KeyError):
            ids.fit([{"A": benign_run(1)["A"]}])

    def test_empty_references_rejected(self):
        with pytest.raises(ValueError):
            MultiChannelNsyncIds({}, lambda: DwmSynchronizer(PARAMS))

    def test_bad_policy_rejected_at_build(self):
        with pytest.raises(ValueError):
            MultiChannelNsyncIds(
                benign_run(0), lambda: DwmSynchronizer(PARAMS), policy=9
            )
