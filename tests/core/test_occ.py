"""Unit + property tests for One-Class Classification threshold learning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import OneClassTrainer, occ_threshold
from repro.core.discriminator import DetectionFeatures


def features(c_max, h_max, v_max, mismatch=0.0):
    return DetectionFeatures(
        c_disp=np.array([0.0, c_max]),
        h_dist_filtered=np.array([0.0, h_max]),
        v_dist_filtered=np.array([0.0, v_max]),
        duration_mismatch=mismatch,
    )


class TestOccThreshold:
    def test_eq26_formula(self):
        # max=10, min=4, r=0.5 -> 10 + 0.5 * 6 = 13
        assert occ_threshold([4.0, 7.0, 10.0], r=0.5) == pytest.approx(13.0)

    def test_r_zero_is_max(self):
        assert occ_threshold([1.0, 5.0, 3.0], r=0.0) == pytest.approx(5.0)

    def test_single_run(self):
        assert occ_threshold([2.0], r=0.3) == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            occ_threshold([], r=0.1)

    def test_negative_r_rejected(self):
        with pytest.raises(ValueError):
            occ_threshold([1.0], r=-0.1)

    @given(
        values=st.lists(st.floats(0, 1e6, allow_nan=False, width=64), min_size=1, max_size=20),
        r=st.floats(0, 2, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_threshold_covers_all_training_values(self, values, r):
        """The defining OCC property: no training run is flagged."""
        threshold = occ_threshold(values, r)
        assert all(v <= threshold + 1e-9 for v in values)

    @given(
        values=st.lists(st.floats(0, 1e6, allow_nan=False, width=64), min_size=2, max_size=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_threshold_monotone_in_r(self, values):
        assert occ_threshold(values, 0.1) <= occ_threshold(values, 0.5) + 1e-9


class TestOneClassTrainer:
    def test_thresholds_cover_training(self):
        trainer = OneClassTrainer(r=0.3)
        runs = [features(5.0, 1.0, 0.4), features(8.0, 2.0, 0.6), features(6.0, 1.5, 0.5)]
        for f in runs:
            trainer.add_run(f)
        t = trainer.thresholds()
        assert t.c_c >= 8.0
        assert t.h_c >= 2.0
        assert t.v_c >= 0.6
        assert trainer.n_runs == 3

    def test_r_zero_thresholds_equal_maxima(self):
        trainer = OneClassTrainer(r=0.0)
        trainer.add_run(features(5.0, 1.0, 0.4))
        trainer.add_run(features(3.0, 2.0, 0.2))
        t = trainer.thresholds()
        assert t.c_c == pytest.approx(5.0)
        assert t.h_c == pytest.approx(2.0)
        assert t.v_c == pytest.approx(0.4)

    def test_duration_threshold_has_slack(self):
        trainer = OneClassTrainer(r=0.0)
        trainer.add_run(features(1.0, 1.0, 0.1, mismatch=1.0))
        t = trainer.thresholds()
        assert t.d_c == pytest.approx(2.0)  # max + 1 window of slack

    def test_no_runs_rejected(self):
        with pytest.raises(ValueError):
            OneClassTrainer().thresholds()

    def test_negative_r_rejected(self):
        with pytest.raises(ValueError):
            OneClassTrainer(r=-0.5)

    def test_r_override_at_threshold_time(self):
        trainer = OneClassTrainer(r=0.0)
        trainer.add_run(features(2.0, 1.0, 0.2))
        trainer.add_run(features(4.0, 1.0, 0.2))
        assert trainer.thresholds(r=1.0).c_c == pytest.approx(6.0)

    def test_empty_feature_arrays_treated_as_zero(self):
        trainer = OneClassTrainer()
        trainer.add_run(
            DetectionFeatures(
                c_disp=np.zeros(0),
                h_dist_filtered=np.zeros(0),
                v_dist_filtered=np.zeros(0),
            )
        )
        t = trainer.thresholds()
        assert t.c_c == 0.0


class TestNonFiniteEvidenceRejected:
    """Regression tests: a NaN that sneaks into training evidence would
    produce a NaN threshold that never fires (silent fail-open)."""

    def test_occ_threshold_rejects_nan_maxima(self):
        with pytest.raises(ValueError, match="non-finite"):
            occ_threshold([1.0, float("nan"), 3.0], r=0.3)

    def test_occ_threshold_rejects_inf_maxima(self):
        with pytest.raises(ValueError, match="non-finite"):
            occ_threshold([1.0, float("inf")], r=0.3)

    @pytest.mark.parametrize(
        "name,kwargs",
        [
            ("c_disp", dict(c_max=float("nan"), h_max=1.0, v_max=0.5)),
            ("h_dist_filtered", dict(c_max=1.0, h_max=float("nan"), v_max=0.5)),
            ("v_dist_filtered", dict(c_max=1.0, h_max=1.0, v_max=float("inf"))),
            (
                "duration_mismatch",
                dict(c_max=1.0, h_max=1.0, v_max=0.5, mismatch=float("nan")),
            ),
        ],
    )
    def test_add_run_rejects_each_poisoned_array(self, name, kwargs):
        trainer = OneClassTrainer()
        with pytest.raises(ValueError, match=name):
            trainer.add_run(features(**kwargs))
        assert trainer.n_runs == 0  # the poisoned run left no partial state

    def test_clean_run_after_rejection_still_works(self):
        trainer = OneClassTrainer(r=0.0)
        with pytest.raises(ValueError):
            trainer.add_run(features(float("nan"), 1.0, 0.5))
        trainer.add_run(features(2.0, 1.0, 0.5))
        assert trainer.thresholds().c_c == pytest.approx(2.0)
