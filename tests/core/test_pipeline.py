"""Unit tests for the batch NSYNC pipeline (synthetic signals only)."""

import numpy as np
import pytest

from repro.core import NsyncIds, Thresholds
from repro.signals import Signal
from repro.sync import DwmParams, DwmSynchronizer, FastDtwSynchronizer


PARAMS = DwmParams(t_win=1.0, t_hop=0.5, t_ext=0.5, t_sigma=0.25, eta=0.2)


def textured(n=3000, fs=100.0, seed=0):
    rng = np.random.default_rng(seed)
    base = np.cumsum(rng.standard_normal(n))
    return base - np.linspace(0, base[-1], n)


def benign_run(seed, fs=100.0):
    """Same underlying process with mild random time-warp + noise."""
    rng = np.random.default_rng(seed)
    base = textured(3000, fs, seed=999)
    rate = 1.0 + 0.01 * rng.standard_normal()
    t = np.arange(int(3000 / max(rate, 0.5))) * rate
    t = t[t < 2999]
    warped = np.interp(t, np.arange(3000), base)
    return Signal(warped + 0.05 * rng.standard_normal(warped.size), fs)


def malicious_run(seed, fs=100.0):
    rng = np.random.default_rng(seed)
    return Signal(np.cumsum(rng.standard_normal(3000)), fs)


class TestNsyncIds:
    def test_detect_requires_fit(self):
        ids = NsyncIds(benign_run(0), DwmSynchronizer(PARAMS))
        with pytest.raises(RuntimeError, match="fit"):
            ids.detect(benign_run(1))

    def test_fit_returns_thresholds(self):
        ids = NsyncIds(benign_run(0), DwmSynchronizer(PARAMS))
        t = ids.fit([benign_run(s) for s in range(1, 5)], r=0.3)
        assert isinstance(t, Thresholds)
        assert ids.thresholds is t

    def test_benign_accepted_malicious_flagged(self):
        ids = NsyncIds(benign_run(0), DwmSynchronizer(PARAMS))
        ids.fit([benign_run(s) for s in range(1, 8)], r=0.3)

        benign_verdicts = [ids.detect(benign_run(s)) for s in range(20, 24)]
        assert sum(d.is_intrusion for d in benign_verdicts) <= 1

        malicious_verdicts = [ids.detect(malicious_run(s)) for s in range(30, 34)]
        assert all(d.is_intrusion for d in malicious_verdicts)

    def test_analyze_exposes_arrays(self):
        ids = NsyncIds(benign_run(0), DwmSynchronizer(PARAMS))
        analysis = ids.analyze(benign_run(1))
        n = analysis.sync.n_indexes
        assert analysis.v_dist.shape == (n,)
        assert analysis.features.c_disp.shape == (n,)
        assert analysis.features.h_dist_filtered.shape == (n,)
        assert analysis.duration_mismatch >= 0.0

    def test_duration_mismatch_counts_windows(self):
        ref = benign_run(0)
        ids = NsyncIds(ref, DwmSynchronizer(PARAMS))
        short = Signal(ref.data[: ref.n_samples // 2], ref.sample_rate)
        analysis = ids.analyze(short)
        n_win = PARAMS.n_win(ref.sample_rate)
        n_hop = PARAMS.n_hop(ref.sample_rate)
        expected = ref.n_windows(n_win, n_hop) - short.n_windows(n_win, n_hop)
        assert analysis.duration_mismatch == pytest.approx(expected)

    def test_manual_thresholds_accepted(self):
        ids = NsyncIds(benign_run(0), DwmSynchronizer(PARAMS))
        ids.thresholds = Thresholds(c_c=1e9, h_c=1e9, v_c=1e9)
        assert not ids.detect(benign_run(1)).is_intrusion

    def test_works_with_fastdtw_synchronizer(self):
        ref = Signal(textured(400), 100.0)
        ids = NsyncIds(ref, FastDtwSynchronizer(radius=1))
        ids.fit([ref], r=0.3)
        d = ids.detect(ref)
        assert not d.is_intrusion

    def test_truncated_observation_fires_duration(self):
        ids = NsyncIds(benign_run(0), DwmSynchronizer(PARAMS))
        ids.fit([benign_run(s) for s in range(1, 6)], r=0.3)
        half = benign_run(50)
        half = Signal(half.data[: half.n_samples // 2], half.sample_rate)
        d = ids.detect(half)
        assert d.is_intrusion
        assert d.duration_fired


class TestAlarmTime:
    def test_alarm_time_in_seconds(self):
        ids = NsyncIds(benign_run(0), DwmSynchronizer(PARAMS))
        ids.fit([benign_run(s) for s in range(1, 8)], r=0.3)
        verdict = ids.detect(malicious_run(90))
        assert verdict.is_intrusion
        assert verdict.first_alarm_time is not None
        observed_duration = malicious_run(90).duration
        assert 0.0 <= verdict.first_alarm_time <= observed_duration

    def test_benign_has_no_alarm_time(self):
        ids = NsyncIds(benign_run(0), DwmSynchronizer(PARAMS))
        ids.fit([benign_run(s) for s in range(1, 8)], r=0.5)
        verdict = ids.detect(benign_run(91))
        if not verdict.is_intrusion:
            assert verdict.first_alarm_time is None


class TestSanitization:
    """Graceful degradation: degenerate input degrades the verdict, never
    the process (see repro.core.health)."""

    def _fitted(self, r=0.3):
        ids = NsyncIds(benign_run(0), DwmSynchronizer(PARAMS))
        ids.fit([benign_run(s) for s in range(1, 6)], r=r)
        return ids

    def test_nan_burst_detects_without_crash(self):
        ids = self._fitted()
        probe = benign_run(40)
        data = probe.data.copy()
        data[500:530] = np.nan  # 0.3 s burst, under the 1 s dark limit
        verdict = ids.detect(Signal(data, probe.sample_rate))
        f = verdict.features
        assert np.isfinite(f.c_disp).all()
        assert np.isfinite(f.h_dist_filtered).all()
        assert np.isfinite(f.v_dist_filtered).all()
        assert not verdict.sensor_fault_fired
        assert verdict.health is not None
        assert verdict.health["n_nonfinite"] == 30
        assert verdict.health["quarantined_windows"]

    def test_quarantined_windows_cover_the_burst(self):
        ids = NsyncIds(benign_run(0), DwmSynchronizer(PARAMS))
        probe = benign_run(41)
        data = probe.data.copy()
        data[1000:1030] = np.inf
        analysis = ids.analyze(Signal(data, probe.sample_rate))
        n_hop = PARAMS.n_hop(probe.sample_rate)
        n_win = PARAMS.n_win(probe.sample_rate)
        expected = [
            i
            for i in range(analysis.sync.n_indexes)
            if i * n_hop < 1030 and i * n_hop + n_win > 1000
        ]
        assert list(analysis.quarantined_windows) == expected

    def test_dark_channel_fails_closed(self):
        """A dead sensor must alarm, not stay silent (fail-closed)."""
        ids = self._fitted()
        probe = benign_run(42)
        data = probe.data.copy()
        data[800:1100] = data[799]  # 3 s frozen at fs=100
        verdict = ids.detect(Signal(data, probe.sample_rate))
        assert verdict.sensor_fault_fired
        assert verdict.is_intrusion
        assert "sensor_fault" in verdict.fired_submodules()
        assert verdict.first_alarm_index is not None
        assert verdict.first_alarm_time is not None
        assert verdict.health["sensor_fault"]
        assert "dark_channel" in verdict.health["reasons"]

    def test_to_dict_carries_health(self):
        import json

        ids = self._fitted()
        probe = benign_run(43)
        data = probe.data.copy()
        data[200:500] = 0.0
        doc = ids.detect(Signal(data, probe.sample_rate)).to_dict()
        json.dumps(doc)
        assert doc["sensor_fault_fired"]
        assert doc["health"]["sensor_fault"]

    def test_fit_rejects_dark_training_run(self):
        ids = NsyncIds(benign_run(0), DwmSynchronizer(PARAMS))
        poisoned = benign_run(2)
        data = poisoned.data.copy()
        data[100:400] = 7.0
        with pytest.raises(ValueError, match="sanitization"):
            ids.fit([benign_run(1), Signal(data, poisoned.sample_rate)])

    def test_disabled_policy_reports_health_without_alarm(self):
        from repro.core import SanitizePolicy

        ids = NsyncIds(
            benign_run(0),
            DwmSynchronizer(PARAMS),
            policy=SanitizePolicy(enabled=False),
        )
        ids.thresholds = Thresholds(c_c=1e9, h_c=1e9, v_c=1e9)
        probe = benign_run(44)
        data = probe.data.copy()
        data[800:1100] = 0.0
        verdict = ids.detect(Signal(data, probe.sample_rate))
        assert not verdict.sensor_fault_fired
        assert not verdict.is_intrusion
        assert verdict.health is not None
        assert not verdict.health["sensor_fault"]

    def test_clean_run_health_is_clean(self):
        ids = self._fitted()
        verdict = ids.detect(benign_run(45))
        assert verdict.health is not None
        assert verdict.health["n_nonfinite"] == 0
        assert verdict.health["quarantined_windows"] == []
