"""Unit tests for the discriminator and its sub-modules."""

import numpy as np
import pytest

from repro.core import Detection, Discriminator, Thresholds, detection_features
from repro.sync import SyncResult


def sync_of(h_disp):
    h = np.asarray(h_disp, dtype=np.float64)
    return SyncResult(h_disp=h, mode="window", n_win=10, n_hop=5)


class TestThresholds:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Thresholds(c_c=-1.0, h_c=0.0, v_c=0.0)
        with pytest.raises(ValueError):
            Thresholds(c_c=0.0, h_c=0.0, v_c=0.0, d_c=-0.5)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            Thresholds(c_c=float("nan"), h_c=1.0, v_c=1.0)

    def test_inf_disables(self):
        t = Thresholds(c_c=float("inf"), h_c=float("inf"), v_c=float("inf"))
        assert t.d_c == float("inf")


class TestDetectionFeatures:
    def test_filters_applied(self):
        sync = sync_of([0.0, 10.0, 0.0])  # h_dist spike at index 1
        v = np.array([0.1, 9.0, 0.1])
        f = detection_features(sync, v, filter_window=3)
        assert f.h_dist_filtered.max() < 10.0
        assert f.v_dist_filtered.max() < 9.0

    def test_cadhd_passthrough(self):
        sync = sync_of([1.0, 2.0])
        f = detection_features(sync, np.zeros(2))
        assert np.allclose(f.c_disp, sync.cadhd())

    def test_duration_mismatch_recorded(self):
        f = detection_features(sync_of([0.0]), np.zeros(1), duration_mismatch=4.0)
        assert f.duration_mismatch == 4.0


class TestDiscriminator:
    THRESH = Thresholds(c_c=10.0, h_c=5.0, v_c=0.5, d_c=2.0)

    def detect(self, h_disp, v_dist, mismatch=0.0):
        disc = Discriminator(self.THRESH, filter_window=1)
        return disc.detect(sync_of(h_disp), np.asarray(v_dist, float), mismatch)

    def test_benign_process_passes(self):
        d = self.detect([0.0, 1.0, 0.0], [0.1, 0.2, 0.1])
        assert not d.is_intrusion
        assert d.first_alarm_index is None
        assert d.fired_submodules() == ()

    def test_cadhd_fires_on_fluctuation(self):
        # alternating +/-3 builds CADHD fast: 3, 9, 15 > 10
        d = self.detect([3.0, -3.0, 3.0, -3.0], [0.1] * 4)
        assert d.is_intrusion
        assert d.cadhd_fired
        assert "c_disp" in d.fired_submodules()

    def test_h_dist_fires_on_large_displacement(self):
        d = self.detect([0.0, 6.0, 6.0], [0.1] * 3)
        assert d.h_dist_fired

    def test_v_dist_fires_on_content_change(self):
        d = self.detect([0.0, 0.0, 0.0], [0.1, 0.9, 0.9])
        assert d.v_dist_fired
        assert not d.cadhd_fired

    def test_duration_fires_on_mismatch(self):
        d = self.detect([0.0], [0.1], mismatch=5.0)
        assert d.duration_fired
        assert d.is_intrusion
        assert d.first_alarm_index == 1  # after the last window

    def test_first_alarm_index_is_earliest(self):
        d = self.detect([0.0, 6.0, 0.0], [0.1, 0.1, 0.9])
        assert d.first_alarm_index == 1

    def test_spike_suppression_prevents_false_alarm(self):
        disc = Discriminator(self.THRESH, filter_window=3)
        # One-window v_dist spike at 0.9: the min-filter removes it.
        sync = sync_of([0.0, 0.0, 0.0, 0.0])
        d = disc.detect(sync, np.array([0.1, 0.9, 0.1, 0.1]))
        assert not d.is_intrusion

    def test_sustained_violation_survives_filter(self):
        disc = Discriminator(self.THRESH, filter_window=3)
        sync = sync_of([0.0] * 5)
        d = disc.detect(sync, np.array([0.1, 0.9, 0.9, 0.9, 0.9]))
        assert d.is_intrusion

    def test_invalid_filter_window(self):
        with pytest.raises(ValueError):
            Discriminator(self.THRESH, filter_window=0)

    def test_empty_features_benign(self):
        d = self.detect([], [])
        assert not d.is_intrusion
