"""End-to-end tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_slice_defaults(self):
        args = build_parser().parse_args(["slice", "out.gcode"])
        assert args.printer == "UM3"
        assert args.attack is None

    def test_campaign_options(self):
        args = build_parser().parse_args(
            ["campaign", "--printer", "RM3", "--transform", "Spectro."]
        )
        assert args.printer == "RM3"
        assert args.transform == "Spectro."

    def test_bad_printer_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["slice", "--printer", "Prusa", "x"])


class TestSliceCommand:
    def test_writes_gcode(self, tmp_path):
        out = tmp_path / "gear.gcode"
        assert main(["slice", str(out), "--height", "0.4"]) == 0
        text = out.read_text()
        assert "G28" in text
        assert "G1" in text

    def test_attack_changes_gcode(self, tmp_path):
        benign = tmp_path / "benign.gcode"
        attacked = tmp_path / "void.gcode"
        main(["slice", str(benign), "--height", "0.4"])
        main(["slice", str(attacked), "--height", "0.4", "--attack", "Void"])
        assert benign.read_text() != attacked.read_text()

    def test_unknown_attack_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown attack"):
            main(["slice", str(tmp_path / "x.gcode"), "--attack", "Nuke"])


class TestSimulateCommand:
    def test_produces_npz(self, tmp_path):
        gcode = tmp_path / "gear.gcode"
        main(["slice", str(gcode), "--height", "0.4"])
        run_dir = tmp_path / "run"
        code = main(
            ["simulate", str(gcode), str(run_dir), "--height", "0.4",
             "--channels", "ACC,MAG", "--seed", "5"]
        )
        assert code == 0
        assert (run_dir / "ACC.npz").exists()
        assert (run_dir / "MAG.npz").exists()


class TestTrainDetectRoundtrip:
    @pytest.fixture(scope="class")
    def workspace(self, tmp_path_factory):
        """Train once per class; CLI training simulates several prints."""
        root = tmp_path_factory.mktemp("cli")
        gcode = root / "gear.gcode"
        main(["slice", str(gcode), "--height", "0.4"])
        main(["simulate", str(gcode), str(root / "benign"),
              "--height", "0.4", "--seed", "91"])
        attacked = root / "speed.gcode"
        main(["slice", str(attacked), "--height", "0.4",
              "--attack", "Speed0.95"])
        main(["simulate", str(attacked), str(root / "malicious"),
              "--height", "0.4", "--seed", "92"])
        main(["train", str(root / "model"), "--height", "0.4",
              "--runs", "6", "--r", "0.5"])
        return root

    def test_model_files_written(self, workspace):
        model = workspace / "model"
        assert (model / "reference.npz").exists()
        assert (model / "thresholds.json").exists()
        assert (model / "dwm_params.json").exists()

    def test_benign_passes(self, workspace, capsys):
        code = main(
            ["detect", str(workspace / "model"),
             str(workspace / "benign" / "ACC.npz")]
        )
        assert code == 0
        assert "ok" in capsys.readouterr().out

    def test_attack_detected_with_nonzero_exit(self, workspace, capsys):
        code = main(
            ["detect", str(workspace / "model"),
             str(workspace / "malicious" / "ACC.npz")]
        )
        assert code == 1
        assert "INTRUSION" in capsys.readouterr().out


class TestReportParser:
    def test_report_options(self):
        args = build_parser().parse_args(
            ["report", "out.md", "--train", "3", "--test", "2"]
        )
        assert args.output == "out.md"
        assert args.train == 3
        assert args.func.__name__ == "cmd_report"
