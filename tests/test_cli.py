"""End-to-end tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_slice_defaults(self):
        args = build_parser().parse_args(["slice", "out.gcode"])
        assert args.printer == "UM3"
        assert args.attack is None

    def test_campaign_options(self):
        args = build_parser().parse_args(
            ["campaign", "--printer", "RM3", "--transform", "Spectro."]
        )
        assert args.printer == "RM3"
        assert args.transform == "Spectro."

    def test_bad_printer_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["slice", "--printer", "Prusa", "x"])


class TestSliceCommand:
    def test_writes_gcode(self, tmp_path):
        out = tmp_path / "gear.gcode"
        assert main(["slice", str(out), "--height", "0.4"]) == 0
        text = out.read_text()
        assert "G28" in text
        assert "G1" in text

    def test_attack_changes_gcode(self, tmp_path):
        benign = tmp_path / "benign.gcode"
        attacked = tmp_path / "void.gcode"
        main(["slice", str(benign), "--height", "0.4"])
        main(["slice", str(attacked), "--height", "0.4", "--attack", "Void"])
        assert benign.read_text() != attacked.read_text()

    def test_unknown_attack_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown attack"):
            main(["slice", str(tmp_path / "x.gcode"), "--attack", "Nuke"])


class TestSimulateCommand:
    def test_produces_npz(self, tmp_path):
        gcode = tmp_path / "gear.gcode"
        main(["slice", str(gcode), "--height", "0.4"])
        run_dir = tmp_path / "run"
        code = main(
            ["simulate", str(gcode), str(run_dir), "--height", "0.4",
             "--channels", "ACC,MAG", "--seed", "5"]
        )
        assert code == 0
        assert (run_dir / "ACC.npz").exists()
        assert (run_dir / "MAG.npz").exists()


class TestTrainDetectRoundtrip:
    @pytest.fixture(scope="class")
    def workspace(self, tmp_path_factory):
        """Train once per class; CLI training simulates several prints."""
        root = tmp_path_factory.mktemp("cli")
        gcode = root / "gear.gcode"
        main(["slice", str(gcode), "--height", "0.4"])
        main(["simulate", str(gcode), str(root / "benign"),
              "--height", "0.4", "--seed", "91"])
        attacked = root / "speed.gcode"
        main(["slice", str(attacked), "--height", "0.4",
              "--attack", "Speed0.95"])
        main(["simulate", str(attacked), str(root / "malicious"),
              "--height", "0.4", "--seed", "92"])
        main(["train", str(root / "model"), "--height", "0.4",
              "--runs", "6", "--r", "0.5"])
        return root

    def test_model_files_written(self, workspace):
        model = workspace / "model"
        assert (model / "reference.npz").exists()
        assert (model / "thresholds.json").exists()
        assert (model / "dwm_params.json").exists()

    def test_benign_passes(self, workspace, capsys):
        code = main(
            ["detect", str(workspace / "model"),
             str(workspace / "benign" / "ACC.npz")]
        )
        assert code == 0
        assert "ok" in capsys.readouterr().out

    def test_attack_detected_with_nonzero_exit(self, workspace, capsys):
        code = main(
            ["detect", str(workspace / "model"),
             str(workspace / "malicious" / "ACC.npz")]
        )
        assert code == 1
        assert "INTRUSION" in capsys.readouterr().out


class TestReportParser:
    def test_report_options(self):
        args = build_parser().parse_args(
            ["report", "out.md", "--train", "3", "--test", "2"]
        )
        assert args.output == "out.md"
        assert args.train == 3
        assert args.func.__name__ == "cmd_report"

    def test_obs_flags_parsed(self):
        args = build_parser().parse_args(
            ["report", "out.md", "--trace", "--metrics-out", "m.json"]
        )
        assert args.trace is True
        assert args.metrics_out == "m.json"


class TestMetricsExport:
    @pytest.fixture
    def clean_obs(self):
        """main() enables tracing globally; restore and wipe afterwards."""
        from repro import obs

        was_enabled = obs.enabled()
        obs.reset()
        yield obs
        obs.reset()
        if was_enabled:
            obs.enable()
        else:
            obs.disable()

    def test_report_metrics_out_schema(self, tmp_path, clean_obs):
        """``repro report --metrics-out`` must emit per-stage span JSON."""
        import json

        out = tmp_path / "report.md"
        metrics = tmp_path / "metrics.json"
        code = main(
            ["report", str(out), "--height", "0.4", "--train", "1",
             "--test", "1", "--attack-runs", "1", "--workers", "0",
             "--metrics-out", str(metrics)]
        )
        assert code == 0
        doc = json.loads(metrics.read_text())

        # Top-level schema of the exported registry.
        assert set(doc) == {
            "version", "counters", "gauges", "histograms", "spans"
        }
        assert doc["version"] == clean_obs.SNAPSHOT_VERSION
        assert all(
            isinstance(v, (int, float)) for v in doc["counters"].values()
        )
        for summary in doc["histograms"].values():
            assert {"count", "mean", "min", "max", "p50", "p90", "p99"} \
                <= set(summary)
        for stats in doc["spans"].values():
            assert {"count", "errors", "wall_total_s", "wall_min_s",
                    "wall_max_s", "cpu_total_s"} <= set(stats)
            assert stats["count"] >= 1

        # Per-stage spans for every hot layer of the pipeline.
        spans = doc["spans"]
        for needle in (
            "repro.eval.engine.execute",
            "repro.printer.firmware.run",
            "repro.sync.dwm.window",
            "repro.core.pipeline.analyze",
        ):
            assert any(needle in name for name in spans), needle

        # The engine counters made it out too, and the report gained the
        # Table-10-style overhead section.
        assert "repro.eval.engine.simulated" in doc["counters"]
        report_text = out.read_text()
        assert "## Processing-time overhead" in report_text
        assert "## Alarm localization (forensics)" in report_text
        assert "Localization accuracy:" in report_text


class TestForensicsWorkflow:
    """detect --json/--events-out -> validate -> explain round trip."""

    @pytest.fixture(scope="class")
    def workspace(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("forensics")
        attacked = root / "speed.gcode"
        main(["slice", str(attacked), "--height", "0.4",
              "--attack", "Speed0.95"])
        main(["simulate", str(attacked), str(root / "malicious"),
              "--height", "0.4", "--seed", "92"])
        main(["train", str(root / "model"), "--height", "0.4",
              "--runs", "6", "--r", "0.5"])
        return root

    def test_detect_json_is_machine_readable(self, workspace, capsys):
        import json

        code = main(
            ["detect", "--json", str(workspace / "model"),
             str(workspace / "malicious" / "ACC.npz")]
        )
        assert code == 1  # exit code contract unchanged by --json
        doc = json.loads(capsys.readouterr().out)
        assert doc["is_intrusion"] is True
        assert doc["fired_submodules"]
        assert isinstance(doc["first_alarm_index"], int)
        assert doc["first_alarm_time"] > 0
        features = doc["features"]
        assert len(features["v_dist_filtered"]) == doc["n_windows"]
        assert set(doc["thresholds"]) == {"c_c", "h_c", "v_c", "d_c"}

    def test_detect_stream_matches_batch_verdict(self, workspace, capsys):
        """--stream drives the same engine chunk by chunk: identical JSON
        verdict and exit code."""
        import json

        code_batch = main(
            ["detect", "--json", str(workspace / "model"),
             str(workspace / "malicious" / "ACC.npz")]
        )
        batch = json.loads(capsys.readouterr().out)
        code_stream = main(
            ["detect", "--json", "--stream", "--chunk-s", "0.2",
             str(workspace / "model"),
             str(workspace / "malicious" / "ACC.npz")]
        )
        stream = json.loads(capsys.readouterr().out)
        assert code_stream == code_batch == 1
        assert stream == batch

    def test_detect_stream_with_telemetry_snapshot(
        self, workspace, tmp_path, capsys
    ):
        """Telemetry-enabled streaming detect writes a snapshot that
        ``repro top`` can render after the run finished."""
        import json

        from repro import obs
        from repro.obs import telemetry

        snap = tmp_path / "telemetry.json"
        was_enabled = obs.enabled()
        try:
            code = main(
                ["detect", "--stream", "--chunk-s", "0.2",
                 "--telemetry-snapshot", str(snap),
                 "--stream-id", "printer-A",
                 str(workspace / "model"),
                 str(workspace / "malicious" / "ACC.npz")]
            )
        finally:
            telemetry.reset_streams()
            obs.reset()
            if was_enabled:
                obs.enable()
            else:
                obs.disable()
        assert code == 1
        capsys.readouterr()
        doc = json.loads(snap.read_text())
        row = doc["streams"]["printer-A"]
        assert row["state"] == "finished"
        assert row["intrusion"] is True
        assert row["chunks"] > 0
        assert row["chunk_latency"]["count"] == row["chunks"]

        assert main(["top", "--snapshot", str(snap), "--once"]) == 0
        out = capsys.readouterr().out
        assert "printer-A" in out
        assert "finished" in out

    def test_events_out_writes_valid_schema_v1(self, workspace, tmp_path):
        from repro.obs import events as events_module

        path = tmp_path / "events.jsonl"
        main(["detect", "--events-out", str(path), str(workspace / "model"),
              str(workspace / "malicious" / "ACC.npz")])
        assert not events_module.enabled()  # CLI tears the log down
        records = events_module.read_jsonl(path)  # validates every record
        types = {r["type"] for r in records}
        assert {"window_evidence", "alarm", "run_summary"} <= types
        summary = records[-1]
        assert summary["type"] == "run_summary"
        assert summary["is_intrusion"] is True
        assert {"n_win", "n_hop", "sample_rate", "mode"} <= set(summary)

    def test_chrome_trace_flag_writes_perfetto_json(
        self, workspace, tmp_path
    ):
        import json

        from repro import obs

        path = tmp_path / "trace.json"
        main(["detect", "--chrome-trace", str(path), str(workspace / "model"),
              str(workspace / "malicious" / "ACC.npz")])
        obs.disable()  # --chrome-trace implies --trace; undo for other tests
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]
        names = {e["name"] for e in doc["traceEvents"]}
        assert any("repro.core.pipeline" in n for n in names)
        assert all(e["ph"] == "X" for e in doc["traceEvents"])

    def test_explain_renders_localizing_report(self, workspace, tmp_path):
        events_path = tmp_path / "events.jsonl"
        main(["detect", "--events-out", str(events_path),
              str(workspace / "model"),
              str(workspace / "malicious" / "ACC.npz")])
        report = tmp_path / "incident.md"
        code = main(
            ["explain", str(events_path), "--height", "0.4",
             "--attack", "Speed0.95", "--seed", "92",
             "--output", str(report)]
        )
        assert code == 0
        text = report.read_text()
        assert "INTRUSION" in text
        assert "Implicated instructions" in text
        # Speed0.95 tampers nearly the whole program, so a correct join
        # must land inside the ground-truth span.
        assert "localization correct" in text

    def test_explain_requires_attack_or_gcode(self, workspace, tmp_path):
        events_path = tmp_path / "events.jsonl"
        main(["detect", "--events-out", str(events_path),
              str(workspace / "model"),
              str(workspace / "malicious" / "ACC.npz")])
        with pytest.raises(SystemExit, match="--attack NAME or --gcode"):
            main(["explain", str(events_path), "--height", "0.4"])


class TestFaultsCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["faults"])
        assert args.channel == "ACC"
        assert args.detector == "both"
        assert args.max_dark_s == 1.0
        assert not args.json

    def test_bad_detector_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["faults", "--detector", "quantum"])

    def test_full_matrix_passes(self, capsys):
        rc = main(
            ["faults", "--height", "0.4", "--train", "2", "--workers", "0"]
        )
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "PASS" in out or "passed" in out

    def test_json_output(self, capsys):
        import json

        rc = main(
            [
                "faults", "--height", "0.4", "--train", "2", "--workers", "0",
                "--detector", "batch", "--json",
            ]
        )
        doc = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert doc["all_passed"] is True
        assert doc["detectors"] == ["batch"]

    def test_summary_with_json_keeps_stdout_clean(self, capsys):
        import json
        import re

        rc = main(
            [
                "faults", "--height", "0.4", "--train", "2", "--workers", "0",
                "--detector", "batch", "--json", "--summary",
            ]
        )
        captured = capsys.readouterr()
        doc = json.loads(captured.out)  # stdout must stay parseable JSON
        assert rc == 0
        assert re.search(r"^\d+ cases, \d+ failed$", captured.err, re.M)
        assert doc["n_failed"] == 0

    def test_summary_without_json_prints_to_stdout(self, capsys):
        import re

        rc = main(
            [
                "faults", "--height", "0.4", "--train", "2", "--workers", "0",
                "--detector", "batch", "--summary",
            ]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert re.search(r"^\d+ cases, 0 failed$", captured.out, re.M)
        assert captured.err == ""


class TestDiffCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["diff"])
        assert args.pair == "all"
        assert args.seed == 0
        assert args.examples == 25
        assert args.bundle_dir == "diff-bundles"
        assert args.replay is None
        assert not args.json

    def test_bad_pair_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["diff", "--pair", "quantum"])

    def test_clean_pair_exits_zero(self, capsys):
        rc = main(["diff", "--pair", "comparator", "--examples", "3"])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "comparator" in out and "OK" in out

    def test_json_report(self, capsys):
        import json

        rc = main(
            ["diff", "--pair", "dwm", "--examples", "3", "--seed", "5",
             "--json"]
        )
        doc = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert doc["ok"] is True
        assert doc["seed"] == 5
        assert [p["pair"] for p in doc["pairs"]] == ["dwm"]

    def test_divergence_exits_one_and_writes_bundle(
        self, tmp_path, monkeypatch, capsys
    ):
        import numpy as np

        from repro.sync.dwm import StreamingDwm

        orig = StreamingDwm._step_fast

        def mutated(self, a_window):
            ok = orig(self, a_window)
            if ok and self._state.scores:
                self._state.scores[-1] = float(
                    np.nextafter(self._state.scores[-1], np.inf)
                )
            return ok

        monkeypatch.setattr(StreamingDwm, "_step_fast", mutated)
        bundle_dir = tmp_path / "bundles"
        rc = main(
            ["diff", "--pair", "dwm", "--examples", "25",
             "--bundle-dir", str(bundle_dir)]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "DIVERGENCE in pair 'dwm'" in out
        bundle = bundle_dir / "bundle_dwm.json"
        assert bundle.exists()

        # The bundle replays to the same divergence while the fault is in,
        # and comes back clean once it is fixed.
        assert main(["diff", "--replay", str(bundle)]) == 1
        monkeypatch.undo()
        capsys.readouterr()
        assert main(["diff", "--replay", str(bundle)]) == 0
        assert "no divergence" in capsys.readouterr().out


class TestBenchCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["bench", "throughput"])
        assert args.target == "throughput"
        assert args.samples == 40_000
        assert args.chunk == 10
        assert args.repeats == 3

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "latency"])

    def test_throughput_prints_table(self, capsys, tmp_path):
        assert main([
            "bench", "throughput", "--samples", "1200", "--repeats", "1",
            "--baseline", str(tmp_path / "missing.json"),
        ]) == 0
        out = capsys.readouterr().out
        assert "streaming_warm_samples_per_s" in out
        assert "no stored baseline" in out

    def test_throughput_json_record(self, capsys, tmp_path):
        import json as json_mod

        assert main([
            "bench", "throughput", "--samples", "1200", "--repeats", "1",
            "--json",
        ]) == 0
        record = json_mod.loads(capsys.readouterr().out)
        assert record["name"] == "engine_throughput"
        assert record["streaming_warm_samples_per_s"] > 0
        assert record["hot_path_obs_calls"] == 0

    def test_throughput_compares_against_baseline(self, capsys, tmp_path):
        import json as json_mod
        import os

        baseline = tmp_path / "hist.json"
        baseline.write_text(json_mod.dumps([{
            "name": "engine_throughput", "time": 0.0,
            "streaming_warm_samples_per_s": 1.0,
            "streaming_cold_samples_per_s": 1.0,
            "batch_warm_samples_per_s": 1.0,
            "batch_cold_samples_per_s": 1.0,
            "disabled_obs_overhead": 0.0,
            "hot_path_obs_calls": 0,
            "cpu_count": os.cpu_count(),
        }]))
        assert main([
            "bench", "throughput", "--samples", "1200", "--repeats", "1",
            "--baseline", str(baseline),
        ]) == 0
        assert "vs baseline" in capsys.readouterr().out


class TestTopCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["top"])
        assert args.url == "http://127.0.0.1:9107"
        assert args.snapshot is None
        assert args.interval == 2.0
        assert args.once is False
        assert args.func.__name__ == "cmd_top"

    def test_detect_telemetry_flags_parsed(self):
        args = build_parser().parse_args(
            ["detect", "model", "sig.npz", "--stream",
             "--telemetry-port", "0", "--telemetry-snapshot", "t.json",
             "--telemetry-interval", "0.5", "--stream-id", "p1",
             "--pace", "1"]
        )
        assert args.telemetry_port == 0
        assert args.telemetry_snapshot == "t.json"
        assert args.telemetry_interval == 0.5
        assert args.stream_id == "p1"
        assert args.pace == 1.0

    def _doc(self):
        return {
            "v": 1,
            "ts": 1_700_000_000.0,
            "metrics": {},
            "streams": {
                "printer-A": {
                    "state": "live",
                    "samples": 12_000,
                    "samples_per_s": 199.8,
                    "ingest_lag_s": 0.25,
                    "windows": 40,
                    "quarantined_windows": 2,
                    "alerts": 3,
                    "sensor_fault": True,
                    "last_alert": {
                        "submodule": "c_disp", "time_s": 12.5, "ts": 0.0
                    },
                    "chunk_latency": {
                        "count": 24, "mean_s": 0.002,
                        "p50_s": 0.0015, "p95_s": 0.004, "p99_s": 0.005,
                    },
                },
            },
        }

    def test_render_top_populated(self):
        from repro.cli import _render_top

        frame = _render_top(self._doc(), source="snap.json")
        assert "repro top — 1 stream(s)" in frame
        assert "snap.json" in frame
        assert "printer-A" in frame
        assert "c_disp@12.5s" in frame
        assert "YES" in frame  # sensor fault column
        assert "1.50" in frame and "5.00" in frame  # p50/p99 in ms

    def test_render_top_empty(self):
        from repro.cli import _render_top

        frame = _render_top({"v": 1, "streams": {}})
        assert "0 stream(s)" in frame
        assert "no streams registered yet" in frame

    def test_missing_snapshot_exits_nonzero(self, tmp_path, capsys):
        code = main(
            ["top", "--snapshot", str(tmp_path / "nope.json"), "--once"]
        )
        assert code == 1
        assert "waiting for telemetry" in capsys.readouterr().out

    def test_iterations_bound_reads_file_repeatedly(self, tmp_path, capsys):
        import json

        snap = tmp_path / "snap.json"
        snap.write_text(json.dumps(self._doc()))
        code = main(
            ["top", "--snapshot", str(snap),
             "--iterations", "2", "--interval", "0.01"]
        )
        assert code == 0
        assert capsys.readouterr().out.count("repro top —") == 2


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "model-dir"])
        assert args.model == "model-dir"
        assert args.demo is False
        assert args.host == "127.0.0.1"
        assert args.port == 9870
        assert args.unix is None
        assert args.shards == 0
        assert args.checkpoint_dir is None
        assert args.checkpoint_interval == 5.0
        assert args.metrics_port is None
        assert args.max_seconds is None

    def test_serve_full_flags(self):
        args = build_parser().parse_args(
            ["serve", "m", "--demo", "--shards", "4", "--port", "0",
             "--checkpoint-dir", "ckpt", "--checkpoint-interval", "0.5",
             "--metrics-port", "9101", "--max-seconds", "30"]
        )
        assert args.demo is True
        assert args.shards == 4
        assert args.port == 0
        assert args.checkpoint_dir == "ckpt"
        assert args.checkpoint_interval == 0.5
        assert args.metrics_port == 9101
        assert args.max_seconds == 30.0

    def test_serve_missing_model_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="no reference.npz"):
            main(["serve", str(tmp_path / "nope")])

    def test_loadgen_defaults(self):
        args = build_parser().parse_args(["loadgen"])
        assert args.connect == "127.0.0.1:9870"
        assert args.unix is None
        assert args.streams == 8
        assert args.n_samples == 8000
        assert args.sample_rate == 200.0
        assert args.chunk_samples == 200
        assert args.pace == 0.0
        assert args.verify is None
        assert args.server_shards == 0
        assert args.json is False
        assert args.bench_out is None

    def test_loadgen_bad_connect_exits(self):
        with pytest.raises(SystemExit, match="host:port"):
            main(["loadgen", "--connect", "not-an-address"])

    def test_explain_tolerate_torn_tail_flag(self):
        args = build_parser().parse_args(
            ["explain", "ev.jsonl", "--attack", "Void",
             "--tolerate-torn-tail"]
        )
        assert args.tolerate_torn_tail is True
        args = build_parser().parse_args(
            ["explain", "ev.jsonl", "--attack", "Void"]
        )
        assert args.tolerate_torn_tail is False

    def test_detect_pace_help_mentions_deadline(self):
        parser = build_parser()
        # The --pace fix is user-visible: the flag documents deadline
        # scheduling rather than naive per-chunk sleeps.
        text = parser.format_help()
        assert "serve" in text
        assert "loadgen" in text


class TestServeRoundTripCLI:
    """`repro serve --demo` + `repro loadgen` over a real socket."""

    def test_demo_serve_and_loadgen(self, tmp_path, capsys):
        import asyncio
        import json as _json
        import threading

        from repro.obs import telemetry
        from repro.serve.model import demo_model
        from repro.serve.server import FleetServer

        telemetry.reset_streams()
        model_dir = tmp_path / "model"
        demo_model(n_samples=2000).save(model_dir)
        server = FleetServer(str(model_dir), shards=0, port=0)
        started = threading.Event()
        stop = None
        loop_box = {}

        async def _serve():
            nonlocal stop
            await server.start()
            stop = asyncio.Event()
            loop_box["loop"] = asyncio.get_running_loop()
            started.set()
            await stop.wait()
            await server.stop()

        thread = threading.Thread(target=lambda: asyncio.run(_serve()))
        thread.start()
        try:
            assert started.wait(timeout=30)
            bench = tmp_path / "bench.json"
            code = main(
                ["loadgen", "--connect", f"127.0.0.1:{server.port}",
                 "--streams", "2", "--n-samples", "1000",
                 "--verify", str(model_dir), "--json",
                 "--bench-out", str(bench)]
            )
            assert code == 0
            record = _json.loads(capsys.readouterr().out)
            assert record["name"] == "serve_loadgen"
            assert record["n_streams"] == 2
            assert record["total_samples"] == 2000
            assert record["mismatches"] == 0
            assert record["verified"] is True
            assert record["streams_per_core"] > 0
            history = _json.loads(bench.read_text())
            assert isinstance(history, list) and len(history) == 1
        finally:
            loop_box["loop"].call_soon_threadsafe(stop.set)
            thread.join(timeout=30)
            telemetry.reset_streams()


class TestExplainTornLogs:
    def test_corrupt_log_exits_cleanly_not_traceback(self, tmp_path):
        # A mid-file-corrupt log must fail as a one-line CLI error even
        # with --tolerate-torn-tail (only the newest file's tail is
        # forgivable), before any simulation work starts.
        log = tmp_path / "e.jsonl"
        log.write_text('{"torn": \n{"v": 1, "seq": 0, "ts": 0.0, '
                       '"type": "run_summary"}\n')
        with pytest.raises(SystemExit, match="repro explain:"):
            main(["explain", str(log), "--attack", "Void",
                  "--height", "0.4", "--tolerate-torn-tail"])


class TestCampaignScalePresets:
    def _sizes(self, argv):
        from repro.cli import _campaign_sizes

        return _campaign_sizes(build_parser().parse_args(argv))

    def test_quick_defaults(self):
        assert self._sizes(["campaign"]) == {
            "train": 8, "test": 8, "attack_runs": 2,
        }

    def test_paper_scale_is_table_viii(self):
        # 50 training / 100 benign test / 20 runs per attack class.
        assert self._sizes(["campaign", "--paper-scale"]) == {
            "train": 50, "test": 100, "attack_runs": 20,
        }

    def test_explicit_flags_override_paper_scale(self):
        assert self._sizes(
            ["campaign", "--paper-scale", "--train", "3"]
        ) == {"train": 3, "test": 100, "attack_runs": 20}

    def test_synchronizer_choices(self):
        args = build_parser().parse_args(
            ["campaign", "--synchronizer", "fastdtw"]
        )
        assert args.synchronizer == "fastdtw"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--synchronizer", "dtw"])

    def test_bench_and_tables_out_default_off(self):
        args = build_parser().parse_args(["campaign"])
        assert args.bench_out is None and args.tables_out is None
