"""Atomic checkpoint store (`repro.serve.checkpoint`).

The two contracts under test:

* **Atomicity** — a writer SIGKILLed mid-write leaves only a ``.tmp``
  sibling; loading ignores it and the last complete checkpoint (or
  "none") wins.
* **Fail-soft loading** — any malformed checkpoint means "restart the
  stream from scratch" with a :class:`CheckpointWarning` naming the
  problem, never a crash (the `DetectorState.from_dict` KeyError bug).
"""

import json

import pytest

from repro.core.engine import DetectorState
from repro.serve.checkpoint import (
    CHECKPOINT_SUFFIX,
    CheckpointStore,
    CheckpointWarning,
)
from repro.serve.model import demo_observed

from .conftest import N_SAMPLES, SAMPLE_RATE


@pytest.fixture(scope="module")
def state_doc(model):
    engine = model.build_engine()
    engine.push(demo_observed(0, N_SAMPLES, SAMPLE_RATE)[:800])
    return engine.state().to_dict()


class TestRoundTrip:
    def test_save_load_is_identity(self, tmp_path, state_doc):
        store = CheckpointStore(tmp_path)
        path = store.save("printer-07", state_doc)
        assert path.exists()
        assert store.load("printer-07") == state_doc
        assert store.samples_seen("printer-07") == 800

    def test_restored_engine_is_bit_identical(
        self, tmp_path, model, state_doc
    ):
        store = CheckpointStore(tmp_path)
        store.save("p", state_doc)
        samples = demo_observed(0, N_SAMPLES, SAMPLE_RATE)
        resumed = model.build_engine()
        resumed.restore(DetectorState.from_dict(store.load("p")))
        resumed.push(samples[800:])
        whole = model.build_engine()
        whole.push(samples)
        a = resumed.finalize().detection
        b = whole.finalize().detection
        assert a is not None and b is not None
        assert a.to_dict() == b.to_dict()

    def test_missing_checkpoint_is_none_without_warning(
        self, tmp_path, recwarn
    ):
        store = CheckpointStore(tmp_path)
        assert store.load("never-seen") is None
        assert store.samples_seen("never-seen") == 0
        assert not [
            w for w in recwarn.list
            if issubclass(w.category, CheckpointWarning)
        ]

    def test_delete(self, tmp_path, state_doc):
        store = CheckpointStore(tmp_path)
        store.save("p", state_doc)
        assert store.delete("p") is True
        assert store.delete("p") is False
        assert store.load("p") is None


class TestFilenames:
    def test_weird_stream_ids_round_trip(self, tmp_path, state_doc):
        store = CheckpointStore(tmp_path)
        weird = "printer/7 µ:a%b"
        store.save(weird, state_doc)
        # Exactly one file, inside the store directory, raw id recorded.
        files = list(tmp_path.glob("*" + CHECKPOINT_SUFFIX))
        assert len(files) == 1
        assert files[0].parent == tmp_path
        assert store.load(weird) == state_doc
        assert store.stream_ids() == [weird]

    def test_distinct_ids_never_collide(self, tmp_path, state_doc):
        store = CheckpointStore(tmp_path)
        store.save("a/b", state_doc)
        store.save("a%2fb", state_doc)
        assert len(list(tmp_path.glob("*" + CHECKPOINT_SUFFIX))) == 2


class TestCrashedWriter:
    def test_leftover_tmp_is_ignored(self, tmp_path, state_doc, recwarn):
        store = CheckpointStore(tmp_path)
        store.save("p", state_doc)
        # A writer died mid-write: torn bytes in the .tmp sibling.
        tmp = store.path("p").with_name(store.path("p").name + ".tmp")
        tmp.write_text('{"v": 1, "stream_id": "p", "state": {"conf')
        assert store.load("p") == state_doc
        assert store.samples_seen("p") == 800

    def test_only_a_tmp_means_no_checkpoint(self, tmp_path, recwarn):
        store = CheckpointStore(tmp_path)
        tmp = store.path("p").with_name(store.path("p").name + ".tmp")
        tmp.write_text("{torn")
        assert store.load("p") is None
        assert store.stream_ids() == []


class TestUnusableCheckpoints:
    def test_truncated_json_warns_and_restarts(self, tmp_path, state_doc):
        store = CheckpointStore(tmp_path)
        path = store.save("p", state_doc)
        path.write_text(path.read_text()[: path.stat().st_size // 2])
        with pytest.warns(CheckpointWarning, match="restarts from scratch"):
            assert store.load("p") is None
        with pytest.warns(CheckpointWarning):
            assert store.samples_seen("p") == 0

    def test_missing_state_section_warns(self, tmp_path, state_doc):
        store = CheckpointStore(tmp_path)
        path = store.save("p", state_doc)
        envelope = json.loads(path.read_text())
        del envelope["state"]["progress"]
        path.write_text(json.dumps(envelope))
        with pytest.warns(CheckpointWarning, match="progress"):
            assert store.load("p") is None

    def test_envelope_without_state_warns(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.path("p").write_text('{"v": 1, "stream_id": "p"}')
        with pytest.warns(CheckpointWarning, match="state"):
            assert store.load("p") is None

    def test_non_object_envelope_warns(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.path("p").write_text("[1, 2, 3]")
        with pytest.warns(CheckpointWarning):
            assert store.load("p") is None
