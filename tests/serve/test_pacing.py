"""Deadline semantics of the replay pacer (`repro.serve.pacing`).

The contract under test is the ``--pace`` bugfix: the k-th wait returns
at ``start + k * interval`` on the monotonic clock, so per-chunk
processing time is absorbed instead of accumulating as replay drift, and
a delay is never negative.
"""

import asyncio
import time

import pytest

from repro.serve.pacing import Pacer


class TestPacer:
    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError, match="interval_s"):
            Pacer(-0.1)

    def test_zero_interval_disables_pacing(self):
        pacer = Pacer(0.0)
        for _ in range(5):
            assert pacer.next_delay() == 0.0
        assert pacer.ticks == 5
        assert pacer.behind_s() == 0.0

    def test_first_delay_is_one_full_interval(self):
        pacer = Pacer(10.0)
        # Schedule starts at the first call, so the first deadline is a
        # full interval away (setup cost before it is not charged).
        assert pacer.next_delay() == pytest.approx(10.0, abs=0.1)
        assert pacer.ticks == 1

    def test_overrun_is_absorbed_not_compounded(self):
        pacer = Pacer(0.05)
        pacer.next_delay()  # k=1; deadline start+0.05, ~0.05 away
        time.sleep(0.08)  # body overruns past the k=1 deadline
        # k=2 deadline is anchored at start+0.10, not at now+0.05: only
        # ~0.02 s remain.  The fixed-sleep bug would return 0.05 here.
        delay = pacer.next_delay()
        assert 0.0 <= delay < 0.035

    def test_delay_never_negative_when_far_behind(self):
        pacer = Pacer(0.01)
        pacer.next_delay()
        time.sleep(0.06)  # blow through several deadlines
        assert pacer.next_delay() == 0.0
        assert pacer.behind_s() > 0.0

    def test_wait_schedule_absorbs_processing_time(self):
        # 4 ticks at 50 ms with a 20 ms body: deadline pacing finishes in
        # ~200 ms; the old sleep-after-push loop needed ~280 ms.
        pacer = Pacer(0.05)
        t0 = time.monotonic()
        for _ in range(4):
            time.sleep(0.02)
            pacer.wait()
        elapsed = time.monotonic() - t0
        assert elapsed >= 0.19
        assert elapsed < 0.27

    def test_async_wait_matches_sync_semantics(self):
        async def scenario():
            pacer = Pacer(0.02)
            t0 = time.monotonic()
            for _ in range(3):
                await pacer.async_wait()
            return time.monotonic() - t0

        elapsed = asyncio.run(scenario())
        assert elapsed >= 0.055
        assert elapsed < 0.2

    def test_async_wait_yields_even_when_behind(self):
        async def scenario():
            pacer = Pacer(0.0)
            # Must not starve the loop: a zero delay still yields.
            other_ran = []

            async def other():
                other_ran.append(True)

            task = asyncio.get_running_loop().create_task(other())
            for _ in range(3):
                await pacer.async_wait()
            await task
            return other_ran

        assert asyncio.run(scenario()) == [True]
