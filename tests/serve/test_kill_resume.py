"""Crash-resume integration: SIGKILL a shard worker mid-dark-run.

The acceptance criterion of the fleet service: a shard worker killed
with SIGKILL in the middle of serving paced streams — while every
stream is inside a *dark run* (a multi-second NaN dropout, the hardest
state to carry across a restart: forward-fill seeds, dark-run
bookkeeping, and pending SENSOR_FAULT state all live in the checkpoint)
— must come back through the checkpoint/resume protocol with final
verdicts bit-identical to uninterrupted offline engine runs of the same
samples.
"""

import asyncio
import os
import signal

import numpy as np
import pytest

from repro.serve import FleetServer
from repro.serve.loadgen import StreamSpec, run_loadgen
from repro.serve.model import demo_observed

from .conftest import N_SAMPLES, SAMPLE_RATE

N_STREAMS = 6
DARK_LO = int(0.35 * N_SAMPLES)
DARK_HI = int(0.65 * N_SAMPLES)


def dark_streams():
    """The demo fleet with a 3 s dropout mid-print on every stream."""
    specs = []
    for k in range(N_STREAMS):
        samples = demo_observed(k, N_SAMPLES, SAMPLE_RATE).copy()
        samples[DARK_LO:DARK_HI] = np.nan
        specs.append(StreamSpec(f"dark-{k:02d}", samples, SAMPLE_RATE))
    return specs


def test_dark_run_actually_trips_the_sanitizer(model):
    # Guard: the scenario must really exercise the dark-run state
    # machine, or the resume test proves nothing.
    engine = model.build_engine()
    engine.push(dark_streams()[0].samples)
    assert engine.sensor_fault_fired
    assert engine.n_quarantined > 0


@pytest.mark.slow
def test_sigkill_mid_dark_run_resumes_bit_identically(model_dir, model):
    streams = dark_streams()

    async def scenario():
        server = FleetServer(
            model_dir,
            checkpoint_dir=model_dir.parent / "kill-ckpt",
            shards=2,
            port=0,
            checkpoint_interval_s=0.2,
        )
        await server.start()

        async def killer():
            # Wait until the fleet is ~40-45% replayed: with pacing the
            # streams advance in lockstep, so every stream's cursor is
            # then inside [DARK_LO, DARK_HI] — the kill and the resumed
            # checkpoints land mid-dark-run.
            target = 0.42 * N_STREAMS * N_SAMPLES
            while server._samples_total < target:
                await asyncio.sleep(0.05)
            os.kill(await server.pool.pid(0), signal.SIGKILL)

        kill_task = asyncio.create_task(killer())
        # pace=4: a 10 s recording replays in ~2.5 s, slow enough for
        # several checkpoint sweeps before and after the kill.
        result = await run_loadgen(
            ("127.0.0.1", server.port),
            streams,
            chunk_samples=100,
            pace=4.0,
            verify_model=model,
        )
        await kill_task
        stats = server.service_stats()
        await server.stop()
        return result, stats

    result, stats = asyncio.run(asyncio.wait_for(scenario(), timeout=300))
    assert result.mismatches == []
    assert result.resumes > 0
    assert stats["shard_crashes_total"] >= 1.0
    assert result.total_samples == N_STREAMS * N_SAMPLES
