"""Shard mapping and the per-worker engine table (`repro.serve.shard`)."""

import asyncio
import zlib

import pytest

from repro.core.engine import DetectorState
from repro.serve.model import demo_observed
from repro.serve.shard import EngineHost, ShardPool, shard_of

from .conftest import N_SAMPLES, SAMPLE_RATE


def observed(k=0):
    return demo_observed(k, N_SAMPLES, SAMPLE_RATE)


class TestShardOf:
    def test_stable_across_processes(self):
        # crc32, not the salted builtin hash(): the mapping must agree
        # between server restarts and between parent and workers.
        assert shard_of("printer-0007", 8) == (
            zlib.crc32(b"printer-0007") % 8
        )

    def test_all_streams_land_in_range(self):
        for k in range(100):
            assert 0 <= shard_of(f"printer-{k:04d}", 4) < 4

    def test_spread_is_not_degenerate(self):
        shards = {shard_of(f"printer-{k:04d}", 4) for k in range(64)}
        assert shards == {0, 1, 2, 3}

    def test_single_shard_is_zero(self):
        assert shard_of("anything", 1) == 0
        assert shard_of("anything", 0) == 0


class TestEngineHost:
    def test_open_chunk_close_round_trip(self, model):
        host = EngineHost(model, register_streams=False)
        ack = host.open("p", None)
        assert ack == {
            "samples_seen": 0, "resumed": False, "reattached": False,
        }
        data = observed()
        ack = host.chunk("p", data[:500])
        assert ack["samples_seen"] == 500
        assert ack["latency_s"] >= 0.0
        host.chunk("p", data[500:])
        reply = host.close("p")
        assert reply["samples_seen"] == N_SAMPLES
        assert "result" in reply
        # Closing removes the engine: a re-open starts from scratch.
        assert host.open("p", None)["samples_seen"] == 0

    def test_reattach_keeps_live_engine(self, model):
        host = EngineHost(model, register_streams=False)
        host.open("p", None)
        host.chunk("p", observed()[:300])
        ack = host.open("p", None)
        assert ack["reattached"] is True
        assert ack["samples_seen"] == 300

    def test_restore_from_state_doc(self, model):
        host = EngineHost(model, register_streams=False)
        host.open("p", None)
        host.chunk("p", observed()[:400])
        doc = host.states()["p"]
        DetectorState.from_dict(doc)  # valid snapshot
        fresh = EngineHost(model, register_streams=False)
        ack = fresh.open("p", doc)
        assert ack["resumed"] is True
        assert ack["samples_seen"] == 400

    def test_rejected_state_doc_degrades_to_fresh(self, model):
        host = EngineHost(model, register_streams=False)
        host.open("p", None)
        host.chunk("p", observed()[:400])
        doc = host.states()["p"]
        del doc["progress"]
        fresh = EngineHost(model, register_streams=False)
        ack = fresh.open("p", doc)
        assert ack["resumed"] is False
        assert ack["samples_seen"] == 0
        assert "progress" in ack["checkpoint_rejected"]

    def test_drop_discards_without_finalize(self, model):
        host = EngineHost(model, register_streams=False)
        host.open("p", None)
        assert host.drop("p") is True
        assert host.drop("p") is False
        assert host.stream_ids() == []


class TestInlinePool:
    def test_inline_pool_round_trip(self, model_dir, model):
        async def scenario():
            pool = ShardPool(str(model_dir), n_shards=0, model=model,
                             register_inline_streams=False)
            assert pool.inline
            await pool.open("p", None)
            ack = await pool.chunk("p", observed()[:200])
            assert ack["samples_seen"] == 200
            states = await pool.all_states()
            assert set(states) == {"p"}
            assert await pool.pid(0) > 0
            pool.shutdown()

        asyncio.run(scenario())

    def test_negative_shards_rejected(self, model_dir):
        with pytest.raises(ValueError, match="n_shards"):
            ShardPool(str(model_dir), n_shards=-1)
