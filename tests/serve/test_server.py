"""Fleet service integration tests (inline shard mode, real sockets).

Inline mode runs the same server logic minus worker processes, so these
cover the whole protocol surface fast: open/chunk/close round trips that
must be bit-identical to offline engine runs, duplicate-``stream_id``
ownership semantics, seq validation, restart, checkpointing, and
graceful shutdown.  Crash-resume with real SIGKILLed workers lives in
``test_kill_resume.py``.
"""

import asyncio
import json

import pytest

from repro.obs import telemetry
from repro.serve import FleetServer
from repro.serve.loadgen import offline_verdict, run_loadgen, synth_streams
from repro.serve.model import demo_observed
from repro.serve.protocol import encode

from .conftest import N_SAMPLES, SAMPLE_RATE


async def connect(server):
    return await asyncio.open_connection("127.0.0.1", server.port)


async def rpc(reader, writer, doc):
    writer.write(encode(doc))
    await writer.drain()
    line = await asyncio.wait_for(reader.readline(), timeout=30)
    assert line, "server closed the connection"
    return json.loads(line.decode("utf-8"))


def serve_test(model_dir, scenario, **kwargs):
    """Start an inline server on an ephemeral port, run, always stop."""

    async def runner():
        server = FleetServer(model_dir, port=0, **kwargs)
        await server.start()
        try:
            return await asyncio.wait_for(scenario(server), timeout=60)
        finally:
            await server.stop()

    return asyncio.run(runner())


class TestRoundTrip:
    def test_served_verdict_is_bit_identical(self, model_dir, model):
        samples = demo_observed(3, N_SAMPLES, SAMPLE_RATE)

        async def scenario(server):
            reader, writer = await connect(server)
            await rpc(reader, writer, {
                "op": "open", "stream_id": "p3",
                "sample_rate": SAMPLE_RATE,
            })
            seq = 0
            for start in range(0, N_SAMPLES, 256):
                block = samples[start:start + 256]
                reply = await rpc(reader, writer, {
                    "op": "chunk", "stream_id": "p3", "seq": seq,
                    "samples": block[:, 0].tolist(),
                })
                assert reply["ok"], reply
                assert reply["samples_seen"] == min(start + 256, N_SAMPLES)
                seq += 1
            reply = await rpc(
                reader, writer, {"op": "close", "stream_id": "p3"}
            )
            writer.close()
            return reply

        reply = serve_test(model_dir, scenario)
        assert reply["ok"]
        assert reply["result"] == offline_verdict(model, samples)
        assert reply["intrusion"] == reply["result"]["is_intrusion"]

    def test_ping_reports_service_stats(self, model_dir):
        async def scenario(server):
            reader, writer = await connect(server)
            await rpc(reader, writer, {
                "op": "open", "stream_id": "p0",
            })
            pong = await rpc(reader, writer, {"op": "ping"})
            writer.close()
            return pong

        pong = serve_test(model_dir, scenario)
        assert pong["ok"] and pong["op"] == "pong"
        assert pong["stats"]["live_streams"] == 1.0
        assert pong["stats"]["shards"] == 0.0

    def test_loadgen_against_inline_server(self, model_dir, model):
        streams = synth_streams(4, N_SAMPLES, SAMPLE_RATE)

        async def scenario(server):
            return await run_loadgen(
                ("127.0.0.1", server.port),
                streams,
                chunk_samples=256,
                verify_model=model,
            )

        result = serve_test(model_dir, scenario)
        assert result.n_streams == 4
        assert result.mismatches == []
        assert result.resumes == 0
        assert result.total_samples == 4 * N_SAMPLES
        assert result.ingest_p99_ms >= result.ingest_p50_ms >= 0.0


class TestValidation:
    def test_chunk_before_open_is_unknown_stream(self, model_dir):
        async def scenario(server):
            reader, writer = await connect(server)
            reply = await rpc(reader, writer, {
                "op": "chunk", "stream_id": "ghost", "seq": 0,
                "samples": [1.0],
            })
            writer.close()
            return reply

        reply = serve_test(model_dir, scenario)
        assert reply == {
            "ok": False, "error": "unknown_stream",
            "message": "stream 'ghost' is not open", "stream_id": "ghost",
        }

    def test_seq_gap_is_rejected(self, model_dir):
        async def scenario(server):
            reader, writer = await connect(server)
            await rpc(reader, writer, {"op": "open", "stream_id": "p"})
            reply = await rpc(reader, writer, {
                "op": "chunk", "stream_id": "p", "seq": 5,
                "samples": [1.0],
            })
            writer.close()
            return reply

        reply = serve_test(model_dir, scenario)
        assert reply["error"] == "bad_seq"
        assert "expected seq 0" in reply["message"]

    def test_sample_rate_mismatch_is_rejected(self, model_dir):
        async def scenario(server):
            reader, writer = await connect(server)
            reply = await rpc(reader, writer, {
                "op": "open", "stream_id": "p", "sample_rate": 44100.0,
            })
            writer.close()
            return reply

        reply = serve_test(model_dir, scenario)
        assert reply["error"] == "bad_request"
        assert "sample_rate" in reply["message"]

    def test_unparseable_line_is_bad_request(self, model_dir):
        async def scenario(server):
            reader, writer = await connect(server)
            writer.write(b"this is not json\n")
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), timeout=30)
            writer.close()
            return json.loads(line)

        reply = serve_test(model_dir, scenario)
        assert reply["error"] == "bad_request"


class TestDuplicateStreamIds:
    """Re-registration semantics for a stream id already known."""

    def test_second_connection_is_busy_while_owned(self, model_dir):
        async def scenario(server):
            r1, w1 = await connect(server)
            await rpc(r1, w1, {"op": "open", "stream_id": "p"})
            r2, w2 = await connect(server)
            reply = await rpc(r2, w2, {"op": "open", "stream_id": "p"})
            w1.close()
            w2.close()
            return reply

        reply = serve_test(model_dir, scenario)
        assert reply["error"] == "stream_busy"

    def test_reopen_after_owner_disconnects_reattaches(self, model_dir):
        async def scenario(server):
            r1, w1 = await connect(server)
            await rpc(r1, w1, {"op": "open", "stream_id": "p"})
            await rpc(r1, w1, {
                "op": "chunk", "stream_id": "p", "seq": 0,
                "samples": demo_observed(0, N_SAMPLES)[:300, 0].tolist(),
            })
            w1.close()
            await w1.wait_closed()
            # The server clears ownership when the connection drops;
            # poll until the disconnect has been processed.
            r2, w2 = await connect(server)
            for _ in range(50):
                reply = await rpc(r2, w2, {"op": "open", "stream_id": "p"})
                if reply.get("ok"):
                    break
                await asyncio.sleep(0.05)
            # The live engine is reattached, not restarted: the cursor
            # survives and the chunk seq resets per session.
            chunk = await rpc(r2, w2, {
                "op": "chunk", "stream_id": "p", "seq": 0,
                "samples": demo_observed(0, N_SAMPLES)[300:400, 0].tolist(),
            })
            w2.close()
            return reply, chunk

        reply, chunk = serve_test(model_dir, scenario)
        assert reply["ok"], reply
        assert reply["samples_seen"] == 300
        assert chunk["ok"], chunk
        assert chunk["samples_seen"] == 400

    def test_same_connection_reopen_is_idempotent(self, model_dir):
        async def scenario(server):
            reader, writer = await connect(server)
            await rpc(reader, writer, {"op": "open", "stream_id": "p"})
            await rpc(reader, writer, {
                "op": "chunk", "stream_id": "p", "seq": 0,
                "samples": [1.0] * 100,
            })
            reply = await rpc(reader, writer, {"op": "open", "stream_id": "p"})
            writer.close()
            return reply

        reply = serve_test(model_dir, scenario)
        assert reply["ok"]
        assert reply["samples_seen"] == 100

    def test_restart_discards_progress(self, model_dir):
        async def scenario(server):
            reader, writer = await connect(server)
            await rpc(reader, writer, {"op": "open", "stream_id": "p"})
            await rpc(reader, writer, {
                "op": "chunk", "stream_id": "p", "seq": 0,
                "samples": [1.0] * 100,
            })
            reply = await rpc(reader, writer, {
                "op": "open", "stream_id": "p", "restart": True,
            })
            writer.close()
            return reply

        reply = serve_test(model_dir, scenario)
        assert reply["ok"]
        assert reply["samples_seen"] == 0
        assert reply["resumed"] is False


class TestCheckpointing:
    def test_checkpoint_now_persists_and_close_deletes(
        self, model_dir, tmp_path
    ):
        ckpt_dir = tmp_path / "ckpt"

        async def scenario(server):
            reader, writer = await connect(server)
            await rpc(reader, writer, {"op": "open", "stream_id": "p"})
            await rpc(reader, writer, {
                "op": "chunk", "stream_id": "p", "seq": 0,
                "samples": demo_observed(0, N_SAMPLES)[:500, 0].tolist(),
            })
            n = await server.checkpoint_now()
            cursor = server.checkpoints.samples_seen("p")
            await rpc(reader, writer, {"op": "close", "stream_id": "p"})
            after_close = server.checkpoints.load("p")
            writer.close()
            return n, cursor, after_close

        n, cursor, after_close = serve_test(
            model_dir, scenario, checkpoint_dir=ckpt_dir
        )
        assert n == 1
        assert cursor == 500
        assert after_close is None  # finished streams leave no checkpoint

    def test_periodic_checkpoint_loop_runs(self, model_dir, tmp_path):
        ckpt_dir = tmp_path / "ckpt"

        async def scenario(server):
            reader, writer = await connect(server)
            await rpc(reader, writer, {"op": "open", "stream_id": "p"})
            await rpc(reader, writer, {
                "op": "chunk", "stream_id": "p", "seq": 0,
                "samples": [1.0] * 200,
            })
            for _ in range(100):
                if server.checkpoints.load("p") is not None:
                    break
                await asyncio.sleep(0.05)
            writer.close()
            return server.checkpoints.samples_seen("p")

        cursor = serve_test(
            model_dir, scenario,
            checkpoint_dir=ckpt_dir, checkpoint_interval_s=0.1,
        )
        assert cursor == 200


class TestShutdown:
    def test_stop_drains_and_rejects_new_work(self, model_dir):
        async def scenario():
            server = FleetServer(model_dir, port=0)
            await server.start()
            reader, writer = await connect(server)
            await rpc(reader, writer, {"op": "open", "stream_id": "p"})
            server._stopping = True  # what stop() sets before draining
            reply = await rpc(reader, writer, {
                "op": "chunk", "stream_id": "p", "seq": 0, "samples": [1.0],
            })
            writer.close()
            await server.stop()
            return reply

        reply = asyncio.run(scenario())
        assert reply["error"] == "shutting_down"

    def test_stop_clears_service_stats_provider(self, model_dir):
        async def scenario():
            server = FleetServer(model_dir, port=0)
            await server.start()
            during = telemetry.service_stats()
            await server.stop()
            return during, telemetry.service_stats()

        during, after = asyncio.run(scenario())
        assert during is not None and "live_streams" in during
        assert after is None
