"""Wire-protocol validation (`repro.serve.protocol`)."""

import json

import numpy as np
import pytest

from repro.serve.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode_request,
    encode,
    error_reply,
    read_address,
    samples_to_array,
)


def line(doc) -> bytes:
    return json.dumps(doc).encode("utf-8")


class TestDecodeRequest:
    def test_valid_ops_pass(self):
        for doc in (
            {"op": "open", "stream_id": "p1", "sample_rate": 200.0},
            {"op": "chunk", "stream_id": "p1", "seq": 0, "samples": [1.0]},
            {"op": "close", "stream_id": "p1"},
            {"op": "ping"},
        ):
            assert decode_request(line(doc))["op"] == doc["op"]

    def test_invalid_json_is_bad_request(self):
        with pytest.raises(ProtocolError) as exc:
            decode_request(b"{not json\n")
        assert exc.value.code == "bad_request"

    def test_non_object_is_bad_request(self):
        with pytest.raises(ProtocolError) as exc:
            decode_request(b"[1, 2]\n")
        assert exc.value.code == "bad_request"

    def test_unknown_op_is_bad_request(self):
        with pytest.raises(ProtocolError, match="op"):
            decode_request(line({"op": "frobnicate", "stream_id": "x"}))

    def test_missing_stream_id(self):
        with pytest.raises(ProtocolError, match="stream_id"):
            decode_request(line({"op": "open"}))

    def test_empty_and_non_string_stream_id(self):
        for bad in ("", 7, None, ["x"]):
            with pytest.raises(ProtocolError, match="stream_id"):
                decode_request(line({"op": "close", "stream_id": bad}))

    def test_overlong_stream_id(self):
        with pytest.raises(ProtocolError, match="512"):
            decode_request(line({"op": "close", "stream_id": "x" * 513}))

    def test_ping_needs_no_stream_id(self):
        assert decode_request(line({"op": "ping"}))["op"] == "ping"

    def test_bad_seq_values(self):
        for bad in (-1, 1.5, "0", True, None):
            with pytest.raises(ProtocolError, match="seq"):
                decode_request(
                    line({"op": "chunk", "stream_id": "p", "seq": bad})
                )


class TestEncode:
    def test_one_line_strict_json(self):
        raw = encode({"ok": True, "op": "pong"})
        assert raw.endswith(b"\n")
        assert raw.count(b"\n") == 1
        assert json.loads(raw) == {"ok": True, "op": "pong"}

    def test_nan_is_rejected(self):
        # Strict JSON on the wire: NaN must never leak into a reply.
        with pytest.raises(ValueError):
            encode({"value": float("nan")})

    def test_error_reply_shape(self):
        reply = error_reply("bad_seq", "expected 3", stream_id="p1")
        assert reply == {
            "ok": False,
            "error": "bad_seq",
            "message": "expected 3",
            "stream_id": "p1",
        }


class TestSamplesToArray:
    def test_flat_list_becomes_column(self):
        arr = samples_to_array([1.0, 2.0, 3.0])
        assert arr.shape == (3, 1)
        assert arr.dtype == np.float64

    def test_nested_list_keeps_channels(self):
        arr = samples_to_array([[1.0, 2.0], [3.0, 4.0]])
        assert arr.shape == (2, 2)

    def test_non_finite_values_pass_through(self):
        # Sensor faults are sanitize's job, not the transport's.
        arr = samples_to_array([1.0, None, 3.0])
        assert np.isnan(arr[1, 0])

    def test_empty_rejected(self):
        with pytest.raises(ProtocolError) as exc:
            samples_to_array([])
        assert exc.value.code == "bad_samples"

    def test_non_numeric_rejected(self):
        with pytest.raises(ProtocolError) as exc:
            samples_to_array(["a", "b"])
        assert exc.value.code == "bad_samples"

    def test_non_list_rejected(self):
        with pytest.raises(ProtocolError):
            samples_to_array("123")

    def test_ragged_rejected(self):
        with pytest.raises(ProtocolError):
            samples_to_array([[1.0], [2.0, 3.0]])


class TestReadAddress:
    def test_host_port(self):
        assert read_address("10.0.0.1:9870") == ("10.0.0.1", 9870)

    def test_default_host(self):
        assert read_address(":9870") == ("127.0.0.1", 9870)

    def test_not_tcp(self):
        assert read_address("/tmp/serve.sock") is None
        assert read_address("host:notaport") is None


def test_max_line_fits_a_big_chunk():
    # ~500k samples per chunk must fit one wire line with headroom.
    assert MAX_LINE_BYTES >= 4 * 1024 * 1024
