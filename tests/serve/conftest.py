"""Shared fixtures for the fleet-service tests.

One small demo model (2000 samples @ 200 Hz) is built once per session
and saved to disk once; the serve layer is pure transport, so every test
can compare served output against an offline engine run of the same
samples bit-for-bit.
"""

import pytest

from repro.obs import telemetry
from repro.serve.model import demo_model

N_SAMPLES = 2_000
SAMPLE_RATE = 200.0


@pytest.fixture(scope="session")
def model():
    return demo_model(n_samples=N_SAMPLES, sample_rate=SAMPLE_RATE)


@pytest.fixture(scope="session")
def model_dir(tmp_path_factory, model):
    directory = tmp_path_factory.mktemp("serve-model")
    model.save(directory)
    return directory


@pytest.fixture(autouse=True)
def clean_registry():
    """Inline engines register in the process-wide registry: isolate it."""
    telemetry.reset_streams()
    telemetry.clear_service_stats()
    yield
    telemetry.reset_streams()
    telemetry.clear_service_stats()
