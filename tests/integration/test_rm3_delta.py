"""End-to-end integration on the delta printer (RM3).

The same G-code flows through completely different kinematics (three tower
carriages instead of XYZ axes), different DWM parameters (Table IV), and a
different bed origin — the whole pipeline must still detect Table I attacks.
"""

import numpy as np
import pytest

from repro import NsyncIds, DwmSynchronizer
from repro.attacks import ScaleAttack, SpeedAttack
from repro.eval import default_setup, run_process


@pytest.fixture(scope="module")
def rm3():
    setup = default_setup("RM3", object_height=0.4)
    job = setup.job()

    def acc(print_job, seed, malicious=False):
        return run_process(
            setup, print_job, "run", malicious, seed, channels=["ACC"]
        ).signals["ACC"]

    reference = acc(job, 0)
    ids = NsyncIds(reference, DwmSynchronizer(setup.dwm_params))
    ids.fit([acc(job, s) for s in range(1, 8)], r=0.5)
    return setup, job, ids, acc


class TestRm3Pipeline:
    def test_delta_joints_in_play(self, rm3):
        """Sanity: the RM3 trace really is delta-kinematic."""
        setup, job, ids, acc = rm3
        from repro.printer import simulate_print

        trace = simulate_print(job.program, setup.machine, setup.noise, seed=99)
        # Carriage heights differ from tool coordinates on a delta.
        assert not np.allclose(
            trace.joint_position[:, 0], trace.position[:, 0]
        )
        # And all three carriages stay above the effector.
        assert np.all(trace.joint_position >= trace.position[:, 2:3] - 1e-6)

    def test_benign_accepted(self, rm3):
        _, job, ids, acc = rm3
        verdicts = [ids.detect(acc(job, s)) for s in (50, 51, 52)]
        assert sum(v.is_intrusion for v in verdicts) <= 1

    def test_speed_attack_detected(self, rm3):
        _, job, ids, acc = rm3
        attacked = SpeedAttack(factor=0.9).apply(job)
        assert ids.detect(acc(attacked, 60, True)).is_intrusion

    def test_scale_attack_detected(self, rm3):
        _, job, ids, acc = rm3
        attacked = ScaleAttack(factor=0.9).apply(job)
        assert ids.detect(acc(attacked, 61, True)).is_intrusion

    def test_rm3_uses_delta_origin(self, rm3):
        setup, job, _, _ = rm3
        assert setup.center == (0.0, 0.0)
        xs = [
            c.get("X")
            for c in job.program
            if c.is_move and c.get("X") is not None
        ]
        assert abs(np.mean(xs)) < 5.0  # centred on the delta origin
