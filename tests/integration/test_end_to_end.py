"""End-to-end integration tests: slicer -> firmware -> sensors -> NSYNC."""

import numpy as np
import pytest

from repro import (
    Comparator,
    DwmSynchronizer,
    NsyncIds,
    PrintJob,
    StreamingNsyncIds,
    TimeNoiseModel,
    ULTIMAKER3,
    UM3_DWM_PARAMS,
    default_daq,
    simulate_print,
)
from repro.attacks import SpeedAttack, VoidAttack
from repro.slicer import SlicerConfig, gear_outline


@pytest.fixture(scope="module")
def pipeline():
    """Reference IDS trained on a few benign runs of a tiny gear."""
    outline = gear_outline(n_teeth=12, outer_diameter=30.0, tooth_depth=2.0)
    config = SlicerConfig(object_height=0.4, layer_height=0.2, infill_spacing=6.0)
    job = PrintJob.slice(outline, config)
    daq = default_daq()
    noise = TimeNoiseModel()

    def acc_signal(program, seed):
        trace = simulate_print(program, ULTIMAKER3, noise, seed=seed)
        return daq.acquire(
            trace, np.random.default_rng(seed + 500), channels=["ACC"]
        )["ACC"]

    reference = acc_signal(job.program, 0)
    ids = NsyncIds(reference, DwmSynchronizer(UM3_DWM_PARAMS))
    ids.fit([acc_signal(job.program, s) for s in range(1, 9)], r=0.5)
    return job, ids, acc_signal


class TestFullPipeline:
    def test_benign_runs_pass(self, pipeline):
        job, ids, acc_signal = pipeline
        verdicts = [ids.detect(acc_signal(job.program, s)) for s in range(50, 53)]
        assert sum(v.is_intrusion for v in verdicts) == 0

    def test_speed_attack_detected(self, pipeline):
        job, ids, acc_signal = pipeline
        attacked = SpeedAttack(factor=0.95).apply(job)
        verdict = ids.detect(acc_signal(attacked.program, 60))
        assert verdict.is_intrusion

    def test_void_attack_detected(self, pipeline):
        job, ids, acc_signal = pipeline
        attacked = VoidAttack(radius=8.0).apply(job)
        verdict = ids.detect(acc_signal(attacked.program, 61))
        assert verdict.is_intrusion

    def test_alarm_index_within_run(self, pipeline):
        job, ids, acc_signal = pipeline
        attacked = SpeedAttack(factor=0.9).apply(job)
        verdict = ids.detect(acc_signal(attacked.program, 62))
        assert verdict.first_alarm_index is not None
        assert verdict.first_alarm_index >= 0

    def test_streaming_agrees_with_batch(self, pipeline):
        """Deploying the learned thresholds in the streaming IDS catches the
        same speed attack while the print is still 'running'."""
        job, ids, acc_signal = pipeline
        attacked = SpeedAttack(factor=0.9).apply(job)
        signal = acc_signal(attacked.program, 63)

        stream = StreamingNsyncIds(
            ids.reference, UM3_DWM_PARAMS, ids.thresholds
        )
        for start in range(0, signal.n_samples, 1024):
            stream.push(signal.data[start : start + 1024])
        assert stream.intrusion_detected

        batch_verdict = ids.detect(signal)
        assert batch_verdict.is_intrusion

    def test_gain_drift_does_not_false_alarm(self, pipeline):
        """A 2x microphone-gain change must not trip the correlation-based
        comparator (the reason NSYNC avoids gain-sensitive metrics)."""
        job, ids, acc_signal = pipeline
        signal = acc_signal(job.program, 70)
        doubled = signal.with_data(signal.data * 2.0)
        verdict = ids.detect(doubled)
        assert not verdict.is_intrusion


class TestHdispIsProcessProperty:
    def test_hdisp_similar_across_channels(self):
        """Fig. 10: h_disp from ACC and AUD of the same run agree."""
        outline = gear_outline(n_teeth=12, outer_diameter=30.0, tooth_depth=2.0)
        config = SlicerConfig(object_height=0.4, layer_height=0.2, infill_spacing=6.0)
        job = PrintJob.slice(outline, config)
        daq = default_daq()
        noise = TimeNoiseModel()
        ref_trace = simulate_print(job.program, ULTIMAKER3, noise, seed=80)
        obs_trace = simulate_print(job.program, ULTIMAKER3, noise, seed=81)
        ref = daq.acquire(ref_trace, np.random.default_rng(0), channels=["ACC", "AUD"])
        obs = daq.acquire(obs_trace, np.random.default_rng(1), channels=["ACC", "AUD"])

        h = {}
        for cid in ("ACC", "AUD"):
            sync = DwmSynchronizer(UM3_DWM_PARAMS).synchronize(obs[cid], ref[cid])
            # displacement in seconds to compare across rates
            h[cid] = sync.h_disp / obs[cid].sample_rate

        n = min(h["ACC"].size, h["AUD"].size)
        # Agreement within a fraction of the analysis window.
        gap = np.median(np.abs(h["ACC"][:n] - h["AUD"][:n]))
        assert gap < UM3_DWM_PARAMS.t_win / 4
