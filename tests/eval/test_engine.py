"""Tests for the parallel, cached campaign engine (repro.eval.engine)."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

import repro.eval.dataset as dataset_mod
from repro.attacks import TABLE_I_ATTACKS
from repro.eval import (
    CampaignEngine,
    default_setup,
    default_workers,
    generate_campaign,
)

CAMPAIGN_KW = dict(
    channels=("ACC",),
    n_train=2,
    n_benign_test=2,
    n_attack_runs=1,
    seed=7,
)


@pytest.fixture(scope="module")
def setup():
    return default_setup("UM3", object_height=0.4)


@pytest.fixture(scope="module")
def attacks():
    return TABLE_I_ATTACKS()[:2]


def _flat_runs(campaign):
    return [
        campaign.reference,
        *campaign.training,
        *campaign.benign_test,
        *campaign.all_malicious(),
    ]


def _assert_identical(a, b):
    runs_a, runs_b = _flat_runs(a), _flat_runs(b)
    assert len(runs_a) == len(runs_b)
    for run_a, run_b in zip(runs_a, runs_b):
        assert run_a.label == run_b.label
        assert run_a.is_malicious == run_b.is_malicious
        assert run_a.layer_times == run_b.layer_times
        assert run_a.duration == run_b.duration
        assert list(run_a.signals) == list(run_b.signals)
        for channel in run_a.signals:
            assert np.array_equal(
                run_a.signals[channel].data, run_b.signals[channel].data
            )


@pytest.fixture(scope="module")
def serial_campaign(setup, attacks):
    return generate_campaign(setup, attacks=attacks, workers=0, **CAMPAIGN_KW)


def test_parallel_bit_identical_to_serial(setup, attacks, serial_campaign):
    """workers=4 must reproduce the serial seed stream bit-for-bit."""
    parallel = generate_campaign(
        setup, attacks=attacks, workers=4, **CAMPAIGN_KW
    )
    _assert_identical(serial_campaign, parallel)


def test_cached_campaign_matches_and_counts(
    setup, attacks, serial_campaign, tmp_path
):
    cold = CampaignEngine(workers=0, cache=tmp_path / "cache")
    populated = generate_campaign(
        setup, attacks=attacks, engine=cold, **CAMPAIGN_KW
    )
    _assert_identical(serial_campaign, populated)
    n_runs = len(_flat_runs(serial_campaign))
    assert cold.stats.simulated == n_runs
    assert cold.stats.cache_misses == n_runs
    assert cold.stats.cache_hits == 0


def test_warm_cache_runs_zero_simulations(
    setup, attacks, serial_campaign, tmp_path, monkeypatch
):
    """A fully warm cache must not invoke simulate_print at all."""
    cache_dir = tmp_path / "cache"
    cold = CampaignEngine(workers=0, cache=cache_dir)
    generate_campaign(setup, attacks=attacks, engine=cold, **CAMPAIGN_KW)

    calls = {"n": 0}
    real = dataset_mod.simulate_print

    def counting(*args, **kwargs):
        calls["n"] += 1
        return real(*args, **kwargs)

    monkeypatch.setattr(dataset_mod, "simulate_print", counting)
    warm = CampaignEngine(workers=0, cache=cache_dir)
    campaign = generate_campaign(
        setup, attacks=attacks, engine=warm, **CAMPAIGN_KW
    )
    assert calls["n"] == 0
    assert warm.stats.simulated == 0
    assert warm.stats.cache_hits == len(_flat_runs(serial_campaign))
    _assert_identical(serial_campaign, campaign)


def test_noise_change_invalidates_cache(setup, attacks, tmp_path):
    """Different noise params must produce cache misses, not stale hits."""
    cache_dir = tmp_path / "cache"
    first = CampaignEngine(workers=0, cache=cache_dir)
    generate_campaign(setup, attacks=attacks, engine=first, **CAMPAIGN_KW)

    tweaked = replace(
        setup, noise=replace(setup.noise, gap_mean=setup.noise.gap_mean + 0.01)
    )
    second = CampaignEngine(workers=0, cache=cache_dir)
    generate_campaign(tweaked, attacks=attacks, engine=second, **CAMPAIGN_KW)
    assert second.stats.cache_hits == 0
    assert second.stats.cache_misses == first.stats.cache_misses


def test_seed_change_invalidates_cache(setup, attacks, tmp_path):
    cache_dir = tmp_path / "cache"
    first = CampaignEngine(workers=0, cache=cache_dir)
    kw = dict(CAMPAIGN_KW)
    generate_campaign(setup, attacks=attacks, engine=first, **kw)

    second = CampaignEngine(workers=0, cache=cache_dir)
    kw["seed"] = CAMPAIGN_KW["seed"] + 1
    generate_campaign(setup, attacks=attacks, engine=second, **kw)
    assert second.stats.cache_hits == 0


def test_default_workers_nonnegative():
    assert default_workers() >= 0


def test_workers_one_stays_serial(setup, attacks, serial_campaign):
    """workers=1 short-circuits to in-process execution (no pool overhead)."""
    campaign = generate_campaign(
        setup, attacks=attacks, workers=1, **CAMPAIGN_KW
    )
    _assert_identical(serial_campaign, campaign)


def test_obs_counters_match_engine_stats_on_warm_cache(
    setup, attacks, tmp_path
):
    """The observability counters must agree with EngineStats exactly."""
    from repro import obs

    cache_dir = tmp_path / "cache"
    cold = CampaignEngine(workers=0, cache=cache_dir)
    generate_campaign(setup, attacks=attacks, engine=cold, **CAMPAIGN_KW)

    was_enabled = obs.enabled()
    obs.reset()
    obs.enable()
    try:
        warm = CampaignEngine(workers=0, cache=cache_dir)
        generate_campaign(setup, attacks=attacks, engine=warm, **CAMPAIGN_KW)
        counters = obs.snapshot()["counters"]
        spans = obs.snapshot()["spans"]
    finally:
        obs.reset()
        if not was_enabled:
            obs.disable()

    assert counters["repro.eval.engine.cache_hits"] == warm.stats.cache_hits
    assert counters.get("repro.eval.engine.cache_misses", 0) == 0
    assert warm.stats.cache_misses == 0
    assert counters["repro.eval.engine.simulated"] == warm.stats.simulated == 0
    assert spans["repro.eval.engine.execute"]["count"] == 1
    # A warm cache never reaches the firmware, so no simulation spans exist.
    assert not any("firmware" in name for name in spans)


def test_obs_counters_track_cold_misses(setup, attacks, tmp_path):
    """Cold engines must count one miss per executed request."""
    from repro import obs

    was_enabled = obs.enabled()
    obs.reset()
    obs.enable()
    try:
        cold = CampaignEngine(workers=0, cache=tmp_path / "cache")
        campaign = generate_campaign(
            setup, attacks=attacks, engine=cold, **CAMPAIGN_KW
        )
        counters = obs.snapshot()["counters"]
        histograms = obs.snapshot()["histograms"]
    finally:
        obs.reset()
        if not was_enabled:
            obs.disable()

    n_runs = len(_flat_runs(campaign))
    assert counters["repro.eval.engine.cache_misses"] == n_runs
    assert counters["repro.eval.engine.simulated"] == n_runs
    assert counters.get("repro.eval.engine.cache_hits", 0) == 0
    assert histograms["repro.eval.engine.queue_wait_s"]["count"] == n_runs


def test_pool_workers_merge_registry_into_parent(setup, attacks):
    """S1: with workers>=2 each worker ships its per-task registry back
    and the parent folds it in, so counters/spans from inside
    ``run_process`` survive the process boundary."""
    from repro import obs

    was_enabled = obs.enabled()

    def run(workers):
        obs.reset()
        obs.enable()
        try:
            engine = CampaignEngine(workers=workers)
            generate_campaign(
                setup, attacks=attacks, engine=engine, **CAMPAIGN_KW
            )
            return obs.snapshot()
        finally:
            obs.reset()
            if not was_enabled:
                obs.disable()

    serial = run(workers=0)
    pooled = run(workers=2)

    # Worker-side spans (simulation internals) must appear in the parent
    # registry with the same per-leaf call counts as the serial run.
    def leaf_counts(snapshot):
        counts = {}
        for name, stats in snapshot["spans"].items():
            leaf = name.rsplit("/", 1)[-1]
            counts[leaf] = counts.get(leaf, 0) + stats["count"]
        return counts

    serial_counts = leaf_counts(serial)
    pooled_counts = leaf_counts(pooled)
    assert any("firmware" in name for name in pooled["spans"])
    for leaf, count in serial_counts.items():
        assert pooled_counts.get(leaf, 0) == count, leaf

    # Counters recorded inside workers accumulate identically.
    for name, value in serial["counters"].items():
        assert pooled["counters"].get(name, 0) == value, name


def test_serial_path_does_not_reset_parent_registry(setup, attacks):
    """The in-process path must never pass record=True to the worker
    entry point: the per-task reset would wipe the caller's registry."""
    from repro import obs

    was_enabled = obs.enabled()
    obs.reset()
    obs.enable()
    try:
        obs.counter("repro.test.sentinel").inc(41)
        engine = CampaignEngine(workers=0)
        generate_campaign(
            setup, attacks=attacks, engine=engine, **CAMPAIGN_KW
        )
        counters = obs.snapshot()["counters"]
    finally:
        obs.reset()
        if not was_enabled:
            obs.disable()
    assert counters["repro.test.sentinel"] == 41
