"""Tests for the engine throughput measurement (repro.eval.throughput)."""

import json

import numpy as np
import pytest

from repro import obs
from repro.eval.throughput import (
    RECORD_NAME,
    ThroughputWorkload,
    _ObsProbe,
    count_hot_path_obs_calls,
    load_baseline_record,
    measure_engine_throughput,
    render_comparison,
)

TINY = ThroughputWorkload(n_samples=1_200)


class TestWorkload:
    def test_signals_are_deterministic(self):
        ref_a, obs_a = TINY.signals()
        ref_b, obs_b = TINY.signals()
        assert np.array_equal(ref_a.data, ref_b.data)
        assert np.array_equal(obs_a, obs_b)

    def test_observed_differs_from_reference(self):
        ref, observed = TINY.signals()
        assert not np.array_equal(ref.data, observed)
        assert observed.shape == (TINY.n_samples, 1)

    def test_engine_detects_nothing_on_benign_workload(self):
        """The workload must exercise the steady state, not the alarm
        path: a benign run keeps every window below threshold."""
        ref, observed = TINY.signals()
        engine = TINY.engine(ref)
        assert engine.push(observed) == []
        result = engine.finalize()
        assert result.alerts == ()
        assert result.sync.n_indexes > 0


class TestMeasurement:
    def test_record_schema(self):
        record = measure_engine_throughput(TINY, repeats=1)
        assert record["name"] == RECORD_NAME
        for field in (
            "streaming_cold_samples_per_s",
            "streaming_warm_samples_per_s",
            "batch_cold_samples_per_s",
            "batch_warm_samples_per_s",
        ):
            assert float(record[field]) > 0.0
        for field in ("streaming_chunk_p50_ms", "streaming_chunk_p99_ms"):
            assert float(record[field]) > 0.0
        assert record["streaming_chunk_p50_ms"] <= record[
            "streaming_chunk_p99_ms"
        ]
        assert float(record["disabled_obs_overhead"]) >= 0.0
        assert record["hot_path_obs_calls"] == 0
        assert record["chunk_samples"] == TINY.chunk_samples
        assert record["n_samples"] == TINY.n_samples
        assert record["sample_rate"] == TINY.sample_rate
        json.dumps(record)  # must be JSON-safe as-is

    def test_invalid_repeats_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            measure_engine_throughput(TINY, repeats=0)

    def test_obs_state_restored(self):
        assert not obs.enabled()
        measure_engine_throughput(TINY, repeats=1)
        assert not obs.enabled()
        obs.enable()
        try:
            measure_engine_throughput(TINY, repeats=1)
            assert obs.enabled()
        finally:
            obs.disable()

    def test_disabled_hot_path_makes_zero_obs_calls(self):
        assert count_hot_path_obs_calls(TINY) == 0

    def test_probe_counts_touches(self):
        """Guards the structural check: the probe must actually count."""
        probe = _ObsProbe()
        assert probe.enabled() is False
        with probe.trace("span"):
            probe.counter("c").inc()
        probe.gauge("g").set(1.0)
        probe.histogram("h").observe(2.0)
        assert probe.touches == 4

    def test_health_probe_counts_stream_touches(self):
        """The telemetry stub must catch hot-path StreamHealth brushes."""
        from repro.eval.throughput import _TelemetryStub

        probe = _ObsProbe()
        stub = _TelemetryStub(probe)
        row = stub.register_stream("p1", 200.0)
        row.observe_chunk(10, 0.001, 1, 0, False)
        row.note_alert("c_disp", 1.0)
        row.snapshot()
        assert probe.touches == 4  # register + 3 row touches


class TestBaseline:
    def test_missing_file_is_none(self, tmp_path):
        assert load_baseline_record(tmp_path / "nope.json") is None

    def test_corrupt_file_is_none(self, tmp_path):
        path = tmp_path / "h.json"
        path.write_text("{broken")
        assert load_baseline_record(path) is None

    def test_first_matching_record_wins(self, tmp_path):
        path = tmp_path / "h.json"
        path.write_text(json.dumps([
            {"name": "other", "x": 1},
            {"name": RECORD_NAME, "streaming_warm_samples_per_s": 111.0},
            {"name": RECORD_NAME, "streaming_warm_samples_per_s": 222.0},
        ]))
        record = load_baseline_record(path)
        assert record["streaming_warm_samples_per_s"] == 111.0

    def test_render_with_and_without_baseline(self):
        record = measure_engine_throughput(TINY, repeats=1)
        alone = render_comparison(record, None)
        assert "no stored baseline" in alone
        against_self = render_comparison(record, record)
        assert "1.00x vs baseline" in against_self
        assert "streaming_chunk_p99_ms" in against_self
        other_machine = dict(record, cpu_count=-1)
        cross = render_comparison(record, other_machine)
        assert "different machine" in cross
