"""Unit tests for detection metrics."""

import pytest

from repro.eval import DetectionStats, accuracy_from_rates


class TestAccuracy:
    def test_paper_formula(self):
        assert accuracy_from_rates(0.0, 1.0) == 1.0
        assert accuracy_from_rates(1.0, 1.0) == 0.5
        assert accuracy_from_rates(0.0, 0.0) == 0.5
        assert accuracy_from_rates(0.5, 0.88) == pytest.approx(0.69)


class TestDetectionStats:
    def test_record_four_quadrants(self):
        s = DetectionStats()
        s.record(is_malicious=True, detected=True)    # TP
        s.record(is_malicious=True, detected=False)   # FN
        s.record(is_malicious=False, detected=True)   # FP
        s.record(is_malicious=False, detected=False)  # TN
        assert s.true_positives == 1
        assert s.false_negatives == 1
        assert s.false_positives == 1
        assert s.true_negatives == 1
        assert s.fpr == pytest.approx(0.5)
        assert s.tpr == pytest.approx(0.5)
        assert s.accuracy == pytest.approx(0.5)

    def test_empty_rates_are_zero(self):
        s = DetectionStats()
        assert s.fpr == 0.0
        assert s.tpr == 0.0

    def test_record_all(self):
        s = DetectionStats()
        s.record_all([(True, True), (False, False), (True, True)])
        assert s.tpr == 1.0
        assert s.fpr == 0.0
        assert s.accuracy == 1.0

    def test_as_pair_format(self):
        s = DetectionStats()
        s.record(False, True)
        s.record(True, True)
        assert s.as_pair() == "1.00 / 1.00"

    def test_str_contains_counts(self):
        s = DetectionStats()
        s.record(True, True)
        text = str(s)
        assert "malicious=1" in text
        assert "TPR=1.00" in text
