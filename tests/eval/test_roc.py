"""Tests for the ROC sweep over the OCC margin."""

import numpy as np
import pytest

from repro.eval import RocCurve, RocPoint, auc, roc_sweep


@pytest.fixture(scope="module")
def curve(mini_campaign):
    return roc_sweep(
        mini_campaign, "ACC", "Raw", r_values=(0.0, 0.3, 1.0, 3.0)
    )


class TestRocSweep:
    def test_points_ordered_by_r(self, curve):
        rs = [p.r for p in curve.points]
        assert rs == sorted(rs)

    def test_fpr_monotone_nonincreasing(self, curve):
        fprs = [p.fpr for p in curve.points]
        assert fprs == sorted(fprs, reverse=True)

    def test_tpr_monotone_nonincreasing(self, curve):
        tprs = [p.tpr for p in curve.points]
        assert tprs == sorted(tprs, reverse=True)

    def test_best_point_accuracy(self, curve):
        assert curve.best.accuracy == max(p.accuracy for p in curve.points)
        assert curve.best.accuracy >= 0.8  # ACC raw is the flagship cell

    def test_rates_in_unit_interval(self, curve):
        for p in curve.points:
            assert 0.0 <= p.fpr <= 1.0
            assert 0.0 <= p.tpr <= 1.0


class TestAuc:
    def test_perfect_detector(self):
        curve = RocCurve(points=(RocPoint(0.3, 0.0, 1.0, 1.0),))
        assert auc(curve) == pytest.approx(1.0)

    def test_coin_flip(self):
        curve = RocCurve(points=(RocPoint(0.3, 0.5, 0.5, 0.5),))
        assert auc(curve) == pytest.approx(0.5)

    def test_campaign_auc_high(self, curve):
        assert auc(curve) >= 0.8
