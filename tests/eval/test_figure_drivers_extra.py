"""Extra coverage for the figure drivers (fig6, fig12) and result objects."""

import numpy as np
import pytest

from repro.eval import (
    IdsResult,
    fig6_parametric_analysis,
    fig12_overall_accuracy,
    nsync_results,
)
from repro.eval.metrics import DetectionStats


class TestFig6Driver:
    @pytest.fixture(scope="class")
    def sweeps(self, mini_campaign):
        return fig6_parametric_analysis(
            mini_campaign,
            channel="ACC",
            t_sigma_values=(0.5, 1.0),
            t_win_values=(2.0, 4.0),
            eta_values=(0.1, 0.5),
        )

    def test_all_three_parameters_swept(self, sweeps):
        assert set(sweeps) == {"t_sigma", "t_win", "eta"}
        assert set(sweeps["t_sigma"]) == {0.5, 1.0}
        assert set(sweeps["t_win"]) == {2.0, 4.0}
        assert set(sweeps["eta"]) == {0.1, 0.5}

    def test_smaller_window_higher_resolution(self, sweeps):
        assert sweeps["t_win"][2.0].size > sweeps["t_win"][4.0].size

    def test_h_disp_arrays_finite(self, sweeps):
        for family in sweeps.values():
            for h in family.values():
                assert np.all(np.isfinite(h))


class TestFig12Driver:
    def test_all_seven_ids_on_single_channel(self, mini_campaign):
        accuracies = fig12_overall_accuracy(mini_campaign, channels=("ACC",))
        # Without AUD the audio-only IDSs are absent; the rest must report.
        assert {"moore", "gao", "gatlin", "nsync_dwm", "nsync_dtw"} <= set(
            accuracies
        )
        for name, acc in accuracies.items():
            assert 0.0 <= acc <= 1.0, name

    def test_nsync_wins_on_acc(self, mini_campaign):
        accuracies = fig12_overall_accuracy(mini_campaign, channels=("ACC",))
        assert accuracies["nsync_dwm"] >= accuracies["moore"]
        assert accuracies["nsync_dwm"] >= accuracies["gao"]


class TestIdsResult:
    def test_cell_format(self, mini_campaign):
        result = nsync_results(mini_campaign, "ACC", "Raw")
        cell = result.cell()
        assert "/" in cell
        fpr, tpr = (float(x) for x in cell.split("/"))
        assert fpr == pytest.approx(result.overall.fpr, abs=0.005)
        assert tpr == pytest.approx(result.overall.tpr, abs=0.005)

    def test_manual_construction(self):
        stats = DetectionStats()
        stats.record(True, True)
        result = IdsResult(overall=stats)
        assert result.overall.tpr == 1.0
        assert result.submodules == {}
        assert result.per_attack_tpr == {}
