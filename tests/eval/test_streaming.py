"""The streaming campaign data path: lazy campaigns, iter_execute, memory.

These tests pin the two contracts the scale-out refactor rests on:

* **Equivalence** — a lazy, plan-backed campaign streamed through the
  incremental accumulators produces *float-for-float* the same tables as
  the historical eager path (confusion counts are commutative sums).
* **Boundedness** — streamed evaluation peak memory is governed by one
  run's working set, not by the campaign size.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.attacks import TABLE_I_ATTACKS
from repro.cache import RunCache
from repro.eval import (
    CampaignEngine,
    baseline_results,
    campaign_requests,
    default_setup,
    generate_campaign,
    nsync_results,
    roc_sweep,
)

CAMPAIGN_KW = dict(
    channels=("ACC",),
    n_train=2,
    n_benign_test=2,
    n_attack_runs=1,
    seed=11,
)


@pytest.fixture(scope="module")
def setup():
    return default_setup("UM3", object_height=0.4)


@pytest.fixture(scope="module")
def attacks():
    return TABLE_I_ATTACKS()[:2]


@pytest.fixture(scope="module")
def warm_cache(setup, attacks, tmp_path_factory):
    """A RunCache pre-populated with every run of the test campaign."""
    cache = RunCache(tmp_path_factory.mktemp("warm-cache"))
    generate_campaign(setup, attacks=attacks, cache=cache, **CAMPAIGN_KW)
    return cache


def _campaigns(setup, attacks, cache):
    eager = generate_campaign(
        setup, attacks=attacks, cache=cache, **CAMPAIGN_KW
    )
    lazy = generate_campaign(
        setup, attacks=attacks, cache=cache, materialize=False, **CAMPAIGN_KW
    )
    return eager, lazy


class TestIterExecute:
    def test_preserves_request_order(self, setup, attacks, warm_cache):
        engine = CampaignEngine(workers=0, cache=warm_cache)
        requests, _ = campaign_requests(
            setup, n_train=2, n_benign_test=2, attacks=attacks,
            n_attack_runs=1, seed=11,
        )
        out = list(engine.iter_execute(requests, channels=("ACC",)))
        assert [req for req, _ in out] == list(requests)
        assert [run.label for _, run in out] == [r.label for r in requests]

    def test_bit_identical_to_execute(self, setup, attacks, warm_cache):
        engine = CampaignEngine(workers=0, cache=warm_cache)
        requests, _ = campaign_requests(
            setup, n_train=2, n_benign_test=2, attacks=attacks,
            n_attack_runs=1, seed=11,
        )
        collected = engine.execute(requests, channels=("ACC",))
        streamed = [
            run for _, run in engine.iter_execute(requests, channels=("ACC",))
        ]
        assert len(collected) == len(streamed)
        for a, b in zip(collected, streamed):
            assert a.label == b.label
            assert a.layer_times == b.layer_times
            assert np.array_equal(
                a.signals["ACC"].data, b.signals["ACC"].data
            )

    def test_warm_hits_are_memmap_backed(self, setup, attacks, warm_cache):
        engine = CampaignEngine(workers=0, cache=warm_cache)
        requests, _ = campaign_requests(
            setup, n_train=2, n_benign_test=2, attacks=attacks,
            n_attack_runs=1, seed=11,
        )
        _, run = next(iter(engine.iter_execute(requests, channels=("ACC",))))
        base = run.signals["ACC"].data
        while isinstance(base, np.ndarray) and not isinstance(base, np.memmap):
            base = base.base
        assert isinstance(base, np.memmap)

    def test_early_break_is_clean(self, setup, attacks, warm_cache):
        engine = CampaignEngine(workers=0, cache=warm_cache)
        requests, _ = campaign_requests(
            setup, n_train=2, n_benign_test=2, attacks=attacks,
            n_attack_runs=1, seed=11,
        )
        stream = engine.iter_execute(requests, channels=("ACC",))
        next(stream)
        stream.close()  # must not raise or leave the engine unusable
        assert len(engine.execute(requests[:1], channels=("ACC",))) == 1

    def test_pool_persists_across_batches(self, setup, attacks):
        with CampaignEngine(workers=2) as engine:
            requests, _ = campaign_requests(
                setup, n_train=1, n_benign_test=1, attacks=attacks[:1],
                n_attack_runs=1, seed=11,
            )
            list(engine.iter_execute(requests, channels=("ACC",)))
            pool = engine._pool
            assert pool is not None
            list(engine.iter_execute(requests, channels=("ACC",)))
            assert engine._pool is pool  # same executor, not a fresh one
        assert engine._pool is None  # close() tore it down


class TestStreamingMatchesEager:
    """The acceptance differential: streamed tables == eager tables."""

    def test_nsync_results_identical(self, setup, attacks, warm_cache):
        eager, lazy = _campaigns(setup, attacks, warm_cache)
        a = nsync_results(eager, "ACC", "Raw")
        b = nsync_results(lazy, "ACC", "Raw")
        assert a.overall.__dict__ == b.overall.__dict__
        assert {k: v.__dict__ for k, v in a.submodules.items()} == \
            {k: v.__dict__ for k, v in b.submodules.items()}
        assert a.per_attack_tpr == b.per_attack_tpr

    def test_baseline_results_identical(self, setup, attacks, warm_cache):
        from repro.eval import BASELINE_FACTORIES

        eager, lazy = _campaigns(setup, attacks, warm_cache)
        for name in ("moore", "gao"):
            a = baseline_results(eager, BASELINE_FACTORIES[name](), "ACC")
            b = baseline_results(lazy, BASELINE_FACTORIES[name](), "ACC")
            assert a.overall.__dict__ == b.overall.__dict__
            assert a.per_attack_tpr == b.per_attack_tpr

    def test_roc_sweep_identical(self, setup, attacks, warm_cache):
        eager, lazy = _campaigns(setup, attacks, warm_cache)
        a = roc_sweep(eager, "ACC")
        b = roc_sweep(lazy, "ACC")
        assert a.points == b.points  # dataclass equality: exact floats

    def test_lazy_campaign_sequence_interface(self, setup, attacks, warm_cache):
        eager, lazy = _campaigns(setup, attacks, warm_cache)
        assert len(lazy.training) == len(eager.training)
        assert lazy.n_benign_test == eager.n_benign_test
        assert lazy.n_malicious_test == eager.n_malicious_test
        assert np.array_equal(
            lazy.benign_test[-1].signals["ACC"].data,
            eager.benign_test[-1].signals["ACC"].data,
        )
        assert [r.label for r in lazy.all_malicious()] == \
            [r.label for r in eager.all_malicious()]
        assert [role for role, _ in lazy.iter_runs()] == \
            [role for role, _ in eager.iter_runs()]


class TestMemoryCeiling:
    """Streamed evaluation peak memory must not scale with campaign size."""

    def _streamed_peak(self, setup, attacks, cache, n_benign_test):
        campaign = generate_campaign(
            setup,
            channels=("ACC",),
            n_train=2,
            n_benign_test=n_benign_test,
            n_attack_runs=1,
            attacks=attacks,
            seed=11,
            cache=cache,
            materialize=False,
        )
        tracemalloc.start()
        try:
            nsync_results(campaign, "ACC", "Raw")
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return peak

    def test_peak_independent_of_campaign_size(
        self, setup, attacks, tmp_path_factory
    ):
        cache = RunCache(tmp_path_factory.mktemp("ceiling-cache"))
        # Warm the larger campaign; the smaller one's seeds are a prefix of
        # the same stream, so both evaluate fully from cache.
        generate_campaign(
            setup, channels=("ACC",), n_train=2, n_benign_test=32,
            n_attack_runs=1, attacks=attacks, seed=11, cache=cache,
            materialize=False,
        )
        peak_small = self._streamed_peak(setup, attacks, cache, 8)
        peak_large = self._streamed_peak(setup, attacks, cache, 32)
        # 4x the benign-test runs; allow generous per-run noise but fail
        # loudly if the stream starts accumulating payloads again.
        assert peak_large < 2.0 * peak_small, (
            f"streamed peak grew with campaign size: "
            f"{peak_small} -> {peak_large} bytes"
        )
        assert peak_large < cache.total_bytes()


class TestSeedStream:
    def test_no_ten_thousand_run_ceiling(self, setup):
        # The historical implementation drew seeds from a range() of
        # 10,000 and raised StopIteration past it; paper-scale-and-beyond
        # campaigns must keep drawing.
        requests, _ = campaign_requests(
            setup, n_train=6_000, n_benign_test=6_000, attacks=[],
            n_attack_runs=0, seed=3,
        )
        assert len(requests) == 12_001

    def test_seed_assignment_unchanged(self, setup):
        # Sequential from seed * 1_000_003, in request order — the exact
        # assignment the bounded range() produced, so cached campaigns
        # keyed under the old scheme stay warm.
        requests, _ = campaign_requests(
            setup, n_train=2, n_benign_test=2, attacks=TABLE_I_ATTACKS()[:1],
            n_attack_runs=2, seed=7,
        )
        assert [r.seed for r in requests] == [
            7 * 1_000_003 + i for i in range(len(requests))
        ]


class TestCampaignPlanRoles:
    def test_role_layout(self, setup, attacks, warm_cache):
        _, lazy = _campaigns(setup, attacks, warm_cache)
        plan = lazy.plan
        n = len(plan.requests)
        roles = [plan.role_of(i) for i in range(n)]
        assert roles[0] == "reference"
        assert roles[1:3] == ["training"] * 2
        assert roles[3:5] == ["benign"] * 2
        assert roles[5:] == ["malicious"] * (n - 5)
