"""Tests for the lock-step differential harness (repro.eval.diff).

The mutation smoke tests are the heart of this file: a deliberate one-ulp
fault planted in a fast path must be caught by the hypothesis search with a
first-divergence report naming the pair, the step index, and the field —
if the harness can't see a single ulp, it guards nothing.
"""

import json

import numpy as np
import pytest

from repro.eval.diff import (
    BUNDLE_SCHEMA,
    PAIRS,
    Divergence,
    PairReport,
    _array_first_diff,
    _first_deep_diff,
    diff_pair,
    load_bundle,
    replay_bundle,
    run_diff,
    run_workload,
    write_bundle,
)
from repro.sync.dwm import StreamingDwm


FIRMWARE_WORKLOAD = {
    "pair": "firmware",
    "machine": "UM3",
    "lookahead": True,
    "noisy": True,
    "seed": 3,
    "gcode": [
        "G28",
        "G1 X10 Y10 F3000",
        "G2 X20 Y10 I5 J0",
        "G91",
        "G1 X0 Y0",
        "G90",
        "G1 E2",
        "M106 S128",
        "G1 X5 Y5 Z0.2 E4",
        "G4 P50",
        "M104 S200",
    ],
}

DWM_WORKLOAD = {
    "pair": "dwm",
    "seed": 1,
    "n_ref": 200,
    "n_obs": 260,
    "n_channels": 2,
    "params": {"t_win": 0.4, "t_hop": 0.2, "t_ext": 0.2, "t_sigma": 0.1},
    "chunks": [7, 1, 33],
}

COMPARATOR_WORKLOAD = {
    "pair": "comparator",
    "seed": 2,
    "n_a": 80,
    "n_b": 90,
    "n_channels": 2,
    "n_win": 8,
    "n_hop": 4,
    "h_disp": [0.0, 3.0, -2.5, float("nan"), 1e300, -40.0, 12.0],
    "const_spans": [[10, 30]],
}

ENGINE_WORKLOAD = {
    "pair": "engine",
    "seed": 5,
    "n_ref": 300,
    "n_obs": 350,
    "n_channels": 2,
    "params": {"t_win": 0.4, "t_hop": 0.2, "t_ext": 0.2, "t_sigma": 0.1},
    "chunks": [11, 3, 29],
    "group": 3,
    "nan_spans": [[40, 6]],
    "flat_spans": [[120, 80]],
    "v_c": 0.5,
}

WORKLOADS = {
    "firmware": FIRMWARE_WORKLOAD,
    "dwm": DWM_WORKLOAD,
    "comparator": COMPARATOR_WORKLOAD,
    "engine": ENGINE_WORKLOAD,
}


class TestDeepDiff:
    def test_equal_nested(self):
        doc = {"a": [1, 2, {"b": 3.5}], "c": None}
        assert _first_deep_diff(doc, json.loads(json.dumps(doc))) is None

    def test_first_leaf_named_with_path(self):
        ref = {"sync": {"h_disp": [0, 1, 2]}, "i": 3}
        fast = {"sync": {"h_disp": [0, 1, 5]}, "i": 3}
        field, r, f = _first_deep_diff(ref, fast)
        assert field == "sync.h_disp[2]"
        assert (r, f) == (2, 5)

    def test_length_mismatch(self):
        field, r, f = _first_deep_diff({"x": [1, 2]}, {"x": [1]})
        assert field == "x.__len__"
        assert (r, f) == (2, 1)

    def test_missing_key(self):
        field, r, f = _first_deep_diff({"a": 1}, {})
        assert field == "a"
        assert f == "<missing>"

    def test_type_mismatch_is_divergence(self):
        assert _first_deep_diff({"a": 1.0}, {"a": "1.0"}) is not None


class TestArrayFirstDiff:
    def test_bit_exact_nan_self_equal(self):
        a = np.array([1.0, np.nan, 3.0])
        assert _array_first_diff(a, a.copy()) is None

    def test_one_sided_nan_diverges(self):
        a = np.array([1.0, np.nan, 3.0])
        b = np.array([1.0, 2.0, 3.0])
        assert _array_first_diff(a, b) == 1

    def test_ulp_diverges_without_atol(self):
        a = np.array([1.0, 2.0])
        b = np.array([1.0, np.nextafter(2.0, np.inf)])
        assert _array_first_diff(a, b) == 1
        assert _array_first_diff(a, b, atol=1e-9) is None

    def test_multichannel_reports_row(self):
        a = np.zeros((4, 3))
        b = a.copy()
        b[2, 1] = 1e-300
        assert _array_first_diff(a, b) == 2


class TestRunners:
    @pytest.mark.parametrize("pair", PAIRS)
    def test_fixed_workload_clean(self, pair):
        assert run_workload(WORKLOADS[pair]) is None

    def test_unknown_pair_rejected(self):
        with pytest.raises(ValueError, match="unknown pair"):
            run_workload({"pair": "quantum"})

    def test_firmware_without_lookahead(self):
        workload = dict(FIRMWARE_WORKLOAD, lookahead=False, machine="RM3")
        assert run_workload(workload) is None

    def test_comparator_empty_h_disp(self):
        workload = dict(COMPARATOR_WORKLOAD, h_disp=[])
        assert run_workload(workload) is None


class TestSearch:
    def test_run_diff_all_pairs_pass(self):
        report = run_diff(seed=0, examples=5)
        assert report.ok
        assert tuple(r.pair for r in report.reports) == PAIRS
        assert all(r.workload is None for r in report.reports)

    def test_unknown_pair_rejected(self):
        with pytest.raises(ValueError, match="unknown pair"):
            run_diff(pairs=("quantum",))

    def test_report_json_round_trips(self):
        report = run_diff(pairs=("comparator",), seed=7, examples=3)
        doc = json.loads(json.dumps(report.to_dict()))
        assert doc["ok"] is True
        assert doc["seed"] == 7
        assert doc["pairs"][0]["pair"] == "comparator"


def _plant_dwm_ulp(monkeypatch):
    """Perturb _step_fast's accepted score by exactly one ulp."""
    orig = StreamingDwm._step_fast

    def mutated(self, a_window):
        ok = orig(self, a_window)
        if ok and self._state.scores:
            self._state.scores[-1] = float(
                np.nextafter(self._state.scores[-1], np.inf)
            )
        return ok

    monkeypatch.setattr(StreamingDwm, "_step_fast", mutated)


class TestMutationSmoke:
    """Planted faults MUST be caught — the harness's own acceptance test."""

    def test_one_ulp_step_fast_fault_is_caught(self, monkeypatch):
        _plant_dwm_ulp(monkeypatch)
        report = diff_pair("dwm", seed=0, examples=25)
        assert not report.ok
        divergence = report.divergence
        assert divergence.pair == "dwm"
        assert divergence.step >= 0
        assert "scores" in divergence.field
        assert divergence.reference != divergence.fast
        # The report must be actionable: the rendered block names all three.
        rendered = divergence.render()
        assert "pair 'dwm'" in rendered
        assert f"step {divergence.step}" in rendered
        assert divergence.field in rendered
        # The shrunk workload replays to the same finding deterministically.
        replayed = run_workload(report.workload)
        assert replayed is not None
        assert replayed.field == divergence.field

    def test_comparator_ulp_fault_is_caught(self, monkeypatch):
        from repro.core.comparator import Comparator

        orig = Comparator._window_distances

        def mutated(self, a, b, sync):
            return np.nextafter(orig(self, a, b, sync), np.inf)

        monkeypatch.setattr(Comparator, "_window_distances", mutated)
        report = diff_pair("comparator", seed=0, examples=25)
        assert not report.ok
        assert report.divergence.pair == "comparator"
        assert report.divergence.field == "v_dist"

    def test_firmware_vstart_regression_is_caught(self, monkeypatch):
        # Re-introduce the bug this PR fixed: the batched evaluation used
        # to ignore GeneralProfile's junction entry speed, diverging
        # lookahead chains from the loop reference.
        import dataclasses

        from repro.printer import firmware as fw

        orig = fw.Firmware._motion_arrays

        class _ZeroVStart:
            """Segment view whose profile reports v_start = 0."""

            def __init__(self, seg):
                self._seg = seg

            def __getattr__(self, name):
                return getattr(self._seg, name)

            @property
            def profile(self):
                profile = self._seg.profile
                if getattr(profile, "v_start", 0.0):
                    return dataclasses.replace(profile, v_start=0.0)
                return profile

        def mutated(self, times, segments):
            return orig(self, times, [_ZeroVStart(s) for s in segments])

        monkeypatch.setattr(fw.Firmware, "_motion_arrays", mutated)
        divergence = run_workload(FIRMWARE_WORKLOAD)
        assert divergence is not None
        assert divergence.pair == "firmware"
        assert divergence.detail  # names the instruction and sample


class TestBundles:
    def _diverged_report(self, monkeypatch) -> PairReport:
        _plant_dwm_ulp(monkeypatch)
        report = diff_pair("dwm", seed=0, examples=25)
        assert not report.ok
        return report

    def test_round_trip(self, tmp_path, monkeypatch):
        report = self._diverged_report(monkeypatch)
        path = write_bundle(report, tmp_path / "bundle_dwm.json")
        doc = load_bundle(path)
        assert doc["schema"] == BUNDLE_SCHEMA
        assert doc["pair"] == "dwm"
        assert doc["workload"] == report.workload
        # Fault still planted: replay reproduces the divergence.
        replayed = replay_bundle(path)
        assert not replayed.ok
        assert replayed.divergence.field == report.divergence.field

    def test_replay_passes_once_fixed(self, tmp_path, monkeypatch):
        report = self._diverged_report(monkeypatch)
        path = write_bundle(report, tmp_path / "bundle_dwm.json")
        monkeypatch.undo()  # un-plant the fault
        assert replay_bundle(path).ok

    def test_clean_report_refuses_bundle(self, tmp_path):
        clean = PairReport(pair="dwm", examples=1, seed=0)
        with pytest.raises(ValueError, match="no divergence"):
            write_bundle(clean, tmp_path / "nope.json")

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"schema": "something/else"}))
        with pytest.raises(ValueError, match="not a repro-diff bundle"):
            load_bundle(path)

    def test_divergence_dict_round_trip(self):
        d = Divergence(
            pair="dwm", step=3, field="scores[1]",
            reference=0.5, fast=0.25, detail="after chunk 2",
        )
        assert Divergence.from_dict(json.loads(json.dumps(d.to_dict()))) == d
