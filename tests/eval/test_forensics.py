"""Tests for the forensics join: events -> incident -> localization."""

import numpy as np
import pytest

from repro.eval.forensics import (
    Incident,
    alarm_time_span,
    incident_from_events,
    localization_rows,
    render_incident_report,
    render_localization_table,
    spans_overlap,
)
from repro.printer.firmware import MachineTrace


def make_trace(command_index, sim_rate=10.0):
    """A minimal MachineTrace whose only meaningful array is the mapping."""
    command_index = np.asarray(command_index, dtype=np.int64)
    n = command_index.shape[0]
    zeros3 = np.zeros((n, 3))
    z = np.zeros(n)
    return MachineTrace(
        sim_rate=sim_rate,
        times=np.arange(n) / sim_rate,
        position=zeros3,
        velocity=zeros3,
        acceleration=zeros3,
        joint_position=zeros3,
        joint_velocity=zeros3,
        extrusion_rate=z,
        hotend_temp=z,
        bed_temp=z,
        fan=z,
        command_index=command_index,
        layer_index=np.zeros(n, dtype=np.int64),
    )


def make_events(
    first_alarm_index=3,
    n_windows=10,
    n_win=20,
    n_hop=10,
    sample_rate=10.0,
    is_intrusion=True,
):
    """A plausible schema-v1 stream for one detection run."""
    records = []
    seq = 0
    for i in range(n_windows):
        records.append(
            {"v": 1, "seq": seq, "ts": float(seq), "type": "window_evidence",
             "window": i, "h_disp": float(i), "c_disp": float(i),
             "h_dist_f": float(i), "v_dist_f": 0.1 * i}
        )
        seq += 1
    if is_intrusion:
        records.append(
            {"v": 1, "seq": seq, "ts": float(seq), "type": "alarm",
             "window": first_alarm_index, "submodule": "v_dist",
             "value": 0.9, "threshold": 0.5,
             "time_s": first_alarm_index * n_hop / sample_rate}
        )
        seq += 1
    records.append(
        {"v": 1, "seq": seq, "ts": float(seq), "type": "run_summary",
         "is_intrusion": is_intrusion,
         "fired": ["v_dist"] if is_intrusion else [],
         "n_windows": n_windows,
         "first_alarm_index": first_alarm_index if is_intrusion else None,
         "first_alarm_time": (
             first_alarm_index * n_hop / sample_rate
             if is_intrusion else None
         ),
         "thresholds": {"c_c": 1.0, "h_c": 2.0, "v_c": 0.5, "d_c": None},
         "mode": "window", "n_win": n_win, "n_hop": n_hop,
         "sample_rate": sample_rate}
    )
    return records


class TestSpanHelpers:
    @pytest.mark.parametrize(
        "a, b, expected",
        [
            ((0, 5), (4, 8), True),
            ((0, 5), (5, 8), False),  # half-open: touching is disjoint
            ((4, 8), (0, 5), True),
            ((2, 3), (0, 10), True),
            ((0, 1), (1, 2), False),
        ],
    )
    def test_spans_overlap(self, a, b, expected):
        assert spans_overlap(a, b) is expected

    def test_alarm_time_span_window_mode(self):
        t0, t1 = alarm_time_span(3, n_win=20, n_hop=10, sample_rate=10.0)
        assert t0 == pytest.approx(3.0)
        assert t1 == pytest.approx(5.0)

    def test_alarm_time_span_point_mode(self):
        t0, t1 = alarm_time_span(
            7, n_win=0, n_hop=0, sample_rate=10.0, mode="point"
        )
        assert (t0, t1) == (0.7, 0.8)


class TestMachineTraceMapping:
    def test_instruction_span_covers_interval(self):
        # 10 samples per instruction at 10 Hz -> instruction k runs
        # during second k.
        trace = make_trace(np.repeat(np.arange(6), 10))
        assert trace.instruction_at(0) == 0
        assert trace.instruction_at(59) == 5
        assert trace.instruction_span(1.0, 3.0) == (1, 4)

    def test_instruction_span_clamps(self):
        trace = make_trace(np.repeat(np.arange(3), 10))
        lo, hi = trace.instruction_span(-5.0, 100.0)
        assert (lo, hi) == (0, 3)

    def test_sample_time_round_trip(self):
        trace = make_trace(np.zeros(50, dtype=np.int64))
        i = trace.sample_index_at(2.0)
        assert trace.time_of_sample(i) == pytest.approx(2.0)


class TestIncidentFromEvents:
    def test_reconstructs_intrusion(self):
        incident = incident_from_events(make_events())
        assert incident.is_intrusion
        assert incident.fired == ("v_dist",)
        assert incident.first_alarm_index == 3
        assert incident.alarm_span_s == pytest.approx((3.0, 5.0))
        assert incident.implicated_span is None  # no trace given
        assert len(incident.evidence) == 10
        assert len(incident.alarms) == 1

    def test_joins_with_trace(self):
        trace = make_trace(np.repeat(np.arange(10), 10))
        incident = incident_from_events(make_events(), trace=trace)
        # Alarm window covers [3 s, 5 s) -> instructions 3..5.
        assert incident.implicated_span == (3, 6)

    def test_benign_run(self):
        incident = incident_from_events(
            make_events(is_intrusion=False, first_alarm_index=None)
        )
        assert not incident.is_intrusion
        assert incident.alarm_span_s is None

    def test_missing_run_summary_raises(self):
        with pytest.raises(ValueError, match="run_summary"):
            incident_from_events(make_events()[:-1])

    def test_last_run_summary_wins(self):
        records = make_events() + make_events(first_alarm_index=7)
        incident = incident_from_events(records)
        assert incident.first_alarm_index == 7


class TestRenderIncidentReport:
    def test_benign_report(self):
        incident = incident_from_events(
            make_events(is_intrusion=False, first_alarm_index=None)
        )
        text = render_incident_report(incident)
        assert "benign" in text

    def test_intrusion_report_names_span_and_ground_truth(self):
        trace = make_trace(np.repeat(np.arange(10), 10))
        incident = incident_from_events(make_events(), trace=trace)
        text = render_incident_report(incident, tampered_spans=((4, 8),))
        assert "INTRUSION" in text
        assert "[3, 6)" in text
        assert "localization correct" in text
        assert "Evidence trajectory" in text

    def test_miss_reported(self):
        trace = make_trace(np.repeat(np.arange(10), 10))
        incident = incident_from_events(make_events(), trace=trace)
        text = render_incident_report(incident, tampered_spans=((8, 9),))
        assert "does **not** overlap" in text


class TestLocalization:
    def test_rows_on_mini_campaign(self, mini_campaign, monkeypatch):
        from repro import attacks as attacks_module
        from repro.attacks.gcode_attacks import SpeedAttack

        monkeypatch.setattr(
            attacks_module, "TABLE_I_ATTACKS",
            lambda: [SpeedAttack(0.95)],
        )
        rows = localization_rows(mini_campaign, channel="ACC")
        assert len(rows) == 1
        row = rows[0]
        assert row["attack"] == "Speed0.95"
        assert row["detected"] is True
        assert row["tampered_spans"]
        lo, hi = row["implicated_span"]
        assert 0 <= lo < hi
        assert row["localized"] is True

    def test_render_table(self):
        rows = [
            {"attack": "Void", "detected": True,
             "implicated_span": (3, 6), "tampered_spans": ((4, 8),),
             "localized": True},
            {"attack": "Fan", "detected": False,
             "implicated_span": None, "tampered_spans": ((0, 2),),
             "localized": None},
        ]
        table = render_localization_table(rows)
        assert "Void" in table and "[3, 6)" in table
        assert "yes" in table and "-" in table
