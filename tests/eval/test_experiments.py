"""Tests for the experiment drivers (on the session mini-campaign)."""

import numpy as np
import pytest

from repro.baselines import GaoIds, MooreIds
from repro.eval import (
    baseline_results,
    fig1_time_noise,
    fig2_unsynced_distances,
    fig10_hdisp_consistency,
    fig11_time_ratio,
    nsync_results,
    transform_signal,
)
from repro.eval.reporting import (
    format_accuracy_ranking,
    format_ids_table,
    format_table,
)
from repro.signals import PAPER_SPECTROGRAMS, Signal


class TestTransform:
    def test_raw_identity(self, mini_campaign):
        sig = mini_campaign.reference.signals["ACC"]
        assert transform_signal(sig, "ACC", "Raw") is sig

    def test_spectro_reduces_rate(self, mini_campaign):
        sig = mini_campaign.reference.signals["ACC"]
        spec = transform_signal(sig, "ACC", "Spectro.")
        assert spec.sample_rate < sig.sample_rate
        assert spec.n_channels > sig.n_channels

    def test_unknown_transform(self, mini_campaign):
        sig = mini_campaign.reference.signals["ACC"]
        with pytest.raises(ValueError):
            transform_signal(sig, "ACC", "Wavelet")


class TestNsyncResults:
    def test_dwm_acc_raw_high_accuracy(self, mini_campaign):
        """The headline result: NSYNC/DWM detects everything on ACC."""
        result = nsync_results(mini_campaign, "ACC", "Raw")
        assert result.overall.fpr <= 0.34  # at most one benign FP out of 3
        assert result.overall.tpr == 1.0
        assert result.overall.accuracy >= 0.8

    def test_submodules_reported(self, mini_campaign):
        result = nsync_results(mini_campaign, "ACC", "Raw")
        assert set(result.submodules) == {
            "c_disp", "h_dist", "v_dist", "duration",
        }

    def test_per_attack_tprs(self, mini_campaign):
        result = nsync_results(mini_campaign, "ACC", "Raw")
        assert set(result.per_attack_tpr) == set(mini_campaign.malicious_test)
        # Timing-heavy attacks must always be caught.
        assert result.per_attack_tpr["Speed0.95"] == 1.0
        assert result.per_attack_tpr["Layer0.3"] == 1.0

    def test_streaming_mode_scores_identically(self, mini_campaign):
        """Both feed modes run the same DetectionEngine — same scores."""
        batch = nsync_results(mini_campaign, "ACC", "Raw", mode="batch")
        stream = nsync_results(
            mini_campaign, "ACC", "Raw", mode="streaming", chunk_s=0.2
        )
        assert stream.overall.accuracy == batch.overall.accuracy
        assert stream.overall.tpr == batch.overall.tpr
        assert stream.overall.fpr == batch.overall.fpr
        assert stream.per_attack_tpr == batch.per_attack_tpr

    def test_unknown_mode_rejected(self, mini_campaign):
        with pytest.raises(ValueError, match="mode"):
            nsync_results(mini_campaign, "ACC", "Raw", mode="replay")


class TestBaselineResults:
    def test_moore_fails_under_time_noise(self, mini_campaign):
        """Paper Fig. 12: no-DSYNC IDSs land near coin-flip accuracy."""
        result = baseline_results(mini_campaign, MooreIds(), "ACC", "Raw")
        assert result.overall.accuracy <= 0.85

    def test_nsync_beats_moore_and_gao(self, mini_campaign):
        nsync = nsync_results(mini_campaign, "ACC", "Raw")
        moore = baseline_results(mini_campaign, MooreIds(), "ACC", "Raw")
        gao = baseline_results(mini_campaign, GaoIds(), "ACC", "Raw")
        assert nsync.overall.accuracy >= moore.overall.accuracy
        assert nsync.overall.accuracy >= gao.overall.accuracy


class TestFigureDrivers:
    def test_fig1_spread_positive(self, mini_campaign):
        out = fig1_time_noise(mini_campaign)
        assert out["spread"] > 0.0
        assert out["durations"].size == 7  # 1 ref + 3 train + 3 test

    def test_fig2_benign_distances_large_without_sync(self, mini_campaign):
        out = fig2_unsynced_distances(mini_campaign, "ACC")
        # The paper's point: unsynced benign distances are comparable to
        # malicious ones (both large).
        assert np.median(out["benign"][3:]) > 0.3
        assert out["benign"].size > 0
        assert out["malicious"].size > 0

    def test_fig10_consistent_shapes(self, mini_campaign):
        out = fig10_hdisp_consistency(
            mini_campaign, channels=("ACC",), transforms=("Raw",)
        )
        assert ("ACC", "Raw") in out
        assert out[("ACC", "Raw")].shape == (50,)

    def test_fig11_dwm_faster_than_reference_dtw(self, mini_campaign):
        out = fig11_time_ratio(mini_campaign, "ACC")
        assert out["dwm_time_ratio"] > 0
        assert out["dtw_time_ratio"] > 0
        # The paper's comparison is against the pure-Python FastDTW.
        assert out["dtw_reference_time_ratio"] > out["dwm_time_ratio"]
        assert out["reference_speedup"] > 1.0


class TestReporting:
    def test_format_table_aligned(self):
        text = format_table(["a", "bb"], [["x", "y"], ["long", "z"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_ids_table(self, mini_campaign):
        result = nsync_results(mini_campaign, "ACC", "Raw")
        text = format_ids_table({"UM3 Raw ACC": result}, title="Table VIII")
        assert "Table VIII" in text
        assert "UM3 Raw ACC" in text
        assert "/" in text

    def test_format_accuracy_ranking(self):
        text = format_accuracy_ranking({"moore": 0.5, "nsync_dwm": 0.99})
        assert text.index("moore") < text.index("nsync_dwm")  # sorted ascending

    def test_render_overhead_table(self):
        from repro.eval import render_overhead_table

        snapshot = {
            "spans": {
                "repro.eval.engine.execute": {
                    "count": 1, "errors": 0, "wall_total_s": 3.0,
                    "wall_min_s": 3.0, "wall_max_s": 3.0, "cpu_total_s": 2.5,
                },
                "repro.eval.engine.execute/simulate": {
                    "count": 8, "errors": 0, "wall_total_s": 2.0,
                    "wall_min_s": 0.1, "wall_max_s": 0.5, "cpu_total_s": 1.9,
                },
                "repro.core.pipeline.analyze": {
                    "count": 4, "errors": 0, "wall_total_s": 1.0,
                    "wall_min_s": 0.2, "wall_max_s": 0.3, "cpu_total_s": 0.9,
                },
            }
        }
        text = render_overhead_table(snapshot)
        lines = text.splitlines()
        # One row per span plus header + separator; children indented.
        assert len(lines) == 5
        assert "repro.eval.engine.execute" in text
        assert "  simulate" in text
        # Top-level shares: 3.0 of 4.0 and 1.0 of 4.0 total wall.
        assert "75.0%" in text and "25.0%" in text

    def test_render_overhead_table_empty(self):
        from repro.eval import render_overhead_table

        assert "no spans recorded" in render_overhead_table({"spans": {}})
        assert "no spans recorded" in render_overhead_table({})
