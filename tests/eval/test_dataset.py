"""Unit tests for campaign generation."""

import numpy as np
import pytest

from repro.eval import default_setup, generate_campaign
from repro.printer import ROSTOCK_MAX_V3, ULTIMAKER3


class TestDefaultSetup:
    def test_um3(self):
        setup = default_setup("UM3")
        assert setup.machine is ULTIMAKER3
        assert setup.center == (110.0, 110.0)
        assert setup.dwm_params.t_win == 4.0

    def test_rm3(self):
        setup = default_setup("RM3")
        assert setup.machine is ROSTOCK_MAX_V3
        assert setup.center == (0.0, 0.0)
        assert setup.dwm_params.t_win == 1.0
        # eta raised per the paper's convergence procedure (Section VI-C)
        assert setup.dwm_params.eta == pytest.approx(0.3)

    def test_unknown_printer(self):
        with pytest.raises(ValueError, match="unknown printer"):
            default_setup("Prusa")

    def test_job_slices_gear(self):
        job = default_setup("UM3", object_height=0.4).job()
        assert len(job.program) > 10


class TestCampaign(object):
    def test_structure(self, mini_campaign):
        assert mini_campaign.reference.label == "Reference"
        assert len(mini_campaign.training) == 3
        assert len(mini_campaign.benign_test) == 3
        assert set(mini_campaign.malicious_test) == {
            "Void", "InfillGrid", "Speed0.95", "Layer0.3", "Scale0.95",
        }
        assert mini_campaign.n_malicious_test == 5

    def test_channels(self, mini_campaign):
        assert mini_campaign.channels == ("ACC",)
        for run in mini_campaign.training:
            assert set(run.signals) == {"ACC"}

    def test_labels(self, mini_campaign):
        assert all(not r.is_malicious for r in mini_campaign.benign_test)
        for name, runs in mini_campaign.malicious_test.items():
            assert all(r.is_malicious for r in runs)
            assert all(r.label == name for r in runs)

    def test_all_malicious_flattens(self, mini_campaign):
        assert len(mini_campaign.all_malicious()) == 5

    def test_time_noise_varies_durations(self, mini_campaign):
        durations = [r.duration for r in mini_campaign.training]
        durations += [r.duration for r in mini_campaign.benign_test]
        assert len(set(durations)) > 1

    def test_layer_times_recorded(self, mini_campaign):
        # 0.4 mm object at 0.2 mm layers -> 2 layers -> 1 layer change
        assert len(mini_campaign.reference.layer_times) == 1

    def test_reproducible_with_same_seed(self):
        setup = default_setup("UM3", object_height=0.4)
        kwargs = dict(
            channels=("ACC",), n_train=1, n_benign_test=1, n_attack_runs=1,
            seed=7,
        )
        a = generate_campaign(setup, **kwargs)
        b = generate_campaign(setup, **kwargs)
        assert np.allclose(
            a.reference.signals["ACC"].data, b.reference.signals["ACC"].data
        )

    def test_different_seeds_differ(self):
        setup = default_setup("UM3", object_height=0.4)
        kwargs = dict(
            channels=("ACC",), n_train=0, n_benign_test=0, n_attack_runs=0,
        )
        a = generate_campaign(setup, seed=1, **kwargs)
        b = generate_campaign(setup, seed=2, **kwargs)
        assert not np.allclose(
            a.reference.signals["ACC"].data[:1000],
            b.reference.signals["ACC"].data[:1000],
        )


class TestReferenceFromGcode:
    def test_simulated_reference_usable_for_detection(self):
        """Paper §IV: the reference may be simulated from the G-code file.
        An IDS trained on physical (noisy) runs against that simulated
        reference must still accept benign prints and catch an attack."""
        import numpy as np

        from repro.attacks import SpeedAttack
        from repro.core import NsyncIds
        from repro.eval import default_setup, reference_from_gcode, run_process
        from repro.sync import DwmSynchronizer

        setup = default_setup("UM3", object_height=0.4)
        job = setup.job()
        reference = reference_from_gcode(setup, job.program, "ACC")
        assert reference.n_samples > 0

        ids = NsyncIds(reference, DwmSynchronizer(setup.dwm_params))
        training = [
            run_process(setup, job, "Benign", False, seed, channels=["ACC"])
            for seed in range(1, 7)
        ]
        ids.fit([run.signals["ACC"] for run in training], r=0.5)

        benign = run_process(setup, job, "Benign", False, 50, channels=["ACC"])
        assert not ids.detect(benign.signals["ACC"]).is_intrusion

        attacked_job = SpeedAttack(factor=0.9).apply(job)
        attacked = run_process(
            setup, attacked_job, "Speed", True, 60, channels=["ACC"]
        )
        assert ids.detect(attacked.signals["ACC"]).is_intrusion
