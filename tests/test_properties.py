"""Cross-cutting property-based tests (hypothesis) for core invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.printer.gcode import GcodeCommand, GcodeProgram, parse_line
from repro.signals import Signal, trailing_min_filter
from repro.slicer import clip_segments, square_outline
from repro.sync import DwmParams, DwmSynchronizer


# ---------------------------------------------------------------------------
# DWM invariants
# ---------------------------------------------------------------------------
def textured(n, seed):
    rng = np.random.default_rng(seed)
    base = np.cumsum(rng.standard_normal(n))
    kernel = np.exp(-np.arange(10) / 3.0)
    return np.convolve(base, kernel, mode="same")


class TestDwmInvariants:
    @given(
        t_win=st.floats(0.5, 2.0),
        ext_frac=st.floats(0.2, 1.0),
        eta=st.floats(0.0, 0.5),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=15, deadline=None)
    def test_self_synchronization_is_identity(self, t_win, ext_frac, eta, seed):
        """For ANY parameters, synchronizing a signal against itself yields
        zero displacement and perfect scores."""
        params = DwmParams(
            t_win=t_win,
            t_hop=t_win / 2,
            t_ext=t_win * ext_frac,
            t_sigma=t_win * ext_frac / 2,
            eta=eta,
        )
        sig = Signal(textured(3000, seed), 100.0)
        sync = DwmSynchronizer(params).synchronize(sig, sig)
        assume(sync.n_indexes > 0)
        assert np.allclose(sync.h_disp, 0.0)
        assert np.all(sync.scores > 0.999)

    @given(shift=st.integers(5, 40), seed=st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_constant_shift_recovered(self, shift, seed):
        params = DwmParams(t_win=1.0, t_hop=0.5, t_ext=0.6, t_sigma=0.3, eta=0.2)
        data = textured(3100, seed)
        ref = Signal(data[:3000], 100.0)
        obs = Signal(data[shift : 3000 + shift], 100.0)
        sync = DwmSynchronizer(params).synchronize(obs, ref)
        assume(sync.n_indexes > 4)
        assert np.median(sync.h_disp[2:]) == pytest.approx(shift, abs=2)

    @given(gain=st.floats(0.1, 10.0), offset=st.floats(-5.0, 5.0))
    @settings(max_examples=15, deadline=None)
    def test_gain_and_offset_invariance(self, gain, offset):
        """Correlation-based DWM must ignore affine amplitude changes."""
        params = DwmParams(t_win=1.0, t_hop=0.5, t_ext=0.5, t_sigma=0.25)
        base = textured(2500, 7)
        ref = Signal(base, 100.0)
        obs = Signal(gain * base + offset, 100.0)
        sync = DwmSynchronizer(params).synchronize(obs, ref)
        assert np.allclose(sync.h_disp, 0.0)


# ---------------------------------------------------------------------------
# G-code roundtrip
# ---------------------------------------------------------------------------
gcode_values = st.floats(-500.0, 500.0).map(lambda v: round(v, 4))


@st.composite
def gcode_commands(draw):
    code = draw(st.sampled_from(["G0", "G1", "G4", "G28", "G92", "M104", "M106"]))
    keys = draw(
        st.lists(
            st.sampled_from(list("XYZEFS")), unique=True, min_size=0, max_size=4
        )
    )
    params = {k: draw(gcode_values) for k in keys}
    return GcodeCommand(code, params)


class TestGcodeRoundtrip:
    @given(command=gcode_commands())
    @settings(max_examples=80, deadline=None)
    def test_serialize_parse_roundtrip(self, command):
        parsed = parse_line(command.to_line())
        assert parsed.code == command.code
        for key, value in command.params.items():
            assert parsed.params[key] == pytest.approx(value, abs=1e-9)

    @given(commands=st.lists(gcode_commands(), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_program_text_roundtrip(self, commands):
        program = GcodeProgram(commands)
        reparsed = GcodeProgram.from_text(program.to_text())
        assert len(reparsed) == len(program)
        assert all(a.code == b.code for a, b in zip(reparsed, program))


# ---------------------------------------------------------------------------
# Geometry
# ---------------------------------------------------------------------------
class TestClipProperties:
    @given(
        y=st.floats(-10.0, 10.0),
        x0=st.floats(-20.0, -11.0),
        x1=st.floats(11.0, 20.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_horizontal_clip_against_square(self, y, x0, x1):
        """Clipping a long horizontal line against a square leaves exactly
        the chord inside (or nothing when the line misses)."""
        square = square_outline(10.0)  # spans [-5, 5]^2
        segs = clip_segments(square, np.array([x0, y]), np.array([x1, y]))
        total = sum(np.linalg.norm(b - a) for a, b in segs)
        if abs(y) < 5.0:
            assert total == pytest.approx(10.0, abs=1e-6)
        elif abs(y) > 5.0:
            assert total == pytest.approx(0.0, abs=1e-6)

    @given(
        angle=st.floats(0.0, 2 * np.pi),
        y=st.floats(-4.0, 4.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_clipped_parts_lie_inside(self, angle, y):
        from repro.slicer import point_in_polygon

        square = square_outline(10.0)
        direction = np.array([np.cos(angle), np.sin(angle)])
        p0 = np.array([0.0, y]) - 20.0 * direction
        p1 = np.array([0.0, y]) + 20.0 * direction
        for a, b in clip_segments(square, p0, p1):
            mid = (a + b) / 2
            assert point_in_polygon(square, mid)


# ---------------------------------------------------------------------------
# Filters
# ---------------------------------------------------------------------------
class TestFilterProperties:
    @given(
        x=st.lists(st.floats(0, 1e3, allow_nan=False), min_size=1, max_size=30),
        w=st.integers(1, 6),
    )
    @settings(max_examples=40, deadline=None)
    def test_min_filter_monotone_under_repetition(self, x, w):
        """Re-filtering can only lower values (min is contracting)."""
        x = np.asarray(x)
        once = trailing_min_filter(x, w)
        twice = trailing_min_filter(once, w)
        assert np.all(twice <= once + 1e-12)

    @given(
        x=st.lists(st.floats(0, 1e3, allow_nan=False), min_size=1, max_size=30),
        y=st.lists(st.floats(0, 1e3, allow_nan=False), min_size=1, max_size=30),
    )
    @settings(max_examples=40, deadline=None)
    def test_min_filter_monotone_in_input(self, x, y):
        """x <= y pointwise implies filter(x) <= filter(y) pointwise."""
        n = min(len(x), len(y))
        a = np.minimum(np.asarray(x[:n]), np.asarray(y[:n]))
        b = np.asarray(y[:n])
        fa = trailing_min_filter(a, 3)
        fb = trailing_min_filter(b, 3)
        assert np.all(fa <= fb + 1e-12)


# ---------------------------------------------------------------------------
# Sensor quantization
# ---------------------------------------------------------------------------
class TestQuantizationProperties:
    @given(bits=st.integers(3, 12), seed=st.integers(0, 20))
    @settings(max_examples=20, deadline=None)
    def test_quantization_error_bounded_by_step(self, bits, seed, tiny_trace):
        from repro.sensors import Accelerometer, SensorConfig

        clean_cfg = SensorConfig(
            sample_rate=200.0, bits=32, noise_level=0.0, gain_sigma=0.0
        )
        coarse_cfg = SensorConfig(
            sample_rate=200.0, bits=bits, noise_level=0.0, gain_sigma=0.0
        )
        rng1 = np.random.default_rng(seed)
        rng2 = np.random.default_rng(seed)
        fine = Accelerometer(clean_cfg).sense(tiny_trace, rng1)
        coarse = Accelerometer(coarse_cfg).sense(tiny_trace, rng2)
        err = np.abs(fine.data - coarse.data)
        # Sensor rule: per-channel step = 4 * floored_std / 2^(bits-1) where
        # the floor ties quiet channels to the sensor's full range (a real
        # shared-range ADC behaves the same way); error <= step/2.
        std = fine.data.std(axis=0)
        floor = 1e-3 * max(float(np.abs(fine.data).max()), 1.0)
        step = 4.0 * np.maximum(std, floor) / 2 ** (bits - 1)
        assert np.all(err <= step * 0.51 + 1e-9)


# ---------------------------------------------------------------------------
# Graceful-degradation invariants (repro.core.health + repro.faults)
# ---------------------------------------------------------------------------
_ROBUSTNESS_IDS = None


def _robustness_ids():
    """A fitted IDS shared across examples (fitting dominates runtime)."""
    global _ROBUSTNESS_IDS
    if _ROBUSTNESS_IDS is None:
        from repro.core import NsyncIds

        params = DwmParams(t_win=1.0, t_hop=0.5, t_ext=0.5, t_sigma=0.25, eta=0.2)
        ids = NsyncIds(
            Signal(textured(3000, 900), 100.0), DwmSynchronizer(params)
        )
        ids.fit(
            [Signal(textured(3000, 900 + s), 100.0) for s in range(1, 5)],
            r=0.3,
        )
        _ROBUSTNESS_IDS = ids
    return _ROBUSTNESS_IDS


def _fault_strategy():
    from repro.faults import (
        ChannelDropout,
        ChunkDuplication,
        ChunkTruncation,
        DaqDisconnect,
        NanBurst,
        SampleRateSkew,
        Saturation,
    )

    start = st.floats(0.0, 20.0)
    duration = st.floats(0.1, 8.0)
    return st.one_of(
        st.builds(ChannelDropout, start_s=start, duration_s=duration),
        st.builds(
            NanBurst,
            start_s=start,
            duration_s=duration,
            fraction=st.floats(0.05, 1.0),
        ),
        st.builds(Saturation, limit=st.floats(0.1, 50.0)),
        st.builds(SampleRateSkew, factor=st.floats(0.9, 1.1)),
        st.builds(ChunkDuplication, start_s=start, duration_s=duration),
        st.builds(ChunkTruncation, start_s=start, duration_s=duration),
        st.builds(
            DaqDisconnect,
            start_s=start,
            duration_s=duration,
            mode=st.sampled_from(["nan", "zeros", "drop"]),
        ),
    )


class TestGracefulDegradation:
    @given(fault=_fault_strategy(), seed=st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_detect_survives_any_fault(self, fault, seed):
        """For ANY fault model, detect() neither raises nor leaks
        non-finite evidence into the threshold comparisons."""
        ids = _robustness_ids()
        probe = Signal(textured(3000, 950), 100.0)
        faulted = fault.apply(probe, np.random.default_rng(seed))
        assume(faulted.n_samples >= 200)  # enough samples for one window
        verdict = ids.detect(faulted)
        f = verdict.features
        assert np.isfinite(f.c_disp).all()
        assert np.isfinite(f.h_dist_filtered).all()
        assert np.isfinite(f.v_dist_filtered).all()
        assert np.isfinite(f.duration_mismatch)

    @given(fault=_fault_strategy(), seed=st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_streaming_survives_any_fault(self, fault, seed):
        """The streaming detector holds the same contract chunk-by-chunk."""
        from repro.core import StreamingNsyncIds

        ids = _robustness_ids()
        params = DwmParams(t_win=1.0, t_hop=0.5, t_ext=0.5, t_sigma=0.25, eta=0.2)
        stream = StreamingNsyncIds(
            ids.reference, params, ids.thresholds
        )
        data = textured(3000, 950)
        chunks = [data[i : i + 250] for i in range(0, data.size, 250)]
        rng = np.random.default_rng(seed)
        for chunk in fault.apply_chunks(chunks, 100.0, rng):
            stream.push(chunk)
        ev = stream.evidence()
        assert np.isfinite(ev["h_disp"]).all()
        assert np.isfinite(ev["h_dist_filtered"]).all()
        assert np.isfinite(ev["v_dist_filtered"]).all()
        assert np.isfinite(ev["c_disp"])
