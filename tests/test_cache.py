"""Tests for the content-addressed run cache (repro.cache)."""

from __future__ import annotations

import multiprocessing
import os
import unittest.mock
from dataclasses import replace

import numpy as np
import pytest

from repro.cache import (
    CACHE_ENV_VAR,
    RunCache,
    default_cache_dir,
    describe,
    resolve_cache,
    run_cache_key,
)
from repro.printer import TimeNoiseModel, ULTIMAKER3, ROSTOCK_MAX_V3
from repro.sensors import default_daq
from repro.signals import Signal


@pytest.fixture(scope="module")
def daq():
    return default_daq()


class TestKey:
    def test_stable_across_calls(self, tiny_job, daq):
        key_a = run_cache_key(
            tiny_job.program, ULTIMAKER3, TimeNoiseModel(), daq, ("ACC",), 3
        )
        key_b = run_cache_key(
            tiny_job.program, ULTIMAKER3, TimeNoiseModel(), daq, ("ACC",), 3
        )
        assert key_a == key_b
        assert len(key_a) == 64  # sha256 hex

    def test_seed_changes_key(self, tiny_job, daq):
        args = (tiny_job.program, ULTIMAKER3, TimeNoiseModel(), daq, ("ACC",))
        assert run_cache_key(*args, 3) != run_cache_key(*args, 4)

    def test_noise_params_change_key(self, tiny_job, daq):
        base = TimeNoiseModel()
        tweaked = replace(base, rate_walk_std=base.rate_walk_std * 2)
        key_a = run_cache_key(
            tiny_job.program, ULTIMAKER3, base, daq, ("ACC",), 3
        )
        key_b = run_cache_key(
            tiny_job.program, ULTIMAKER3, tweaked, daq, ("ACC",), 3
        )
        assert key_a != key_b

    def test_machine_and_channels_change_key(self, tiny_job, daq):
        noise = TimeNoiseModel()
        key = run_cache_key(
            tiny_job.program, ULTIMAKER3, noise, daq, ("ACC",), 3
        )
        assert key != run_cache_key(
            tiny_job.program, ROSTOCK_MAX_V3, noise, daq, ("ACC",), 3
        )
        assert key != run_cache_key(
            tiny_job.program, ULTIMAKER3, noise, daq, ("ACC", "AUD"), 3
        )

    def test_program_text_changes_key(self, tiny_job, daq):
        from repro.attacks import TABLE_I_ATTACKS

        attacked = TABLE_I_ATTACKS()[0].apply(tiny_job)
        noise = TimeNoiseModel()
        assert run_cache_key(
            tiny_job.program, ULTIMAKER3, noise, daq, ("ACC",), 3
        ) != run_cache_key(
            attacked.program, ULTIMAKER3, noise, daq, ("ACC",), 3
        )


class TestDescribe:
    def test_dataclass_fields_surface(self):
        doc = describe(TimeNoiseModel())
        assert doc["__class__"] == "TimeNoiseModel"
        assert doc["rate_walk_std"] == TimeNoiseModel().rate_walk_std

    def test_nested_machine_includes_kinematics(self):
        doc = describe(ROSTOCK_MAX_V3)
        assert doc["kinematics"]["__class__"] == "DeltaKinematics"

    def test_array_digest(self):
        a = describe(np.arange(4.0))
        b = describe(np.arange(4.0))
        c = describe(np.arange(5.0))
        assert a == b and a != c


class TestRunCache:
    def _payload(self):
        rng = np.random.default_rng(0)
        signals = {
            "ACC": Signal(rng.standard_normal((50, 3)), 400.0,
                          channel_names=["ax", "ay", "az"]),
            "AUD": Signal(rng.standard_normal(80), 2000.0),
        }
        return signals, (0.5, 1.25), 2.0

    def test_round_trip(self, tmp_path):
        cache = RunCache(tmp_path)
        signals, layer_times, duration = self._payload()
        key = "ab" + "0" * 62
        cache.put(key, signals, layer_times, duration)
        assert key in cache
        got_signals, got_layers, got_duration = cache.get(key)
        assert got_layers == layer_times
        assert got_duration == duration
        assert list(got_signals) == list(signals)
        for cid in signals:
            assert np.array_equal(got_signals[cid].data, signals[cid].data)
            assert got_signals[cid].sample_rate == signals[cid].sample_rate
        assert got_signals["ACC"].channel_names == ("ax", "ay", "az")
        assert cache.stats == {"hits": 1, "misses": 0}

    def test_miss_counts(self, tmp_path):
        cache = RunCache(tmp_path)
        assert cache.get("ff" + "0" * 62) is None
        assert cache.stats == {"hits": 0, "misses": 1}

    def test_corrupt_entry_behaves_like_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        key = "cd" + "0" * 62
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not an npz")
        assert cache.get(key) is None
        assert not path.exists()

    def test_clear(self, tmp_path):
        cache = RunCache(tmp_path)
        signals, layers, duration = self._payload()
        for i in range(3):
            cache.put(f"{i:02d}" + "0" * 62, signals, layers, duration)
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_evict_by_count(self, tmp_path):
        cache = RunCache(tmp_path)
        signals, layers, duration = self._payload()
        for i in range(4):
            cache.put(f"{i:02d}" + "0" * 62, signals, layers, duration)
        removed = cache.evict(max_entries=2)
        assert removed == 2
        assert len(cache) == 2

    def test_evict_by_bytes(self, tmp_path):
        cache = RunCache(tmp_path)
        signals, layers, duration = self._payload()
        cache.put("aa" + "0" * 62, signals, layers, duration)
        one_entry = cache.total_bytes()
        cache.put("bb" + "0" * 62, signals, layers, duration)
        assert cache.evict(max_bytes=one_entry) == 1
        assert len(cache) == 1

    def test_env_var_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "env-cache"))
        assert default_cache_dir() == tmp_path / "env-cache"
        assert RunCache().directory == tmp_path / "env-cache"

    def test_resolve(self, tmp_path):
        assert resolve_cache(None) is None
        cache = RunCache(tmp_path)
        assert resolve_cache(cache) is cache
        assert resolve_cache(str(tmp_path)).directory == tmp_path

    def test_rejects_file_as_directory(self, tmp_path):
        bogus = tmp_path / "notadir"
        bogus.touch()
        with pytest.raises(ValueError, match="not a directory"):
            RunCache(bogus)


def _hammer_put(directory, key, n_rounds):
    """Worker for the concurrent-put stress test (module-level: picklable)."""
    rng = np.random.default_rng(os.getpid())
    cache = RunCache(directory)
    for _ in range(n_rounds):
        signals = {"ACC": Signal(rng.standard_normal((40, 3)), 400.0)}
        cache.put(key, signals, (0.5,), 1.0)


class TestConcurrentCache:
    KEY = "ee" + "0" * 62

    def test_two_process_put_same_key_stays_consistent(self, tmp_path):
        """Two writers hammer one key while a reader polls it.

        Every read must come back as either a miss or a complete payload —
        never a torn archive — and no staging tmp files may survive.
        """
        procs = [
            multiprocessing.Process(
                target=_hammer_put, args=(str(tmp_path), self.KEY, 20)
            )
            for _ in range(2)
        ]
        for p in procs:
            p.start()
        reader = RunCache(tmp_path)
        try:
            while any(p.is_alive() for p in procs):
                payload = reader.get(self.KEY)
                if payload is not None:
                    signals, layer_times, duration = payload
                    assert signals["ACC"].data.shape == (40, 3)
                    assert duration == 1.0
        finally:
            for p in procs:
                p.join()
        assert all(p.exitcode == 0 for p in procs)
        final = reader.get(self.KEY)
        assert final is not None
        assert list(tmp_path.glob("**/*.tmp.npz")) == []

    def test_tmp_staging_names_are_per_writer_unique(self, tmp_path):
        cache = RunCache(tmp_path)
        seen = set()

        real_replace = os.replace

        def spy_replace(src, dst):
            seen.add(str(src))
            return real_replace(src, dst)

        signals = {"ACC": Signal(np.zeros((4, 3)), 400.0)}
        with unittest.mock.patch("repro.cache.os.replace", spy_replace):
            cache.put(self.KEY, signals, (0.5,), 1.0)
            cache.put(self.KEY, signals, (0.5,), 1.0)
        assert len(seen) == 2  # distinct tmp path per write, same key
        for name in seen:
            assert f".{os.getpid()}." in name

    def test_tmp_files_excluded_from_entries(self, tmp_path):
        cache = RunCache(tmp_path)
        signals = {"ACC": Signal(np.zeros((4, 3)), 400.0)}
        cache.put(self.KEY, signals, (0.5,), 1.0)
        straggler = tmp_path / self.KEY[:2] / f"{self.KEY}.999.7.tmp.npz"
        straggler.write_bytes(b"partial write")
        assert len(cache) == 1
        assert cache.evict(max_entries=5) == 0
        assert cache.get(self.KEY) is not None


class TestScanRaces:
    def _cache_with_entries(self, tmp_path, n=3):
        cache = RunCache(tmp_path)
        signals = {"ACC": Signal(np.zeros((10, 3)), 400.0)}
        for i in range(n):
            cache.put(f"{i:02d}" + "0" * 62, signals, (0.5,), 1.0)
        return cache

    def _vanish_mid_scan(self, cache, monkeypatch):
        """Make the first scanned entry disappear between glob and stat."""
        real_entries = RunCache._entries

        def racy_entries(self_cache):
            entries = list(real_entries(self_cache))
            if entries:
                entries[0].unlink(missing_ok=True)
            return entries

        monkeypatch.setattr(RunCache, "_entries", racy_entries)

    def test_total_bytes_tolerates_vanished_entry(self, tmp_path, monkeypatch):
        cache = self._cache_with_entries(tmp_path)
        baseline = cache.total_bytes()
        self._vanish_mid_scan(cache, monkeypatch)
        assert 0 < cache.total_bytes() < baseline

    def test_evict_tolerates_vanished_entry(self, tmp_path, monkeypatch):
        cache = self._cache_with_entries(tmp_path)
        self._vanish_mid_scan(cache, monkeypatch)
        # 3 scanned, 1 vanished mid-scan: only the survivors are evictable.
        assert cache.evict(max_entries=0) == 2
        monkeypatch.undo()
        assert len(cache) == 0


class TestGetLazy:
    def test_round_trip(self, tmp_path):
        rng = np.random.default_rng(5)
        cache = RunCache(tmp_path)
        key = "ab" + "1" * 62
        signals = {"ACC": Signal(rng.standard_normal((50, 3)), 400.0)}
        cache.put(key, signals, (0.5, 1.0), 1.5)
        handle = cache.get_lazy(key)
        assert handle is not None
        with handle:
            assert handle.channels == ("ACC",)
            assert handle.layer_times == (0.5, 1.0)
            assert handle.duration == 1.5
            assert np.array_equal(
                handle.signal("ACC").data, signals["ACC"].data
            )
        assert cache.stats == {"hits": 1, "misses": 0}

    def test_miss_returns_none_and_counts(self, tmp_path):
        cache = RunCache(tmp_path)
        assert cache.get_lazy("ff" + "1" * 62) is None
        assert cache.stats == {"hits": 0, "misses": 1}

    def test_corrupt_entry_behaves_like_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        key = "cd" + "1" * 62
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not an npz")
        assert cache.get_lazy(key) is None
        assert not path.exists()
