"""Tests for the content-addressed run cache (repro.cache)."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.cache import (
    CACHE_ENV_VAR,
    RunCache,
    default_cache_dir,
    describe,
    resolve_cache,
    run_cache_key,
)
from repro.printer import TimeNoiseModel, ULTIMAKER3, ROSTOCK_MAX_V3
from repro.sensors import default_daq
from repro.signals import Signal


@pytest.fixture(scope="module")
def daq():
    return default_daq()


class TestKey:
    def test_stable_across_calls(self, tiny_job, daq):
        key_a = run_cache_key(
            tiny_job.program, ULTIMAKER3, TimeNoiseModel(), daq, ("ACC",), 3
        )
        key_b = run_cache_key(
            tiny_job.program, ULTIMAKER3, TimeNoiseModel(), daq, ("ACC",), 3
        )
        assert key_a == key_b
        assert len(key_a) == 64  # sha256 hex

    def test_seed_changes_key(self, tiny_job, daq):
        args = (tiny_job.program, ULTIMAKER3, TimeNoiseModel(), daq, ("ACC",))
        assert run_cache_key(*args, 3) != run_cache_key(*args, 4)

    def test_noise_params_change_key(self, tiny_job, daq):
        base = TimeNoiseModel()
        tweaked = replace(base, rate_walk_std=base.rate_walk_std * 2)
        key_a = run_cache_key(
            tiny_job.program, ULTIMAKER3, base, daq, ("ACC",), 3
        )
        key_b = run_cache_key(
            tiny_job.program, ULTIMAKER3, tweaked, daq, ("ACC",), 3
        )
        assert key_a != key_b

    def test_machine_and_channels_change_key(self, tiny_job, daq):
        noise = TimeNoiseModel()
        key = run_cache_key(
            tiny_job.program, ULTIMAKER3, noise, daq, ("ACC",), 3
        )
        assert key != run_cache_key(
            tiny_job.program, ROSTOCK_MAX_V3, noise, daq, ("ACC",), 3
        )
        assert key != run_cache_key(
            tiny_job.program, ULTIMAKER3, noise, daq, ("ACC", "AUD"), 3
        )

    def test_program_text_changes_key(self, tiny_job, daq):
        from repro.attacks import TABLE_I_ATTACKS

        attacked = TABLE_I_ATTACKS()[0].apply(tiny_job)
        noise = TimeNoiseModel()
        assert run_cache_key(
            tiny_job.program, ULTIMAKER3, noise, daq, ("ACC",), 3
        ) != run_cache_key(
            attacked.program, ULTIMAKER3, noise, daq, ("ACC",), 3
        )


class TestDescribe:
    def test_dataclass_fields_surface(self):
        doc = describe(TimeNoiseModel())
        assert doc["__class__"] == "TimeNoiseModel"
        assert doc["rate_walk_std"] == TimeNoiseModel().rate_walk_std

    def test_nested_machine_includes_kinematics(self):
        doc = describe(ROSTOCK_MAX_V3)
        assert doc["kinematics"]["__class__"] == "DeltaKinematics"

    def test_array_digest(self):
        a = describe(np.arange(4.0))
        b = describe(np.arange(4.0))
        c = describe(np.arange(5.0))
        assert a == b and a != c


class TestRunCache:
    def _payload(self):
        rng = np.random.default_rng(0)
        signals = {
            "ACC": Signal(rng.standard_normal((50, 3)), 400.0,
                          channel_names=["ax", "ay", "az"]),
            "AUD": Signal(rng.standard_normal(80), 2000.0),
        }
        return signals, (0.5, 1.25), 2.0

    def test_round_trip(self, tmp_path):
        cache = RunCache(tmp_path)
        signals, layer_times, duration = self._payload()
        key = "ab" + "0" * 62
        cache.put(key, signals, layer_times, duration)
        assert key in cache
        got_signals, got_layers, got_duration = cache.get(key)
        assert got_layers == layer_times
        assert got_duration == duration
        assert list(got_signals) == list(signals)
        for cid in signals:
            assert np.array_equal(got_signals[cid].data, signals[cid].data)
            assert got_signals[cid].sample_rate == signals[cid].sample_rate
        assert got_signals["ACC"].channel_names == ("ax", "ay", "az")
        assert cache.stats == {"hits": 1, "misses": 0}

    def test_miss_counts(self, tmp_path):
        cache = RunCache(tmp_path)
        assert cache.get("ff" + "0" * 62) is None
        assert cache.stats == {"hits": 0, "misses": 1}

    def test_corrupt_entry_behaves_like_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        key = "cd" + "0" * 62
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not an npz")
        assert cache.get(key) is None
        assert not path.exists()

    def test_clear(self, tmp_path):
        cache = RunCache(tmp_path)
        signals, layers, duration = self._payload()
        for i in range(3):
            cache.put(f"{i:02d}" + "0" * 62, signals, layers, duration)
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_evict_by_count(self, tmp_path):
        cache = RunCache(tmp_path)
        signals, layers, duration = self._payload()
        for i in range(4):
            cache.put(f"{i:02d}" + "0" * 62, signals, layers, duration)
        removed = cache.evict(max_entries=2)
        assert removed == 2
        assert len(cache) == 2

    def test_evict_by_bytes(self, tmp_path):
        cache = RunCache(tmp_path)
        signals, layers, duration = self._payload()
        cache.put("aa" + "0" * 62, signals, layers, duration)
        one_entry = cache.total_bytes()
        cache.put("bb" + "0" * 62, signals, layers, duration)
        assert cache.evict(max_bytes=one_entry) == 1
        assert len(cache) == 1

    def test_env_var_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "env-cache"))
        assert default_cache_dir() == tmp_path / "env-cache"
        assert RunCache().directory == tmp_path / "env-cache"

    def test_resolve(self, tmp_path):
        assert resolve_cache(None) is None
        cache = RunCache(tmp_path)
        assert resolve_cache(cache) is cache
        assert resolve_cache(str(tmp_path)).directory == tmp_path

    def test_rejects_file_as_directory(self, tmp_path):
        bogus = tmp_path / "notadir"
        bogus.touch()
        with pytest.raises(ValueError, match="not a directory"):
            RunCache(bogus)
