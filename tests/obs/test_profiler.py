"""Sampling profiler: folding, exports, singleton, env configuration."""

import json
import threading
import time

import pytest

from repro.obs import profiler
from repro.obs.profiler import (
    DEFAULT_INTERVAL_S,
    NULL_PROFILER,
    NullProfiler,
    Profiler,
)


class TestProfiler:
    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            Profiler(interval_s=0.0)

    def test_sample_once_folds_this_thread(self):
        prof = Profiler()
        assert prof.sample_once() >= 1
        table = prof.stacks()
        assert prof.samples == sum(table.values())
        # Our own call chain ends in sample_once.
        own = [s for s in table if s[-1].endswith(".sample_once")]
        assert own, table
        # Stacks are root -> leaf: the leaf frame is last.
        assert all(isinstance(k, tuple) for k in table)

    def test_sample_once_respects_exclude(self):
        prof = Profiler()
        n_all = prof.sample_once()
        n_none = prof.sample_once(
            exclude=set(t.ident for t in threading.enumerate())
        )
        assert n_all >= 1
        # Non-enumerable dummy threads may still appear, but excluding
        # every known thread must sample strictly fewer stacks.
        assert n_none < n_all or n_none == 0

    def test_collapsed_format(self):
        prof = Profiler()
        prof.sample_once()
        prof.sample_once()
        text = prof.collapsed()
        assert text.endswith("\n")
        lines = text.strip().splitlines()
        assert lines
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert int(count) >= 1
            assert ";" in stack or "." in stack
        # Sorted by descending count.
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts, reverse=True)

    def test_report_empty_and_populated(self):
        prof = Profiler()
        assert "no samples" in prof.report()
        prof.sample_once()
        report = prof.report(top=3)
        assert "self%" in report and "cum%" in report
        assert f"{prof.samples} samples" in report

    def test_export_collapsed(self, tmp_path):
        prof = Profiler()
        prof.sample_once()
        out = prof.export_collapsed(tmp_path / "sub" / "prof.folded")
        assert out.exists()
        assert out.read_text() == prof.collapsed()

    def test_chrome_trace_document(self, tmp_path):
        prof = Profiler(interval_s=0.005)
        prof.sample_once()
        doc = prof.chrome_trace()
        assert doc["otherData"]["producer"] == "repro.obs.profiler"
        assert doc["otherData"]["intervalMs"] == 5.0
        events = doc["traceEvents"]
        assert events
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] > 0
            assert ";".join([event["name"]]) in event["args"]["stack"]
        # Events tile the timeline back to back.
        cursor = 0.0
        for event in events:
            assert event["ts"] == pytest.approx(cursor)
            cursor += event["dur"]
        out = prof.export_chrome_trace(tmp_path / "trace.json")
        assert json.loads(out.read_text())["traceEvents"]

    def test_timer_thread_collects_samples(self):
        prof = Profiler(interval_s=0.002).start()
        assert prof.running
        assert prof.start() is prof  # idempotent
        deadline = time.monotonic() + 1.0
        while prof.samples == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        prof.stop()
        assert not prof.running
        assert prof.samples >= 1
        prof.stop()  # idempotent


class TestNullProfiler:
    def test_inert_surface(self):
        null = NullProfiler()
        assert null.start() is null
        assert null.stop() is null
        assert null.sample_once() == 0
        assert null.stacks() == {}
        assert null.collapsed() == ""
        assert "disabled" in null.report()
        assert null.chrome_trace()["traceEvents"] == []
        assert not null.running


class TestSingleton:
    def test_enable_disable_cycle(self):
        assert not profiler.enabled()
        assert profiler.profiler() is NULL_PROFILER
        assert profiler.active() is None
        prof = profiler.enable(interval_s=0.005)
        assert profiler.enabled()
        assert profiler.profiler() is prof
        assert profiler.enable() is prof  # idempotent, keeps interval
        stopped = profiler.disable()
        assert stopped is prof
        assert not stopped.running
        assert profiler.disable() is None

    def test_configure_from_env(self):
        assert profiler.configure_from_env({}) is None
        assert profiler.configure_from_env({"REPRO_PROFILE": "off"}) is None
        prof = profiler.configure_from_env({"REPRO_PROFILE": "1"})
        assert prof is not None
        assert prof.interval_s == DEFAULT_INTERVAL_S
        profiler.disable()
        prof = profiler.configure_from_env({"REPRO_PROFILE": "2.5"})
        assert prof is not None
        assert prof.interval_s == pytest.approx(0.0025)
        profiler.disable()

    def test_configure_from_env_rejects_garbage(self):
        with pytest.raises(ValueError):
            profiler.configure_from_env({"REPRO_PROFILE": "soon"})
        with pytest.raises(ValueError):
            profiler.configure_from_env({"REPRO_PROFILE": "-5"})
