"""Unit tests for the structured event log and the Chrome trace export."""

import json
import threading
import time

import pytest

from repro import obs
from repro.obs import events


class TestEventLog:
    def test_emit_stamps_envelope(self):
        log = events.EventLog()
        record = log.emit("alarm", window=3, submodule="v_dist",
                          value=1.0, threshold=0.5)
        assert record["v"] == events.EVENT_SCHEMA_VERSION
        assert record["seq"] == 0
        assert record["type"] == "alarm"
        assert record["window"] == 3

    def test_seq_is_monotonic(self):
        log = events.EventLog()
        seqs = [log.emit("x")["seq"] for _ in range(10)]
        assert seqs == list(range(10))
        assert log.seq == 10

    def test_ring_buffer_bounds_memory(self):
        log = events.EventLog(ring_size=4)
        for i in range(10):
            log.emit("x", i=i)
        tail = log.tail()
        assert len(tail) == 4
        assert [r["i"] for r in tail] == [6, 7, 8, 9]

    def test_tail_filters_by_type(self):
        log = events.EventLog()
        log.emit("a")
        log.emit("b")
        log.emit("a")
        assert [r["type"] for r in log.tail(etype="a")] == ["a", "a"]
        assert len(log.tail(1, etype="a")) == 1

    def test_invalid_ring_size(self):
        with pytest.raises(ValueError):
            events.EventLog(ring_size=0)

    def test_jsonl_sink_round_trip(self, tmp_path):
        path = tmp_path / "sub" / "events.jsonl"
        log = events.EventLog(jsonl_path=path)
        log.emit("window_evidence", window=0, h_disp=0.0, c_disp=0.0,
                 h_dist_f=0.0, v_dist_f=0.1)
        log.emit("run_summary", is_intrusion=False, fired=[], n_windows=1)
        log.close()
        records = events.read_jsonl(path)
        assert [r["type"] for r in records] == [
            "window_evidence", "run_summary"
        ]
        assert records[0]["seq"] == 0 and records[1]["seq"] == 1

    def test_thread_safety_no_duplicate_seq(self, tmp_path):
        log = events.EventLog(jsonl_path=tmp_path / "e.jsonl")

        def worker():
            for _ in range(200):
                log.emit("x")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        log.close()
        records = events.read_jsonl(tmp_path / "e.jsonl", validate=False)
        seqs = [r["seq"] for r in records]
        assert len(seqs) == 800
        assert sorted(seqs) == list(range(800))


class TestModuleSwitch:
    def test_disabled_by_default(self):
        assert not events.enabled()
        assert events.log() is events.NULL_EVENT_LOG
        assert events.emit("x") is None
        assert events.tail() == []

    def test_enable_disable_round_trip(self, tmp_path):
        log = events.enable(jsonl_path=tmp_path / "e.jsonl")
        assert events.enabled()
        assert events.log() is log
        events.emit("x")
        events.disable()
        assert not events.enabled()
        assert events.read_jsonl(tmp_path / "e.jsonl", validate=False)

    def test_enable_replaces_and_closes_previous(self, tmp_path):
        first = events.enable(jsonl_path=tmp_path / "a.jsonl")
        events.enable(jsonl_path=tmp_path / "b.jsonl")
        assert events.log() is not first
        events.emit("x")
        events.disable()
        assert events.read_jsonl(tmp_path / "a.jsonl", validate=False) == []
        assert len(events.read_jsonl(tmp_path / "b.jsonl",
                                     validate=False)) == 1

    def test_configure_from_env(self, tmp_path):
        path = tmp_path / "env.jsonl"
        assert events.configure_from_env({"REPRO_EVENTS": str(path)})
        assert events.enabled()
        assert events.log().path == path
        events.disable()
        assert events.configure_from_env({"REPRO_EVENTS": "mem"})
        assert events.log().path is None
        events.disable()
        assert not events.configure_from_env({})

    def test_disabled_overhead_is_negligible(self):
        """The disabled path must cost ~a boolean check, not a dict/clock.

        Mirrors the tracing null-path bound: compared against a bare
        attribute-free loop calling a no-op function (generous 5x bound
        for loaded CI machines).
        """
        assert not events.enabled()

        def bare():
            return None

        n = 20_000
        t0 = time.perf_counter()
        for _ in range(n):
            bare()
        floor = time.perf_counter() - t0

        t0 = time.perf_counter()
        for _ in range(n):
            if events.enabled():
                events.emit("hot", window=0)
        guarded = time.perf_counter() - t0
        assert guarded < floor * 5 + 1e-3


class TestValidation:
    def _valid(self, **extra):
        record = {"v": 1, "seq": 0, "ts": 0.0, "type": "alarm",
                  "window": 1, "submodule": "v_dist",
                  "value": 1.0, "threshold": 0.5}
        record.update(extra)
        return record

    def test_valid_record_passes(self):
        assert events.validate_event(self._valid()) == self._valid()

    def test_unknown_type_passes_with_envelope(self):
        record = {"v": 1, "seq": 0, "ts": 0.0, "type": "custom"}
        assert events.validate_event(record) == record

    @pytest.mark.parametrize("missing", ["v", "seq", "ts", "type"])
    def test_missing_envelope_key_fails(self, missing):
        record = self._valid()
        del record[missing]
        with pytest.raises(ValueError, match="missing required key"):
            events.validate_event(record)

    def test_wrong_version_fails(self):
        with pytest.raises(ValueError, match="schema version"):
            events.validate_event(self._valid(v=2))

    def test_missing_payload_field_fails(self):
        record = self._valid()
        del record["threshold"]
        with pytest.raises(ValueError, match="missing fields"):
            events.validate_event(record)

    def test_non_dict_fails(self):
        with pytest.raises(ValueError, match="JSON object"):
            events.validate_event([1, 2, 3])

    def test_read_jsonl_rejects_non_increasing_seq(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        a = {"v": 1, "seq": 1, "ts": 0.0, "type": "x"}
        b = {"v": 1, "seq": 1, "ts": 0.0, "type": "x"}
        path.write_text(json.dumps(a) + "\n" + json.dumps(b) + "\n")
        with pytest.raises(ValueError, match="not increasing"):
            events.read_jsonl(path)

    def test_read_jsonl_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(ValueError, match="invalid JSON"):
            events.read_jsonl(path)


class TestChromeTrace:
    def test_capture_and_export(self, tmp_path):
        obs.enable()
        obs.enable_chrome_trace()
        with obs.trace("repro.test.outer"):
            with obs.trace("inner"):
                pass
        doc = obs.export_chrome_trace()
        names = [e["name"] for e in doc["traceEvents"]]
        assert names == ["inner", "repro.test.outer"]  # exit order
        for event in doc["traceEvents"]:
            assert event["ph"] == "X"
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert "pid" in event and "tid" in event
        assert doc["displayTimeUnit"] == "ms"

    def test_export_to_file_is_valid_json(self, tmp_path):
        obs.enable()
        obs.enable_chrome_trace()
        with obs.trace("span"):
            pass
        path = tmp_path / "trace.json"
        obs.export_chrome_trace(path)
        doc = json.loads(path.read_text())
        assert doc["traceEvents"][0]["name"] == "span"

    def test_export_without_enable_raises(self):
        with pytest.raises(RuntimeError):
            obs.export_chrome_trace()

    def test_qualified_path_in_args(self):
        obs.enable()
        obs.enable_chrome_trace()
        with obs.trace("parent"):
            with obs.trace("child"):
                pass
        doc = obs.export_chrome_trace()
        child = next(e for e in doc["traceEvents"] if e["name"] == "child")
        assert child["args"]["path"] == "parent/child"

    def test_event_cap_counts_drops(self):
        obs.enable()
        obs.enable_chrome_trace(max_events=3)
        for _ in range(5):
            with obs.trace("hot"):
                pass
        doc = obs.export_chrome_trace()
        assert len(doc["traceEvents"]) == 3
        assert doc["otherData"]["droppedEvents"] == 2

    def test_disabled_capture_records_nothing(self):
        obs.enable()
        with obs.trace("not.captured"):
            pass
        assert not obs.chrome_trace_enabled()


class TestRotation:
    """S2: size-based sink rotation never splits a record."""

    def _fill(self, log, n=40):
        for i in range(n):
            log.emit("test_event", index=i, payload="x" * 40)

    def test_rotates_at_record_boundary(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        log = events.EventLog(jsonl_path=path, max_bytes=500)
        self._fill(log)
        log.close()
        chain = events.rotated_paths(path)
        assert log.rotations >= 2
        assert len(chain) == log.rotations + 1
        # Every generation (including rotated ones) is intact JSONL and
        # within the cap: rotation happened *before* the overflow write.
        for gen in chain:
            assert gen.stat().st_size <= 500
            for line in gen.read_text().splitlines():
                json.loads(line)

    def test_read_jsonl_reassembles_chain(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        log = events.EventLog(jsonl_path=path, max_bytes=500)
        self._fill(log, n=40)
        log.close()
        records = events.read_jsonl(path)
        assert [r["index"] for r in records] == list(range(40))
        assert [r["seq"] for r in records] == list(range(40))
        # Without the rotated generations only the newest records remain.
        live_only = events.read_jsonl(path, include_rotated=False)
        assert len(live_only) < 40
        assert live_only[-1]["index"] == 39

    def test_no_rotation_without_cap(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        log = events.EventLog(jsonl_path=path)
        self._fill(log)
        log.close()
        assert log.rotations == 0
        assert events.rotated_paths(path) == [path]

    def test_oversized_single_record_still_lands(self, tmp_path):
        # A record larger than the cap rotates, then writes whole anyway:
        # the invariant is "never split", not "never exceed".
        path = tmp_path / "ev.jsonl"
        log = events.EventLog(jsonl_path=path, max_bytes=100)
        log.emit("test_event", blob="y" * 400)
        log.emit("test_event", blob="z" * 400)
        log.close()
        records = events.read_jsonl(path)
        assert len(records) == 2
        assert records[0]["blob"] == "y" * 400

    def test_append_to_existing_counts_prior_bytes(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        first = events.EventLog(jsonl_path=path, max_bytes=10_000)
        self._fill(first, n=5)
        first.close()
        second = events.EventLog(jsonl_path=path, max_bytes=400)
        assert second._bytes == path.stat().st_size
        second.emit("test_event", payload="x" * 40)
        second.close()
        assert second.rotations == 1

    def test_rejects_bad_args(self, tmp_path):
        with pytest.raises(ValueError):
            events.EventLog(jsonl_path=tmp_path / "e.jsonl", max_bytes=0)
        with pytest.raises(ValueError):
            events.EventLog(
                jsonl_path=tmp_path / "e.jsonl", flush_every=-1
            )

    def test_flush_every_batches_writes(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        log = events.EventLog(jsonl_path=path, flush_every=0)
        log.emit("test_event", index=0)
        log.close()  # close still flushes everything
        assert len(events.read_jsonl(path)) == 1

    def test_module_enable_passes_rotation_config(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        log = events.enable(jsonl_path=path, max_bytes=500, flush_every=2)
        assert log.max_bytes == 500
        assert log.flush_every == 2
        events.disable()

    def test_configure_from_env_max_mb(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        events.configure_from_env(
            {
                "REPRO_EVENTS": str(path),
                "REPRO_EVENTS_MAX_MB": "0.0005",  # 524 bytes
            }
        )
        log = events.log()
        assert log.max_bytes == 524
        for i in range(40):
            events.emit("test_event", index=i, payload="x" * 40)
        events.disable()
        assert log.rotations >= 1
        assert len(events.read_jsonl(path)) == 40

    def test_configure_from_env_rejects_bad_max_mb(self, tmp_path):
        with pytest.raises(ValueError):
            events.configure_from_env(
                {
                    "REPRO_EVENTS": str(tmp_path / "e.jsonl"),
                    "REPRO_EVENTS_MAX_MB": "huge",
                }
            )
        with pytest.raises(ValueError):
            events.configure_from_env(
                {
                    "REPRO_EVENTS": str(tmp_path / "e.jsonl"),
                    "REPRO_EVENTS_MAX_MB": "-1",
                }
            )


class TestTornTail:
    """Crash forensics: an event log whose writer died mid-record.

    ``tolerate_torn_tail=True`` drops exactly one incomplete trailing
    record of the *newest* generation (with a :class:`TornTailWarning`);
    everything else — mid-file garbage, torn rotated generations, seq
    regressions — still fails loudly, because those mean corruption, not
    a crash.
    """

    def _record(self, seq):
        return {"v": 1, "seq": seq, "ts": 0.0, "type": "x", "index": seq}

    def _write(self, path, seqs, torn=""):
        lines = [json.dumps(self._record(s)) for s in seqs]
        text = "\n".join(lines) + "\n" if lines else ""
        path.write_text(text + torn)

    def test_torn_tail_fails_by_default(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        self._write(path, [0, 1, 2], torn='{"v": 1, "seq": 3, "ts')
        with pytest.raises(ValueError, match="invalid JSON"):
            events.read_jsonl(path)

    def test_tolerate_drops_exactly_one_and_warns(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        self._write(path, [0, 1, 2], torn='{"v": 1, "seq": 3, "ts')
        with pytest.warns(events.TornTailWarning, match="torn"):
            records = events.read_jsonl(path, tolerate_torn_tail=True)
        assert [r["seq"] for r in records] == [0, 1, 2]

    def test_intact_log_reads_clean_without_warning(self, tmp_path, recwarn):
        path = tmp_path / "ev.jsonl"
        self._write(path, [0, 1, 2])
        assert len(events.read_jsonl(path, tolerate_torn_tail=True)) == 3
        assert not [
            w for w in recwarn.list
            if issubclass(w.category, events.TornTailWarning)
        ]

    def test_midfile_corruption_still_fails(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        good = json.dumps(self._record(0))
        also_good = json.dumps(self._record(1))
        path.write_text(good + "\n" + '{"torn": ' + "\n" + also_good + "\n")
        with pytest.raises(ValueError, match="invalid JSON"):
            events.read_jsonl(path, tolerate_torn_tail=True)

    def test_seq_regression_still_fails(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        self._write(path, [0, 2, 1], torn='{"torn')
        with pytest.raises(ValueError, match="not increasing"):
            events.read_jsonl(path, tolerate_torn_tail=True)

    def test_torn_rotated_generation_still_fails(self, tmp_path):
        # Only the newest generation can legitimately be torn: rotation
        # closes older files at record boundaries, so a torn .1 file is
        # real corruption.
        path = tmp_path / "ev.jsonl"
        self._write(tmp_path / "ev.jsonl.1", [0, 1], torn='{"torn')
        self._write(path, [2, 3])
        with pytest.raises(ValueError, match="invalid JSON"):
            events.read_jsonl(path, tolerate_torn_tail=True)

    def test_torn_tail_after_rotated_chain_is_tolerated(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        self._write(tmp_path / "ev.jsonl.1", [0, 1])
        self._write(path, [2, 3], torn='{"v": 1, "seq": 4')
        with pytest.warns(events.TornTailWarning):
            records = events.read_jsonl(path, tolerate_torn_tail=True)
        assert [r["seq"] for r in records] == [0, 1, 2, 3]

    def test_tail_of_only_whitespace_is_fine(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        self._write(path, [0, 1], torn="   \n\n")
        assert len(events.read_jsonl(path, tolerate_torn_tail=True)) == 2
