"""Unit tests for the metric primitives and the registry."""

import json
import threading

import pytest

from repro import obs
from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increments(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter("x").inc(-1)


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("x")
        g.set(4.0)
        g.add(1.0)
        assert g.value == 5.0


class TestHistogram:
    def test_summary_of_known_distribution(self):
        h = Histogram("x")
        for v in range(101):  # 0..100
            h.observe(float(v))
        s = h.summary()
        assert s["count"] == 101
        assert s["min"] == 0.0
        assert s["max"] == 100.0
        assert s["mean"] == pytest.approx(50.0)
        assert s["p50"] == pytest.approx(50.0)
        assert s["p90"] == pytest.approx(90.0)
        assert s["p99"] == pytest.approx(99.0)

    def test_quantile_interpolates(self):
        h = Histogram("x")
        h.observe(0.0)
        h.observe(10.0)
        assert h.quantile(0.5) == pytest.approx(5.0)
        assert h.quantile(0.0) == 0.0
        assert h.quantile(1.0) == 10.0

    def test_quantile_range_checked(self):
        with pytest.raises(ValueError, match="quantile"):
            Histogram("x").quantile(1.5)

    def test_empty_histogram_is_all_zero(self):
        s = Histogram("x").summary()
        assert s == {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                     "p50": 0.0, "p90": 0.0, "p99": 0.0}

    def test_bounded_memory_keeps_recent_half(self):
        h = Histogram("x", max_samples=10)
        for v in range(100):
            h.observe(float(v))
        # Total count/mean track everything ever observed...
        assert h.count == 100
        # ...while the quantile window stays bounded and recent.
        assert len(h._values) <= 10
        assert h.quantile(0.0) >= 90.0


class TestRegistry:
    def test_return_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_json_round_trip_equals_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("repro.test.hits").inc(3)
        reg.gauge("repro.test.rate").set(1.25)
        reg.histogram("repro.test.lat").observe(0.5)
        reg.record_span("repro.test.span", wall=0.1, cpu=0.05)
        assert json.loads(reg.to_json()) == reg.snapshot()

    def test_snapshot_schema(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        snap = reg.snapshot()
        assert snap["version"] == obs.SNAPSHOT_VERSION
        assert set(snap) == {
            "version", "counters", "gauges", "histograms", "spans"
        }

    def test_reset_drops_everything(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.record_span("s", 0.1, 0.1)
        reg.reset()
        snap = reg.snapshot()
        assert snap["counters"] == {} and snap["spans"] == {}

    def test_concurrent_increments_do_not_lose_updates(self):
        reg = MetricsRegistry()

        def work():
            for _ in range(1000):
                reg.counter("hits").inc()
                reg.histogram("lat").observe(1.0)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("hits").value == 8000
        assert reg.histogram("lat").count == 8000


class TestModuleLevelApi:
    def test_disabled_returns_null_singletons(self):
        assert not obs.enabled()
        assert obs.trace("x") is obs.NULL_SPAN
        assert obs.counter("x") is obs.NULL_COUNTER
        assert obs.gauge("x") is obs.NULL_GAUGE
        assert obs.histogram("x") is obs.NULL_HISTOGRAM
        obs.counter("x").inc()
        obs.histogram("x").observe(1.0)
        assert obs.snapshot()["counters"] == {}

    def test_enable_records_into_registry(self):
        obs.enable()
        try:
            obs.counter("repro.test.c").inc(2)
            assert obs.snapshot()["counters"]["repro.test.c"] == 2
        finally:
            obs.disable()

    def test_configure_from_env(self):
        assert obs.configure_from_env({"REPRO_TRACE": "1"}) is True
        assert obs.enabled()
        assert obs.configure_from_env({"REPRO_TRACE": "0"}) is False
        assert not obs.enabled()
        assert obs.configure_from_env({}) is False
        with pytest.raises(ValueError, match="REPRO_TRACE"):
            obs.configure_from_env({"REPRO_TRACE": "maybe"})

    def test_export_metrics_writes_json(self, tmp_path):
        obs.enable()
        try:
            obs.counter("repro.test.c").inc()
            out = obs.export_metrics(tmp_path / "sub" / "metrics.json")
        finally:
            obs.disable()
        data = json.loads(out.read_text())
        assert data["counters"]["repro.test.c"] == 1
