"""Unit tests for the metric primitives and the registry."""

import json
import threading

import pytest

from repro import obs
from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increments(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter("x").inc(-1)


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("x")
        g.set(4.0)
        g.add(1.0)
        assert g.value == 5.0


class TestHistogram:
    def test_summary_of_known_distribution(self):
        h = Histogram("x")
        for v in range(101):  # 0..100
            h.observe(float(v))
        s = h.summary()
        assert s["count"] == 101
        assert s["min"] == 0.0
        assert s["max"] == 100.0
        assert s["mean"] == pytest.approx(50.0)
        assert s["p50"] == pytest.approx(50.0)
        assert s["p90"] == pytest.approx(90.0)
        assert s["p99"] == pytest.approx(99.0)

    def test_quantile_interpolates(self):
        h = Histogram("x")
        h.observe(0.0)
        h.observe(10.0)
        assert h.quantile(0.5) == pytest.approx(5.0)
        assert h.quantile(0.0) == 0.0
        assert h.quantile(1.0) == 10.0

    def test_quantile_range_checked(self):
        with pytest.raises(ValueError, match="quantile"):
            Histogram("x").quantile(1.5)

    def test_empty_histogram_is_all_zero(self):
        s = Histogram("x").summary()
        assert s == {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                     "p50": 0.0, "p90": 0.0, "p99": 0.0}

    def test_bounded_memory_keeps_recent_half(self):
        h = Histogram("x", max_samples=10)
        for v in range(100):
            h.observe(float(v))
        # Total count/mean track everything ever observed...
        assert h.count == 100
        # ...while the quantile window stays bounded and recent.
        assert len(h._values) <= 10
        assert h.quantile(0.0) >= 90.0


class TestRegistry:
    def test_return_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_json_round_trip_equals_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("repro.test.hits").inc(3)
        reg.gauge("repro.test.rate").set(1.25)
        reg.histogram("repro.test.lat").observe(0.5)
        reg.record_span("repro.test.span", wall=0.1, cpu=0.05)
        assert json.loads(reg.to_json()) == reg.snapshot()

    def test_snapshot_schema(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        snap = reg.snapshot()
        assert snap["version"] == obs.SNAPSHOT_VERSION
        assert set(snap) == {
            "version", "counters", "gauges", "histograms", "spans"
        }

    def test_reset_drops_everything(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.record_span("s", 0.1, 0.1)
        reg.reset()
        snap = reg.snapshot()
        assert snap["counters"] == {} and snap["spans"] == {}

    def test_concurrent_increments_do_not_lose_updates(self):
        reg = MetricsRegistry()

        def work():
            for _ in range(1000):
                reg.counter("hits").inc()
                reg.histogram("lat").observe(1.0)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("hits").value == 8000
        assert reg.histogram("lat").count == 8000


class TestModuleLevelApi:
    def test_disabled_returns_null_singletons(self):
        assert not obs.enabled()
        assert obs.trace("x") is obs.NULL_SPAN
        assert obs.counter("x") is obs.NULL_COUNTER
        assert obs.gauge("x") is obs.NULL_GAUGE
        assert obs.histogram("x") is obs.NULL_HISTOGRAM
        obs.counter("x").inc()
        obs.histogram("x").observe(1.0)
        assert obs.snapshot()["counters"] == {}

    def test_enable_records_into_registry(self):
        obs.enable()
        try:
            obs.counter("repro.test.c").inc(2)
            assert obs.snapshot()["counters"]["repro.test.c"] == 2
        finally:
            obs.disable()

    def test_configure_from_env(self):
        assert obs.configure_from_env({"REPRO_TRACE": "1"}) is True
        assert obs.enabled()
        assert obs.configure_from_env({"REPRO_TRACE": "0"}) is False
        assert not obs.enabled()
        assert obs.configure_from_env({}) is False
        with pytest.raises(ValueError, match="REPRO_TRACE"):
            obs.configure_from_env({"REPRO_TRACE": "maybe"})

    def test_export_metrics_writes_json(self, tmp_path):
        obs.enable()
        try:
            obs.counter("repro.test.c").inc()
            out = obs.export_metrics(tmp_path / "sub" / "metrics.json")
        finally:
            obs.disable()
        data = json.loads(out.read_text())
        assert data["counters"]["repro.test.c"] == 1


class TestStateDictMerge:
    def test_round_trip_is_lossless(self):
        src = MetricsRegistry()
        src.counter("repro.test.c").inc(5)
        src.gauge("repro.test.g").set(3.5)
        h = src.histogram("repro.test.h", max_samples=4)
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        src.record_span("repro.test.span", wall=0.5, cpu=0.4)
        src.record_span("repro.test.span", wall=1.5, cpu=1.0, error=True)

        dst = MetricsRegistry()
        dst.merge_state(src.state_dict())
        assert dst.counter("repro.test.c").value == 5
        assert dst.gauge("repro.test.g").value == 3.5
        h2 = dst.histogram("repro.test.h")
        assert h2.count == 3
        assert h2.quantile(0.5) == 2.0
        s2 = dst.span_stats("repro.test.span")
        assert s2.count == 2
        assert s2.errors == 1
        assert s2.wall_min == 0.5
        assert s2.wall_max == 1.5

    def test_merge_accumulates_counters_and_overwrites_gauges(self):
        a = MetricsRegistry()
        a.counter("repro.test.c").inc(5)
        a.gauge("repro.test.g").set(1.0)
        b = MetricsRegistry()
        b.counter("repro.test.c").inc(7)
        b.gauge("repro.test.g").set(9.0)
        a.merge_state(b.state_dict())
        assert a.counter("repro.test.c").value == 12
        assert a.gauge("repro.test.g").value == 9.0

    def test_merge_histograms_truncates_oldest(self):
        a = MetricsRegistry()
        ha = a.histogram("repro.test.h", max_samples=4)
        for v in (1.0, 2.0, 3.0):
            ha.observe(v)
        b = MetricsRegistry()
        hb = b.histogram("repro.test.h", max_samples=4)
        for v in (4.0, 5.0, 6.0):
            hb.observe(v)
        a.merge_state(b.state_dict())
        merged = a.histogram("repro.test.h")
        assert merged.count == 6          # lifetime count keeps everything
        assert merged.quantile(0.0) == 3.0  # window kept the newest 4
        assert merged.quantile(1.0) == 6.0

    def test_merge_state_is_json_safe(self):
        src = MetricsRegistry()
        src.span_stats("repro.test.span")  # zero-count span: wall_min is +inf
        state = json.loads(json.dumps(src.state_dict()))
        dst = MetricsRegistry()
        dst.merge_state(state)
        assert dst.span_stats("repro.test.span").count == 0

    def test_merge_rejects_version_mismatch(self):
        state = MetricsRegistry().state_dict()
        state["version"] = 99
        with pytest.raises(ValueError):
            MetricsRegistry().merge_state(state)

    def test_empty_merge_is_noop(self):
        dst = MetricsRegistry()
        dst.merge_state(MetricsRegistry().state_dict())
        assert dst.snapshot()["counters"] == {}


class TestConcurrentWriters:
    """S3: the registry must not lose increments under thread contention."""

    def test_counter_no_lost_increments(self):
        registry = MetricsRegistry()
        n_threads, n_incs = 8, 2_000

        def pound():
            counter = registry.counter("repro.test.contended")
            for _ in range(n_incs):
                counter.inc()

        threads = [threading.Thread(target=pound) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.counter("repro.test.contended").value == (
            n_threads * n_incs
        )

    def test_histogram_consistent_under_contention(self):
        registry = MetricsRegistry()
        n_threads, n_obs = 8, 1_000

        def pound(worker):
            h = registry.histogram("repro.test.h", max_samples=100_000)
            for i in range(n_obs):
                h.observe(float(worker * n_obs + i))

        threads = [
            threading.Thread(target=pound, args=(w,))
            for w in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        h = registry.histogram("repro.test.h")
        assert h.count == n_threads * n_obs
        summary = h.summary()
        assert summary["count"] == n_threads * n_obs

    def test_get_or_create_races_to_one_instance(self):
        registry = MetricsRegistry()
        seen = []
        barrier = threading.Barrier(8)

        def create():
            barrier.wait()
            seen.append(registry.counter("repro.test.once"))

        threads = [threading.Thread(target=create) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(c is seen[0] for c in seen)

    def test_snapshot_while_writing_stays_consistent(self):
        registry = MetricsRegistry()
        stop = threading.Event()

        def writer():
            counter = registry.counter("repro.test.c")
            h = registry.histogram("repro.test.h")
            while not stop.is_set():
                counter.inc()
                h.observe(1.0)

        t = threading.Thread(target=writer)
        t.start()
        try:
            for _ in range(50):
                snap = registry.snapshot()
                state = registry.state_dict()
                json.dumps(snap)
                json.dumps(state)
        finally:
            stop.set()
            t.join()
