"""Unit tests for spans: nesting, exception safety, null-path overhead."""

import time

import pytest

from repro import obs
from repro.obs import MetricsRegistry, Span
from repro.obs.tracing import current_span_path


@pytest.fixture
def enabled():
    obs.enable()
    yield
    obs.disable()


class TestSpanNesting:
    def test_child_gets_parent_qualified_name(self, enabled):
        with obs.trace("repro.test.outer"):
            with obs.trace("inner"):
                with obs.trace("leaf"):
                    pass
        spans = obs.snapshot()["spans"]
        assert set(spans) == {
            "repro.test.outer",
            "repro.test.outer/inner",
            "repro.test.outer/inner/leaf",
        }

    def test_stack_unwinds_between_siblings(self, enabled):
        with obs.trace("root"):
            with obs.trace("a"):
                pass
            with obs.trace("b"):
                pass
        spans = obs.snapshot()["spans"]
        assert "root/a" in spans and "root/b" in spans
        assert current_span_path() is None

    def test_parent_wall_covers_children(self, enabled):
        with obs.trace("parent"):
            with obs.trace("child"):
                time.sleep(0.01)
        spans = obs.snapshot()["spans"]
        assert spans["parent"]["wall_total_s"] >= \
            spans["parent/child"]["wall_total_s"]
        assert spans["parent/child"]["wall_total_s"] >= 0.009

    def test_repeated_spans_aggregate(self, enabled):
        for _ in range(5):
            with obs.trace("hot"):
                pass
        assert obs.snapshot()["spans"]["hot"]["count"] == 5


class TestExceptionSafety:
    def test_span_recorded_and_error_counted_on_raise(self, enabled):
        with pytest.raises(RuntimeError):
            with obs.trace("boom"):
                raise RuntimeError("nope")
        stats = obs.snapshot()["spans"]["boom"]
        assert stats["count"] == 1
        assert stats["errors"] == 1

    def test_stack_unwinds_on_raise(self, enabled):
        with pytest.raises(ValueError):
            with obs.trace("outer"):
                with obs.trace("inner"):
                    raise ValueError
        assert current_span_path() is None
        # A fresh span after the exception is top-level again.
        with obs.trace("after"):
            pass
        assert "after" in obs.snapshot()["spans"]

    def test_exception_is_not_swallowed(self, enabled):
        registry = MetricsRegistry()
        span = Span("s", registry)
        assert span.__enter__() is span
        assert span.__exit__(ValueError, ValueError("x"), None) is False


class TestNullPath:
    def test_null_span_is_reused_and_inert(self):
        assert not obs.enabled()
        s1 = obs.trace("a")
        s2 = obs.trace("b")
        assert s1 is s2 is obs.NULL_SPAN
        with s1:
            with s2:
                pass
        assert obs.snapshot()["spans"] == {}
        assert current_span_path() is None

    def test_disabled_overhead_is_negligible(self):
        """The null path must cost roughly a function call, not a clock.

        Compared against an empty ``with`` on a do-nothing non-singleton
        context manager: the null path allocates nothing, so it must not be
        dramatically slower than the floor (generous 5x bound to keep the
        test robust on loaded CI machines).
        """
        assert not obs.enabled()

        class Bare:
            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

        n = 20_000
        t0 = time.perf_counter()
        for _ in range(n):
            with Bare():
                pass
        floor = time.perf_counter() - t0

        t0 = time.perf_counter()
        for _ in range(n):
            with obs.trace("repro.hot.loop"):
                pass
        null_path = time.perf_counter() - t0
        assert null_path < floor * 5 + 1e-3

    def test_enabled_and_disabled_runs_do_not_mix(self):
        obs.enable()
        with obs.trace("recorded"):
            pass
        obs.disable()
        with obs.trace("dropped"):
            pass
        spans = obs.snapshot()["spans"]
        assert "recorded" in spans and "dropped" not in spans
