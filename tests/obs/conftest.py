"""Observability tests share process-wide state: isolate it."""

import pytest

from repro import obs
from repro.obs import events


@pytest.fixture(autouse=True)
def clean_obs():
    """Reset registry/events/capture and restore enabled state per test."""
    was_enabled = obs.enabled()
    obs.reset()
    events.disable()
    obs.disable_chrome_trace()
    yield
    obs.reset()
    events.disable()
    obs.disable_chrome_trace()
    if was_enabled:
        obs.enable()
    else:
        obs.disable()
