"""Observability tests share process-wide state: isolate it."""

import pytest

from repro import obs
from repro.obs import events, profiler, telemetry


@pytest.fixture(autouse=True)
def clean_obs():
    """Reset registry/events/capture/telemetry and restore state per test."""
    was_enabled = obs.enabled()
    obs.reset()
    events.disable()
    obs.disable_chrome_trace()
    telemetry.reset_streams()
    telemetry.stop()
    profiler.disable()
    yield
    obs.reset()
    events.disable()
    obs.disable_chrome_trace()
    telemetry.reset_streams()
    telemetry.stop()
    profiler.disable()
    if was_enabled:
        obs.enable()
    else:
        obs.disable()
