"""Observability tests share one process-wide registry: isolate it."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_obs():
    """Reset the registry and restore the enabled state around each test."""
    was_enabled = obs.enabled()
    obs.reset()
    yield
    obs.reset()
    if was_enabled:
        obs.enable()
    else:
        obs.disable()
