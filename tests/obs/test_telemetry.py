"""Live telemetry: stream health, Prometheus exposition, server, exporter."""

import json
import threading
import urllib.request

import pytest

from repro import obs
from repro.obs import telemetry
from repro.obs.telemetry import (
    NULL_STREAM_HEALTH,
    STREAM_FAMILIES,
    SnapshotExporter,
    StreamHealth,
    StreamHealthRegistry,
    prometheus_name,
    render_prometheus,
    telemetry_document,
)


class TestStreamHealth:
    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            StreamHealth("", 200.0)
        with pytest.raises(ValueError):
            StreamHealth("p1", 0.0)

    def test_observe_chunk_accumulates(self):
        row = StreamHealth("p1", 200.0)
        row.observe_chunk(50, 0.002, 3, 1, False)
        row.observe_chunk(25, 0.004, 5, 2, False)
        doc = row.snapshot()
        assert doc["samples"] == 75
        assert doc["chunks"] == 2
        assert doc["windows"] == 5
        assert doc["quarantined_windows"] == 2
        assert doc["state"] == "live"
        assert doc["sensor_fault"] is False
        lat = doc["chunk_latency"]
        assert lat["count"] == 2
        assert lat["p50_s"] == pytest.approx(0.003)
        assert set(lat) == {"count", "mean_s", "p50_s", "p95_s", "p99_s"}

    def test_alerts_and_finish(self):
        row = StreamHealth("p1", 200.0)
        row.note_alert("c_disp", 12.5)
        row.note_alert("v_dist", 14.0)
        row.mark_finished(intrusion=True)
        doc = row.snapshot()
        assert doc["alerts"] == 2
        assert doc["last_alert"]["submodule"] == "v_dist"
        assert doc["last_alert"]["time_s"] == 14.0
        assert doc["state"] == "finished"
        assert doc["intrusion"] is True

    def test_sensor_fault_latches_into_snapshot(self):
        row = StreamHealth("p1", 200.0)
        row.observe_chunk(10, 0.001, 0, 0, True)
        assert row.snapshot()["sensor_fault"] is True

    def test_ingest_lag_never_negative(self):
        # Pushing faster than real time (replay) clamps lag to zero.
        row = StreamHealth("p1", 200.0)
        row.observe_chunk(1_000_000, 0.001, 0, 0, False)
        assert row.snapshot()["ingest_lag_s"] == 0.0

    def test_snapshot_is_json_safe(self):
        row = StreamHealth("p1", 200.0)
        row.observe_chunk(10, 0.001, 1, 0, False)
        row.note_alert("c_disp", 1.0)
        json.dumps(row.snapshot())

    def test_null_stream_health_is_inert(self):
        NULL_STREAM_HEALTH.observe_chunk(10, 0.1, 1, 0, True)
        NULL_STREAM_HEALTH.note_alert("c_disp", 1.0)
        NULL_STREAM_HEALTH.mark_finished()
        assert NULL_STREAM_HEALTH.snapshot() == {}


class TestStreamHealthRegistry:
    def test_register_get_unregister(self):
        reg = StreamHealthRegistry()
        row = reg.register("p1", 200.0)
        assert reg.get("p1") is row
        assert reg.ids() == ["p1"]
        assert len(reg) == 1
        assert reg.unregister("p1") is True
        assert reg.unregister("p1") is False
        assert reg.get("p1") is None

    def test_reregister_starts_fresh_row(self):
        reg = StreamHealthRegistry()
        old = reg.register("p1", 200.0)
        old.observe_chunk(10, 0.001, 0, 0, False)
        new = reg.register("p1", 200.0)
        assert new is not old
        assert new.snapshot()["samples"] == 0

    def test_snapshot_covers_all_streams(self):
        reg = StreamHealthRegistry()
        reg.register("a", 200.0)
        reg.register("b", 100.0)
        snap = reg.snapshot()
        assert set(snap) == {"a", "b"}

    def test_module_registry_shortcuts(self):
        telemetry.register_stream("p9", 100.0)
        assert telemetry.streams().get("p9") is not None
        assert telemetry.unregister_stream("p9") is True


class TestPrometheusRendering:
    def test_name_sanitization(self):
        assert (
            prometheus_name("repro.core.engine.samples")
            == "repro_core_engine_samples"
        )
        assert prometheus_name("9lives") == "_9lives"
        assert prometheus_name("a-b c") == "a_b_c"

    def test_name_is_stable(self):
        name = "repro.eval.engine.cache_hits"
        assert prometheus_name(name) == prometheus_name(name)

    def test_counters_gain_total_suffix(self):
        obs.enable()
        obs.counter("repro.core.engine.samples").inc(42)
        text = render_prometheus()
        assert "# TYPE repro_core_engine_samples_total counter" in text
        assert "repro_core_engine_samples_total 42.0" in text

    def test_histogram_renders_as_summary(self):
        obs.enable()
        h = obs.histogram("repro.eval.engine.queue_wait_s")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        text = render_prometheus()
        assert "# TYPE repro_eval_engine_queue_wait_s summary" in text
        assert 'repro_eval_engine_queue_wait_s{quantile="0.50"} 2.0' in text
        assert "repro_eval_engine_queue_wait_s_count 3.0" in text
        assert "repro_eval_engine_queue_wait_s_sum 6.0" in text

    def test_spans_render_with_label(self):
        obs.enable()
        with obs.trace("repro.core.engine.push"):
            pass
        text = render_prometheus()
        assert (
            'repro_span_calls_total{span="repro.core.engine.push"} 1.0'
            in text
        )

    def test_stream_families_all_render(self):
        row = telemetry.register_stream("p1", 200.0)
        row.observe_chunk(50, 0.002, 3, 0, False)
        row.note_alert("c_disp", 1.0)
        text = render_prometheus()
        for family, mtype, _help in STREAM_FAMILIES:
            assert f"# TYPE {family} {mtype}" in text, family
        assert 'repro_stream_up{stream="p1"} 1.0' in text
        assert 'repro_stream_samples_total{stream="p1"} 50.0' in text
        assert (
            'repro_stream_chunk_latency_seconds{stream="p1",quantile="0.5"}'
            in text
        )
        assert (
            'repro_stream_chunk_latency_seconds{stream="p1",quantile="0.99"}'
            in text
        )
        assert (
            'repro_stream_last_alert_timestamp_seconds{stream="p1"}' in text
        )

    def test_label_values_escaped(self):
        telemetry.register_stream('we"ird\\id\n', 200.0)
        text = render_prometheus()
        assert 'stream="we\\"ird\\\\id\\n"' in text

    def test_type_precedes_samples_once_per_family(self):
        telemetry.register_stream("a", 200.0)
        telemetry.register_stream("b", 200.0)
        text = render_prometheus()
        assert text.count("# TYPE repro_stream_up gauge") == 1
        type_at = text.index("# TYPE repro_stream_up gauge")
        sample_at = text.index('repro_stream_up{stream="a"}')
        assert type_at < sample_at

    def test_document_schema(self):
        telemetry.register_stream("p1", 200.0)
        doc = telemetry_document()
        assert doc["v"] == telemetry.TELEMETRY_SCHEMA_VERSION
        assert "p1" in doc["streams"]
        assert doc["metrics"]["version"] == 1
        json.dumps(doc)


class TestTelemetryServer:
    def test_endpoints(self):
        telemetry.register_stream("p1", 200.0)
        server = obs.serve_telemetry(0)
        assert server.port > 0
        with urllib.request.urlopen(f"{server.url}/metrics") as resp:
            assert resp.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4"
            )
            body = resp.read().decode()
        assert 'repro_stream_up{stream="p1"}' in body
        with urllib.request.urlopen(f"{server.url}/snapshot.json") as resp:
            doc = json.loads(resp.read())
        assert "p1" in doc["streams"]
        with urllib.request.urlopen(f"{server.url}/healthz") as resp:
            assert resp.read() == b"ok\n"
        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(f"{server.url}/nope")

    def test_serve_implies_enable_and_is_idempotent(self):
        obs.disable()
        server = obs.serve_telemetry(0)
        assert obs.enabled()
        assert obs.serve_telemetry(0) is server
        assert telemetry.active_server() is server
        obs.stop_telemetry()
        assert telemetry.active_server() is None
        obs.stop_telemetry()  # idempotent

    def test_configure_from_env_port(self):
        server = telemetry.configure_from_env({"REPRO_TELEMETRY": "0"})
        assert server is not None and server.port > 0

    def test_configure_from_env_rejects_garbage(self):
        with pytest.raises(ValueError):
            telemetry.configure_from_env({"REPRO_TELEMETRY": "not-a-port"})


class TestSnapshotExporter:
    def test_json_snapshot(self, tmp_path):
        telemetry.register_stream("p1", 200.0)
        exporter = SnapshotExporter(tmp_path / "snap.json", interval_s=60.0)
        exporter.write_once()
        exporter.stop()
        doc = json.loads((tmp_path / "snap.json").read_text())
        assert "p1" in doc["streams"]
        assert exporter.writes >= 2  # explicit + final on stop

    def test_prom_snapshot(self, tmp_path):
        telemetry.register_stream("p1", 200.0)
        exporter = SnapshotExporter(tmp_path / "snap.prom", interval_s=60.0)
        exporter.stop()
        text = (tmp_path / "snap.prom").read_text()
        assert 'repro_stream_up{stream="p1"} 1.0' in text

    def test_periodic_writes(self, tmp_path):
        exporter = SnapshotExporter(tmp_path / "s.json", interval_s=0.02)
        deadline = threading.Event()
        deadline.wait(0.2)
        exporter.stop()
        assert exporter.writes >= 2

    def test_rejects_bad_interval(self, tmp_path):
        with pytest.raises(ValueError):
            SnapshotExporter(tmp_path / "s.json", interval_s=0.0)


class TestEngineIntegration:
    def _engine(self, stream_id=None):
        import numpy as np

        from repro.core.discriminator import Thresholds
        from repro.core.engine import DetectionEngine
        from repro.signals.signal import Signal
        from repro.sync.dwm import DwmParams, DwmSynchronizer

        rng = np.random.default_rng(3)
        base = np.sin(np.arange(2000) / 20.0) + 0.1 * rng.standard_normal(2000)
        reference = Signal(base[:, None].copy(), 200.0)
        engine = DetectionEngine(
            reference,
            DwmSynchronizer(DwmParams(t_win=1.0, t_hop=0.5, t_ext=0.5, t_sigma=0.25)),
            Thresholds(c_c=50.0, h_c=20.0, v_c=0.5),
            stream_id=stream_id,
        )
        return engine, base

    def test_no_stream_id_means_no_registration(self):
        engine, _ = self._engine()
        assert engine.stream_id is None
        assert len(telemetry.streams()) == 0
        assert engine._health_row is NULL_STREAM_HEALTH

    def test_stream_id_registers_and_tracks(self):
        obs.enable()
        engine, base = self._engine(stream_id="printer-7")
        assert telemetry.streams().get("printer-7") is not None
        for s in range(0, 2000, 100):
            engine.push(base[s : s + 100, None])
        engine.finalize()
        doc = telemetry.streams().get("printer-7").snapshot()
        assert doc["samples"] == 2000
        assert doc["chunks"] == 20
        assert doc["state"] == "finished"
        assert doc["chunk_latency"]["count"] == 20
        assert doc["windows"] > 0

    def test_disabled_obs_does_not_touch_health_row(self):
        obs.disable()
        engine, base = self._engine(stream_id="printer-8")
        for s in range(0, 2000, 100):
            engine.push(base[s : s + 100, None])
        doc = telemetry.streams().get("printer-8").snapshot()
        assert doc["samples"] == 0
        assert doc["chunks"] == 0

    def test_facade_passes_stream_id_through(self):
        import numpy as np

        from repro.core import NsyncIds
        from repro.signals.signal import Signal
        from repro.sync.dwm import DwmParams, DwmSynchronizer

        base = np.sin(np.arange(1000) / 20.0)
        ids = NsyncIds(
            Signal(base[:, None].copy(), 200.0),
            DwmSynchronizer(DwmParams(t_win=1.0, t_hop=0.5, t_ext=0.5, t_sigma=0.25)),
        )
        engine = ids.engine(armed=False, stream_id="p-facade")
        assert engine.stream_id == "p-facade"
        assert telemetry.streams().get("p-facade") is not None
