"""Unit tests for the data-acquisition system."""

import numpy as np
import pytest

from repro.sensors import DataAcquisition, PAPER_CHANNELS, default_daq


class TestPaperChannels:
    def test_table_ii_contents(self):
        assert PAPER_CHANNELS["ACC"] == (4000.0, 6, 16)
        assert PAPER_CHANNELS["TMP"] == (4000.0, 1, 16)
        assert PAPER_CHANNELS["MAG"] == (100.0, 3, 16)
        assert PAPER_CHANNELS["AUD"] == (48000.0, 2, 24)
        assert PAPER_CHANNELS["EPT"] == (96000.0, 1, 24)
        assert PAPER_CHANNELS["PWR"] == (12000.0, 1, 24)


class TestDefaultDaq:
    def test_six_sensors(self):
        daq = default_daq()
        assert set(daq.channel_ids) == set(PAPER_CHANNELS)

    def test_acquire_all(self, tiny_trace):
        daq = default_daq()
        signals = daq.acquire(tiny_trace, np.random.default_rng(0))
        assert set(signals) == set(PAPER_CHANNELS)
        for cid, sig in signals.items():
            assert sig.n_samples > 0, cid
            assert sig.duration == pytest.approx(tiny_trace.duration, rel=0.05)

    def test_channel_counts_match_table_ii(self, tiny_trace):
        signals = default_daq().acquire(tiny_trace, np.random.default_rng(0))
        for cid, (_, channels, _) in PAPER_CHANNELS.items():
            assert signals[cid].n_channels == channels, cid

    def test_acquire_subset(self, tiny_trace):
        daq = default_daq()
        signals = daq.acquire(
            tiny_trace, np.random.default_rng(0), channels=["ACC", "MAG"]
        )
        assert set(signals) == {"ACC", "MAG"}

    def test_unknown_channel_rejected(self, tiny_trace):
        daq = default_daq()
        with pytest.raises(KeyError, match="XYZ"):
            daq.acquire(tiny_trace, channels=["XYZ"])

    def test_rate_scale_full_paper_rates(self):
        daq = default_daq(rate_scale=1.0)
        assert daq.sensors["AUD"].config.sample_rate == 48000.0
        assert daq.sensors["MAG"].config.sample_rate == 100.0

    def test_rate_override(self):
        daq = default_daq(rates={cid: 50.0 for cid in PAPER_CHANNELS})
        assert all(
            s.config.sample_rate == 50.0 for s in daq.sensors.values()
        )

    def test_same_rng_state_reproducible(self, tiny_trace):
        a = default_daq().acquire(tiny_trace, np.random.default_rng(3))
        b = default_daq().acquire(tiny_trace, np.random.default_rng(3))
        for cid in a:
            assert np.allclose(a[cid].data, b[cid].data), cid

    def test_shared_timeline_across_channels(self, noisy_trace):
        """All channels of one run must reflect the same (noisy) schedule —
        the property behind Fig. 10."""
        signals = default_daq().acquire(
            noisy_trace, np.random.default_rng(1), channels=["ACC", "MAG"]
        )
        acc, mag = signals["ACC"], signals["MAG"]
        # Per-second activity envelopes should correlate across channels.
        n = min(int(acc.duration), int(mag.duration)) - 1
        acc_env = np.array([
            acc.slice_seconds(t, t + 1.0).data[:, 0].std() for t in range(n)
        ])
        mag_env = np.array([
            mag.slice_seconds(t, t + 1.0).data[:, 1].std() for t in range(n)
        ])
        r = np.corrcoef(acc_env, mag_env)[0, 1]
        assert r > 0.4
