"""Unit tests for the simulated side-channel sensors."""

import numpy as np
import pytest

from repro.sensors import (
    Accelerometer,
    DieThermometer,
    ElectricPotentialProbe,
    Magnetometer,
    Microphone,
    PowerSensor,
    SensorConfig,
    resample_track,
)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


class TestSensorConfig:
    def test_defaults_valid(self):
        SensorConfig(sample_rate=100.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sample_rate": 0.0},
            {"sample_rate": 100.0, "bits": 1},
            {"sample_rate": 100.0, "bits": 64},
            {"sample_rate": 100.0, "noise_level": -0.1},
            {"sample_rate": 100.0, "gain_sigma": -0.1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SensorConfig(**kwargs)


class TestResampleTrack:
    def test_length_matches_rate(self, tiny_trace):
        out = resample_track(tiny_trace.hotend_temp, tiny_trace, 50.0)
        assert out.shape[0] == int(np.floor(tiny_trace.duration * 50.0))

    def test_2d_track(self, tiny_trace):
        out = resample_track(tiny_trace.position, tiny_trace, 50.0)
        assert out.shape[1] == 3

    def test_values_interpolated_not_extrapolated(self, tiny_trace):
        out = resample_track(tiny_trace.hotend_temp, tiny_trace, 1000.0)
        assert out.min() >= tiny_trace.hotend_temp.min() - 1e-9
        assert out.max() <= tiny_trace.hotend_temp.max() + 1e-9


class TestAccelerometer:
    def make(self, **kw):
        return Accelerometer(SensorConfig(sample_rate=400.0, **kw))

    def test_six_channels(self, tiny_trace, rng):
        sig = self.make().sense(tiny_trace, rng)
        assert sig.n_channels == 6
        assert sig.sample_rate == 400.0

    def test_gravity_offset_on_z(self, tiny_trace, rng):
        sig = self.make().sense(tiny_trace, rng)
        assert sig.data[:, 2].mean() > 5000.0  # mm/s^2

    def test_motion_visible_on_xy(self, tiny_trace, rng):
        sig = self.make().sense(tiny_trace, rng)
        assert sig.data[:, 0].std() > 1.0
        assert sig.data[:, 1].std() > 1.0

    def test_repeatable_with_same_rng_seed(self, tiny_trace):
        a = self.make().sense(tiny_trace, np.random.default_rng(5))
        b = self.make().sense(tiny_trace, np.random.default_rng(5))
        assert np.allclose(a.data, b.data)


class TestMicrophone:
    def test_two_channels(self, tiny_trace, rng):
        sig = Microphone(SensorConfig(sample_rate=2000.0)).sense(tiny_trace, rng)
        assert sig.n_channels == 2

    def test_sound_follows_motion(self, tiny_trace, rng):
        sig = Microphone(SensorConfig(sample_rate=2000.0, noise_level=0.0,
                                      gain_sigma=0.0)).sense(tiny_trace, rng)
        # Quiet at the very start (homing from origin = no move), loud later.
        early = np.abs(sig.data[:100]).mean()
        mid = np.abs(sig.data[len(sig) // 2 : len(sig) // 2 + 2000]).mean()
        assert mid > early

    def test_extruder_rate_changes_sound(self, tiny_trace, rng):
        quiet = Microphone(
            SensorConfig(2000.0, noise_level=0.0, gain_sigma=0.0),
            extruder_gain=0.0,
        ).sense(tiny_trace, np.random.default_rng(1))
        loud = Microphone(
            SensorConfig(2000.0, noise_level=0.0, gain_sigma=0.0),
            extruder_gain=2.0,
        ).sense(tiny_trace, np.random.default_rng(1))
        assert not np.allclose(quiet.data, loud.data)


class TestMagnetometer:
    def test_three_channels_with_earth_field(self, tiny_trace, rng):
        sig = Magnetometer(SensorConfig(sample_rate=100.0)).sense(tiny_trace, rng)
        assert sig.n_channels == 3
        assert abs(sig.data[:, 0].mean()) > 10.0  # earth field offset

    def test_motion_modulates_field(self, tiny_trace, rng):
        sig = Magnetometer(
            SensorConfig(sample_rate=100.0, noise_level=0.0, gain_sigma=0.0)
        ).sense(tiny_trace, rng)
        assert sig.data[:, 1].std() > 0.01


class TestWeakChannels:
    def test_tmp_weakly_correlated_with_motion(self, tiny_trace, rng):
        """The paper drops TMP: it must NOT track the toolpath."""
        sig = DieThermometer(SensorConfig(sample_rate=100.0)).sense(tiny_trace, rng)
        speed = np.linalg.norm(
            resample_track(tiny_trace.velocity, tiny_trace, 100.0), axis=1
        )
        n = min(len(sig), speed.shape[0])
        r = np.corrcoef(sig.data[:n, 0], speed[:n])[0, 1]
        assert abs(r) < 0.4

    def test_pwr_dominated_by_heater(self, tiny_trace, rng):
        sensor = PowerSensor(SensorConfig(sample_rate=500.0, noise_level=0.0,
                                          gain_sigma=0.0))
        sig = sensor.sense(tiny_trace, rng)
        motors = sensor.motor_gain * np.abs(
            resample_track(tiny_trace.joint_velocity, tiny_trace, 500.0)
        ).sum(axis=1)
        # Heater swing (~heater_current) dwarfs the motor term.
        assert sig.data[:, 0].std() > 5 * motors.std()

    def test_pwr_thermostat_phase_varies_per_run(self, tiny_trace):
        sensor = PowerSensor(SensorConfig(sample_rate=500.0))
        a = sensor.sense(tiny_trace, np.random.default_rng(1))
        b = sensor.sense(tiny_trace, np.random.default_rng(2))
        assert not np.allclose(a.data, b.data)


class TestEpt:
    def test_hum_dominates_raw(self, tiny_trace, rng):
        probe = ElectricPotentialProbe(
            SensorConfig(sample_rate=2000.0, noise_level=0.0, gain_sigma=0.0)
        )
        sig = probe.sense(tiny_trace, rng)
        spectrum = np.abs(np.fft.rfft(sig.data[:, 0]))
        freqs = np.fft.rfftfreq(sig.n_samples, 1 / 2000.0)
        hum_bin = np.argmin(np.abs(freqs - 60.0))
        assert np.argmax(spectrum) == hum_bin

    def test_pwm_component_present(self, tiny_trace, rng):
        probe = ElectricPotentialProbe(
            SensorConfig(sample_rate=2000.0, noise_level=0.0, gain_sigma=0.0),
            pwm_gain=5.0,
        )
        sig = probe.sense(tiny_trace, rng)
        spectrum = np.abs(np.fft.rfft(sig.data[:, 0]))
        freqs = np.fft.rfftfreq(sig.n_samples, 1 / 2000.0)
        pwm_band = (freqs > 25.0) & (freqs < 37.0) & (np.abs(freqs - 30) > 1)
        base_band = (freqs > 200.0) & (freqs < 400.0)
        assert spectrum[pwm_band].mean() > spectrum[base_band].mean()


class TestAcquisitionChain:
    def test_gain_drift_applied(self, tiny_trace):
        cfg = SensorConfig(sample_rate=400.0, noise_level=0.0, gain_sigma=0.3)
        a = Accelerometer(cfg).sense(tiny_trace, np.random.default_rng(1))
        b = Accelerometer(cfg).sense(tiny_trace, np.random.default_rng(2))
        ratio = a.data[:, 0].std() / b.data[:, 0].std()
        assert ratio != pytest.approx(1.0, abs=0.01)

    def test_quantization_applied(self, tiny_trace, rng):
        cfg = SensorConfig(sample_rate=400.0, bits=4, noise_level=0.0,
                           gain_sigma=0.0)
        sig = Accelerometer(cfg).sense(tiny_trace, rng)
        # 4-bit data has few distinct values per channel.
        assert len(np.unique(sig.data[:, 0])) < 40
