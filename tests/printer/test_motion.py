"""Unit + property tests for trapezoidal motion planning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.printer import plan_move


class TestPlanMove:
    def test_long_move_is_trapezoidal(self):
        p = plan_move(distance=100.0, feedrate=50.0, accel=1000.0)
        assert p.v_peak == pytest.approx(50.0)
        assert p.t_cruise > 0.0
        assert p.t_accel == pytest.approx(0.05)  # v / a

    def test_short_move_is_triangular(self):
        p = plan_move(distance=1.0, feedrate=100.0, accel=1000.0)
        assert p.t_cruise == 0.0
        assert p.v_peak < 100.0
        assert p.v_peak == pytest.approx(np.sqrt(1.0 * 1000.0))

    def test_zero_distance_degenerate(self):
        p = plan_move(0.0, 50.0, 1000.0)
        assert p.duration == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_move(-1.0, 50.0, 1000.0)
        with pytest.raises(ValueError):
            plan_move(10.0, 0.0, 1000.0)
        with pytest.raises(ValueError):
            plan_move(10.0, 50.0, 0.0)

    def test_duration_formula_trapezoid(self):
        p = plan_move(100.0, 50.0, 1000.0)
        # t = 2 * v/a + (d - v^2/a) / v
        expected = 2 * 0.05 + (100.0 - 2500.0 / 1000.0) / 50.0
        assert p.duration == pytest.approx(expected)


class TestKinematicConsistency:
    def test_position_reaches_distance(self):
        p = plan_move(42.0, 30.0, 800.0)
        assert p.position(np.array([p.duration]))[0] == pytest.approx(42.0, abs=1e-9)

    def test_position_monotone(self):
        p = plan_move(42.0, 30.0, 800.0)
        t = np.linspace(0, p.duration, 500)
        s = p.position(t)
        assert np.all(np.diff(s) >= -1e-12)

    def test_velocity_is_position_derivative(self):
        p = plan_move(42.0, 30.0, 800.0)
        t = np.linspace(0, p.duration, 2000)
        s = p.position(t)
        v_numeric = np.gradient(s, t)
        v = p.velocity(t)
        assert np.allclose(v[5:-5], v_numeric[5:-5], atol=0.5)

    def test_velocity_peaks_at_vpeak(self):
        p = plan_move(100.0, 50.0, 1000.0)
        t = np.linspace(0, p.duration, 1000)
        assert p.velocity(t).max() == pytest.approx(p.v_peak, rel=1e-3)

    def test_velocity_zero_at_ends(self):
        p = plan_move(10.0, 20.0, 500.0)
        assert p.velocity(np.array([0.0]))[0] == pytest.approx(0.0)
        assert p.velocity(np.array([p.duration]))[0] == pytest.approx(0.0, abs=0.1)

    def test_acceleration_signs(self):
        p = plan_move(100.0, 50.0, 1000.0)
        t_acc = p.t_accel / 2
        t_dec = p.t_accel + p.t_cruise + p.t_decel / 2
        assert p.acceleration(np.array([t_acc]))[0] == pytest.approx(1000.0)
        assert p.acceleration(np.array([t_dec]))[0] == pytest.approx(-1000.0)
        t_mid = p.t_accel + p.t_cruise / 2
        assert p.acceleration(np.array([t_mid]))[0] == pytest.approx(0.0)

    def test_outside_move_zero(self):
        p = plan_move(10.0, 20.0, 500.0)
        assert p.velocity(np.array([-1.0, p.duration + 1.0])).tolist() == [0.0, 0.0]
        assert p.acceleration(np.array([-1.0, p.duration + 1.0])).tolist() == [0.0, 0.0]

    @given(
        distance=st.floats(0.01, 500.0),
        feedrate=st.floats(1.0, 300.0),
        accel=st.floats(100.0, 10000.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_distance_always_covered(self, distance, feedrate, accel):
        p = plan_move(distance, feedrate, accel)
        end = p.position(np.array([p.duration]))[0]
        assert end == pytest.approx(distance, rel=1e-6, abs=1e-6)

    @given(
        distance=st.floats(0.01, 500.0),
        feedrate=st.floats(1.0, 300.0),
        accel=st.floats(100.0, 10000.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_peak_never_exceeds_feedrate(self, distance, feedrate, accel):
        p = plan_move(distance, feedrate, accel)
        assert p.v_peak <= feedrate + 1e-9
