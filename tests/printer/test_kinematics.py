"""Unit + property tests for Cartesian and delta kinematics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.printer import CartesianKinematics, DeltaKinematics


class TestCartesian:
    def test_identity(self):
        k = CartesianKinematics()
        xyz = np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])
        assert np.allclose(k.joint_positions(xyz), xyz)

    def test_returns_copy(self):
        k = CartesianKinematics()
        xyz = np.array([[1.0, 2.0, 3.0]])
        out = k.joint_positions(xyz)
        out[0, 0] = 99.0
        assert xyz[0, 0] == 1.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            CartesianKinematics().joint_positions(np.zeros((3, 2)))

    def test_n_joints(self):
        assert CartesianKinematics().n_joints == 3


class TestDelta:
    K = DeltaKinematics(arm_length=291.06, tower_radius=200.0)

    def test_centre_symmetric(self):
        """At the bed centre all three carriages sit at the same height."""
        h = self.K.joint_positions(np.array([[0.0, 0.0, 10.0]]))[0]
        assert h[0] == pytest.approx(h[1])
        assert h[1] == pytest.approx(h[2])

    def test_centre_height_formula(self):
        h = self.K.joint_positions(np.array([[0.0, 0.0, 0.0]]))[0]
        expected = np.sqrt(291.06**2 - 200.0**2)
        assert h[0] == pytest.approx(expected)

    def test_z_translation_adds_directly(self):
        a = self.K.joint_positions(np.array([[5.0, -3.0, 0.0]]))[0]
        b = self.K.joint_positions(np.array([[5.0, -3.0, 7.0]]))[0]
        assert np.allclose(b - a, 7.0)

    def test_moving_toward_tower_raises_its_carriage(self):
        """Directly under a tower the arm is vertical, so that carriage sits
        highest; the other two arms flatten out and their carriages drop."""
        towers = self.K.tower_xy()
        centre = self.K.joint_positions(np.array([[0.0, 0.0, 0.0]]))[0]
        toward0 = towers[0] * 0.2
        near = self.K.joint_positions(
            np.array([[toward0[0], toward0[1], 0.0]])
        )[0]
        assert near[0] > centre[0]  # carriage 0 rises
        assert near[1] < centre[1]  # others descend

    def test_unreachable_rejected(self):
        with pytest.raises(ValueError, match="reachable"):
            self.K.joint_positions(np.array([[400.0, 0.0, 0.0]]))

    def test_tower_layout(self):
        towers = self.K.tower_xy()
        assert towers.shape == (3, 2)
        radii = np.linalg.norm(towers, axis=1)
        assert np.allclose(radii, 200.0)
        angles = np.sort(np.mod(np.degrees(np.arctan2(towers[:, 1], towers[:, 0])), 360))
        assert np.allclose(np.diff(angles), 120.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DeltaKinematics(arm_length=0.0)
        with pytest.raises(ValueError):
            DeltaKinematics(tower_radius=-1.0)
        with pytest.raises(ValueError, match="arm_length must exceed"):
            DeltaKinematics(arm_length=100.0, tower_radius=200.0)

    @given(
        x=st.floats(-60, 60),
        y=st.floats(-60, 60),
        z=st.floats(0, 100),
    )
    @settings(max_examples=60, deadline=None)
    def test_forward_inverse_consistency(self, x, y, z):
        """Carriage heights must place the effector exactly at (x, y, z):
        |carriage - effector| = arm length for every tower."""
        h = self.K.joint_positions(np.array([[x, y, z]]))[0]
        towers = self.K.tower_xy()
        for k in range(3):
            carriage = np.array([towers[k, 0], towers[k, 1], h[k]])
            effector = np.array([x, y, z])
            assert np.linalg.norm(carriage - effector) == pytest.approx(
                self.K.arm_length, rel=1e-9
            )

    @given(x=st.floats(-60, 60), y=st.floats(-60, 60))
    @settings(max_examples=40, deadline=None)
    def test_carriages_above_effector(self, x, y):
        h = self.K.joint_positions(np.array([[x, y, 0.0]]))[0]
        assert np.all(h > 0)
