"""Unit tests for the time-noise models."""

import numpy as np
import pytest

from repro.printer import NO_TIME_NOISE, TimeNoiseModel


class TestModelValidation:
    def test_defaults_valid(self):
        TimeNoiseModel()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate_walk_std": -0.1},
            {"rate_walk_limit": -0.1},
            {"duration_jitter": -0.1},
            {"gap_mean": -1.0},
            {"gap_std": -1.0},
            {"stall_probability": 1.5},
            {"stall_probability": -0.1},
            {"stall_duration": -1.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TimeNoiseModel(**kwargs)

    def test_silent_model(self):
        assert NO_TIME_NOISE.is_silent
        assert not TimeNoiseModel().is_silent


class TestProcess:
    def test_silent_process_identity(self):
        process = NO_TIME_NOISE.start(np.random.default_rng(0))
        assert process.perturb_duration(1.5) == 1.5
        assert process.sample_gap() == 0.0
        assert process.rate == 1.0

    def test_durations_jittered(self):
        process = TimeNoiseModel().start(np.random.default_rng(0))
        outs = {process.perturb_duration(1.0) for _ in range(20)}
        assert len(outs) > 1
        assert all(0.05 < d < 2.0 for d in outs)

    def test_gaps_nonnegative(self):
        process = TimeNoiseModel(gap_mean=0.001, gap_std=0.01).start(
            np.random.default_rng(1)
        )
        gaps = [process.sample_gap() for _ in range(200)]
        assert all(g >= 0.0 for g in gaps)

    def test_rate_walk_bounded(self):
        model = TimeNoiseModel(rate_walk_std=0.1, rate_walk_limit=0.05)
        process = model.start(np.random.default_rng(2))
        for _ in range(500):
            process.perturb_duration(0.1)
        assert np.exp(-0.05) - 1e-9 <= process.rate <= np.exp(0.05) + 1e-9

    def test_rate_walk_accumulates(self):
        """The slow component: consecutive moves share nearly the same rate
        while distant moves can differ (exactly Fig. 1's structure)."""
        model = TimeNoiseModel(
            rate_walk_std=0.01,
            rate_walk_limit=0.5,
            duration_jitter=0.0,
            gap_mean=0.0,
            gap_std=0.0,
            stall_probability=0.0,
        )
        process = model.start(np.random.default_rng(3))
        durations = [process.perturb_duration(1.0) for _ in range(400)]
        near = abs(durations[1] - durations[0])
        far = abs(durations[-1] - durations[0])
        assert near < 0.05
        assert far > near

    def test_stalls_occur(self):
        model = TimeNoiseModel(
            gap_mean=0.0, gap_std=0.0, stall_probability=1.0, stall_duration=0.2
        )
        process = model.start(np.random.default_rng(4))
        assert process.sample_gap() == pytest.approx(0.2)

    def test_reproducible_with_same_seed(self):
        def run(seed):
            p = TimeNoiseModel().start(np.random.default_rng(seed))
            return [p.perturb_duration(1.0) for _ in range(10)]

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_zero_duration_untouched(self):
        process = TimeNoiseModel().start(np.random.default_rng(5))
        assert process.perturb_duration(0.0) == 0.0
