"""Unit + property tests for G2/G3 arc interpolation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.printer import (
    NO_TIME_NOISE,
    ULTIMAKER3,
    arc_points,
    parse_gcode,
    segment_arcs,
    simulate_print,
)


class TestArcPoints:
    def test_quarter_circle_ccw(self):
        start = np.array([10.0, 0.0])
        end = np.array([0.0, 10.0])
        points = arc_points(start, end, np.zeros(2), clockwise=False,
                            max_segment=0.5)
        radii = np.linalg.norm(points, axis=1)
        assert np.allclose(radii, 10.0, atol=1e-6)
        assert np.allclose(points[-1], end)
        # CCW quarter circle stays in the first quadrant.
        assert np.all(points[:, 0] >= -1e-9)
        assert np.all(points[:, 1] >= -1e-9)

    def test_quarter_circle_cw_takes_long_way(self):
        start = np.array([10.0, 0.0])
        end = np.array([0.0, 10.0])
        cw = arc_points(start, end, np.zeros(2), clockwise=True, max_segment=0.5)
        ccw = arc_points(start, end, np.zeros(2), clockwise=False, max_segment=0.5)
        assert len(cw) > len(ccw)  # 3/4 turn vs 1/4 turn

    def test_full_circle_when_endpoints_coincide(self):
        start = np.array([5.0, 0.0])
        points = arc_points(start, start, np.zeros(2), clockwise=True,
                            max_segment=0.2)
        total = np.linalg.norm(
            np.diff(np.vstack([start, points]), axis=0), axis=1
        ).sum()
        assert total == pytest.approx(2 * np.pi * 5.0, rel=0.01)

    def test_segment_length_respected(self):
        start = np.array([10.0, 0.0])
        end = np.array([-10.0, 0.0])
        points = arc_points(start, end, np.zeros(2), clockwise=False,
                            max_segment=0.3)
        steps = np.linalg.norm(
            np.diff(np.vstack([start, points]), axis=0), axis=1
        )
        assert steps.max() <= 0.32

    def test_degenerate_centre_rejected(self):
        with pytest.raises(ValueError, match="centre"):
            arc_points(np.zeros(2), np.ones(2), np.zeros(2), True)

    def test_invalid_max_segment(self):
        with pytest.raises(ValueError):
            arc_points(np.array([1.0, 0.0]), np.array([0.0, 1.0]),
                       np.zeros(2), True, max_segment=0.0)

    @given(
        angle=st.floats(0.2, 6.0),
        radius=st.floats(1.0, 50.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_arc_length_matches_theory(self, angle, radius):
        start = np.array([radius, 0.0])
        end = radius * np.array([np.cos(angle), np.sin(angle)])
        points = arc_points(start, end, np.zeros(2), clockwise=False,
                            max_segment=0.2)
        total = np.linalg.norm(
            np.diff(np.vstack([start, points]), axis=0), axis=1
        ).sum()
        assert total == pytest.approx(radius * angle, rel=0.02)


class TestSegmentArcs:
    def test_noop_without_arcs(self):
        program = parse_gcode(["G1 X10 F3000", "G1 X0"])
        assert segment_arcs(program) is program

    def test_arc_replaced_by_lines(self):
        program = parse_gcode(
            ["G1 X10 Y0 F3000", "G3 X0 Y10 I-10 J0 E1.0"]
        )
        flat = segment_arcs(program, max_segment=0.5)
        assert all(c.code in ("G1",) for c in flat)
        assert len(flat) > 10

    def test_extrusion_distributed_monotonically(self):
        program = parse_gcode(
            ["G92 E0", "G1 X10 Y0 F3000", "G3 X-10 Y0 I-10 J0 E2.0"]
        )
        flat = segment_arcs(program, max_segment=0.5)
        e_values = [c.get("E") for c in flat if c.get("E") is not None]
        assert e_values == sorted(e_values)
        assert e_values[-1] == pytest.approx(2.0, abs=1e-5)

    def test_r_form_arc(self):
        program = parse_gcode(
            ["G1 X10 Y0 F3000", "G2 X0 Y-10 R10"]
        )
        flat = segment_arcs(program, max_segment=0.5)
        xs = [c.get("X") for c in flat if c.get("X") is not None]
        ys = [c.get("Y") for c in flat if c.get("Y") is not None]
        assert xs[-1] == pytest.approx(0.0, abs=1e-4)
        assert ys[-1] == pytest.approx(-10.0, abs=1e-4)

    def test_r_too_small_rejected(self):
        program = parse_gcode(["G1 X10 Y0 F3000", "G2 X-10 Y0 R3"])
        with pytest.raises(ValueError, match="radius"):
            segment_arcs(program)

    def test_firmware_executes_arcs(self):
        program = parse_gcode(
            ["G1 X10 Y0 F3000", "G2 X-10 Y0 I-10 J0 F3000"]
        )
        trace = simulate_print(program, ULTIMAKER3, NO_TIME_NOISE)
        # During the arc, the head stays ~10 mm from the origin.
        moving = np.linalg.norm(trace.velocity, axis=1) > 5.0
        radii = np.linalg.norm(trace.position[moving, :2], axis=1)
        arc_part = radii[len(radii) // 2 :]
        assert np.median(arc_part) == pytest.approx(10.0, abs=0.2)
        assert np.allclose(trace.position[-1, :2], [-10.0, 0.0], atol=0.05)
