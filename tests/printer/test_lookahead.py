"""Unit + property tests for the look-ahead motion planner."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.printer.lookahead import GeneralProfile, junction_speed, plan_chain


def unit(angle):
    return np.array([np.cos(angle), np.sin(angle), 0.0])


class TestJunctionSpeed:
    def test_collinear_full_speed(self):
        v = junction_speed(unit(0), unit(0), feedrate=50.0, accel=3000.0)
        assert v == pytest.approx(50.0)

    def test_reversal_stops(self):
        v = junction_speed(unit(0), unit(np.pi), feedrate=50.0, accel=3000.0)
        assert v == pytest.approx(0.0)

    def test_right_angle_intermediate(self):
        v = junction_speed(unit(0), unit(np.pi / 2), feedrate=50.0, accel=3000.0)
        assert 0.0 < v < 50.0

    def test_sharper_turns_slower(self):
        speeds = [
            junction_speed(unit(0), unit(a), 50.0, 3000.0)
            for a in (0.2, 0.8, 1.5, 2.5)
        ]
        assert speeds == sorted(speeds, reverse=True)

    @given(angle=st.floats(0.0, np.pi), feedrate=st.floats(5.0, 200.0))
    @settings(max_examples=40, deadline=None)
    def test_never_exceeds_feedrate(self, angle, feedrate):
        v = junction_speed(unit(0), unit(angle), feedrate, 3000.0)
        assert 0.0 <= v <= feedrate + 1e-9


class TestGeneralProfile:
    def profile(self, **kw):
        params = dict(distance=20.0, v_start=10.0, v_end=5.0, feedrate=40.0,
                      accel=1000.0)
        params.update(kw)
        from repro.printer.lookahead import _profile_for

        return _profile_for(
            params["distance"], params["v_start"], params["v_end"],
            params["feedrate"], params["accel"],
        )

    def test_covers_distance(self):
        p = self.profile()
        assert p.position(np.array([p.duration]))[0] == pytest.approx(20.0, rel=1e-6)

    def test_boundary_velocities(self):
        p = self.profile()
        assert p.velocity(np.array([0.0]))[0] == pytest.approx(10.0)
        assert p.velocity(np.array([p.duration - 1e-9]))[0] == pytest.approx(
            5.0, abs=0.2
        )

    def test_peak_bounded_by_feedrate_when_reachable(self):
        p = self.profile(distance=200.0)
        assert p.v_peak == pytest.approx(40.0)

    def test_velocity_is_position_derivative(self):
        p = self.profile()
        t = np.linspace(0, p.duration, 3000)
        v_num = np.gradient(p.position(t), t)
        assert np.allclose(p.velocity(t)[10:-10], v_num[10:-10], atol=0.5)

    @given(
        distance=st.floats(0.5, 100.0),
        v_start=st.floats(0.0, 30.0),
        v_end=st.floats(0.0, 30.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_distance_always_covered(self, distance, v_start, v_end):
        from repro.printer.lookahead import _profile_for

        p = _profile_for(distance, v_start, v_end, feedrate=40.0, accel=2000.0)
        end = p.position(np.array([p.duration]))[0]
        assert end == pytest.approx(distance, rel=1e-4, abs=1e-4)


class TestPlanChain:
    def test_collinear_chain_keeps_speed(self):
        """Three collinear moves glide: interior junction speeds = feedrate."""
        profiles = plan_chain(
            [unit(0)] * 3, [30.0, 30.0, 30.0], [50.0] * 3, accel=3000.0
        )
        assert profiles[0].v_end == pytest.approx(50.0, rel=1e-6)
        assert profiles[1].v_start == pytest.approx(50.0, rel=1e-6)
        assert profiles[1].v_end == pytest.approx(50.0, rel=1e-6)

    def test_chain_faster_than_stop_to_stop(self):
        from repro.printer.motion import plan_move

        directions = [unit(a) for a in np.linspace(0, 0.5, 8)]
        distances = [10.0] * 8
        chain = plan_chain(directions, distances, [50.0] * 8, accel=3000.0)
        chained_time = sum(p.duration for p in chain)
        stop_time = sum(
            plan_move(d, 50.0, 3000.0).duration for d in distances
        )
        assert chained_time < stop_time

    def test_velocity_continuity(self):
        rng = np.random.default_rng(0)
        directions = [unit(a) for a in rng.uniform(0, 0.8, 10)]
        profiles = plan_chain(
            directions, [5.0] * 10, [60.0] * 10, accel=2000.0
        )
        for a, b in zip(profiles, profiles[1:]):
            assert a.v_end == pytest.approx(b.v_start, rel=1e-9)

    def test_starts_and_ends_at_rest(self):
        profiles = plan_chain([unit(0)] * 4, [8.0] * 4, [40.0] * 4, 1500.0)
        assert profiles[0].v_start == 0.0
        assert profiles[-1].v_end == 0.0

    def test_sharp_corner_forces_slowdown(self):
        profiles = plan_chain(
            [unit(0), unit(np.pi * 0.9)], [30.0, 30.0], [50.0, 50.0], 3000.0
        )
        assert profiles[0].v_end < 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_chain([unit(0)], [1.0, 2.0], [10.0], 1000.0)
        with pytest.raises(ValueError):
            plan_chain([unit(0)], [1.0], [10.0], 0.0)
        with pytest.raises(ValueError):
            plan_chain([unit(0)], [0.0], [10.0], 1000.0)
        assert plan_chain([], [], [], 1000.0) == []

    @given(seed=st.integers(0, 30), n=st.integers(2, 12))
    @settings(max_examples=25, deadline=None)
    def test_junction_speeds_feasible(self, seed, n):
        """Every profile's boundary speeds stay within what acceleration can
        achieve over its distance (the planner's core guarantee)."""
        rng = np.random.default_rng(seed)
        directions = [unit(a) for a in rng.uniform(0, 2 * np.pi, n)]
        distances = list(rng.uniform(0.5, 40.0, n))
        profiles = plan_chain(directions, distances, [60.0] * n, accel=2500.0)
        for p in profiles:
            dv2 = abs(p.v_end**2 - p.v_start**2)
            assert dv2 <= 2.0 * 2500.0 * p.distance + 1e-6


class TestFirmwareIntegration:
    def test_lookahead_shortens_print(self):
        from dataclasses import replace

        from repro.attacks import PrintJob
        from repro.printer import NO_TIME_NOISE, ULTIMAKER3, simulate_print
        from repro.slicer import SlicerConfig, gear_outline

        job = PrintJob.slice(
            gear_outline(n_teeth=12, outer_diameter=30.0, tooth_depth=2.0),
            SlicerConfig(object_height=0.4, layer_height=0.2, infill_spacing=6.0),
        )
        base = simulate_print(job.program, ULTIMAKER3, NO_TIME_NOISE, seed=0)
        smooth = simulate_print(
            job.program, replace(ULTIMAKER3, lookahead=True),
            NO_TIME_NOISE, seed=0,
        )
        assert smooth.duration < base.duration
        # Geometry is untouched: same final position, same extremes.
        assert np.allclose(smooth.position[-1], base.position[-1], atol=1e-6)
        assert smooth.position[:, 0].max() == pytest.approx(
            base.position[:, 0].max(), abs=0.2
        )

    def test_layer_changes_still_recorded(self):
        from dataclasses import replace

        from repro.attacks import PrintJob
        from repro.printer import NO_TIME_NOISE, ULTIMAKER3, simulate_print
        from repro.slicer import SlicerConfig, square_outline

        job = PrintJob.slice(
            square_outline(20.0),
            SlicerConfig(object_height=0.6, layer_height=0.2, infill_spacing=5.0),
        )
        base = simulate_print(job.program, ULTIMAKER3, NO_TIME_NOISE, seed=0)
        smooth = simulate_print(
            job.program, replace(ULTIMAKER3, lookahead=True),
            NO_TIME_NOISE, seed=0,
        )
        assert len(smooth.layer_change_times) == len(base.layer_change_times)
