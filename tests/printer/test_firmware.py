"""Unit + integration tests for the firmware simulator."""

import numpy as np
import pytest

from repro.printer import (
    Firmware,
    GcodeProgram,
    NO_TIME_NOISE,
    ROSTOCK_MAX_V3,
    TimeNoiseModel,
    ULTIMAKER3,
    parse_gcode,
    simulate_print,
)
from repro.printer.gcode import GcodeCommand


def square_program(side=20.0, feed=3000.0):
    lines = [
        "G28",
        "G92 E0",
        f"G1 X{side} Y0 F{feed}",
        f"G1 X{side} Y{side} F{feed}",
        f"G1 X0 Y{side} F{feed}",
        f"G1 X0 Y0 F{feed}",
    ]
    return parse_gcode(lines)


class TestBasicExecution:
    def test_trace_shapes_consistent(self):
        trace = simulate_print(square_program(), ULTIMAKER3, NO_TIME_NOISE, seed=0)
        n = trace.n_samples
        assert trace.position.shape == (n, 3)
        assert trace.velocity.shape == (n, 3)
        assert trace.acceleration.shape == (n, 3)
        assert trace.joint_position.shape == (n, 3)
        assert trace.extrusion_rate.shape == (n,)
        assert trace.command_index.shape == (n,)

    def test_final_position_is_last_target(self):
        trace = simulate_print(square_program(), ULTIMAKER3, NO_TIME_NOISE, seed=0)
        assert np.allclose(trace.position[-1], [0.0, 0.0, 0.0], atol=1e-6)

    def test_path_visits_corners(self):
        trace = simulate_print(square_program(), ULTIMAKER3, NO_TIME_NOISE, seed=0)
        assert trace.position[:, 0].max() == pytest.approx(20.0, abs=0.1)
        assert trace.position[:, 1].max() == pytest.approx(20.0, abs=0.1)

    def test_duration_matches_planner(self):
        # 4 moves of 20 mm at 50 mm/s with accel 3000:
        # each: 2*(50/3000) + (20 - 2500/3000)/50
        trace = simulate_print(square_program(), ULTIMAKER3, NO_TIME_NOISE, seed=0)
        per_move = 2 * (50 / 3000) + (20 - 2500 / 3000) / 50
        assert trace.duration == pytest.approx(4 * per_move, rel=0.05)

    def test_velocity_capped_by_machine(self):
        program = parse_gcode(["G1 X100 F600000"])  # absurd feedrate
        trace = simulate_print(program, ULTIMAKER3, NO_TIME_NOISE, seed=0)
        speed = np.linalg.norm(trace.velocity, axis=1)
        assert speed.max() <= ULTIMAKER3.max_feedrate * 1.01

    def test_deterministic_without_noise(self):
        a = simulate_print(square_program(), ULTIMAKER3, NO_TIME_NOISE, seed=1)
        b = simulate_print(square_program(), ULTIMAKER3, NO_TIME_NOISE, seed=2)
        assert a.n_samples == b.n_samples
        assert np.allclose(a.position, b.position)


class TestGcodeSemantics:
    def test_g92_resets_extruder(self):
        program = parse_gcode(["G92 E5", "G1 X10 E6 F3000"])
        trace = simulate_print(program, ULTIMAKER3, NO_TIME_NOISE, seed=0)
        # Extrusion delta is 1 mm over a 10 mm move.
        total_e = np.trapezoid(trace.extrusion_rate, trace.times)
        assert total_e == pytest.approx(1.0, rel=0.05)

    def test_dwell_adds_time(self):
        base = simulate_print(parse_gcode(["G1 X10 F3000"]), ULTIMAKER3, NO_TIME_NOISE)
        dwelled = simulate_print(
            parse_gcode(["G1 X10 F3000", "G4 P500"]), ULTIMAKER3, NO_TIME_NOISE
        )
        assert dwelled.duration - base.duration == pytest.approx(0.5, abs=0.02)

    def test_m104_sets_target_without_wait(self):
        program = parse_gcode(["M104 S200", "G1 X10 F3000"])
        trace = simulate_print(program, ULTIMAKER3, NO_TIME_NOISE, seed=0)
        assert trace.hotend_temp[-1] > ULTIMAKER3.ambient_temp

    def test_m109_blocks(self):
        no_wait = simulate_print(parse_gcode(["M104 S200", "G1 X10 F3000"]),
                                 ULTIMAKER3, NO_TIME_NOISE)
        wait = simulate_print(parse_gcode(["M109 S200", "G1 X10 F3000"]),
                              ULTIMAKER3, NO_TIME_NOISE)
        assert wait.duration > no_wait.duration

    def test_fan_control(self):
        program = parse_gcode(["M106 S127.5", "G1 X10 F3000", "M107", "G1 X0 F3000"])
        trace = simulate_print(program, ULTIMAKER3, NO_TIME_NOISE, seed=0)
        assert trace.fan.max() == pytest.approx(0.5, abs=0.01)
        assert trace.fan[-1] == 0.0

    def test_layer_changes_recorded(self):
        program = parse_gcode(
            ["G1 Z0.2 F6000", "G1 X10 F3000", "G1 Z0.4 F6000", "G1 X0 F3000"]
        )
        trace = simulate_print(program, ULTIMAKER3, NO_TIME_NOISE, seed=0)
        assert len(trace.layer_change_times) == 1
        assert trace.layer_index.max() == 1

    def test_unknown_codes_ignored(self):
        program = parse_gcode(["M999 S1", "G1 X5 F3000"])
        trace = simulate_print(program, ULTIMAKER3, NO_TIME_NOISE, seed=0)
        assert trace.position[-1, 0] == pytest.approx(5.0, abs=1e-6)

    def test_thermal_first_order_rise(self):
        program = parse_gcode(["M104 S205", "G4 S20"])
        trace = simulate_print(program, ULTIMAKER3, NO_TIME_NOISE, seed=0)
        temp = trace.hotend_temp
        assert temp[0] == pytest.approx(ULTIMAKER3.ambient_temp)
        assert np.all(np.diff(temp) >= -1e-9)
        assert temp[-1] < 205.0  # still rising


class TestTimeNoise:
    def test_noise_changes_duration(self):
        durations = {
            simulate_print(square_program(), ULTIMAKER3, TimeNoiseModel(), seed=s).duration
            for s in range(4)
        }
        assert len(durations) == 4

    def test_noise_preserves_geometry(self):
        trace = simulate_print(square_program(), ULTIMAKER3, TimeNoiseModel(), seed=3)
        assert trace.position[:, 0].max() == pytest.approx(20.0, abs=0.2)
        assert np.allclose(trace.position[-1], [0, 0, 0], atol=1e-5)

    def test_same_seed_same_trace(self):
        a = simulate_print(square_program(), ULTIMAKER3, TimeNoiseModel(), seed=5)
        b = simulate_print(square_program(), ULTIMAKER3, TimeNoiseModel(), seed=5)
        assert a.n_samples == b.n_samples
        assert np.allclose(a.position, b.position)


class TestKinematicsIntegration:
    def test_delta_joints_differ_from_cartesian(self):
        program = square_program()
        cart = simulate_print(program, ULTIMAKER3, NO_TIME_NOISE, seed=0)
        delta = simulate_print(program, ROSTOCK_MAX_V3, NO_TIME_NOISE, seed=0)
        assert np.allclose(cart.joint_position, cart.position)
        assert not np.allclose(
            delta.joint_position[:, 0], delta.position[:, 0]
        )

    def test_firmware_transformer_applied(self):
        def double_feed(cmd: GcodeCommand) -> GcodeCommand:
            f = cmd.get("F")
            if cmd.is_move and f:
                return cmd.with_params(F=f * 2.0)
            return cmd

        slow = simulate_print(square_program(feed=1500), ULTIMAKER3, NO_TIME_NOISE)
        fast = Firmware(ULTIMAKER3, NO_TIME_NOISE, transformer=double_feed).run(
            square_program(feed=1500)
        )
        assert fast.duration < slow.duration


class TestPositioningModes:
    def test_g91_relative_moves(self):
        program = parse_gcode(
            ["G91", "G1 X10 F3000", "G1 X10 F3000", "G1 Y5 F3000"]
        )
        trace = simulate_print(program, ULTIMAKER3, NO_TIME_NOISE)
        assert np.allclose(trace.position[-1], [20.0, 5.0, 0.0], atol=1e-6)

    def test_g90_restores_absolute(self):
        program = parse_gcode(
            ["G91", "G1 X10 F3000", "G90", "G1 X5 F3000"]
        )
        trace = simulate_print(program, ULTIMAKER3, NO_TIME_NOISE)
        assert trace.position[-1, 0] == pytest.approx(5.0, abs=1e-6)

    def test_m83_relative_extruder(self):
        program = parse_gcode(
            ["G92 E0", "M83", "G1 X10 E1 F3000", "G1 X20 E1 F3000"]
        )
        trace = simulate_print(program, ULTIMAKER3, NO_TIME_NOISE)
        total_e = np.trapezoid(trace.extrusion_rate, trace.times)
        assert total_e == pytest.approx(2.0, rel=0.05)

    def test_m82_restores_absolute_extruder(self):
        program = parse_gcode(
            ["G92 E0", "M83", "G1 X10 E1 F3000", "M82", "G1 X20 E3 F3000"]
        )
        trace = simulate_print(program, ULTIMAKER3, NO_TIME_NOISE)
        total_e = np.trapezoid(trace.extrusion_rate, trace.times)
        assert total_e == pytest.approx(3.0, rel=0.05)

    def test_g91_affects_e_too(self):
        program = parse_gcode(
            ["G92 E0", "G91", "G1 X10 E1 F3000", "G1 X10 E1 F3000"]
        )
        trace = simulate_print(program, ULTIMAKER3, NO_TIME_NOISE)
        total_e = np.trapezoid(trace.extrusion_rate, trace.times)
        assert total_e == pytest.approx(2.0, rel=0.05)
