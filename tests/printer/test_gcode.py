"""Unit tests for G-code parsing and serialization."""

import pytest

from repro.printer import GcodeCommand, GcodeProgram, parse_gcode, parse_line


class TestParseLine:
    def test_basic_move(self):
        c = parse_line("G1 X10 Y20.5 E0.4 F1200")
        assert c.code == "G1"
        assert c.params == {"X": 10.0, "Y": 20.5, "E": 0.4, "F": 1200.0}

    def test_comment_stripped_and_kept(self):
        c = parse_line("G28 ; go home")
        assert c.code == "G28"
        assert c.comment == "go home"

    def test_pure_comment_is_none(self):
        assert parse_line("; just a comment") is None

    def test_blank_is_none(self):
        assert parse_line("   ") is None

    def test_opcode_normalization(self):
        assert parse_line("G01 X1").code == "G1"
        assert parse_line("g1 x1").code == "G1"
        assert parse_line("M104 S200").code == "M104"

    def test_bad_opcode_rejected(self):
        with pytest.raises(ValueError):
            parse_line("X10 Y20")
        with pytest.raises(ValueError):
            parse_line("Gfoo X1")

    def test_bad_param_rejected(self):
        with pytest.raises(ValueError, match="parameter"):
            parse_line("G1 Xabc")

    def test_negative_values(self):
        c = parse_line("G1 X-5.5 Z-0.1")
        assert c.params["X"] == -5.5
        assert c.params["Z"] == -0.1


class TestGcodeCommand:
    def test_is_move(self):
        assert GcodeCommand("G0", {}).is_move
        assert GcodeCommand("G1", {}).is_move
        assert not GcodeCommand("G28", {}).is_move
        assert not GcodeCommand("M104", {}).is_move

    def test_get_default(self):
        c = GcodeCommand("G1", {"X": 1.0})
        assert c.get("X") == 1.0
        assert c.get("Y") is None
        assert c.get("Y", 9.0) == 9.0

    def test_with_params_copies(self):
        c = GcodeCommand("G1", {"X": 1.0, "F": 100.0})
        d = c.with_params(F=200.0)
        assert d.params["F"] == 200.0
        assert c.params["F"] == 100.0

    def test_to_line_roundtrip(self):
        c = parse_line("G1 X10.5 Y-2 F1200 ; note")
        rt = parse_line(c.to_line())
        assert rt.code == c.code
        assert rt.params == c.params
        assert rt.comment == c.comment

    def test_to_line_integer_formatting(self):
        c = GcodeCommand("G1", {"X": 10.0})
        assert "X10" in c.to_line()
        assert "X10.0" not in c.to_line()


class TestGcodeProgram:
    SOURCE = """
    ; header
    M104 S200
    G28
    G1 Z0.2 F6000
    G1 X10 Y10 E0.1 F1800
    G1 Z0.4 F6000
    G1 X20 Y20 E0.2 F1800
    """.strip().splitlines()

    def test_parse_program(self):
        p = parse_gcode(self.SOURCE)
        assert len(p) == 6
        assert p[0].code == "M104"

    def test_moves(self):
        p = parse_gcode(self.SOURCE)
        assert len(p.moves()) == 4

    def test_layer_starts(self):
        p = parse_gcode(self.SOURCE)
        starts = p.layer_starts()
        assert len(starts) == 2
        assert p[starts[0]].get("Z") == 0.2
        assert p[starts[1]].get("Z") == 0.4

    def test_layer_starts_ignore_non_increasing_z(self):
        p = GcodeProgram(
            [
                GcodeCommand("G1", {"Z": 0.4}),
                GcodeCommand("G1", {"Z": 0.2}),  # z hop down: not a layer
                GcodeCommand("G1", {"Z": 0.6}),
            ]
        )
        assert len(p.layer_starts()) == 2

    def test_text_roundtrip(self):
        p = parse_gcode(self.SOURCE)
        rt = GcodeProgram.from_text(p.to_text())
        assert len(rt) == len(p)
        assert all(a.code == b.code for a, b in zip(rt, p))

    def test_copy_is_independent(self):
        p = parse_gcode(self.SOURCE)
        q = p.copy()
        q.commands.pop()
        assert len(p) == 6
        assert len(q) == 5

    def test_iteration(self):
        p = parse_gcode(self.SOURCE)
        assert [c.code for c in p][:2] == ["M104", "G28"]
