#!/usr/bin/env python
"""Validate a decision-provenance event log (and optional Chrome trace).

Used by CI after running ``repro detect --events-out events.jsonl
--chrome-trace trace.json``: every JSONL record must satisfy event schema
v1 (:mod:`repro.obs.events`) with strictly increasing ``seq``, and the
Chrome trace must be a valid ``trace_event`` JSON document.

Usage::

    python scripts/validate_events.py events.jsonl
    python scripts/validate_events.py events.jsonl \
        --require-types window_evidence alarm run_summary \
        --chrome-trace trace.json

Exit status: 0 = valid, 1 = validation failure, 2 = bad input.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path
from typing import List, Optional, Sequence

# Runnable from a checkout without installation.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.obs import events  # noqa: E402


def _check_chrome_trace(path: Path) -> List[str]:
    """Structural checks on a Chrome/Perfetto trace_event JSON file."""
    problems: List[str] = []
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable trace JSON: {exc}"]
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return [f"{path}: missing 'traceEvents' key"]
    trace_events = doc["traceEvents"]
    if not isinstance(trace_events, list):
        return [f"{path}: 'traceEvents' is not a list"]
    for i, ev in enumerate(trace_events):
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in ev:
                problems.append(
                    f"{path}: traceEvents[{i}] missing {key!r}"
                )
                break
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("events_jsonl", help="JSONL event log to validate")
    parser.add_argument(
        "--require-types", nargs="*", default=[],
        help="event types that must appear at least once",
    )
    parser.add_argument(
        "--chrome-trace", default=None,
        help="also validate this Chrome trace_event JSON file",
    )
    args = parser.parse_args(argv)

    try:
        records = events.read_jsonl(args.events_jsonl, validate=True)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"invalid event log: {exc}", file=sys.stderr)
        return 1

    counts = Counter(r["type"] for r in records)
    missing = [t for t in args.require_types if counts[t] == 0]
    if missing:
        print(
            f"invalid event log: required event types never emitted: "
            f"{missing} (saw {dict(counts)})",
            file=sys.stderr,
        )
        return 1

    problems: List[str] = []
    if args.chrome_trace:
        problems = _check_chrome_trace(Path(args.chrome_trace))
        for problem in problems:
            print(f"invalid chrome trace: {problem}", file=sys.stderr)

    if problems:
        return 1
    summary = ", ".join(f"{t}×{n}" for t, n in sorted(counts.items()))
    print(f"ok: {len(records)} events valid (schema v1): {summary}")
    if args.chrome_trace:
        print(f"ok: {args.chrome_trace} is a valid trace_event document")
    return 0


if __name__ == "__main__":
    sys.exit(main())
