#!/usr/bin/env python
"""Validate a Prometheus telemetry scrape against the repo's contract.

Used by CI after scraping ``/metrics`` from a streaming ``repro detect``
run (or after reading a ``.prom`` snapshot file).  Checks two things:

1. **Exposition-format syntax** (text format 0.0.4): metric names match
   ``[a-zA-Z_:][a-zA-Z0-9_:]*``, label names ``[a-zA-Z_][a-zA-Z0-9_]*``,
   sample values parse as floats (``NaN``/``+Inf``/``-Inf`` included),
   every sample's family was announced by a ``# TYPE`` line *above* it,
   and no family is announced twice.
2. **The per-stream schema**: every family in
   :data:`repro.obs.telemetry.STREAM_FAMILIES` is present, and — for
   each ``--require-stream ID`` — that stream has a sample in every
   family, including the three chunk-latency quantile series.

Usage::

    python scripts/validate_telemetry.py scrape.prom
    python scripts/validate_telemetry.py scrape.prom \
        --require-stream printer-A --min-chunks 2

Exit status: 0 = valid, 1 = validation failure, 2 = bad input.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

# Runnable from a checkout without installation.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.obs.telemetry import STREAM_FAMILIES  # noqa: E402

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<ts>-?\d+))?$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

#: The families a summary renders under its announced name.
_SUMMARY_SUFFIXES = ("", "_count", "_sum")


def _family_of(name: str, types: Dict[str, str]) -> Optional[str]:
    """The announced family a sample name belongs to, if any."""
    if name in types:
        return name
    for suffix in ("_count", "_sum"):
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            base = name[: -len(suffix)]
            if types[base] == "summary":
                return base
    return None


def parse_exposition(
    text: str,
) -> Tuple[List[str], Dict[str, str], List[Tuple[str, Dict[str, str], str]]]:
    """Parse exposition text → (problems, family types, samples).

    Samples are ``(name, labels, value)`` triples; validation problems
    are collected rather than raised so CI reports all of them at once.
    """
    problems: List[str] = []
    types: Dict[str, str] = {}
    samples: List[Tuple[str, Dict[str, str], str]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.rstrip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                problems.append(f"line {lineno}: malformed TYPE line")
                continue
            _, _, name, mtype = parts
            if not _METRIC_NAME.match(name):
                problems.append(
                    f"line {lineno}: bad metric name {name!r}"
                )
            if mtype not in ("counter", "gauge", "summary", "histogram",
                            "untyped"):
                problems.append(
                    f"line {lineno}: unknown metric type {mtype!r}"
                )
            if name in types:
                problems.append(
                    f"line {lineno}: family {name!r} announced twice"
                )
            types[name] = mtype
            continue
        if line.startswith("#"):
            continue  # HELP and comments are free-form
        m = _SAMPLE.match(line)
        if not m:
            problems.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        name = m.group("name")
        family = _family_of(name, types)
        if family is None:
            problems.append(
                f"line {lineno}: sample {name!r} has no preceding"
                f" # TYPE announcement"
            )
        labels: Dict[str, str] = {}
        raw_labels = m.group("labels")
        if raw_labels:
            consumed = 0
            for lm in _LABEL.finditer(raw_labels):
                labels[lm.group(1)] = lm.group(2)
                consumed = lm.end()
            remainder = raw_labels[consumed:].strip().strip(",")
            if remainder:
                problems.append(
                    f"line {lineno}: malformed labels {raw_labels!r}"
                )
            for label in labels:
                if not _LABEL_NAME.match(label):
                    problems.append(
                        f"line {lineno}: bad label name {label!r}"
                    )
        value = m.group("value")
        try:
            float(value)  # accepts NaN / +Inf / -Inf
        except ValueError:
            problems.append(
                f"line {lineno}: non-numeric sample value {value!r}"
            )
        samples.append((name, labels, value))
    return problems, types, samples


def check_stream_schema(
    types: Dict[str, str],
    samples: List[Tuple[str, Dict[str, str], str]],
    require_streams: Sequence[str],
    min_chunks: int,
) -> List[str]:
    """Contract checks: every stream family present, required ids covered."""
    problems: List[str] = []
    for family, mtype, _help in STREAM_FAMILIES:
        if family not in types:
            problems.append(f"missing # TYPE for family {family!r}")
        elif types[family] != mtype:
            problems.append(
                f"family {family!r} announced as {types[family]!r}, "
                f"contract says {mtype!r}"
            )

    by_family: Dict[str, List[Tuple[Dict[str, str], str]]] = {}
    for name, labels, value in samples:
        by_family.setdefault(name, []).append((labels, value))

    for stream in require_streams:
        for family, mtype, _help in STREAM_FAMILIES:
            rows = [
                (labels, value)
                for labels, value in by_family.get(family, [])
                if labels.get("stream") == stream
            ]
            if not rows:
                problems.append(
                    f"stream {stream!r}: no sample in family {family!r}"
                )
                continue
            if family == "repro_stream_chunk_latency_seconds":
                quantiles = {labels.get("quantile") for labels, _ in rows}
                for q in ("0.5", "0.95", "0.99"):
                    if q not in quantiles:
                        problems.append(
                            f"stream {stream!r}: chunk-latency quantile"
                            f" {q!r} missing (saw {sorted(quantiles)})"
                        )
                count_rows = [
                    (labels, value)
                    for labels, value in by_family.get(f"{family}_count", [])
                    if labels.get("stream") == stream
                ]
                if not count_rows:
                    problems.append(
                        f"stream {stream!r}: {family}_count missing"
                    )
        chunk_rows = [
            float(value)
            for labels, value in by_family.get("repro_stream_chunks_total", [])
            if labels.get("stream") == stream
        ]
        if chunk_rows and chunk_rows[0] < min_chunks:
            problems.append(
                f"stream {stream!r}: only {chunk_rows[0]:g} chunks scored,"
                f" expected >= {min_chunks} — scrape raced the run?"
            )
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "scrape", help="Prometheus text-format file (a /metrics scrape)"
    )
    parser.add_argument(
        "--require-stream", action="append", default=[], metavar="ID",
        help="stream id that must have a sample in every stream family "
        "(repeatable)",
    )
    parser.add_argument(
        "--min-chunks", type=int, default=1, metavar="N",
        help="minimum repro_stream_chunks_total per required stream "
        "(default 1)",
    )
    args = parser.parse_args(argv)

    try:
        text = Path(args.scrape).read_text()
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    problems, types, samples = parse_exposition(text)
    problems += check_stream_schema(
        types, samples, args.require_stream, args.min_chunks
    )
    if problems:
        for problem in problems:
            print(f"invalid telemetry: {problem}", file=sys.stderr)
        return 1

    n_streams = len(
        {
            labels.get("stream")
            for name, labels, _ in samples
            if name == "repro_stream_up"
        }
    )
    print(
        f"ok: {len(samples)} samples in {len(types)} families valid "
        f"(exposition 0.0.4), {n_streams} stream(s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
