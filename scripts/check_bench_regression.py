#!/usr/bin/env python
"""Fail CI when benchmark timings regress past a tolerance.

``benchmarks/results/BENCH_campaign.json`` is an append-only history: the
committed baseline records come first and every benchmark run appends fresh
records (see ``benchmarks/conftest.py``).  This script compares, for each
record ``name``, the **first** (committed baseline) against the **last**
(just-measured) record and fails when a lower-is-better field — wall-clock
timings and latency percentiles such as ``streaming_chunk_p99_ms`` —
slowed down by more than ``--tolerance`` (default 25%), or a
higher-is-better field (``*speedup*`` or ``*samples_per_s*``) dropped by
more than the same tolerance.  Fields in ``INFORMATIONAL_FIELDS`` (memory
ceilings such as ``peak_rss_mb``) are shown with an ``info`` verdict for
trend inspection but never fail the gate.
``benchmarks/results/BENCH_engine_throughput.json`` (the engine
samples/s/core history) and ``benchmarks/results/BENCH_serve.json`` (the
fleet service ingest history — p99 ingest latency lower-is-better,
``serve_samples_per_s`` and ``streams_per_core`` higher-is-better) are
gated with the same invocation, just different path arguments.

Cross-machine safety: when baseline and current report different
``cpu_count`` values, absolute fields — wall-clock timings *and*
``samples_per_s`` throughput — are skipped and only machine-relative
``*speedup*`` ratios are compared.

Two-file mode (``--baseline`` + ``--current``) compares the last record per
name of each file instead — useful for comparing artifacts of two CI runs.

Several history files can be gated in one invocation; each is checked
independently and summarized on its own line, and the exit status is the
worst across all of them.

Usage::

    python scripts/check_bench_regression.py                      # CI gate
    python scripts/check_bench_regression.py --tolerance 0.10
    python scripts/check_bench_regression.py \
        benchmarks/results/BENCH_campaign.json \
        benchmarks/results/BENCH_engine_throughput.json
    python scripts/check_bench_regression.py \
        --baseline old.json --current new.json

Exit status: 0 = ok (including "nothing to compare"), 1 = regression,
2 = bad input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

DEFAULT_PATH = (
    Path(__file__).resolve().parent.parent
    / "benchmarks" / "results" / "BENCH_campaign.json"
)

#: Bookkeeping fields that are not performance measurements.  The
#: ``*_cold_*`` throughput fields are excluded on purpose: cold numbers are
#: dominated by one-time allocation/dispatch costs and are too noisy to
#: gate; only the warm steady-state throughput is regression-checked.
#: ``streaming_chunk_p50_ms`` is recorded for trend inspection but not
#: gated — the median of a sub-millisecond loop body wobbles with CPU
#: frequency scaling; the tail (``streaming_chunk_p99_ms``) is the latency
#: SLO and *is* gated, as lower-is-better.  The serve history follows the
#: same convention: ``ingest_p50_ms`` is informational, ``ingest_p99_ms``
#: is the gated ingest SLO, and the workload-shape fields (stream/chunk
#: counts, shard layout, verify bookkeeping) are not measurements at all.
NON_TIMING_FIELDS = frozenset(
    {"name", "time", "workers", "cpu_count",
     "cache_hits", "cache_misses", "simulated",
     "streaming_cold_samples_per_s", "batch_cold_samples_per_s",
     "streaming_chunk_p50_ms",
     "disabled_obs_overhead", "hot_path_obs_calls",
     "chunk_samples", "n_samples", "sample_rate",
     "n_streams", "shards", "cores_used", "pace",
     "total_samples", "total_chunks",
     "ingest_p50_ms", "resumes", "verified", "mismatches"}
)

#: Lower-is-better trend fields that are *displayed* but never gated.
#: ``peak_rss_mb`` (the paper-scale nightly's resident-set ceiling) depends
#: on allocator behaviour and page-cache pressure, which vary too much
#: across runners to fail CI on — the verdict column shows ``info`` so a
#: creeping trend is still visible in the gate output.
INFORMATIONAL_FIELDS = frozenset({"peak_rss_mb"})

#: Baselines smaller than this are noise-level; ratios would be garbage.
MIN_BASELINE = 1e-6


def load_history(path: Path) -> List[Dict[str, object]]:
    try:
        history = json.loads(path.read_text())
    except OSError as exc:
        raise SystemExit(f"cannot read {path}: {exc}")
    except ValueError as exc:
        raise SystemExit(f"{path} is not valid JSON: {exc}")
    if not isinstance(history, list):
        raise SystemExit(f"{path}: expected a JSON list of records")
    return [r for r in history if isinstance(r, dict) and "name" in r]


def by_name(history: Sequence[Dict[str, object]]) -> Dict[str, List[dict]]:
    grouped: Dict[str, List[dict]] = {}
    for record in history:
        grouped.setdefault(str(record["name"]), []).append(record)
    return grouped


def comparable_fields(baseline: dict, current: dict) -> List[str]:
    """Shared numeric measurement fields of two records."""
    fields = []
    for key in baseline:
        if key in NON_TIMING_FIELDS or key not in current:
            continue
        b, c = baseline[key], current[key]
        if isinstance(b, (int, float)) and isinstance(c, (int, float)):
            fields.append(key)
    return sorted(fields)


def check_pair(
    name: str, baseline: dict, current: dict, tolerance: float
) -> List[Tuple[str, str, float, float, float, str]]:
    """Rows of (name, field, baseline, current, ratio, verdict).

    When the two records report different ``cpu_count`` values they were
    measured on differently shaped machines, so absolute wall-clock fields
    are not comparable; only the machine-relative ``*speedup*`` ratios are
    checked in that case.
    """
    same_machine = (
        baseline.get("cpu_count") is not None
        and baseline.get("cpu_count") == current.get("cpu_count")
    )
    rows = []
    for field in comparable_fields(baseline, current):
        if not same_machine and "speedup" not in field:
            continue
        b = float(baseline[field])
        c = float(current[field])
        if b < MIN_BASELINE:
            continue
        ratio = c / b
        # Everything else — wall-clock timings and latency percentiles
        # (the ``*_ms`` fields, e.g. streaming_chunk_p99_ms) — is gated
        # lower-is-better: the current value may exceed baseline by at
        # most the tolerance.
        higher_is_better = (
            "speedup" in field
            or "samples_per_s" in field
            or "streams_per_core" in field
        )
        if field in INFORMATIONAL_FIELDS:
            verdict = "info"
        elif higher_is_better:
            verdict = "ok" if ratio >= 1.0 - tolerance else "FAIL"
        else:
            verdict = "ok" if ratio <= 1.0 + tolerance else "FAIL"
        rows.append((name, field, b, c, ratio, verdict))
    return rows


def run_one(
    path: Path,
    tolerance: float,
    baseline_path: Optional[Path] = None,
    current_path: Optional[Path] = None,
) -> int:
    """Gate one history file (or one --baseline/--current pair)."""
    pairs: List[Tuple[str, dict, dict]] = []
    if baseline_path is not None and current_path is not None:
        base = by_name(load_history(baseline_path))
        cur = by_name(load_history(current_path))
        for name in sorted(set(base) & set(cur)):
            pairs.append((name, base[name][-1], cur[name][-1]))
        skipped = sorted(set(base) ^ set(cur))
    else:
        grouped = by_name(load_history(path))
        for name in sorted(grouped):
            records = grouped[name]
            if len(records) >= 2:
                pairs.append((name, records[0], records[-1]))
        skipped = sorted(n for n, r in grouped.items() if len(r) < 2)

    for name in skipped:
        print(f"note: '{name}' has no baseline/current pair; skipped")
    if not pairs:
        print("nothing to compare (no record name appears in both "
              "baseline and current) — passing")
        return 0

    rows: List[Tuple[str, str, float, float, float, str]] = []
    for name, baseline, current in pairs:
        rows.extend(check_pair(name, baseline, current, tolerance))

    width = max(len(f"{n}.{f}") for n, f, *_ in rows) if rows else 10
    print(f"{'metric'.ljust(width)}  {'baseline':>12}  {'current':>12}  "
          f"{'ratio':>7}  verdict")
    failed = False
    for name, field, b, c, ratio, verdict in rows:
        failed = failed or verdict == "FAIL"
        print(f"{f'{name}.{field}'.ljust(width)}  {b:12.4f}  {c:12.4f}  "
              f"{ratio:7.3f}  {verdict}")
    if failed:
        print(f"\nFAIL: regression beyond {tolerance:.0%} tolerance")
        return 1
    print(f"\nok: all benchmarks within {tolerance:.0%} tolerance")
    return 0


def run(
    paths: Sequence[Path],
    tolerance: float,
    baseline_path: Optional[Path] = None,
    current_path: Optional[Path] = None,
) -> int:
    """Gate every history file; summarize each; return the worst status."""
    if (baseline_path is None) != (current_path is None):
        print("--baseline and --current must be given together",
              file=sys.stderr)
        return 2
    if baseline_path is not None:
        code = run_one(paths[0], tolerance, baseline_path, current_path)
        verdict = "ok" if code == 0 else "FAIL"
        print(f"summary: {baseline_path} vs {current_path}: {verdict}")
        return code

    worst = 0
    summaries: List[str] = []
    for k, path in enumerate(paths):
        if k:
            print()
        print(f"== {path} ==")
        code = run_one(path, tolerance)
        worst = max(worst, code)
        summaries.append(f"summary: {path}: {'ok' if code == 0 else 'FAIL'}")
    print()
    for line in summaries:
        print(line)
    return worst


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare benchmark records against the committed "
                    "baseline and fail on regression."
    )
    parser.add_argument(
        "paths", nargs="*", default=[DEFAULT_PATH], type=Path,
        metavar="path",
        help="append-only BENCH_*.json histories, each gated independently "
             "(default: benchmarks/results/BENCH_campaign.json)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional slowdown before failing (default 0.25)",
    )
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline history file (two-file mode)")
    parser.add_argument("--current", type=Path, default=None,
                        help="current history file (two-file mode)")
    args = parser.parse_args(argv)
    if args.tolerance < 0:
        parser.error(f"tolerance must be >= 0, got {args.tolerance}")
    return run(args.paths, args.tolerance, args.baseline, args.current)


if __name__ == "__main__":
    sys.exit(main())
