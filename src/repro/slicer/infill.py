"""Infill pattern generation.

Two patterns matter for the paper's evaluation: the default **lines**
infill (parallel lines whose angle alternates 90 degrees between layers)
and the **grid** infill that the InfillGrid attack switches to (both
directions in every layer, at double spacing, so material use stays
comparable while the motion signature changes).

Two more real-slicer patterns extend the attack surface beyond Table I:
**triangles** (three line families at 60 degrees) and **concentric**
(inward offsets of the outline — implemented as scaled copies about the
centroid, exact for star-shaped parts like the gear).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .geometry import bounding_box, clip_segments, polygon_centroid

__all__ = [
    "line_infill",
    "grid_infill",
    "triangle_infill",
    "concentric_infill",
    "infill_for_layer",
    "INFILL_PATTERNS",
]

Segment = Tuple[np.ndarray, np.ndarray]


def line_infill(
    outline: np.ndarray, spacing: float, angle_deg: float
) -> List[Segment]:
    """Parallel infill lines clipped to the outline.

    Lines are spaced ``spacing`` mm apart, rotated ``angle_deg`` from the X
    axis, and returned boustrophedon-ordered (alternating direction) so the
    print head zig-zags instead of jumping back, like real slicers.
    """
    if spacing <= 0:
        raise ValueError(f"spacing must be positive, got {spacing}")
    lo, hi = bounding_box(outline)
    centre = (lo + hi) / 2.0
    half_diag = float(np.linalg.norm(hi - lo)) / 2.0 + spacing

    theta = np.deg2rad(angle_deg)
    direction = np.array([np.cos(theta), np.sin(theta)])
    normal = np.array([-np.sin(theta), np.cos(theta)])

    n_lines = int(np.floor(2.0 * half_diag / spacing)) + 1
    offsets = (np.arange(n_lines) - (n_lines - 1) / 2.0) * spacing

    segments: List[Segment] = []
    for row, offset in enumerate(offsets):
        anchor = centre + normal * offset
        p0 = anchor - direction * half_diag
        p1 = anchor + direction * half_diag
        clipped = clip_segments(outline, p0, p1)
        if row % 2 == 1:
            clipped = [(b, a) for a, b in reversed(clipped)]
        segments.extend(clipped)
    return segments


def grid_infill(outline: np.ndarray, spacing: float, angle_deg: float = 45.0) -> List[Segment]:
    """Two perpendicular line families in the same layer.

    Spacing per family is doubled so the total extruded length roughly
    matches a lines infill of the same nominal density.
    """
    first = line_infill(outline, spacing * 2.0, angle_deg)
    second = line_infill(outline, spacing * 2.0, angle_deg + 90.0)
    return first + second


def triangle_infill(
    outline: np.ndarray, spacing: float, angle_deg: float = 45.0
) -> List[Segment]:
    """Three line families 60 degrees apart (triple spacing per family)."""
    segments: List[Segment] = []
    for k in range(3):
        segments.extend(
            line_infill(outline, spacing * 3.0, angle_deg + 60.0 * k)
        )
    return segments


def concentric_infill(
    outline: np.ndarray, spacing: float, min_scale: float = 0.08
) -> List[Segment]:
    """Inward copies of the outline, ``spacing`` apart at the widest point.

    Each ring is the outline scaled about its centroid — exact concentric
    offsetting for star-shaped outlines, which covers every part model in
    :mod:`repro.slicer.models`.  Rings are emitted as closed chains of
    segments so the slicer prints them continuously.
    """
    if spacing <= 0:
        raise ValueError(f"spacing must be positive, got {spacing}")
    centre = polygon_centroid(outline)
    max_radius = float(np.max(np.linalg.norm(outline - centre, axis=1)))
    if max_radius <= 0:
        return []
    segments: List[Segment] = []
    scale = 1.0 - spacing / max_radius
    while scale > min_scale:
        ring = centre + scale * (outline - centre)
        for i in range(ring.shape[0]):
            segments.append((ring[i], ring[(i + 1) % ring.shape[0]]))
        scale -= spacing / max_radius
    return segments


#: Pattern names accepted by :class:`~repro.slicer.slicer.SlicerConfig`.
INFILL_PATTERNS = ("lines", "grid", "triangles", "concentric")


def infill_for_layer(
    outline: np.ndarray,
    spacing: float,
    layer: int,
    pattern: str = "lines",
    base_angle: float = 45.0,
) -> List[Segment]:
    """Dispatch on the pattern name used by :class:`SlicerConfig`."""
    if pattern == "lines":
        angle = base_angle + (90.0 if layer % 2 else 0.0)
        return line_infill(outline, spacing, angle)
    if pattern == "grid":
        return grid_infill(outline, spacing, base_angle)
    if pattern == "triangles":
        return triangle_infill(outline, spacing, base_angle)
    if pattern == "concentric":
        return concentric_infill(outline, spacing)
    raise ValueError(
        f"unknown infill pattern {pattern!r}; expected one of {INFILL_PATTERNS}"
    )
