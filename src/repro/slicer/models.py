"""Parametric 2-D part outlines to slice.

The paper's workload is a 60 mm diameter, 7.5 mm thick gear.  We provide
that gear (teeth as a trapezoidal radial modulation of the pitch circle — a
visually and kinematically faithful stand-in for an involute profile) plus a
few simpler shapes used in examples and tests.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gear_outline", "circle_outline", "square_outline", "PAPER_GEAR"]


def gear_outline(
    n_teeth: int = 20,
    outer_diameter: float = 60.0,
    tooth_depth: float = 3.0,
    points_per_tooth: int = 12,
) -> np.ndarray:
    """Outline of a spur gear centred at the origin.

    The radius alternates between the root and tip circles with a
    trapezoidal profile per tooth, giving the sliced perimeter the rich
    direction-change structure that makes gear prints such distinctive
    side-channel sources.
    """
    if n_teeth < 3:
        raise ValueError(f"need at least 3 teeth, got {n_teeth}")
    if outer_diameter <= 0:
        raise ValueError(f"outer_diameter must be positive, got {outer_diameter}")
    if not 0 < tooth_depth < outer_diameter / 2:
        raise ValueError("tooth_depth must be in (0, outer radius)")
    if points_per_tooth < 4:
        raise ValueError(f"points_per_tooth must be >= 4, got {points_per_tooth}")

    r_tip = outer_diameter / 2.0
    r_root = r_tip - tooth_depth
    n_points = n_teeth * points_per_tooth
    theta = np.linspace(0.0, 2.0 * np.pi, n_points, endpoint=False)

    # Trapezoid wave over one tooth period: root -> flank -> tip -> flank.
    phase = (theta * n_teeth / (2.0 * np.pi)) % 1.0
    radius = np.empty_like(phase)
    rise, top, fall = 0.15, 0.35, 0.15  # fractions of the tooth period
    for i, p in enumerate(phase):
        if p < rise:
            frac = p / rise
        elif p < rise + top:
            frac = 1.0
        elif p < rise + top + fall:
            frac = 1.0 - (p - rise - top) / fall
        else:
            frac = 0.0
        radius[i] = r_root + frac * (r_tip - r_root)

    return np.column_stack([radius * np.cos(theta), radius * np.sin(theta)])


def circle_outline(diameter: float = 20.0, n_points: int = 64) -> np.ndarray:
    """Regular polygon approximating a circle."""
    if diameter <= 0:
        raise ValueError(f"diameter must be positive, got {diameter}")
    if n_points < 3:
        raise ValueError(f"n_points must be >= 3, got {n_points}")
    theta = np.linspace(0.0, 2.0 * np.pi, n_points, endpoint=False)
    r = diameter / 2.0
    return np.column_stack([r * np.cos(theta), r * np.sin(theta)])


def square_outline(side: float = 20.0) -> np.ndarray:
    """Axis-aligned square centred at the origin."""
    if side <= 0:
        raise ValueError(f"side must be positive, got {side}")
    h = side / 2.0
    return np.array([[-h, -h], [h, -h], [h, h], [-h, h]])


#: The evaluation part: 60 mm gear (thickness is set by the slicer config).
PAPER_GEAR = gear_outline(n_teeth=20, outer_diameter=60.0, tooth_depth=3.0)
