"""Slicer: 2-D outline + configuration -> G-code program.

A deliberately small but real slicer: per layer it prints the perimeter
loop, then the infill (lines or grid, with travel moves between segments),
tracking the extruder axis ``E`` from the deposited path length.  The
configuration exposes exactly the knobs the paper's five attacks manipulate:
layer height, infill pattern, print speed, and object scale.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

import numpy as np

from ..printer.gcode import GcodeCommand, GcodeProgram
from .geometry import scale_polygon
from .infill import infill_for_layer

__all__ = ["SlicerConfig", "Slicer", "slice_model"]


@dataclass(frozen=True)
class SlicerConfig:
    """Print settings (defaults loosely follow Cura's 0.2 mm profile).

    ``object_height`` (mm) and ``layer_height`` (mm) determine the layer
    count; ``print_speed`` / ``travel_speed`` are mm/s; ``infill_spacing``
    is the line-to-line distance in mm; ``extrusion_per_mm`` converts
    deposited path length to filament E-axis millimetres.
    """

    layer_height: float = 0.2
    object_height: float = 7.5
    print_speed: float = 40.0
    travel_speed: float = 120.0
    infill_spacing: float = 4.0
    infill_pattern: str = "lines"
    infill_base_angle: float = 45.0
    extrusion_per_mm: float = 0.033
    scale: float = 1.0
    hotend_temp: float = 205.0
    bed_temp: float = 60.0
    fan_from_layer: int = 2

    def __post_init__(self) -> None:
        if self.layer_height <= 0:
            raise ValueError(f"layer_height must be positive, got {self.layer_height}")
        if self.object_height < self.layer_height:
            raise ValueError("object_height must be at least one layer_height")
        if self.print_speed <= 0 or self.travel_speed <= 0:
            raise ValueError("speeds must be positive")
        if self.infill_spacing <= 0:
            raise ValueError(f"infill_spacing must be positive, got {self.infill_spacing}")
        from .infill import INFILL_PATTERNS

        if self.infill_pattern not in INFILL_PATTERNS:
            raise ValueError(
                f"unknown infill pattern {self.infill_pattern!r}; "
                f"expected one of {INFILL_PATTERNS}"
            )
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")

    @property
    def n_layers(self) -> int:
        """Number of layers for the configured object height."""
        return max(1, int(round(self.object_height / self.layer_height)))

    def with_updates(self, **updates) -> "SlicerConfig":
        """A copy with some settings replaced (attack helper)."""
        return replace(self, **updates)


class Slicer:
    """Turns a 2-D outline into a printable G-code program."""

    def __init__(self, config: Optional[SlicerConfig] = None) -> None:
        self.config = config or SlicerConfig()

    # ------------------------------------------------------------------
    def slice(self, outline: np.ndarray, center=(110.0, 110.0)) -> GcodeProgram:
        """Produce the full program: preamble, layers, shutdown."""
        cfg = self.config
        outline = scale_polygon(np.asarray(outline, dtype=np.float64), cfg.scale)
        outline = outline + np.asarray(center, dtype=np.float64)

        commands: List[GcodeCommand] = list(self._preamble())
        e = 0.0
        for layer in range(cfg.n_layers):
            z = cfg.layer_height * (layer + 1)
            commands.append(
                GcodeCommand(
                    "G1",
                    {"Z": round(z, 5), "F": cfg.travel_speed * 60.0},
                    comment=f"LAYER:{layer}",
                )
            )
            if layer == cfg.fan_from_layer:
                commands.append(GcodeCommand("M106", {"S": 255.0}))
            e, layer_cmds = self._layer_commands(outline, layer, e)
            commands.extend(layer_cmds)
        commands.extend(self._shutdown())
        return GcodeProgram(commands)

    # ------------------------------------------------------------------
    def _preamble(self) -> List[GcodeCommand]:
        cfg = self.config
        return [
            GcodeCommand("M140", {"S": cfg.bed_temp}),
            GcodeCommand("M104", {"S": cfg.hotend_temp}),
            GcodeCommand("M190", {"S": cfg.bed_temp}),
            GcodeCommand("M109", {"S": cfg.hotend_temp}),
            GcodeCommand("G28", {}, comment="home"),
            GcodeCommand("G92", {"E": 0.0}),
        ]

    def _shutdown(self) -> List[GcodeCommand]:
        return [
            GcodeCommand("M107", {}),
            GcodeCommand("M104", {"S": 0.0}),
            GcodeCommand("M140", {"S": 0.0}),
            GcodeCommand("G28", {}, comment="park"),
        ]

    def _layer_commands(
        self, outline: np.ndarray, layer: int, e: float
    ) -> tuple:
        cfg = self.config
        commands: List[GcodeCommand] = []
        print_f = cfg.print_speed * 60.0
        travel_f = cfg.travel_speed * 60.0

        def travel(point: np.ndarray) -> None:
            commands.append(
                GcodeCommand(
                    "G0",
                    {"X": round(point[0], 4), "Y": round(point[1], 4), "F": travel_f},
                )
            )

        def extrude_to(point: np.ndarray, start: np.ndarray) -> None:
            nonlocal e
            e += float(np.linalg.norm(point - start)) * cfg.extrusion_per_mm
            commands.append(
                GcodeCommand(
                    "G1",
                    {
                        "X": round(point[0], 4),
                        "Y": round(point[1], 4),
                        "E": round(e, 5),
                        "F": print_f,
                    },
                )
            )

        # Perimeter loop.
        travel(outline[0])
        position = outline[0]
        for vertex in list(outline[1:]) + [outline[0]]:
            extrude_to(vertex, position)
            position = vertex

        # Infill.
        segments = infill_for_layer(
            outline,
            cfg.infill_spacing,
            layer,
            pattern=cfg.infill_pattern,
            base_angle=cfg.infill_base_angle,
        )
        for start, end in segments:
            travel(start)
            extrude_to(end, start)
        return e, commands


def slice_model(
    outline: np.ndarray,
    config: Optional[SlicerConfig] = None,
    center=(110.0, 110.0),
) -> GcodeProgram:
    """Functional shortcut: slice ``outline`` with ``config``."""
    return Slicer(config).slice(outline, center)
