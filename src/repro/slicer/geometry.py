"""Minimal 2-D polygon geometry for the slicer.

Polygons are ``(n, 2)`` float arrays of vertices in counter-clockwise order,
implicitly closed.  The slicer only needs area/perimeter, affine transforms,
point containment (for sanity checks), and the clipping of straight infill
lines against a polygon boundary.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = [
    "polygon_area",
    "polygon_perimeter",
    "polygon_centroid",
    "scale_polygon",
    "translate_polygon",
    "point_in_polygon",
    "clip_segments",
    "bounding_box",
]


def _as_polygon(poly: np.ndarray) -> np.ndarray:
    poly = np.asarray(poly, dtype=np.float64)
    if poly.ndim != 2 or poly.shape[1] != 2 or poly.shape[0] < 3:
        raise ValueError(f"a polygon needs shape (n>=3, 2), got {poly.shape}")
    return poly


def polygon_area(poly: np.ndarray) -> float:
    """Signed shoelace area (positive for counter-clockwise winding)."""
    poly = _as_polygon(poly)
    x, y = poly[:, 0], poly[:, 1]
    return 0.5 * float(
        np.sum(x * np.roll(y, -1)) - np.sum(y * np.roll(x, -1))
    )


def polygon_perimeter(poly: np.ndarray) -> float:
    """Total boundary length, including the closing edge."""
    poly = _as_polygon(poly)
    edges = np.roll(poly, -1, axis=0) - poly
    return float(np.linalg.norm(edges, axis=1).sum())


def polygon_centroid(poly: np.ndarray) -> np.ndarray:
    """Area centroid of a simple polygon."""
    poly = _as_polygon(poly)
    x, y = poly[:, 0], poly[:, 1]
    xn, yn = np.roll(x, -1), np.roll(y, -1)
    cross = x * yn - xn * y
    area = cross.sum() / 2.0
    if abs(area) < 1e-12:
        return poly.mean(axis=0)
    cx = np.sum((x + xn) * cross) / (6.0 * area)
    cy = np.sum((y + yn) * cross) / (6.0 * area)
    return np.array([cx, cy])


def scale_polygon(poly: np.ndarray, factor: float) -> np.ndarray:
    """Scale about the centroid (the Scale0.95 attack uses this)."""
    poly = _as_polygon(poly)
    centre = polygon_centroid(poly)
    return centre + factor * (poly - centre)


def translate_polygon(poly: np.ndarray, offset) -> np.ndarray:
    """Translate by a 2-vector."""
    return _as_polygon(poly) + np.asarray(offset, dtype=np.float64)


def point_in_polygon(poly: np.ndarray, point) -> bool:
    """Even-odd-rule containment test."""
    poly = _as_polygon(poly)
    px, py = float(point[0]), float(point[1])
    inside = False
    n = poly.shape[0]
    for i in range(n):
        x1, y1 = poly[i]
        x2, y2 = poly[(i + 1) % n]
        if (y1 > py) != (y2 > py):
            x_cross = x1 + (py - y1) * (x2 - x1) / (y2 - y1)
            if px < x_cross:
                inside = not inside
    return inside


def bounding_box(poly: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """``(min_xy, max_xy)`` corners of the axis-aligned bounding box."""
    poly = _as_polygon(poly)
    return poly.min(axis=0), poly.max(axis=0)


def clip_segments(
    poly: np.ndarray, p0: np.ndarray, p1: np.ndarray
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Clip the infinite-line segment ``p0 -> p1`` against a polygon.

    Returns the sub-segments of ``p0..p1`` that lie inside the polygon, as
    ``(start, end)`` pairs ordered along the segment.  Uses even-odd
    crossing parity, so it also behaves sensibly for polygons with
    concavities (e.g. gear teeth).
    """
    poly = _as_polygon(poly)
    p0 = np.asarray(p0, dtype=np.float64)
    p1 = np.asarray(p1, dtype=np.float64)
    d = p1 - p0
    length = np.linalg.norm(d)
    if length < 1e-12:
        return []

    # Parametric intersections t in [0, 1] with every polygon edge.
    ts: List[float] = []
    n = poly.shape[0]
    for i in range(n):
        a = poly[i]
        b = poly[(i + 1) % n]
        e = b - a
        denom = d[0] * e[1] - d[1] * e[0]
        if abs(denom) < 1e-12:
            continue  # parallel
        diff = a - p0
        t = (diff[0] * e[1] - diff[1] * e[0]) / denom
        u = (diff[0] * d[1] - diff[1] * d[0]) / denom
        if 0.0 <= t <= 1.0 and 0.0 <= u < 1.0:
            ts.append(t)
    ts.sort()

    # Walk crossings; midpoint containment decides inside/outside of each
    # span, which is robust to tangential grazing.
    boundaries = [0.0] + ts + [1.0]
    segments: List[Tuple[np.ndarray, np.ndarray]] = []
    for t0, t1 in zip(boundaries[:-1], boundaries[1:]):
        if t1 - t0 < 1e-9:
            continue
        mid = p0 + d * ((t0 + t1) / 2.0)
        if point_in_polygon(poly, mid):
            segments.append((p0 + d * t0, p0 + d * t1))
    return segments
