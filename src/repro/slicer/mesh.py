"""Triangle meshes and STL: slicing real design models.

AM "makes objects directly from design models" (paper §II-A), and the
attacks of Sturm et al. [25] — the source of Void and Scale0.95 — operate
on the STL file.  This module closes that loop: load (ASCII or binary) STL,
slice the mesh at a Z plane into closed polygons, and feed those outlines
to :class:`~repro.slicer.slicer.Slicer`.

A mesh is ``(n_triangles, 3, 3)`` float array of vertices.  Helpers build
extruded prisms from 2-D outlines so parts defined either way (outline or
mesh) flow through the same pipeline.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import List, Union

import numpy as np

__all__ = [
    "extrude_outline",
    "load_stl",
    "save_stl",
    "slice_mesh",
    "mesh_bounds",
]

PathLike = Union[str, Path]
_EPS = 1e-9


# ---------------------------------------------------------------------------
# Construction
# ---------------------------------------------------------------------------
def extrude_outline(outline: np.ndarray, height: float) -> np.ndarray:
    """Extrude a 2-D polygon into a closed triangular prism mesh.

    Side walls are two triangles per edge; top and bottom caps are triangle
    fans around the centroid (valid for the star-shaped outlines our part
    models produce, gears included).
    """
    outline = np.asarray(outline, dtype=np.float64)
    if outline.ndim != 2 or outline.shape[1] != 2 or outline.shape[0] < 3:
        raise ValueError(f"outline must be (n>=3, 2), got {outline.shape}")
    if height <= 0:
        raise ValueError(f"height must be positive, got {height}")

    n = outline.shape[0]
    centroid = outline.mean(axis=0)
    bottom = np.column_stack([outline, np.zeros(n)])
    top = np.column_stack([outline, np.full(n, height)])
    c_bottom = np.array([centroid[0], centroid[1], 0.0])
    c_top = np.array([centroid[0], centroid[1], height])

    triangles: List[np.ndarray] = []
    for i in range(n):
        j = (i + 1) % n
        # side quad -> two triangles (outward winding)
        triangles.append(np.stack([bottom[i], bottom[j], top[j]]))
        triangles.append(np.stack([bottom[i], top[j], top[i]]))
        # caps
        triangles.append(np.stack([c_bottom, bottom[j], bottom[i]]))
        triangles.append(np.stack([c_top, top[i], top[j]]))
    return np.stack(triangles)


def mesh_bounds(mesh: np.ndarray) -> tuple:
    """``(min_xyz, max_xyz)`` of the mesh."""
    mesh = np.asarray(mesh, dtype=np.float64)
    flat = mesh.reshape(-1, 3)
    return flat.min(axis=0), flat.max(axis=0)


# ---------------------------------------------------------------------------
# STL I/O
# ---------------------------------------------------------------------------
def save_stl(mesh: np.ndarray, path: PathLike, name: str = "repro") -> None:
    """Write a binary STL (the compact, unambiguous variant)."""
    mesh = np.asarray(mesh, dtype=np.float64)
    if mesh.ndim != 3 or mesh.shape[1:] != (3, 3):
        raise ValueError(f"mesh must be (n, 3, 3), got {mesh.shape}")
    with open(path, "wb") as fh:
        header = name.encode("ascii", "replace")[:80]
        fh.write(header.ljust(80, b"\0"))
        fh.write(struct.pack("<I", mesh.shape[0]))
        for tri in mesh:
            edge1, edge2 = tri[1] - tri[0], tri[2] - tri[0]
            normal = np.cross(edge1, edge2)
            norm = np.linalg.norm(normal)
            normal = normal / norm if norm > _EPS else np.zeros(3)
            fh.write(struct.pack("<3f", *normal))
            for vertex in tri:
                fh.write(struct.pack("<3f", *vertex))
            fh.write(struct.pack("<H", 0))


def load_stl(path: PathLike) -> np.ndarray:
    """Read an STL file (binary or ASCII) into an ``(n, 3, 3)`` array."""
    raw = Path(path).read_bytes()
    if raw[:5] == b"solid" and b"facet" in raw[:1024]:
        return _parse_ascii_stl(raw.decode("ascii", "replace"))
    return _parse_binary_stl(raw)


def _parse_binary_stl(raw: bytes) -> np.ndarray:
    if len(raw) < 84:
        raise ValueError("binary STL truncated (no header)")
    (count,) = struct.unpack_from("<I", raw, 80)
    expected = 84 + count * 50
    if len(raw) < expected:
        raise ValueError(
            f"binary STL truncated: {count} triangles need {expected} bytes"
        )
    triangles = np.empty((count, 3, 3))
    offset = 84
    for t in range(count):
        values = struct.unpack_from("<12f", raw, offset)
        triangles[t] = np.asarray(values[3:]).reshape(3, 3)
        offset += 50
    return triangles


def _parse_ascii_stl(text: str) -> np.ndarray:
    triangles: List[List[List[float]]] = []
    current: List[List[float]] = []
    for line in text.splitlines():
        parts = line.split()
        if not parts:
            continue
        if parts[0] == "vertex":
            if len(parts) != 4:
                raise ValueError(f"malformed vertex line: {line!r}")
            current.append([float(parts[1]), float(parts[2]), float(parts[3])])
        elif parts[0] == "endfacet":
            if len(current) != 3:
                raise ValueError("facet without exactly 3 vertices")
            triangles.append(current)
            current = []
    if not triangles:
        raise ValueError("no facets found in ASCII STL")
    return np.asarray(triangles, dtype=np.float64)


# ---------------------------------------------------------------------------
# Slicing
# ---------------------------------------------------------------------------
def slice_mesh(mesh: np.ndarray, z: float) -> List[np.ndarray]:
    """Intersect the mesh with the plane ``Z = z``; return closed polygons.

    Each triangle crossing the plane contributes one segment; segments are
    stitched end-to-end into loops.  Returns one ``(n, 2)`` polygon per
    closed contour (outer boundaries and holes alike).
    """
    mesh = np.asarray(mesh, dtype=np.float64)
    if mesh.ndim != 3 or mesh.shape[1:] != (3, 3):
        raise ValueError(f"mesh must be (n, 3, 3), got {mesh.shape}")

    segments: List[tuple] = []
    for tri in mesh:
        points = _triangle_plane_intersection(tri, z)
        if points is not None:
            segments.append(points)
    if not segments:
        return []
    return _stitch_segments(segments)


def _triangle_plane_intersection(tri: np.ndarray, z: float):
    """The segment where a triangle crosses Z = z, or None."""
    heights = tri[:, 2] - z
    below = heights < -_EPS
    above = heights > _EPS
    if below.all() or above.all():
        return None
    crossings: List[np.ndarray] = []
    for i in range(3):
        j = (i + 1) % 3
        hi, hj = heights[i], heights[j]
        if (hi < -_EPS and hj > _EPS) or (hi > _EPS and hj < -_EPS):
            t = hi / (hi - hj)
            p = tri[i] + t * (tri[j] - tri[i])
            crossings.append(p[:2])
        elif abs(hi) <= _EPS and abs(hj) > _EPS:
            crossings.append(tri[i, :2])
    # Deduplicate (a vertex exactly on the plane appears twice).
    unique: List[np.ndarray] = []
    for p in crossings:
        if not any(np.linalg.norm(p - q) < 1e-7 for q in unique):
            unique.append(p)
    if len(unique) != 2:
        return None  # touching at a point or coplanar face: no segment
    return (unique[0], unique[1])


def _stitch_segments(segments: List[tuple], tol: float = 1e-6) -> List[np.ndarray]:
    """Chain segments that share endpoints into closed polygons."""
    remaining = list(segments)
    polygons: List[np.ndarray] = []
    while remaining:
        start, end = remaining.pop()
        chain = [np.asarray(start), np.asarray(end)]
        closed = False
        progress = True
        while progress and not closed:
            progress = False
            tail = chain[-1]
            for k, (a, b) in enumerate(remaining):
                a, b = np.asarray(a), np.asarray(b)
                if np.linalg.norm(a - tail) < tol:
                    chain.append(b)
                elif np.linalg.norm(b - tail) < tol:
                    chain.append(a)
                else:
                    continue
                remaining.pop(k)
                progress = True
                if np.linalg.norm(chain[-1] - chain[0]) < tol:
                    closed = True
                break
        if closed and len(chain) >= 4:
            polygons.append(np.asarray(chain[:-1]))
    return polygons
