"""Slicer substrate: geometry, part models, infill, G-code generation."""

from .geometry import (
    bounding_box,
    clip_segments,
    point_in_polygon,
    polygon_area,
    polygon_centroid,
    polygon_perimeter,
    scale_polygon,
    translate_polygon,
)
from .models import PAPER_GEAR, circle_outline, gear_outline, square_outline
from .infill import (
    INFILL_PATTERNS,
    concentric_infill,
    grid_infill,
    infill_for_layer,
    line_infill,
    triangle_infill,
)
from .slicer import Slicer, SlicerConfig, slice_model
from .mesh import extrude_outline, load_stl, mesh_bounds, save_stl, slice_mesh

__all__ = [
    "bounding_box",
    "clip_segments",
    "point_in_polygon",
    "polygon_area",
    "polygon_centroid",
    "polygon_perimeter",
    "scale_polygon",
    "translate_polygon",
    "PAPER_GEAR",
    "circle_outline",
    "gear_outline",
    "square_outline",
    "INFILL_PATTERNS",
    "concentric_infill",
    "grid_infill",
    "infill_for_layer",
    "line_infill",
    "triangle_infill",
    "Slicer",
    "SlicerConfig",
    "slice_model",
    "extrude_outline",
    "load_stl",
    "mesh_bounds",
    "save_stl",
    "slice_mesh",
]
