"""Command-line interface: ``python -m repro <command>``.

Four workflows cover the life of a deployment:

* ``slice``    — produce the benign (or attacked) G-code for a part;
* ``simulate`` — execute G-code on a simulated printer and record the
  side-channel signals to disk;
* ``train``    — build an NSYNC reference + thresholds from benign runs;
* ``detect``   — screen a recorded run against a trained model
  (``--stream --chunk-s S`` feeds the engine chunk by chunk instead of
  one batch push — identical verdict by the chunking-invariance
  property);
* ``campaign`` — run a scaled evaluation campaign and print the
  Table VIII-style row for one channel;
* ``faults``   — chaos-test the trained IDS by replaying the fault-injection
  matrix (:mod:`repro.faults`) against the batch and streaming detectors
  (exit status 1 when any graceful-degradation check fails);
* ``diff``     — lock-step differential validation of every vectorized
  hot path against its kept scalar reference over generated workloads
  (:mod:`repro.eval.diff`; exit status 1 + a replayable repro bundle on
  the first divergence);
* ``bench``    — measure detection-engine throughput on this machine;
* ``serve``    — run the fleet detection service: multiplex many live
  printer streams over a pool of checkpointed detection engines
  (:mod:`repro.serve`), with crash resume from atomic checkpoints and
  one shared telemetry endpoint;
* ``loadgen``  — replay a synthetic printer fleet against ``serve`` and
  report p50/p99 ingest latency, samples/s, and streams/core (with
  optional bit-identical offline verification);
* ``top``      — live terminal dashboard over the telemetry endpoint or
  snapshot file (:mod:`repro.obs.telemetry`): one row per detection
  stream with ingest lag, chunk-latency p50/p99, windows, quarantine /
  SENSOR_FAULT state and alerts.  Pair it with ``detect --stream
  --telemetry-port 9107`` (and optionally ``--pace 1`` for DAQ-realtime
  replay) in another terminal.

Every command accepting ``--trace``/``--metrics-out`` can record tracing
spans and pipeline metrics (see :mod:`repro.obs`): ``--trace`` turns the
instrumentation on (equivalent to ``REPRO_TRACE=1``), and
``--metrics-out PATH`` writes the metrics-registry snapshot as JSON when
the command finishes (implies ``--trace``).  ``--chrome-trace PATH``
additionally captures every span as a Chrome/Perfetto ``trace_event`` and
writes the trace JSON on exit (open it at https://ui.perfetto.dev).  With
``--workers > 0`` each worker records its own registry and the campaign
engine merges it back into the parent on task completion, so counters,
histograms, and span aggregates cover the whole pool; only the
Chrome-trace *event capture* stays per-process (use ``--workers 0`` for a
complete single-process trace timeline).

Forensics: ``detect --events-out events.jsonl`` records the structured
event log (schema v1, see :mod:`repro.obs.events`) — per-window evidence,
per-submodule alarms, and the run summary.  ``repro explain
events.jsonl --attack Speed0.95`` then joins the log with the simulated
machine trace to render a markdown incident report naming the implicated
G-code instruction span.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

__all__ = ["main", "build_parser"]


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------
def _attack_by_name(name: str):
    from .attacks import TABLE_I_ATTACKS

    attacks = {a.name: a for a in TABLE_I_ATTACKS()}
    try:
        return attacks[name]
    except KeyError:
        raise SystemExit(
            f"unknown attack {name!r}; choose from {sorted(attacks)}"
        ) from None


def _setup_for(printer: str, height: float):
    from .eval import default_setup

    return default_setup(printer, object_height=height)


def _obs_requested(args: argparse.Namespace) -> bool:
    return bool(
        getattr(args, "trace", False)
        or getattr(args, "metrics_out", None)
        or getattr(args, "chrome_trace", None)
    )


def _start_obs(args: argparse.Namespace) -> None:
    """Enable the observability layers the flags ask for."""
    from . import obs

    if _obs_requested(args):
        obs.enable()
    if getattr(args, "chrome_trace", None):
        obs.enable_chrome_trace()
    events_out = getattr(args, "events_out", None)
    if events_out:
        from .obs import events

        events.enable(jsonl_path=events_out)


def _finish_obs(args: argparse.Namespace) -> None:
    """Export the observability artifacts the command asked for.

    Bookkeeping messages go to stderr so machine-readable stdout (e.g.
    ``detect --json``) stays clean.
    """
    from . import obs

    path = getattr(args, "metrics_out", None)
    if path:
        out = obs.export_metrics(path)
        print(f"metrics registry written to {out}", file=sys.stderr)
    chrome = getattr(args, "chrome_trace", None)
    if chrome:
        obs.export_chrome_trace(chrome)
        obs.disable_chrome_trace()
        print(f"chrome trace written to {chrome} "
              "(open at https://ui.perfetto.dev)", file=sys.stderr)
    if getattr(args, "events_out", None):
        from .obs import events

        n = events.log().seq
        events.disable()
        print(f"{n} events written to {args.events_out}", file=sys.stderr)


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------
def cmd_slice(args: argparse.Namespace) -> int:
    setup = _setup_for(args.printer, args.height)
    job = setup.job()
    if args.attack:
        job = _attack_by_name(args.attack).apply(job)
    Path(args.output).write_text(job.program.to_text())
    print(f"wrote {len(job.program)} commands to {args.output}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from .io import save_signals
    from .printer import GcodeProgram, simulate_print
    from .sensors import default_daq

    setup = _setup_for(args.printer, args.height)
    program = GcodeProgram.from_text(Path(args.gcode).read_text())
    trace = simulate_print(program, setup.machine, setup.noise, seed=args.seed)
    channels = args.channels.split(",") if args.channels else None
    signals = default_daq().acquire(
        trace, np.random.default_rng(args.seed), channels=channels
    )
    save_signals(signals, args.output)
    print(
        f"simulated {trace.duration:.1f} s print "
        f"({len(trace.layer_change_times) + 1} layers); wrote "
        f"{len(signals)} channels to {args.output}/"
    )
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    from .core import NsyncIds
    from .io import save_dwm_params, save_signal, save_thresholds
    from .sensors import default_daq
    from .printer import simulate_print
    from .sync import DwmSynchronizer

    setup = _setup_for(args.printer, args.height)
    job = setup.job()
    daq = default_daq()

    def acc(seed: int):
        trace = simulate_print(job.program, setup.machine, setup.noise, seed=seed)
        return daq.acquire(
            trace, np.random.default_rng(seed), channels=[args.channel]
        )[args.channel]

    print(f"recording reference + {args.runs} benign training runs "
          f"({args.channel}, {args.printer})...")
    reference = acc(args.seed)
    ids = NsyncIds(reference, DwmSynchronizer(setup.dwm_params))
    ids.fit([acc(args.seed + 1 + k) for k in range(args.runs)], r=args.r)

    out = Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    save_signal(reference, out / "reference.npz")
    save_thresholds(ids.thresholds, out / "thresholds.json")
    save_dwm_params(setup.dwm_params, out / "dwm_params.json")
    print(f"model written to {out}/ "
          f"(c_c={ids.thresholds.c_c:.1f}, h_c={ids.thresholds.h_c:.1f}, "
          f"v_c={ids.thresholds.v_c:.3f}, d_c={ids.thresholds.d_c:.1f})")
    return 0


def cmd_detect(args: argparse.Namespace) -> int:
    import json
    import math

    from .core import NsyncIds
    from .io import load_dwm_params, load_signal, load_thresholds
    from .sync import DwmSynchronizer

    model = Path(args.model)
    ids = NsyncIds(
        load_signal(model / "reference.npz"),
        DwmSynchronizer(load_dwm_params(model / "dwm_params.json")),
    )
    ids.thresholds = load_thresholds(model / "thresholds.json")

    observed = load_signal(args.signal)
    if args.stream:
        from . import obs

        telemetry_on = (
            args.telemetry_port is not None or args.telemetry_snapshot
        )
        exporter = None
        if args.telemetry_port is not None:
            server = obs.serve_telemetry(args.telemetry_port)
            print(
                f"telemetry endpoint at {server.url}/metrics "
                f"(snapshot: {server.url}/snapshot.json)",
                file=sys.stderr,
            )
        if args.telemetry_snapshot:
            obs.enable()
            exporter = obs.start_snapshot_exporter(
                args.telemetry_snapshot, interval_s=args.telemetry_interval
            )
        stream_id = args.stream_id
        if stream_id is None and telemetry_on:
            stream_id = Path(args.signal).stem
        # Same engine as the batch call, driven chunk by chunk.
        engine = ids.engine(stream_id=stream_id)
        hop = max(1, int(round(args.chunk_s * observed.sample_rate)))
        # Deadline-based pacing: chunk k is released at start + k/pace
        # chunk-durations on the monotonic clock, so engine processing
        # time is absorbed instead of accumulating as replay drift.
        from .serve.pacing import Pacer

        pacer = Pacer(args.chunk_s / args.pace if args.pace > 0 else 0.0)
        for start in range(0, observed.n_samples, hop):
            engine.push(observed.data[start : start + hop])
            pacer.wait()
        verdict = engine.finalize().detection
        assert verdict is not None
        if exporter is not None:
            exporter.stop()
            print(
                f"telemetry snapshot written to {exporter.path}",
                file=sys.stderr,
            )
    else:
        verdict = ids.detect(observed)
    if args.json:
        t = ids.thresholds
        doc = verdict.to_dict()
        # inf (= sub-module disabled) is not valid strict JSON.
        doc["thresholds"] = {
            name: (v if math.isfinite(v) else None)
            for name, v in (
                ("c_c", t.c_c), ("h_c", t.h_c),
                ("v_c", t.v_c), ("d_c", t.d_c),
            )
        }
        print(json.dumps(doc, indent=2))
    elif verdict.is_intrusion:
        fired = ", ".join(verdict.fired_submodules())
        print(f"INTRUSION (sub-modules: {fired}; "
              f"first alarm at window {verdict.first_alarm_index})")
    else:
        print("ok — no intrusion detected")
    return 1 if verdict.is_intrusion else 0


def _render_top(doc: dict, source: str = "") -> str:
    """One ``repro top`` frame from a telemetry JSON document."""
    import datetime

    streams = doc.get("streams", {})
    ts = doc.get("ts")
    when = (
        datetime.datetime.fromtimestamp(float(ts)).strftime("%H:%M:%S")
        if ts
        else "?"
    )
    header = f"repro top — {len(streams)} stream(s) — {when}"
    if source:
        header += f" — {source}"
    cols = (
        f"{'STREAM':<18} {'STATE':<9} {'SAMPLES':>9} {'RATE/S':>9} "
        f"{'LAG_S':>7} {'P50_MS':>7} {'P99_MS':>7} {'WIN':>5} "
        f"{'QUAR':>5} {'ALERTS':>6} {'FAULT':>5}  LAST_ALERT"
    )
    lines = [header, cols]
    for sid in sorted(streams):
        row = streams[sid]
        lat = row.get("chunk_latency") or {}
        last = row.get("last_alert")
        last_s = (
            f"{last['submodule']}@{float(last['time_s']):.1f}s"
            if last
            else "-"
        )
        lines.append(
            f"{sid[:18]:<18} {row['state']:<9} {int(row['samples']):>9} "
            f"{float(row['samples_per_s']):>9.1f} "
            f"{float(row['ingest_lag_s']):>7.2f} "
            f"{float(lat.get('p50_s', 0.0)) * 1e3:>7.2f} "
            f"{float(lat.get('p99_s', 0.0)) * 1e3:>7.2f} "
            f"{int(row['windows']):>5} "
            f"{int(row['quarantined_windows']):>5} "
            f"{int(row['alerts']):>6} "
            f"{'YES' if row['sensor_fault'] else '-':>5}  {last_s}"
        )
    if not streams:
        lines.append("(no streams registered yet)")
    return "\n".join(lines) + "\n"


def cmd_top(args: argparse.Namespace) -> int:
    """Live-refreshing dashboard over /snapshot.json or a snapshot file."""
    import json
    import time as _time
    import urllib.request

    if args.snapshot:
        source = str(args.snapshot)

        def fetch() -> dict:
            return json.loads(Path(args.snapshot).read_text())

    else:
        source = args.url.rstrip("/")

        def fetch() -> dict:
            with urllib.request.urlopen(
                source + "/snapshot.json", timeout=2.0
            ) as resp:
                return json.loads(resp.read().decode("utf-8"))

    iterations = 1 if args.once else args.iterations
    shown = 0
    ever_ok = False
    while True:
        try:
            frame = _render_top(fetch(), source=source)
            ever_ok = True
        except (OSError, ValueError, KeyError) as exc:
            frame = f"repro top: waiting for telemetry ({exc})\n"
        if shown and sys.stdout.isatty():
            print("\x1b[2J\x1b[H", end="")
        print(frame, end="", flush=True)
        shown += 1
        if iterations is not None and shown >= iterations:
            return 0 if ever_ok else 1
        try:
            _time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def cmd_explain(args: argparse.Namespace) -> int:
    from .eval import incident_from_events, render_incident_report
    from .obs.events import read_jsonl
    from .printer import GcodeProgram, simulate_print

    setup = _setup_for(args.printer, args.height)
    tampered = ()
    if args.attack:
        job = _attack_by_name(args.attack).apply(setup.job())
        program = job.program
        tampered = job.tampered_spans
    elif args.gcode:
        program = GcodeProgram.from_text(Path(args.gcode).read_text())
    else:
        raise SystemExit("repro explain: pass --attack NAME or --gcode PATH "
                         "so the print can be re-simulated")

    try:
        records = read_jsonl(
            args.events_jsonl, tolerate_torn_tail=args.tolerate_torn_tail
        )
    except ValueError as exc:
        raise SystemExit(f"repro explain: {exc}") from None
    # Re-run the same simulation 'detect' screened (same noise model and
    # seed) to recover the sample -> instruction mapping.
    trace = simulate_print(program, setup.machine, setup.noise, seed=args.seed)
    try:
        incident = incident_from_events(records, trace=trace)
    except ValueError as exc:
        # A torn tail that ate the run_summary lands here: the log read
        # cleanly but no longer carries a verdict to explain.
        raise SystemExit(f"repro explain: {exc}") from None
    report = render_incident_report(
        incident, program=program, tampered_spans=tampered
    )
    if args.output:
        Path(args.output).write_text(report)
        print(f"incident report written to {args.output}")
    else:
        print(report, end="")
    return 0


def _engine_for(args: argparse.Namespace):
    """Build the campaign engine from the --workers/--cache-dir flags."""
    from .eval import CampaignEngine

    try:
        return CampaignEngine(workers=args.workers, cache=args.cache_dir)
    except ValueError as exc:
        raise SystemExit(f"repro: {exc}") from None


def _print_engine_stats(engine) -> None:
    s = engine.stats
    cache = f", cache {s.cache_hits} hits / {s.cache_misses} misses" \
        if engine.cache is not None else ""
    print(
        f"executed {s.simulated} simulations in {s.elapsed:.1f} s "
        f"({engine.workers} workers{cache})"
    )


#: Table VIII/IX campaign sizes: 50 training, 100 benign test, 20 runs
#: per attack class (the paper's per-configuration experiment counts).
PAPER_SCALE = {"train": 50, "test": 100, "attack_runs": 20}

#: The quick default sizes used when --paper-scale is not given.
QUICK_SCALE = {"train": 8, "test": 8, "attack_runs": 2}


def _campaign_sizes(args: argparse.Namespace) -> Dict[str, int]:
    """Resolve --train/--test/--attack-runs against the scale preset.

    Explicit flags always win; unset ones fall back to the paper's
    Table VIII/IX counts under ``--paper-scale``, else the quick preset.
    """
    preset = PAPER_SCALE if args.paper_scale else QUICK_SCALE
    return {
        key: preset[key] if getattr(args, key) is None else getattr(args, key)
        for key in ("train", "test", "attack_runs")
    }


def _peak_rss_mb() -> float:
    """Peak resident set size of this process in MiB (Linux: KB units)."""
    import resource

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _append_bench_record(path: str, record: Dict[str, object]) -> None:
    """Append one record to a BENCH_*.json append-only history list."""
    import json

    out = Path(path)
    history = []
    if out.exists():
        history = json.loads(out.read_text())
        if not isinstance(history, list):
            raise SystemExit(f"repro: {out} is not a JSON list history")
    history.append(record)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(history, indent=2) + "\n")


def cmd_campaign(args: argparse.Namespace) -> int:
    import time

    from .eval import format_ids_table, generate_campaign, nsync_results

    sizes = _campaign_sizes(args)
    setup = _setup_for(args.printer, args.height)
    print(f"generating campaign ({args.printer}, {sizes['train']} train, "
          f"{sizes['test']} benign test, {sizes['attack_runs']} runs/attack"
          f"{', paper scale' if args.paper_scale else ''})...")
    engine = _engine_for(args)
    synchronizer = None
    if args.synchronizer == "fastdtw":
        from .sync.fastdtw import FastDtwSynchronizer

        synchronizer = FastDtwSynchronizer()
    t0 = time.perf_counter()
    # Lazy campaign: runs stream through nsync_results one at a time, so
    # peak memory stays O(1) in the campaign size even at paper scale.
    campaign = generate_campaign(
        setup,
        channels=(args.channel,),
        n_train=sizes["train"],
        n_benign_test=sizes["test"],
        n_attack_runs=sizes["attack_runs"],
        seed=args.seed,
        engine=engine,
        materialize=False,
    )
    result = nsync_results(
        campaign, args.channel, args.transform,
        synchronizer=synchronizer, r=args.r,
    )
    wall_clock_s = time.perf_counter() - t0
    _print_engine_stats(engine)
    engine.close()
    sync_name = args.synchronizer
    label = f"{args.printer} {args.transform} {args.channel}"
    table = format_ids_table(
        {label: result},
        submodule_names=("c_disp", "h_dist", "v_dist", "duration"),
        title=f"NSYNC/{sync_name.upper()}",
    )
    tpr_lines = [
        f"  {attack:<11} TPR {tpr:.2f}"
        for attack, tpr in sorted(result.per_attack_tpr.items())
    ]
    print(table)
    for line in tpr_lines:
        print(line)
    if args.tables_out:
        out = Path(args.tables_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(table + "\n" + "\n".join(tpr_lines) + "\n")
        print(f"tables written to {args.tables_out}")
    if args.bench_out:
        s = engine.stats
        _append_bench_record(args.bench_out, {
            "name": f"campaign_{args.channel}_{args.transform}_{sync_name}"
                    .replace(".", ""),
            "time": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "wall_clock_s": round(wall_clock_s, 3),
            "peak_rss_mb": round(_peak_rss_mb(), 1),
            "workers": engine.workers,
            "cpu_count": os.cpu_count(),
            "simulated": s.simulated,
            "cache_hits": s.cache_hits,
            "cache_misses": s.cache_misses,
            "n_train": sizes["train"],
            "n_benign_test": sizes["test"],
            "n_attack_runs": sizes["attack_runs"],
        })
        print(f"bench record appended to {args.bench_out}")
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    import json

    from .core import SanitizePolicy
    from .faults import render_fault_table, run_fault_campaign

    setup = _setup_for(args.printer, args.height)
    engine = _engine_for(args)
    detectors = ("batch", "streaming") if args.detector == "both" \
        else (args.detector,)
    policy = SanitizePolicy(max_dark_s=args.max_dark_s)
    if not args.json:
        print(f"fault campaign ({args.printer}, {args.channel}, "
              f"{args.train} train, detectors: {', '.join(detectors)})...")
    result = run_fault_campaign(
        setup=setup,
        channel=args.channel,
        n_train=args.train,
        seed=args.seed,
        engine=engine,
        detectors=detectors,
        chunk_s=args.chunk_s,
        policy=policy,
        r=args.r,
    )
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        _print_engine_stats(engine)
        print(render_fault_table(result))
        verdict = "all cases passed" if result.all_passed else \
            f"{result.n_failed}/{len(result.results)} cases FAILED"
        print(f"fault campaign: {verdict}")
    if args.summary:
        # One machine-greppable line; on stderr when --json owns stdout.
        line = f"{len(result.results)} cases, {result.n_failed} failed"
        print(line, file=sys.stderr if args.json else sys.stdout)
    return 0 if result.all_passed else 1


def cmd_diff(args: argparse.Namespace) -> int:
    import json

    from .eval.diff import (
        PAIRS,
        DiffReport,
        diff_pair,
        replay_bundle,
        write_bundle,
    )

    if args.replay is not None:
        report = replay_bundle(args.replay)
        reports = [report]
        seed = report.seed
        if not args.json:
            state = "DIVERGED" if not report.ok else "no divergence"
            print(f"replay {args.replay} ({report.pair}): {state}")
    else:
        pairs = list(PAIRS) if args.pair == "all" else [args.pair]
        seed = args.seed
        reports = []
        for pair in pairs:
            report = diff_pair(pair, seed=seed, examples=args.examples)
            reports.append(report)
            if not args.json:
                state = "OK" if report.ok else "DIVERGED"
                print(
                    f"{pair:<10} {report.examples} workloads "
                    f"(seed {seed}): {state}"
                )
            if not report.ok:
                path = write_bundle(
                    report, Path(args.bundle_dir) / f"bundle_{pair}.json"
                )
                if not args.json:
                    print(f"  repro bundle: {path}")
    diff_report = DiffReport(seed=seed, reports=tuple(reports))
    if args.json:
        print(json.dumps(diff_report.to_dict(), indent=2))
    elif not diff_report.ok:
        for report in reports:
            if report.divergence is not None:
                print()
                print(report.divergence.render())
    return 0 if diff_report.ok else 1


def cmd_report(args: argparse.Namespace) -> int:
    from .eval import (
        fig12_overall_accuracy,
        format_accuracy_ranking,
        format_ids_table,
        generate_campaign,
        nsync_results,
    )

    setup = _setup_for(args.printer, args.height)
    print(
        f"generating campaign and running all seven IDSs "
        f"({args.printer}; this takes a few minutes)..."
    )
    engine = _engine_for(args)
    # The report makes many evaluation passes over the same campaign.  With
    # a run cache the campaign stays a lazy view — each pass streams cached
    # payloads as memmaps and memory stays flat.  Without a cache a lazy
    # campaign would re-simulate every pass, so fall back to materializing.
    campaign = generate_campaign(
        setup,
        channels=("ACC", "MAG", "AUD", "EPT"),
        n_train=args.train,
        n_benign_test=args.test,
        n_attack_runs=args.attack_runs,
        seed=args.seed,
        engine=engine,
        materialize=engine.cache is None,
    )
    _print_engine_stats(engine)

    sections = ["# NSYNC evaluation report", ""]
    sections.append(
        f"Printer {args.printer}, object height {args.height} mm, "
        f"{args.train} training / {args.test} benign-test / "
        f"{args.attack_runs} runs per attack, seed {args.seed}."
    )

    nsync_cells = {}
    for channel in ("ACC", "MAG", "AUD", "EPT"):
        for transform in ("Raw", "Spectro."):
            key = f"{args.printer} {transform} {channel}"
            nsync_cells[key] = nsync_results(campaign, channel, transform)
    sections.append(chr(10) + "## NSYNC/DWM (Table VIII)" + chr(10))
    sections.append("```")
    sections.append(
        format_ids_table(
            nsync_cells,
            submodule_names=("c_disp", "h_dist", "v_dist", "duration"),
        )
    )
    sections.append("```")

    accuracies = fig12_overall_accuracy(campaign)
    sections.append(chr(10) + "## All seven IDSs (Fig. 12)" + chr(10))
    sections.append("```")
    sections.append(format_accuracy_ranking(accuracies))
    sections.append("```")

    from .eval import localization_rows, render_localization_table

    rows = localization_rows(campaign, channel="ACC")
    localized = [r for r in rows if r["localized"] is not None]
    hits = sum(1 for r in localized if r["localized"])
    sections.append(chr(10) + "## Alarm localization (forensics)" + chr(10))
    sections.append(
        "One probe per attack: the first alarm window is mapped back onto "
        "the G-code instruction span executing at that time and checked "
        "against the attack's ground-truth tampered span."
    )
    sections.append("")
    sections.append("```")
    sections.append(render_localization_table(rows))
    sections.append("```")
    if localized:
        sections.append(
            f"{chr(10)}Localization accuracy: {hits}/{len(localized)} "
            "detected attacks implicated an instruction span overlapping "
            "the tampered instructions."
        )

    from . import obs

    if obs.enabled():
        from .eval import render_overhead_table

        sections.append(
            chr(10) + "## Processing-time overhead (Table X-style)" + chr(10)
        )
        sections.append("```")
        sections.append(render_overhead_table(obs.snapshot()))
        sections.append("```")

    text = chr(10).join(sections) + chr(10)
    Path(args.output).write_text(text)
    engine.close()
    print(f"report written to {args.output}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    import json

    from .eval.throughput import (
        ThroughputWorkload,
        load_baseline_record,
        measure_engine_throughput,
        render_comparison,
    )

    workload = ThroughputWorkload(
        n_samples=args.samples, chunk_samples=args.chunk
    )
    if not args.json:
        print(
            f"measuring DetectionEngine throughput "
            f"({workload.n_samples} samples, chunk={workload.chunk_samples}, "
            f"{args.repeats} warm repeats)..."
        )
    record = measure_engine_throughput(workload, repeats=args.repeats)
    if args.json:
        print(json.dumps(record, indent=2))
    else:
        baseline = load_baseline_record(Path(args.baseline))
        print(render_comparison(record, baseline))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal as _signal

    from .serve import FleetServer
    from .serve.model import demo_model

    model_dir = Path(args.model)
    if not (model_dir / "reference.npz").exists():
        if args.demo:
            demo_model(n_samples=args.demo_samples).save(model_dir)
            print(f"demo model written to {model_dir}/", file=sys.stderr)
        else:
            raise SystemExit(
                f"repro serve: {model_dir} has no reference.npz; train a "
                "model first ('repro train') or pass --demo"
            )
    server = FleetServer(
        model_dir,
        checkpoint_dir=args.checkpoint_dir,
        shards=args.shards,
        host=args.host,
        port=args.port,
        unix_path=args.unix,
        checkpoint_interval_s=args.checkpoint_interval,
        metrics_port=args.metrics_port,
    )

    async def _run() -> None:
        await server.start()
        where = (
            str(server.unix_path)
            if server.unix_path is not None
            else f"{server.host}:{server.port}"
        )
        mode = (
            f"{server.shards} shard worker(s)" if server.shards else "inline"
        )
        print(f"serving on {where} ({mode})", flush=True)
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (_signal.SIGINT, _signal.SIGTERM):
            loop.add_signal_handler(sig, stop.set)
        waiters = [asyncio.ensure_future(stop.wait())]
        if args.max_seconds is not None:
            waiters.append(
                asyncio.ensure_future(asyncio.sleep(args.max_seconds))
            )
        _, pending = await asyncio.wait(
            waiters, return_when=asyncio.FIRST_COMPLETED
        )
        for fut in pending:
            fut.cancel()
        print("draining connections, final checkpoint...", file=sys.stderr)
        await server.stop()

    asyncio.run(_run())
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio
    import json
    import time as _time

    from .serve.loadgen import run_loadgen, synth_streams
    from .serve.model import ServeModel
    from .serve.protocol import read_address

    if args.unix:
        address = args.unix
    else:
        address = read_address(args.connect)
        if address is None:
            raise SystemExit(
                f"repro loadgen: --connect must be host:port, "
                f"got {args.connect!r}"
            )
    streams = synth_streams(
        args.streams,
        n_samples=args.n_samples,
        sample_rate=args.sample_rate,
    )
    verify_model = ServeModel.from_dir(args.verify) if args.verify else None
    result = asyncio.run(
        run_loadgen(
            address,
            streams,
            chunk_samples=args.chunk_samples,
            pace=args.pace,
            verify_model=verify_model,
        )
    )
    # Streams/core: how many real-time printers this deployment could
    # keep up with per core it burns (listener + shard workers).
    cores_used = args.server_shards + 1 if args.server_shards > 0 else 1
    streams_per_core = (
        result.samples_per_s / args.sample_rate / cores_used
        if args.sample_rate > 0
        else 0.0
    )
    record = {
        "name": "serve_loadgen",
        "time": _time.time(),
        "n_streams": result.n_streams,
        "chunk_samples": args.chunk_samples,
        "pace": args.pace,
        "shards": args.server_shards,
        "cores_used": cores_used,
        "cpu_count": os.cpu_count(),
        "total_samples": result.total_samples,
        "total_chunks": result.total_chunks,
        "elapsed_s": round(result.elapsed_s, 4),
        "ingest_p50_ms": round(result.ingest_p50_ms, 4),
        "ingest_p99_ms": round(result.ingest_p99_ms, 4),
        "ingest_mean_ms": round(result.ingest_mean_ms, 4),
        "serve_samples_per_s": round(result.samples_per_s, 1),
        "streams_per_core": round(streams_per_core, 3),
        "resumes": result.resumes,
        "verified": verify_model is not None,
        "mismatches": len(result.mismatches),
    }
    if args.json:
        print(json.dumps(record, indent=2))
    else:
        print(result.summary())
        print(
            f"streams_per_core   {streams_per_core:10.1f} "
            f"(cores_used={cores_used})"
        )
    if args.bench_out:
        path = Path(args.bench_out)
        history = []
        if path.exists():
            try:
                history = json.loads(path.read_text())
            except ValueError:
                history = []
        history.append(record)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(history, indent=2) + "\n")
        print(f"bench record appended to {path}", file=sys.stderr)
    if result.mismatches:
        shown = ", ".join(result.mismatches[:8])
        print(f"VERDICT MISMATCHES ({len(result.mismatches)}): {shown}",
              file=sys.stderr)
        return 1
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NSYNC side-channel IDS for additive manufacturing "
        "(ICDCS 2021 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--printer", default="UM3", choices=["UM3", "RM3"])
        p.add_argument("--height", type=float, default=0.6,
                       help="object height in mm (default 0.6; paper: 7.5)")
        p.add_argument("--seed", type=int, default=0)

    def obs_opts(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--trace", action="store_true",
            help="record tracing spans + pipeline metrics "
                 "(same as REPRO_TRACE=1)",
        )
        p.add_argument(
            "--metrics-out", metavar="PATH", default=None,
            help="write the metrics-registry snapshot to PATH as JSON "
                 "when the command finishes (implies --trace)",
        )
        p.add_argument(
            "--chrome-trace", metavar="PATH", default=None,
            help="capture spans as Chrome/Perfetto trace_events and write "
                 "the trace JSON to PATH on exit (implies --trace; open "
                 "at https://ui.perfetto.dev)",
        )

    def engine_opts(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--workers", type=int,
            default=max(0, (os.cpu_count() or 1) - 1),
            help="worker processes for campaign simulation "
                 "(0 = serial; default: cpu_count - 1)",
        )
        p.add_argument(
            "--cache-dir", default=os.environ.get("REPRO_CACHE_DIR"),
            help="content-addressed run cache directory "
                 "(default: $REPRO_CACHE_DIR; unset disables caching)",
        )

    p = sub.add_parser("slice", help="slice the gear into G-code")
    common(p)
    p.add_argument("--attack", default=None,
                   help="apply a Table I attack (e.g. Void, Speed0.95)")
    p.add_argument("output", help="output .gcode path")
    p.set_defaults(func=cmd_slice)

    p = sub.add_parser("simulate", help="execute G-code, record side channels")
    common(p)
    obs_opts(p)
    p.add_argument("gcode", help="input .gcode path")
    p.add_argument("output", help="output directory for channel .npz files")
    p.add_argument("--channels", default="ACC",
                   help="comma-separated channel ids (default ACC)")
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("train", help="train an NSYNC model from benign runs")
    common(p)
    obs_opts(p)
    p.add_argument("output", help="model output directory")
    p.add_argument("--channel", default="ACC")
    p.add_argument("--runs", type=int, default=8)
    p.add_argument("--r", type=float, default=0.3)
    p.set_defaults(func=cmd_train)

    p = sub.add_parser("detect", help="screen a recorded signal")
    obs_opts(p)
    p.add_argument("model", help="model directory from 'train'")
    p.add_argument("signal", help=".npz signal from 'simulate'")
    p.add_argument(
        "--json", action="store_true",
        help="print the full verdict (evidence arrays included) as JSON",
    )
    p.add_argument(
        "--events-out", metavar="PATH", default=None,
        help="record the decision-provenance event log (schema v1 JSONL) "
             "to PATH; feed it to 'repro explain'",
    )
    p.add_argument(
        "--stream", action="store_true",
        help="feed the signal to the detection engine in chunks (as a live "
             "DAQ would) instead of one batch call; the verdict is "
             "identical — both paths run the same incremental core",
    )
    p.add_argument(
        "--chunk-s", type=float, default=0.25, metavar="SECONDS",
        help="chunk duration for --stream (default 0.25 s)",
    )
    p.add_argument(
        "--stream-id", default=None, metavar="ID",
        help="register the stream under this id in the live telemetry "
             "registry (default: the signal file stem when telemetry is "
             "on, otherwise unregistered)",
    )
    p.add_argument(
        "--telemetry-port", type=int, default=None, metavar="PORT",
        help="serve the Prometheus/JSON telemetry endpoint on PORT while "
             "streaming (0 = ephemeral; implies --trace; try 9107 and "
             "point 'repro top' at it)",
    )
    p.add_argument(
        "--telemetry-snapshot", default=None, metavar="PATH",
        help="periodically write the telemetry snapshot to PATH "
             "(.prom = Prometheus text, else JSON for 'repro top "
             "--snapshot'); final write on completion",
    )
    p.add_argument(
        "--telemetry-interval", type=float, default=2.0, metavar="SECONDS",
        help="snapshot export interval for --telemetry-snapshot "
             "(default 2 s)",
    )
    p.add_argument(
        "--pace", type=float, default=0.0, metavar="FACTOR",
        help="replay speed relative to the DAQ real-time rate (1 = live "
             "DAQ pace, 2 = twice as fast; default 0 = no pacing) — "
             "keeps the stream alive long enough to watch with "
             "'repro top'.  Deadline-scheduled: chunk k is released at "
             "start + k/pace chunk-durations, so engine processing time "
             "does not accumulate as replay drift",
    )
    p.set_defaults(func=cmd_detect)

    p = sub.add_parser(
        "top",
        help="live terminal dashboard over the telemetry endpoint",
        description="Render one row per detection stream (ingest lag, "
        "chunk-latency p50/p99, windows scored, quarantine/SENSOR_FAULT "
        "state, alerts) from a running telemetry endpoint "
        "(detect --stream --telemetry-port PORT, or obs.serve_telemetry) "
        "or from a --telemetry-snapshot file.",
    )
    p.add_argument(
        "--url", default="http://127.0.0.1:9107",
        help="telemetry endpoint base URL "
             "(default http://127.0.0.1:9107)",
    )
    p.add_argument(
        "--snapshot", default=None, metavar="PATH",
        help="read a JSON snapshot file instead of scraping the endpoint",
    )
    p.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="refresh interval (default 2 s)",
    )
    p.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit (status 1 if unreachable)",
    )
    p.add_argument(
        "--iterations", type=int, default=None, metavar="N",
        help="exit after N frames (default: run until Ctrl-C)",
    )
    p.set_defaults(func=cmd_top)

    p = sub.add_parser(
        "explain",
        help="turn a detect --events-out log into an incident report",
    )
    common(p)
    p.add_argument("events_jsonl", help="JSONL from 'detect --events-out'")
    p.add_argument("--attack", default=None,
                   help="Table I attack the screened run executed "
                        "(enables the ground-truth localization check)")
    p.add_argument("--gcode", default=None,
                   help="G-code the screened run executed (no ground truth)")
    p.add_argument("--output", default=None,
                   help="write the markdown report here (default: stdout)")
    p.add_argument(
        "--tolerate-torn-tail", action="store_true",
        help="accept an event log whose writer crashed mid-record: drop "
             "exactly one incomplete trailing line (with a warning) "
             "instead of failing; mid-file corruption still fails",
    )
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser("report", help="full evaluation -> markdown report")
    common(p)
    engine_opts(p)
    obs_opts(p)
    p.add_argument("output", help="output .md path")
    p.add_argument("--train", type=int, default=6)
    p.add_argument("--test", type=int, default=6)
    p.add_argument("--attack-runs", type=int, default=1)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "faults",
        help="chaos-test the IDS: replay the fault-injection matrix",
    )
    common(p)
    engine_opts(p)
    obs_opts(p)
    p.add_argument("--channel", default="ACC")
    p.add_argument("--train", type=int, default=4)
    p.add_argument("--r", type=float, default=0.3)
    p.add_argument(
        "--detector", default="both", choices=["batch", "streaming", "both"],
        help="which pipeline(s) to replay the matrix against (default both)",
    )
    p.add_argument(
        "--chunk-s", type=float, default=0.25,
        help="chunk size in seconds for the streaming detector",
    )
    p.add_argument(
        "--max-dark-s", type=float, default=1.0,
        help="SanitizePolicy dark-channel limit in seconds (default 1.0)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="print the per-case results as JSON instead of a table",
    )
    p.add_argument(
        "--summary", action="store_true",
        help="print one 'N cases, M failed' line (stderr with --json, so "
             "stdout stays clean JSON); exit status is unchanged",
    )
    p.set_defaults(func=cmd_faults)

    p = sub.add_parser(
        "diff",
        help="lock-step differential validation of fast vs reference paths",
        description="Run each vectorized implementation against its kept "
        "scalar reference in lock-step over hypothesis-generated workloads "
        "(see repro.eval.diff), asserting full state equality at every "
        "step.  Exits 1 on the first divergence and writes a replayable "
        "repro bundle; re-run a bundle with --replay (no hypothesis "
        "needed).",
    )
    p.add_argument(
        "--pair", default="all",
        choices=["all", "firmware", "dwm", "comparator", "engine"],
        help="which fast/reference pair to validate (default all)",
    )
    p.add_argument("--seed", type=int, default=0,
                   help="hypothesis search seed (default 0)")
    p.add_argument(
        "--examples", type=int, default=25,
        help="generated workloads per pair (default 25)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="print the full diff report as JSON",
    )
    p.add_argument(
        "--bundle-dir", default="diff-bundles", metavar="DIR",
        help="where to write bundle_<pair>.json on divergence "
             "(default diff-bundles/)",
    )
    p.add_argument(
        "--replay", default=None, metavar="BUNDLE",
        help="re-run the exact workload stored in a repro bundle instead "
             "of searching",
    )
    p.set_defaults(func=cmd_diff)

    p = sub.add_parser(
        "campaign",
        help="run a scaled evaluation campaign",
        description="Stream one campaign cell through the NSYNC evaluation. "
        "Runs are generated lazily and folded into streaming accumulators, "
        "so memory stays flat in the campaign size; pair with --cache-dir "
        "so repeated invocations replay cached runs instead of "
        "re-simulating.",
    )
    common(p)
    engine_opts(p)
    obs_opts(p)
    p.add_argument("--channel", default="ACC")
    p.add_argument("--transform", default="Raw", choices=["Raw", "Spectro."])
    p.add_argument(
        "--train", type=int, default=None, metavar="N",
        help="training runs (default 8; 50 under --paper-scale)",
    )
    p.add_argument(
        "--test", type=int, default=None, metavar="N",
        help="benign test runs (default 8; 100 under --paper-scale)",
    )
    p.add_argument(
        "--attack-runs", type=int, default=None, metavar="N",
        help="runs per attack class (default 2; 20 under --paper-scale)",
    )
    p.add_argument(
        "--paper-scale", action="store_true",
        help="use the paper's Table VIII/IX experiment counts "
             "(50 train / 100 benign test / 20 runs per attack) for any "
             "size flag not given explicitly",
    )
    p.add_argument(
        "--synchronizer", default="dwm", choices=["dwm", "fastdtw"],
        help="synchronizer under test: dwm (Table VIII) or fastdtw "
             "(Table IX)",
    )
    p.add_argument("--r", type=float, default=0.3)
    p.add_argument(
        "--tables-out", default=None, metavar="PATH",
        help="also write the rendered results table to this file",
    )
    p.add_argument(
        "--bench-out", default=None, metavar="PATH",
        help="append a benchmark record (wall clock, peak_rss_mb, engine "
             "stats) to this BENCH_*.json history",
    )
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser(
        "bench",
        help="measure detection-engine throughput (samples/s/core)",
    )
    p.add_argument(
        "target", choices=["throughput"],
        help="which benchmark to run (only 'throughput' for now)",
    )
    p.add_argument(
        "--samples", type=int, default=40_000,
        help="observed-signal length in samples (default 40000)",
    )
    p.add_argument(
        "--chunk", type=int, default=10,
        help="streaming push chunk size in samples (default 10)",
    )
    p.add_argument(
        "--repeats", type=int, default=3,
        help="warm repeats; the best one is reported (default 3)",
    )
    p.add_argument(
        "--baseline", default="benchmarks/results/BENCH_engine_throughput.json",
        help="BENCH_engine_throughput.json history to compare against "
             "(first record; missing file = no comparison)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="print the raw measurement record as JSON",
    )
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "serve",
        help="run the fleet detection service (many streams, one model)",
        description="Long-running ingest service: accepts line-delimited "
        "JSON chunk messages over TCP or a unix socket, multiplexes every "
        "printer stream over a pool of checkpointed detection engines "
        "(--shards worker processes; 0 = inline), and periodically "
        "checkpoints every live engine so a crashed worker resumes "
        "mid-run bit-identically.  Pair with 'repro loadgen'.",
    )
    p.add_argument("model", help="model directory from 'train' (or --demo)")
    p.add_argument(
        "--demo", action="store_true",
        help="synthesize the deterministic demo model into MODEL if it "
             "does not exist yet (tests/CI)",
    )
    p.add_argument(
        "--demo-samples", type=int, default=8_000,
        help="reference length for --demo (default 8000)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=9870,
        help="TCP port to listen on (0 = ephemeral; default 9870)",
    )
    p.add_argument(
        "--unix", default=None, metavar="PATH",
        help="listen on a unix socket instead of TCP",
    )
    p.add_argument(
        "--shards", type=int, default=0,
        help="detection worker processes (streams are sharded by "
             "crc32(stream_id); 0 = run engines inline; default 0)",
    )
    p.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="atomically checkpoint every live engine state into DIR "
             "(enables crash resume; unset disables checkpointing)",
    )
    p.add_argument(
        "--checkpoint-interval", type=float, default=5.0, metavar="SECONDS",
        help="checkpoint sweep period (default 5 s)",
    )
    p.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve the shared telemetry /metrics endpoint on PORT "
             "(one endpoint for every stream; try 9107)",
    )
    p.add_argument(
        "--max-seconds", type=float, default=None, metavar="SECONDS",
        help="shut down gracefully after SECONDS (CI guard; default: "
             "run until SIGINT/SIGTERM)",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "loadgen",
        help="replay a synthetic printer fleet against 'repro serve'",
        description="One connection per printer stream, each replaying "
        "its samples as chunk messages (optionally paced against the "
        "recording's own timebase), riding out shard crashes via the "
        "checkpoint-resume protocol.  Reports p50/p99 ingest latency, "
        "aggregate samples/s, and streams/core; --verify re-runs every "
        "stream offline and fails on any non-bit-identical verdict.",
    )
    p.add_argument(
        "--connect", default="127.0.0.1:9870", metavar="HOST:PORT",
        help="service TCP address (default 127.0.0.1:9870)",
    )
    p.add_argument(
        "--unix", default=None, metavar="PATH",
        help="connect to a unix socket instead of TCP",
    )
    p.add_argument(
        "--streams", type=int, default=8,
        help="synthetic printer streams to replay (default 8)",
    )
    p.add_argument(
        "--n-samples", type=int, default=8_000,
        help="samples per stream (default 8000; must match the demo "
             "model's reference length)",
    )
    p.add_argument(
        "--sample-rate", type=float, default=200.0,
        help="stream sample rate in Hz (default 200)",
    )
    p.add_argument(
        "--chunk-samples", type=int, default=200,
        help="samples per chunk message (default 200)",
    )
    p.add_argument(
        "--pace", type=float, default=0.0, metavar="FACTOR",
        help="replay speed relative to the stream timebase (1 = real "
             "time, 2 = double speed; default 0 = unpaced)",
    )
    p.add_argument(
        "--verify", default=None, metavar="MODELDIR",
        help="re-run every stream through an offline engine built from "
             "MODELDIR and exit 1 unless all served verdicts are "
             "bit-identical",
    )
    p.add_argument(
        "--server-shards", type=int, default=0,
        help="the server's --shards value, for the streams/core "
             "accounting (default 0 = inline)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="print the measurement record as JSON",
    )
    p.add_argument(
        "--bench-out", default=None, metavar="PATH",
        help="append the record to a BENCH_*.json history file "
             "(regression-gated by scripts/check_bench_regression.py)",
    )
    p.set_defaults(func=cmd_loadgen)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    _start_obs(args)
    code = args.func(args)
    _finish_obs(args)
    return code


if __name__ == "__main__":
    sys.exit(main())
