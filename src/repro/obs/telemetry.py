"""Live operational telemetry: Prometheus exposition + per-stream health.

The metrics registry (:mod:`repro.obs.metrics`) and the event log answer
questions *after* a run; this module answers them **while the detector is
running** — the introspection surface a long-lived multi-stream service
(ROADMAP item 1) is operated through.  Three pieces:

* **Prometheus text exposition** — :func:`render_prometheus` renders the
  process-wide registry plus the per-stream health registry in the
  Prometheus text format (version 0.0.4), and :func:`serve` /
  ``obs.serve_telemetry(port)`` exposes it at ``/metrics`` from a
  ``ThreadingHTTPServer`` on a background daemon thread (``/snapshot.json``
  serves the JSON document ``repro top`` consumes, ``/healthz`` a liveness
  probe).  For scrape-less environments :func:`start_snapshot_exporter`
  periodically writes the same documents to a file (atomic
  write-then-rename, so readers never see a torn snapshot).
* **Per-stream health** — every :class:`~repro.core.engine.DetectionEngine`
  constructed with a ``stream_id`` registers a :class:`StreamHealth` row in
  the process-wide :class:`StreamHealthRegistry`: ingest lag vs. real time,
  per-chunk push-latency quantiles (p50/p95/p99), samples/s, windows
  scored, quarantine and SENSOR_FAULT state, and the last alert.  This
  registry is what the future fleet service fronts.
* **Metric-name schema** — registry names (``repro.core.engine.samples``)
  map to Prometheus names by replacing every non-``[a-zA-Z0-9_:]`` rune
  with ``_``; counters gain a ``_total`` suffix, histograms render as
  summaries (``{quantile="..."}`` + ``_count``/``_sum``), spans render as
  ``repro_span_*{span="<qualified>"}`` families, and per-stream series as
  ``repro_stream_*{stream="<id>"}`` (see :data:`STREAM_FAMILIES`).

Cost discipline matches the rest of :mod:`repro.obs`: health rows update
only on the *instrumented* branch of ``DetectionEngine.push`` — with
observability disabled the hot path performs zero telemetry touches
(structurally asserted by ``benchmarks/bench_engine_throughput.py``), and
an unregistered engine holds the shared :data:`NULL_STREAM_HEALTH` whose
methods are empty.  Zero dependencies: ``http.server`` + ``threading`` +
``json`` only.

Environment: ``REPRO_TELEMETRY=<port>`` (or ``<host>:<port>``) starts the
endpoint at import time; ``REPRO_TELEMETRY_SNAPSHOT=<path>`` starts the
file exporter (interval ``REPRO_TELEMETRY_INTERVAL`` seconds, default 5;
a ``.prom`` suffix selects text exposition instead of JSON).
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from .metrics import Histogram

__all__ = [
    "ENV_VAR",
    "SNAPSHOT_ENV_VAR",
    "INTERVAL_ENV_VAR",
    "TELEMETRY_SCHEMA_VERSION",
    "STREAM_FAMILIES",
    "StreamHealth",
    "NullStreamHealth",
    "NULL_STREAM_HEALTH",
    "StreamHealthRegistry",
    "streams",
    "register_stream",
    "unregister_stream",
    "reset_streams",
    "set_service_stats",
    "clear_service_stats",
    "service_stats",
    "prometheus_name",
    "render_prometheus",
    "telemetry_document",
    "TelemetryServer",
    "serve",
    "stop",
    "active_server",
    "SnapshotExporter",
    "start_snapshot_exporter",
    "configure_from_env",
]

#: Environment variable naming the exposition port (``port`` or
#: ``host:port``); honoured at import time.
ENV_VAR = "REPRO_TELEMETRY"

#: Environment variable naming the periodic snapshot file.
SNAPSHOT_ENV_VAR = "REPRO_TELEMETRY_SNAPSHOT"

#: Environment variable setting the snapshot interval in seconds.
INTERVAL_ENV_VAR = "REPRO_TELEMETRY_INTERVAL"

#: Schema version of :func:`telemetry_document` payloads.
TELEMETRY_SCHEMA_VERSION = 1

#: Latency quantiles exported per stream (the SLO numbers).
_QUANTILES = (0.5, 0.95, 0.99)

#: The per-stream Prometheus families: ``(family, type, help)``.  Every
#: family carries a ``stream="<id>"`` label; this tuple is the contract
#: ``scripts/validate_telemetry.py`` checks against.
STREAM_FAMILIES: Tuple[Tuple[str, str, str], ...] = (
    ("repro_stream_up", "gauge",
     "1 while the stream's engine is live, 0 once finalized"),
    ("repro_stream_samples_total", "counter",
     "samples ingested by the stream's detection engine"),
    ("repro_stream_chunks_total", "counter",
     "chunks pushed into the stream's detection engine"),
    ("repro_stream_windows_total", "counter",
     "synchronized indexes (analysis windows) scored so far"),
    ("repro_stream_alerts_total", "counter",
     "alerts raised by the stream so far"),
    ("repro_stream_quarantined_windows_total", "counter",
     "windows whose input samples had to be repaired"),
    ("repro_stream_sensor_fault", "gauge",
     "1 once the fail-closed SENSOR_FAULT verdict fired"),
    ("repro_stream_ingest_lag_seconds", "gauge",
     "wall-clock time behind a real-time stream (0 when keeping up)"),
    ("repro_stream_staleness_seconds", "gauge",
     "seconds since the last chunk arrived"),
    ("repro_stream_samples_per_second", "gauge",
     "average ingest rate since the stream registered"),
    ("repro_stream_last_alert_timestamp_seconds", "gauge",
     "unix time of the most recent alert (absent before the first)"),
    ("repro_stream_chunk_latency_seconds", "summary",
     "per-chunk DetectionEngine.push wall latency"),
)

#: Ring size of each stream's chunk-latency histogram: big enough for
#: stable p99 at DAQ chunk rates, bounded so a week-long stream cannot
#: grow memory.
_LATENCY_SAMPLES = 8192


class StreamHealth:
    """Live health row of one detection stream (thread-safe).

    All mutation happens through :meth:`observe_chunk` /
    :meth:`note_alert` / :meth:`mark_finished`, called by the engine's
    *instrumented* push branch only — a disabled-observability engine
    never touches this object after construction.
    """

    def __init__(self, stream_id: str, sample_rate: float) -> None:
        if not stream_id:
            raise ValueError("stream_id must be a non-empty string")
        if sample_rate <= 0:
            raise ValueError(f"sample_rate must be > 0, got {sample_rate}")
        self.stream_id = stream_id
        self.sample_rate = float(sample_rate)
        self._lock = threading.Lock()
        self._created_ts = time.time()
        self._created_mono = time.perf_counter()
        self._last_push_mono = self._created_mono
        self._last_push_ts: Optional[float] = None
        self._samples = 0
        self._chunks = 0
        self._windows = 0
        self._quarantined = 0
        self._sensor_fault = False
        self._alerts = 0
        self._last_alert: Optional[Dict[str, object]] = None
        self._finished = False
        self._intrusion: Optional[bool] = None
        self._latency = Histogram(
            f"stream.{stream_id}.chunk_latency_s", _LATENCY_SAMPLES
        )

    # ------------------------------------------------------------------
    def observe_chunk(
        self,
        n_samples: int,
        latency_s: float,
        n_indexes: int,
        n_quarantined: int,
        sensor_fault: bool,
    ) -> None:
        """Record one instrumented ``push()``: volume, latency, progress."""
        with self._lock:
            self._samples += int(n_samples)
            self._chunks += 1
            self._windows = int(n_indexes)
            self._quarantined = int(n_quarantined)
            self._sensor_fault = bool(sensor_fault)
            self._last_push_mono = time.perf_counter()
            self._last_push_ts = time.time()
        self._latency.observe(float(latency_s))

    def note_alert(self, submodule: str, time_s: float) -> None:
        """Record one raised alert (called off the per-chunk fast path)."""
        with self._lock:
            self._alerts += 1
            self._last_alert = {
                "submodule": str(submodule),
                "time_s": float(time_s),
                "ts": time.time(),
            }

    def mark_finished(self, intrusion: Optional[bool] = None) -> None:
        """Freeze the row once the stream's engine finalized."""
        with self._lock:
            self._finished = True
            if intrusion is not None:
                self._intrusion = bool(intrusion)

    # ------------------------------------------------------------------
    def snapshot(self, now: Optional[float] = None) -> Dict[str, object]:
        """JSON-safe view of the row (quantiles computed on demand)."""
        mono = time.perf_counter()
        wall = time.time() if now is None else float(now)
        with self._lock:
            samples = self._samples
            elapsed = max(mono - self._created_mono, 1e-9)
            lag = max(0.0, elapsed - samples / self.sample_rate)
            staleness = mono - self._last_push_mono
            doc: Dict[str, object] = {
                "stream_id": self.stream_id,
                "state": "finished" if self._finished else "live",
                "sample_rate": self.sample_rate,
                "created_ts": self._created_ts,
                "last_push_ts": self._last_push_ts,
                "samples": samples,
                "chunks": self._chunks,
                "windows": self._windows,
                "quarantined_windows": self._quarantined,
                "sensor_fault": self._sensor_fault,
                "alerts": self._alerts,
                "last_alert": dict(self._last_alert)
                if self._last_alert is not None
                else None,
                "intrusion": self._intrusion,
                "samples_per_s": samples / elapsed,
                "ingest_lag_s": lag,
                "staleness_s": staleness,
                "snapshot_ts": wall,
            }
        doc["chunk_latency"] = {
            "count": self._latency.count,
            "mean_s": self._latency.mean,
            **{
                f"p{int(q * 100)}_s": self._latency.quantile(q)
                for q in _QUANTILES
            },
        }
        return doc


class NullStreamHealth:
    """Disabled-path health row: accepts every call and drops it."""

    __slots__ = ()
    stream_id = ""
    sample_rate = 0.0

    def observe_chunk(
        self,
        n_samples: int,
        latency_s: float,
        n_indexes: int,
        n_quarantined: int,
        sensor_fault: bool,
    ) -> None:
        pass

    def note_alert(self, submodule: str, time_s: float) -> None:
        pass

    def mark_finished(self, intrusion: Optional[bool] = None) -> None:
        pass

    def snapshot(self, now: Optional[float] = None) -> Dict[str, object]:
        return {}


#: Shared singleton held by engines constructed without a ``stream_id``.
NULL_STREAM_HEALTH = NullStreamHealth()


class StreamHealthRegistry:
    """Process-wide, thread-safe home of every stream's health row."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._streams: Dict[str, StreamHealth] = {}

    def register(self, stream_id: str, sample_rate: float) -> StreamHealth:
        """Create (or replace) the row for ``stream_id`` and return it.

        Re-registering an id starts a fresh row: a restarted print on the
        same printer is a new stream, not a continuation of the old one.
        """
        row = StreamHealth(stream_id, sample_rate)
        with self._lock:
            self._streams[stream_id] = row
        return row

    def get(self, stream_id: str) -> Optional[StreamHealth]:
        with self._lock:
            return self._streams.get(stream_id)

    def unregister(self, stream_id: str) -> bool:
        """Drop a row; returns whether it existed."""
        with self._lock:
            return self._streams.pop(stream_id, None) is not None

    def ids(self) -> List[str]:
        with self._lock:
            return sorted(self._streams)

    def __len__(self) -> int:
        with self._lock:
            return len(self._streams)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-safe ``{stream_id: row_snapshot}`` of every stream."""
        with self._lock:
            rows = list(self._streams.values())
        now = time.time()
        return {row.stream_id: row.snapshot(now=now) for row in rows}

    def reset(self) -> None:
        with self._lock:
            self._streams.clear()


_streams = StreamHealthRegistry()


def streams() -> StreamHealthRegistry:
    """The process-wide stream-health registry."""
    return _streams


def register_stream(stream_id: str, sample_rate: float) -> StreamHealth:
    """Module-level shortcut for ``streams().register(...)``."""
    return _streams.register(stream_id, sample_rate)


def unregister_stream(stream_id: str) -> bool:
    """Module-level shortcut for ``streams().unregister(...)``."""
    return _streams.unregister(stream_id)


def reset_streams() -> None:
    """Drop every stream row (tests and repeated CLI invocations)."""
    _streams.reset()


# ---------------------------------------------------------------------------
# Service-level stats (the fleet service's gauges: live streams, shard
# queue depth, ...).  The service registers a provider callable returning
# a flat {stat: number} dict; each key renders as a ``repro_serve_<stat>``
# gauge in the exposition and rides along as the ``service`` section of
# :func:`telemetry_document`.  A provider keeps the coupling one-way:
# telemetry knows nothing about repro.serve, and a crashed/stopped service
# simply clears its provider.
# ---------------------------------------------------------------------------
_service_stats_lock = threading.Lock()
_service_stats_provider: Optional[Callable[[], Dict[str, float]]] = None


def set_service_stats(provider: Callable[[], Dict[str, float]]) -> None:
    """Install the service-stats provider (latest registration wins)."""
    global _service_stats_provider
    with _service_stats_lock:
        _service_stats_provider = provider


def clear_service_stats() -> None:
    """Remove the provider (service shut down); idempotent."""
    global _service_stats_provider
    with _service_stats_lock:
        _service_stats_provider = None


def service_stats() -> Optional[Dict[str, float]]:
    """The current service-stats dict, or ``None`` when no service runs.

    A provider that raises is treated as absent: the scrape must never
    fail because the service is mid-shutdown.
    """
    with _service_stats_lock:
        provider = _service_stats_provider
    if provider is None:
        return None
    try:
        stats = provider()
    except Exception:
        return None
    return {
        str(k): float(v)
        for k, v in stats.items()
        if isinstance(v, (int, float))
    }


# ---------------------------------------------------------------------------
# Prometheus text exposition (format version 0.0.4)
# ---------------------------------------------------------------------------
_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_FIX = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(name: str) -> str:
    """Map a registry metric name onto the Prometheus grammar.

    ``repro.core.engine.samples`` -> ``repro_core_engine_samples``; any
    rune outside ``[a-zA-Z0-9_:]`` becomes ``_`` and a leading digit gains
    a ``_`` prefix.  The mapping is stable (pure function of the input),
    which is what makes dashboards and alert rules durable across PRs.
    """
    fixed = _NAME_FIX.sub("_", name)
    if not fixed or fixed[0].isdigit():
        fixed = "_" + fixed
    assert _NAME_OK.match(fixed), fixed
    return fixed


def _escape_label(value: str) -> str:
    """Escape a label value per the exposition-format grammar."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _fmt(value: float) -> str:
    """Render one sample value (repr keeps float round-trip fidelity)."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


class _PromDoc:
    """Accumulates families + samples in exposition order."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self._seen: set = set()

    def family(self, name: str, mtype: str, help_text: str) -> None:
        if name in self._seen:
            return
        self._seen.add(name)
        self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} {mtype}")

    def sample(
        self,
        name: str,
        value: float,
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        if labels:
            body = ",".join(
                f'{k}="{_escape_label(v)}"' for k, v in labels.items()
            )
            self.lines.append(f"{name}{{{body}}} {_fmt(value)}")
        else:
            self.lines.append(f"{name} {_fmt(value)}")

    def render(self) -> str:
        return "\n".join(self.lines) + "\n"


def _render_registry(doc: _PromDoc, snapshot: Dict[str, object]) -> None:
    """Counters/gauges/histograms/spans of one registry snapshot."""
    counters = snapshot.get("counters", {})
    assert isinstance(counters, dict)
    for name, value in counters.items():
        prom = prometheus_name(name) + "_total"
        doc.family(prom, "counter", f"registry counter {name}")
        doc.sample(prom, float(value))
    gauges = snapshot.get("gauges", {})
    assert isinstance(gauges, dict)
    for name, value in gauges.items():
        prom = prometheus_name(name)
        doc.family(prom, "gauge", f"registry gauge {name}")
        doc.sample(prom, float(value))
    histograms = snapshot.get("histograms", {})
    assert isinstance(histograms, dict)
    for name, summary in histograms.items():
        prom = prometheus_name(name)
        doc.family(prom, "summary", f"registry histogram {name}")
        count = float(summary.get("count", 0))
        mean = float(summary.get("mean", 0.0))
        for q in ("p50", "p90", "p99"):
            if q in summary:
                doc.sample(
                    prom,
                    float(summary[q]),
                    {"quantile": f"0.{q[1:]}"},
                )
        doc.sample(prom + "_count", count)
        doc.sample(prom + "_sum", mean * count)
    spans = snapshot.get("spans", {})
    assert isinstance(spans, dict)
    if spans:
        doc.family(
            "repro_span_calls_total", "counter", "span invocations"
        )
        doc.family("repro_span_errors_total", "counter", "span errors")
        doc.family(
            "repro_span_wall_seconds_total", "counter",
            "cumulative span wall time",
        )
        doc.family(
            "repro_span_cpu_seconds_total", "counter",
            "cumulative span CPU time",
        )
        for name, stats in spans.items():
            label = {"span": name}
            doc.sample(
                "repro_span_calls_total", float(stats["count"]), label
            )
            doc.sample(
                "repro_span_errors_total", float(stats["errors"]), label
            )
            doc.sample(
                "repro_span_wall_seconds_total",
                float(stats["wall_total_s"]),
                label,
            )
            doc.sample(
                "repro_span_cpu_seconds_total",
                float(stats["cpu_total_s"]),
                label,
            )


def _render_streams(
    doc: _PromDoc, rows: Dict[str, Dict[str, object]]
) -> None:
    """The fixed per-stream families over every registered stream."""
    for family, mtype, help_text in STREAM_FAMILIES:
        doc.family(family, mtype, help_text)
    for stream_id in sorted(rows):
        row = rows[stream_id]
        label = {"stream": stream_id}
        doc.sample(
            "repro_stream_up", 0.0 if row["state"] == "finished" else 1.0,
            label,
        )
        doc.sample(
            "repro_stream_samples_total", float(row["samples"]), label  # type: ignore[arg-type]
        )
        doc.sample(
            "repro_stream_chunks_total", float(row["chunks"]), label  # type: ignore[arg-type]
        )
        doc.sample(
            "repro_stream_windows_total", float(row["windows"]), label  # type: ignore[arg-type]
        )
        doc.sample(
            "repro_stream_alerts_total", float(row["alerts"]), label  # type: ignore[arg-type]
        )
        doc.sample(
            "repro_stream_quarantined_windows_total",
            float(row["quarantined_windows"]),  # type: ignore[arg-type]
            label,
        )
        doc.sample(
            "repro_stream_sensor_fault",
            1.0 if row["sensor_fault"] else 0.0,
            label,
        )
        doc.sample(
            "repro_stream_ingest_lag_seconds",
            float(row["ingest_lag_s"]),  # type: ignore[arg-type]
            label,
        )
        doc.sample(
            "repro_stream_staleness_seconds",
            float(row["staleness_s"]),  # type: ignore[arg-type]
            label,
        )
        doc.sample(
            "repro_stream_samples_per_second",
            float(row["samples_per_s"]),  # type: ignore[arg-type]
            label,
        )
        # Always emitted (0.0 = never alerted) so alert-free streams still
        # expose the full family set the telemetry contract promises.
        last_alert = row.get("last_alert")
        doc.sample(
            "repro_stream_last_alert_timestamp_seconds",
            float(last_alert["ts"])  # type: ignore[arg-type]
            if isinstance(last_alert, dict)
            else 0.0,
            label,
        )
        latency = row.get("chunk_latency")
        if isinstance(latency, dict):
            for q in _QUANTILES:
                doc.sample(
                    "repro_stream_chunk_latency_seconds",
                    float(latency[f"p{int(q * 100)}_s"]),
                    {**label, "quantile": repr(q)},
                )
            count = float(latency["count"])
            doc.sample(
                "repro_stream_chunk_latency_seconds_count", count, label
            )
            doc.sample(
                "repro_stream_chunk_latency_seconds_sum",
                float(latency["mean_s"]) * count,
                label,
            )


def render_prometheus(
    metrics_snapshot: Optional[Dict[str, object]] = None,
    stream_rows: Optional[Dict[str, Dict[str, object]]] = None,
) -> str:
    """The whole process as one Prometheus text-exposition document.

    Defaults to the live process-wide registries; pass explicit snapshots
    to render saved state (``repro top --snapshot`` does).
    """
    from . import snapshot as obs_snapshot  # late: avoid import cycle

    doc = _PromDoc()
    doc.family(
        "repro_telemetry_info", "gauge", "telemetry schema information"
    )
    doc.sample(
        "repro_telemetry_info",
        1.0,
        {"version": str(TELEMETRY_SCHEMA_VERSION)},
    )
    _render_registry(
        doc,
        metrics_snapshot if metrics_snapshot is not None else obs_snapshot(),
    )
    _render_streams(
        doc,
        stream_rows if stream_rows is not None else _streams.snapshot(),
    )
    stats = service_stats()
    if stats is not None:
        for key in sorted(stats):
            prom = prometheus_name(f"repro_serve_{key}")
            doc.family(prom, "gauge", f"fleet service stat {key}")
            doc.sample(prom, stats[key])
    return doc.render()


def telemetry_document() -> Dict[str, object]:
    """The live JSON telemetry snapshot (``repro top``'s wire format)."""
    from . import snapshot as obs_snapshot  # late: avoid import cycle

    doc: Dict[str, object] = {
        "v": TELEMETRY_SCHEMA_VERSION,
        "ts": time.time(),
        "metrics": obs_snapshot(),
        "streams": _streams.snapshot(),
    }
    stats = service_stats()
    if stats is not None:
        doc["service"] = stats
    return doc


# ---------------------------------------------------------------------------
# HTTP exposition endpoint
# ---------------------------------------------------------------------------
class _TelemetryHandler(BaseHTTPRequestHandler):
    """Serves /metrics (text exposition), /snapshot.json, /healthz."""

    server_version = "repro-telemetry/1"

    def _reply(self, code: int, body: bytes, content_type: str) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802  (http.server API)
        path = self.path.split("?", 1)[0]
        if path in ("/metrics", "/"):
            self._reply(
                200,
                render_prometheus().encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        elif path == "/snapshot.json":
            body = json.dumps(telemetry_document()).encode("utf-8")
            self._reply(200, body, "application/json")
        elif path == "/healthz":
            self._reply(200, b"ok\n", "text/plain; charset=utf-8")
        else:
            self._reply(404, b"not found\n", "text/plain; charset=utf-8")

    def log_message(self, format: str, *args: object) -> None:
        """Scrapes happen every few seconds; stay silent."""


class TelemetryServer:
    """A running exposition endpoint (background daemon thread)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._httpd = ThreadingHTTPServer((host, port), _TelemetryHandler)
        self._httpd.daemon_threads = True
        self.host = self._httpd.server_address[0]
        self.port = int(self._httpd.server_address[1])
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-telemetry:{self.port}",
            daemon=True,
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        """Stop serving and release the port (idempotent)."""
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)


_server: Optional[TelemetryServer] = None
_server_lock = threading.Lock()


def serve(port: int = 0, host: str = "127.0.0.1") -> TelemetryServer:
    """Start (or return) the process-wide exposition endpoint.

    ``port=0`` binds an ephemeral port (read it back from ``.port``).
    Idempotent while a server is running: a second call returns the
    existing server regardless of the requested port.  Serving implies
    recording: the process-wide ``obs`` switch is enabled so the
    endpoint has metrics to expose.
    """
    from . import enable as obs_enable  # late: avoid import cycle

    global _server
    with _server_lock:
        if _server is None:
            _server = TelemetryServer(host=host, port=port)
        obs_enable()
        return _server


def stop() -> None:
    """Shut the process-wide endpoint down (idempotent)."""
    global _server
    with _server_lock:
        if _server is not None:
            _server.close()
            _server = None


def active_server() -> Optional[TelemetryServer]:
    """The running process-wide endpoint, if any."""
    return _server


# ---------------------------------------------------------------------------
# Periodic file-snapshot exporter (scrape-less environments)
# ---------------------------------------------------------------------------
class SnapshotExporter:
    """Writes the telemetry snapshot to a file every ``interval_s``.

    A ``.prom`` suffix writes the Prometheus text document (the node-
    exporter textfile-collector convention); anything else writes the
    JSON document ``repro top --snapshot`` reads.  Writes go to a
    temporary sibling then ``os.replace`` so a concurrent reader never
    observes a torn file.  The thread is a daemon; :meth:`stop` performs
    one final write so short-lived processes still leave a snapshot.
    """

    def __init__(self, path: Union[str, "os.PathLike"], interval_s: float = 5.0) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self.path = Path(path)
        self.interval_s = float(interval_s)
        if self.path.parent != Path(""):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name=f"repro-telemetry-export:{self.path}",
            daemon=True,
        )
        self.writes = 0
        self._thread.start()

    def write_once(self) -> Path:
        """Render and atomically write one snapshot; returns the path."""
        if self.path.suffix == ".prom":
            body = render_prometheus()
        else:
            body = json.dumps(telemetry_document(), indent=2) + "\n"
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(body)
        os.replace(tmp, self.path)
        self.writes += 1
        return self.path

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.write_once()

    def stop(self) -> None:
        """Stop the loop and write one final snapshot (idempotent)."""
        already = self._stop.is_set()
        self._stop.set()
        self._thread.join(timeout=5.0)
        if not already:
            self.write_once()


def start_snapshot_exporter(
    path: Union[str, "os.PathLike"], interval_s: float = 5.0
) -> SnapshotExporter:
    """Start a background :class:`SnapshotExporter`; caller owns ``stop``."""
    return SnapshotExporter(path, interval_s=interval_s)


def configure_from_env(
    environ: Optional[Dict[str, str]] = None,
) -> Optional[TelemetryServer]:
    """Start the endpoint/exporter the environment asks for (if any)."""
    env = os.environ if environ is None else environ
    raw = env.get(ENV_VAR, "").strip()
    server: Optional[TelemetryServer] = None
    if raw:
        host, _, port_s = raw.rpartition(":")
        try:
            port = int(port_s)
        except ValueError:
            raise ValueError(
                f"{ENV_VAR} must be PORT or HOST:PORT, got {raw!r}"
            ) from None
        server = serve(port=port, host=host or "127.0.0.1")
    snap = env.get(SNAPSHOT_ENV_VAR, "").strip()
    if snap:
        interval = float(env.get(INTERVAL_ENV_VAR, "5") or "5")
        start_snapshot_exporter(snap, interval_s=interval)
    return server


# Honour REPRO_TELEMETRY at import time so any entry point can expose
# telemetry without code changes (mirrors REPRO_TRACE / REPRO_EVENTS).
if os.environ.get(ENV_VAR) or os.environ.get(SNAPSHOT_ENV_VAR):
    configure_from_env()
