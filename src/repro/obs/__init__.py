"""Observability layer: tracing spans + pipeline metrics (zero deps).

The paper sells NSYNC as a *practical, real-time* IDS and reports its
end-to-end processing-time overhead per sensor (Table 10).  This package is
how the reproduction earns the same claim mechanically: every hot layer of
the sim -> sensor -> sync -> discriminate pipeline carries spans and
metrics, and the aggregate exports as JSON for the CLI (``--metrics-out``),
the benchmark harness (``BENCH_*.json`` snapshots), and the CI
perf-regression gate (``scripts/check_bench_regression.py``).

Design constraints, in order:

1. **Disabled must cost ~nothing.**  Tracing is off by default; every
   entry point checks one module-level boolean and returns a shared
   null object (:data:`~repro.obs.tracing.NULL_SPAN`, :data:`NULL_COUNTER`,
   ...) whose methods are empty.  No clock is read, no dict is touched.
2. **Enabled must be cheap.**  Spans aggregate in place (count / total /
   min / max), never append event lists, so memory stays bounded over a
   million-window campaign.
3. **Zero dependencies.**  ``threading`` + ``time`` + ``json`` only.

Usage::

    from repro import obs

    obs.enable()                    # or REPRO_TRACE=1 in the environment
    with obs.trace("repro.eval.engine.execute"):
        with obs.trace("simulate"):      # nests -> ".../execute/simulate"
            ...
    obs.counter("repro.eval.engine.cache_hits").inc()
    obs.histogram("repro.eval.engine.queue_wait_s").observe(0.8)
    print(obs.to_json())            # or obs.export_metrics("metrics.json")

Naming convention: ``repro.<module>.<name>``; nested spans use short
segment names joined with ``/`` (see :mod:`repro.obs.tracing`).

Two further opt-in layers build on the same null-singleton discipline:
:mod:`repro.obs.events` is the *decision-provenance* event log (per-window
discriminator evidence, alarms, run summaries — ``events.enable(path)`` or
``REPRO_EVENTS=path``), and :func:`enable_chrome_trace` /
:func:`export_chrome_trace` capture spans as Chrome/Perfetto
``trace_event`` JSON for ``ui.perfetto.dev``.

Two *live* layers complete the picture: :mod:`repro.obs.telemetry`
exposes everything above over a Prometheus text-exposition endpoint with
a per-stream health registry (``obs.serve_telemetry(port)``,
``REPRO_TELEMETRY=port``, ``repro top``), and :mod:`repro.obs.profiler`
is a stdlib-only sampling profiler (``REPRO_PROFILE``) producing
collapsed-stack and Chrome-trace output.

Note on multiprocessing: metrics live in the recording process.
``CampaignEngine(workers>=2)`` re-enables recording inside each worker
and merges the per-task registry state back into the parent
(:meth:`MetricsRegistry.merge_state`), so counters/histograms/spans
aggregate across the pool; only the live *telemetry* endpoint remains
per-process.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Union

from . import events
from . import profiler  # noqa: F401  (public submodule: obs.profiler)
from .metrics import (
    SNAPSHOT_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SpanStats,
)
from .tracing import (
    CHROME_TRACE_MAX_EVENTS,
    NULL_SPAN,
    NullSpan,
    Span,
    chrome_trace_enabled,
    current_span_path,
    disable_chrome_trace,
    enable_chrome_trace,
    export_chrome_trace,
)

__all__ = [
    "events",
    "profiler",
    "telemetry",
    "serve_telemetry",
    "stop_telemetry",
    "start_snapshot_exporter",
    "CHROME_TRACE_MAX_EVENTS",
    "chrome_trace_enabled",
    "disable_chrome_trace",
    "enable_chrome_trace",
    "export_chrome_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanStats",
    "Span",
    "NullSpan",
    "NULL_SPAN",
    "SNAPSHOT_VERSION",
    "current_span_path",
    "enabled",
    "enable",
    "disable",
    "trace",
    "counter",
    "gauge",
    "histogram",
    "registry",
    "snapshot",
    "to_json",
    "export_metrics",
    "reset",
    "configure_from_env",
]

ENV_VAR = "REPRO_TRACE"


class _NullCounter:
    """Disabled-path counter: accepts ``inc`` and drops it."""

    __slots__ = ()
    name = ""
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge:
    """Disabled-path gauge: accepts ``set``/``add`` and drops them."""

    __slots__ = ()
    name = ""
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float) -> None:
        pass


class _NullHistogram:
    """Disabled-path histogram: accepts ``observe`` and drops it."""

    __slots__ = ()
    name = ""
    count = 0
    mean = 0.0

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def summary(self) -> Dict[str, float]:
        return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                "p50": 0.0, "p90": 0.0, "p99": 0.0}


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()

_registry = MetricsRegistry()
_enabled = False


def enabled() -> bool:
    """Is instrumentation currently recording?"""
    return _enabled


def enable() -> None:
    """Turn recording on (idempotent); existing metrics are kept."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn recording off (idempotent); accumulated metrics are kept."""
    global _enabled
    _enabled = False


def configure_from_env(environ: Dict[str, str] = os.environ) -> bool:
    """Enable/disable from ``REPRO_TRACE`` (1/true/yes/on = enabled)."""
    raw = environ.get(ENV_VAR, "").strip().lower()
    if raw in ("1", "true", "yes", "on"):
        enable()
    elif raw in ("0", "false", "no", "off", ""):
        disable()
    else:
        raise ValueError(
            f"{ENV_VAR} must be a boolean-ish value (0/1/true/false), "
            f"got {raw!r}"
        )
    return _enabled


def trace(name: str) -> Union[Span, NullSpan]:
    """Context manager timing one stage; a shared no-op when disabled."""
    if not _enabled:
        return NULL_SPAN
    return Span(name, _registry)


def counter(name: str) -> Union[Counter, _NullCounter]:
    """Return-or-create the named counter; a shared no-op when disabled."""
    if not _enabled:
        return NULL_COUNTER
    return _registry.counter(name)


def gauge(name: str) -> Union[Gauge, _NullGauge]:
    """Return-or-create the named gauge; a shared no-op when disabled."""
    if not _enabled:
        return NULL_GAUGE
    return _registry.gauge(name)


def histogram(name: str) -> Union[Histogram, _NullHistogram]:
    """Return-or-create the named histogram; a shared no-op when disabled."""
    if not _enabled:
        return NULL_HISTOGRAM
    return _registry.histogram(name)


def registry() -> MetricsRegistry:
    """The process-wide registry (always real, even while disabled)."""
    return _registry


def snapshot() -> Dict[str, object]:
    """JSON-safe dict of everything recorded so far."""
    return _registry.snapshot()


def to_json(indent: int = 2) -> str:
    """The registry snapshot serialized as a JSON document."""
    return _registry.to_json(indent=indent)


def export_metrics(path: Union[str, "os.PathLike"]) -> Path:
    """Write the registry snapshot to ``path`` as JSON; returns the path."""
    out = Path(path)
    if out.parent != Path(""):
        out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(_registry.to_json() + "\n")
    return out


def reset() -> None:
    """Drop all recorded metrics (the enabled/disabled state is kept)."""
    _registry.reset()


# Honour REPRO_TRACE at import time so any entry point (CLI, pytest,
# benchmarks) can be traced without code changes.
if os.environ.get(ENV_VAR):
    configure_from_env()

# Imported last: telemetry's import-time REPRO_TELEMETRY hook may call
# back into ``enable()`` above, which must already exist.
from . import telemetry  # noqa: E402


def serve_telemetry(
    port: int = 0, host: str = "127.0.0.1"
) -> "telemetry.TelemetryServer":
    """Start the live Prometheus/JSON telemetry endpoint (see
    :func:`repro.obs.telemetry.serve`); implies :func:`enable`."""
    return telemetry.serve(port=port, host=host)


def stop_telemetry() -> None:
    """Shut the telemetry endpoint down (idempotent)."""
    telemetry.stop()


def start_snapshot_exporter(
    path: Union[str, "os.PathLike"], interval_s: float = 5.0
) -> "telemetry.SnapshotExporter":
    """Start the periodic telemetry file exporter (see
    :class:`repro.obs.telemetry.SnapshotExporter`)."""
    return telemetry.start_snapshot_exporter(path, interval_s=interval_s)
