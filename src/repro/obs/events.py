"""Structured decision-provenance event log (schema v1, zero deps).

Where :mod:`repro.obs.metrics` answers "how fast / how many", this module
answers "**why did this alarm fire, and where in the print?**".  The
detection stack (:class:`~repro.core.pipeline.NsyncIds`,
:class:`~repro.core.streaming.StreamingNsyncIds`) emits one
``window_evidence`` event per analysis window — the paper's discriminator
evidence: horizontal displacement, CADHD, and the filtered horizontal /
vertical distances against their OCC thresholds — plus ``alarm`` and
``run_summary`` events, and the campaign engine emits run-lifecycle events
with cache keys.  ``repro explain`` joins the resulting log with the
simulator's sample→instruction mapping to render an incident report.

Design constraints mirror :mod:`repro.obs` (PR 2):

1. **Disabled must cost ~nothing.**  Events are off by default; call sites
   guard hot loops with :func:`enabled` (one module-level boolean) and
   :func:`log` hands back the shared :data:`NULL_EVENT_LOG` whose ``emit``
   is empty — no clock, no dict, no I/O.
2. **Bounded memory when on.**  The in-memory view is a ring buffer
   (``collections.deque(maxlen=...)``); the complete stream goes to an
   append-only JSONL sink when a path is given.
3. **Zero dependencies.**  ``threading`` + ``time`` + ``json`` only.
4. **Safe to leave on for days.**  The sink has an explicit flush policy
   (``flush_every`` records; default every record, so a crash loses at
   most the in-flight one) and size-based rotation
   (``max_bytes`` / ``REPRO_EVENTS_MAX_MB``): when the live file would
   exceed the cap it is closed and shifted to ``<path>.1`` (existing
   ``.N`` shift to ``.N+1``) *before* the record is written, so a
   rotation boundary never splits a JSON record.  :func:`read_jsonl`
   reassembles the rotated chain oldest-first and still enforces the
   strictly-increasing ``seq``.

Event record schema (version :data:`EVENT_SCHEMA_VERSION`)::

    {"v": 1, "seq": <monotonic int>, "ts": <unix seconds>,
     "type": "<event type>", ...payload fields...}

``seq`` is strictly increasing per log; payload fields are JSON-safe
scalars/lists.  :data:`EVENT_TYPES` names the required payload fields per
type; :func:`validate_event` enforces the schema (used by tests and
``scripts/validate_events.py``).

Usage::

    from repro.obs import events

    events.enable(jsonl_path="run.jsonl")   # or REPRO_EVENTS=run.jsonl
    verdict = ids.detect(observed)           # pipeline emits as it decides
    events.tail(3, etype="alarm")            # in-memory ring
    events.disable()                         # flush + close the sink

Note on multiprocessing: like the metrics registry, the event log lives in
the emitting process.  ``CampaignEngine(workers>=2)`` runs simulations in
workers whose events are not merged back; detection always runs in the
parent, so decision provenance is complete regardless of worker count.
"""

from __future__ import annotations

import json
import os
import threading
import time
import warnings
from collections import deque
from pathlib import Path
from typing import Deque, Dict, List, Optional, Tuple, Union

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "EVENT_TYPES",
    "ENV_VAR",
    "MAX_MB_ENV_VAR",
    "rotated_paths",
    "EventLog",
    "NullEventLog",
    "NULL_EVENT_LOG",
    "enabled",
    "enable",
    "disable",
    "log",
    "emit",
    "tail",
    "validate_event",
    "TornTailWarning",
    "read_jsonl",
    "configure_from_env",
]

#: Schema version stamped into every record's ``v`` field.
EVENT_SCHEMA_VERSION = 1

#: Environment variable: a JSONL sink path, or ``mem`` for ring-only.
ENV_VAR = "REPRO_EVENTS"

#: Environment variable: rotate the JSONL sink when it would exceed this
#: many MiB (float; unset/empty = never rotate).
MAX_MB_ENV_VAR = "REPRO_EVENTS_MAX_MB"

#: Required payload fields per event type (schema v1).  Emitters may add
#: extra fields; validators only require these.
EVENT_TYPES: Dict[str, Tuple[str, ...]] = {
    # One per analysis window: the discriminator's evidence at that window.
    "window_evidence": ("window", "h_disp", "c_disp", "h_dist_f", "v_dist_f"),
    # A sub-module crossed its threshold at a window.
    "alarm": ("window", "submodule", "value", "threshold"),
    # End-of-run verdict plus the window geometry `repro explain` needs.
    "run_summary": ("is_intrusion", "fired", "n_windows"),
    # The streaming v_dist fallback kicked in (window too short to compare).
    "window_truncated": ("window", "n"),
    # The sanitization stage repaired non-finite samples inside a window;
    # the window's evidence is computed from the repaired data and flagged.
    "window_quarantined": ("window", "n_bad"),
    # Fail-closed sensor verdict: the channel went dark / flooded with
    # non-finite samples beyond the SanitizePolicy limits.
    "sensor_fault": ("reason",),
    # Campaign-engine run lifecycle.
    "engine_batch_start": ("n_requests",),
    "engine_run": ("index", "label", "source"),
    "engine_batch_end": ("simulated", "cache_hits", "cache_misses"),
}

_REQUIRED_KEYS = ("v", "seq", "ts", "type")


class EventLog:
    """Thread-safe append-only event log: JSONL sink + in-memory ring.

    Parameters
    ----------
    ring_size:
        Capacity of the in-memory ring buffer (oldest events are dropped
        first; the JSONL sink, when given, always keeps the full stream).
    jsonl_path:
        Optional path of an append-only JSON-Lines sink; parent
        directories are created.  ``None`` keeps events in memory only.
    max_bytes:
        Rotate the sink when the live file would exceed this size
        (``None`` = never).  Rotation happens *before* the offending
        record is written, at a record boundary: the live file moves to
        ``<path>.1`` (older generations shift up) and a fresh file takes
        its place — no record is ever split across generations.
    flush_every:
        Flush the sink every N records (default 1: every record is
        durable as soon as :meth:`emit` returns).  ``0`` leaves flushing
        to the OS buffer / :meth:`flush` / :meth:`close` — cheaper for
        very chatty logs, at the cost of losing the buffered tail on a
        crash.
    """

    def __init__(
        self,
        ring_size: int = 4096,
        jsonl_path: Union[str, "os.PathLike", None] = None,
        max_bytes: Optional[int] = None,
        flush_every: int = 1,
    ) -> None:
        if ring_size < 1:
            raise ValueError(f"ring_size must be >= 1, got {ring_size}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        if flush_every < 0:
            raise ValueError(f"flush_every must be >= 0, got {flush_every}")
        self._lock = threading.Lock()
        self._seq = 0
        self._ring: Deque[dict] = deque(maxlen=ring_size)
        self._path: Optional[Path] = None
        self._sink = None
        self.max_bytes = max_bytes
        self.flush_every = flush_every
        self.rotations = 0
        self._bytes = 0
        self._unflushed = 0
        if jsonl_path is not None:
            self._path = Path(jsonl_path)
            if self._path.parent != Path(""):
                self._path.parent.mkdir(parents=True, exist_ok=True)
            self._sink = open(self._path, "a", encoding="utf-8")
            # Appending to an existing file: count what is already there
            # so the rotation threshold covers the whole live file.
            self._bytes = self._path.stat().st_size

    # ------------------------------------------------------------------
    @property
    def path(self) -> Optional[Path]:
        """The JSONL sink path, or ``None`` for a memory-only log."""
        return self._path

    @property
    def seq(self) -> int:
        """Number of events emitted so far (next record's ``seq``)."""
        return self._seq

    def emit(self, etype: str, **fields: object) -> dict:
        """Record one event; returns the full record (with ``seq``/``ts``)."""
        with self._lock:
            record = {
                "v": EVENT_SCHEMA_VERSION,
                "seq": self._seq,
                "ts": time.time(),
                "type": etype,
            }
            record.update(fields)
            self._seq += 1
            self._ring.append(record)
            if self._sink is not None:
                line = json.dumps(record) + "\n"
                n_bytes = len(line.encode("utf-8"))
                if (
                    self.max_bytes is not None
                    and self._bytes > 0
                    and self._bytes + n_bytes > self.max_bytes
                ):
                    self._rotate_locked()
                self._sink.write(line)
                self._bytes += n_bytes
                self._unflushed += 1
                if self.flush_every and self._unflushed >= self.flush_every:
                    self._sink.flush()
                    self._unflushed = 0
        return record

    def _rotate_locked(self) -> None:
        """Close the live file and shift the generation chain up by one.

        Caller holds the lock and writes the next record to the fresh
        file, so every generation holds only whole records.
        """
        assert self._sink is not None and self._path is not None
        self._sink.flush()
        self._sink.close()
        n = 1
        while Path(f"{self._path}.{n}").exists():
            n += 1
        for i in range(n - 1, 0, -1):
            os.replace(f"{self._path}.{i}", f"{self._path}.{i + 1}")
        os.replace(self._path, f"{self._path}.1")
        self._sink = open(self._path, "a", encoding="utf-8")
        self._bytes = 0
        self._unflushed = 0
        self.rotations += 1

    def tail(self, n: Optional[int] = None, etype: Optional[str] = None) -> List[dict]:
        """The last ``n`` ring-buffered events (all when ``n`` is None),
        optionally filtered by type."""
        with self._lock:
            records = list(self._ring)
        if etype is not None:
            records = [r for r in records if r.get("type") == etype]
        if n is not None:
            records = records[-n:]
        return records

    def flush(self) -> None:
        """Flush the JSONL sink (no-op for memory-only logs)."""
        with self._lock:
            if self._sink is not None:
                self._sink.flush()

    def close(self) -> None:
        """Flush and close the sink; further emits stay in memory only."""
        with self._lock:
            if self._sink is not None:
                self._sink.flush()
                self._sink.close()
                self._sink = None


class NullEventLog:
    """Disabled-path log: accepts every call and drops it."""

    __slots__ = ()
    path = None
    seq = 0

    def emit(self, etype: str, **fields: object) -> None:
        pass

    def tail(self, n: Optional[int] = None, etype: Optional[str] = None) -> List[dict]:
        return []

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


#: Shared singleton handed out whenever event logging is disabled.
NULL_EVENT_LOG = NullEventLog()

_log: Optional[EventLog] = None


def enabled() -> bool:
    """Is decision-provenance event logging currently recording?"""
    return _log is not None


def enable(
    jsonl_path: Union[str, "os.PathLike", None] = None,
    ring_size: int = 4096,
    max_bytes: Optional[int] = None,
    flush_every: int = 1,
) -> EventLog:
    """Install a fresh process-wide :class:`EventLog` and return it.

    Replaces (and closes) any previously active log.  ``max_bytes`` /
    ``flush_every`` configure sink rotation and durability (see
    :class:`EventLog`).
    """
    global _log
    if _log is not None:
        _log.close()
    _log = EventLog(
        ring_size=ring_size,
        jsonl_path=jsonl_path,
        max_bytes=max_bytes,
        flush_every=flush_every,
    )
    return _log


def disable() -> None:
    """Close and drop the active log (idempotent)."""
    global _log
    if _log is not None:
        _log.close()
        _log = None


def log() -> Union[EventLog, NullEventLog]:
    """The active log, or the shared null log while disabled.

    Hot per-window call sites should additionally guard with
    :func:`enabled` so the disabled path never builds a kwargs dict.
    """
    return _log if _log is not None else NULL_EVENT_LOG


def emit(etype: str, **fields: object) -> Optional[dict]:
    """Module-level shortcut for ``log().emit(...)``; None while disabled."""
    if _log is None:
        return None
    return _log.emit(etype, **fields)


def tail(n: Optional[int] = None, etype: Optional[str] = None) -> List[dict]:
    """Module-level shortcut for ``log().tail(...)``."""
    return log().tail(n, etype)


def validate_event(record: object) -> dict:
    """Validate one record against schema v1; returns it or raises.

    Checks the envelope (``v``/``seq``/``ts``/``type``), the schema
    version, and — for the known :data:`EVENT_TYPES` — the per-type
    required payload fields.  Unknown types pass with a valid envelope so
    consumers stay forward-compatible.
    """
    if not isinstance(record, dict):
        raise ValueError(f"event must be a JSON object, got {type(record).__name__}")
    for key in _REQUIRED_KEYS:
        if key not in record:
            raise ValueError(f"event missing required key {key!r}: {record}")
    if record["v"] != EVENT_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported event schema version {record['v']!r} "
            f"(expected {EVENT_SCHEMA_VERSION})"
        )
    if not isinstance(record["seq"], int) or record["seq"] < 0:
        raise ValueError(f"event seq must be a non-negative int: {record}")
    if not isinstance(record["ts"], (int, float)):
        raise ValueError(f"event ts must be a number: {record}")
    etype = record["type"]
    if not isinstance(etype, str) or not etype:
        raise ValueError(f"event type must be a non-empty string: {record}")
    required = EVENT_TYPES.get(etype)
    if required is not None:
        missing = [f for f in required if f not in record]
        if missing:
            raise ValueError(
                f"event of type {etype!r} missing fields {missing}: {record}"
            )
    return record


def rotated_paths(path: Union[str, "os.PathLike"]) -> List[Path]:
    """The full generation chain of a (possibly rotated) sink, oldest first.

    ``[<path>.N, ..., <path>.2, <path>.1, <path>]`` for every generation
    that exists on disk — the order in which :func:`read_jsonl`
    concatenates them so ``seq`` stays strictly increasing.
    """
    base = Path(path)
    n = 1
    generations: List[Path] = []
    while Path(f"{base}.{n}").exists():
        generations.append(Path(f"{base}.{n}"))
        n += 1
    generations.reverse()
    generations.append(base)
    return generations


class TornTailWarning(UserWarning):
    """A torn (incomplete) trailing record was dropped by :func:`read_jsonl`."""


def _read_one(
    path: Path,
    records: List[dict],
    validate: bool,
    last_seq: int,
    tolerate_tail: bool = False,
) -> int:
    """Append one file's records; returns the updated last ``seq``.

    With ``tolerate_tail`` a JSON decode failure on the file's *final*
    non-empty line is treated as a torn write (interrupted process): that
    one record is dropped and reported via :class:`TornTailWarning`.  A
    decode failure anywhere earlier is mid-file corruption and still
    raises ``ValueError``, as do schema and ``seq`` violations — a torn
    tail can only ever be the last thing written.
    """
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().split("\n")
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            is_tail = all(not rest.strip() for rest in lines[lineno:])
            if tolerate_tail and is_tail:
                warnings.warn(
                    f"{path}:{lineno}: dropped torn trailing record "
                    f"({exc}): {line[:80]!r}",
                    TornTailWarning,
                    stacklevel=3,
                )
                break
            raise ValueError(f"{path}:{lineno}: invalid JSON: {exc}") from None
        if validate:
            try:
                validate_event(record)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from None
            if record["seq"] <= last_seq:
                raise ValueError(
                    f"{path}:{lineno}: seq {record['seq']} not increasing "
                    f"(previous {last_seq})"
                )
            last_seq = record["seq"]
        records.append(record)
    return last_seq


def read_jsonl(
    path: Union[str, "os.PathLike"],
    validate: bool = True,
    include_rotated: bool = True,
    tolerate_torn_tail: bool = False,
) -> List[dict]:
    """Load an events JSONL file; optionally validate every record.

    Rotation-aware: with ``include_rotated`` (the default) any
    ``<path>.N`` generations left by sink rotation are read first,
    oldest to newest, then the live file — one seamless stream.  Also
    checks that ``seq`` is strictly increasing when validating (across
    the whole chain) — a truncated or interleaved log fails loudly
    instead of producing a silently wrong incident report.

    ``tolerate_torn_tail`` is for crash-recovery forensics: a SIGKILLed
    writer can leave a partial final line in the *newest* file of the
    chain.  When set, exactly that one incomplete trailing record is
    dropped and reported via :class:`TornTailWarning`; corruption
    anywhere else (mid-file garbage, rotated generations, ``seq``
    regressions) still raises ``ValueError``.
    """
    base = Path(path)
    paths = rotated_paths(base) if include_rotated else [base]
    records: List[dict] = []
    last_seq = -1
    for p in paths:
        if p != base and not p.exists():
            continue
        last_seq = _read_one(
            p,
            records,
            validate,
            last_seq,
            tolerate_tail=tolerate_torn_tail and p == paths[-1],
        )
    return records


def configure_from_env(environ: Dict[str, str] = os.environ) -> bool:
    """Enable from ``REPRO_EVENTS`` (a JSONL path, or ``mem``/``1``).

    ``REPRO_EVENTS_MAX_MB`` (float, MiB) additionally caps the live sink
    file, rotating at record boundaries once it would be exceeded.
    """
    raw = environ.get(ENV_VAR, "").strip()
    if not raw:
        return enabled()
    max_bytes: Optional[int] = None
    raw_mb = environ.get(MAX_MB_ENV_VAR, "").strip()
    if raw_mb:
        try:
            max_mb = float(raw_mb)
        except ValueError:
            raise ValueError(
                f"{MAX_MB_ENV_VAR} must be a number of MiB, got {raw_mb!r}"
            ) from None
        if max_mb <= 0:
            raise ValueError(
                f"{MAX_MB_ENV_VAR} must be > 0, got {raw_mb!r}"
            )
        max_bytes = int(max_mb * 1024 * 1024)
    if raw.lower() in ("mem", "1", "true", "yes", "on"):
        enable(max_bytes=max_bytes)
    else:
        enable(jsonl_path=raw, max_bytes=max_bytes)
    return True


# Honour REPRO_EVENTS at import time so any entry point can log events
# without code changes (mirrors REPRO_TRACE in repro.obs).
if os.environ.get(ENV_VAR):
    configure_from_env()
