"""Structured decision-provenance event log (schema v1, zero deps).

Where :mod:`repro.obs.metrics` answers "how fast / how many", this module
answers "**why did this alarm fire, and where in the print?**".  The
detection stack (:class:`~repro.core.pipeline.NsyncIds`,
:class:`~repro.core.streaming.StreamingNsyncIds`) emits one
``window_evidence`` event per analysis window — the paper's discriminator
evidence: horizontal displacement, CADHD, and the filtered horizontal /
vertical distances against their OCC thresholds — plus ``alarm`` and
``run_summary`` events, and the campaign engine emits run-lifecycle events
with cache keys.  ``repro explain`` joins the resulting log with the
simulator's sample→instruction mapping to render an incident report.

Design constraints mirror :mod:`repro.obs` (PR 2):

1. **Disabled must cost ~nothing.**  Events are off by default; call sites
   guard hot loops with :func:`enabled` (one module-level boolean) and
   :func:`log` hands back the shared :data:`NULL_EVENT_LOG` whose ``emit``
   is empty — no clock, no dict, no I/O.
2. **Bounded memory when on.**  The in-memory view is a ring buffer
   (``collections.deque(maxlen=...)``); the complete stream goes to an
   append-only JSONL sink when a path is given.
3. **Zero dependencies.**  ``threading`` + ``time`` + ``json`` only.

Event record schema (version :data:`EVENT_SCHEMA_VERSION`)::

    {"v": 1, "seq": <monotonic int>, "ts": <unix seconds>,
     "type": "<event type>", ...payload fields...}

``seq`` is strictly increasing per log; payload fields are JSON-safe
scalars/lists.  :data:`EVENT_TYPES` names the required payload fields per
type; :func:`validate_event` enforces the schema (used by tests and
``scripts/validate_events.py``).

Usage::

    from repro.obs import events

    events.enable(jsonl_path="run.jsonl")   # or REPRO_EVENTS=run.jsonl
    verdict = ids.detect(observed)           # pipeline emits as it decides
    events.tail(3, etype="alarm")            # in-memory ring
    events.disable()                         # flush + close the sink

Note on multiprocessing: like the metrics registry, the event log lives in
the emitting process.  ``CampaignEngine(workers>=2)`` runs simulations in
workers whose events are not merged back; detection always runs in the
parent, so decision provenance is complete regardless of worker count.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from pathlib import Path
from typing import Deque, Dict, List, Optional, Tuple, Union

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "EVENT_TYPES",
    "ENV_VAR",
    "EventLog",
    "NullEventLog",
    "NULL_EVENT_LOG",
    "enabled",
    "enable",
    "disable",
    "log",
    "emit",
    "tail",
    "validate_event",
    "read_jsonl",
    "configure_from_env",
]

#: Schema version stamped into every record's ``v`` field.
EVENT_SCHEMA_VERSION = 1

#: Environment variable: a JSONL sink path, or ``mem`` for ring-only.
ENV_VAR = "REPRO_EVENTS"

#: Required payload fields per event type (schema v1).  Emitters may add
#: extra fields; validators only require these.
EVENT_TYPES: Dict[str, Tuple[str, ...]] = {
    # One per analysis window: the discriminator's evidence at that window.
    "window_evidence": ("window", "h_disp", "c_disp", "h_dist_f", "v_dist_f"),
    # A sub-module crossed its threshold at a window.
    "alarm": ("window", "submodule", "value", "threshold"),
    # End-of-run verdict plus the window geometry `repro explain` needs.
    "run_summary": ("is_intrusion", "fired", "n_windows"),
    # The streaming v_dist fallback kicked in (window too short to compare).
    "window_truncated": ("window", "n"),
    # The sanitization stage repaired non-finite samples inside a window;
    # the window's evidence is computed from the repaired data and flagged.
    "window_quarantined": ("window", "n_bad"),
    # Fail-closed sensor verdict: the channel went dark / flooded with
    # non-finite samples beyond the SanitizePolicy limits.
    "sensor_fault": ("reason",),
    # Campaign-engine run lifecycle.
    "engine_batch_start": ("n_requests",),
    "engine_run": ("index", "label", "source"),
    "engine_batch_end": ("simulated", "cache_hits", "cache_misses"),
}

_REQUIRED_KEYS = ("v", "seq", "ts", "type")


class EventLog:
    """Thread-safe append-only event log: JSONL sink + in-memory ring.

    Parameters
    ----------
    ring_size:
        Capacity of the in-memory ring buffer (oldest events are dropped
        first; the JSONL sink, when given, always keeps the full stream).
    jsonl_path:
        Optional path of an append-only JSON-Lines sink; parent
        directories are created.  ``None`` keeps events in memory only.
    """

    def __init__(
        self,
        ring_size: int = 4096,
        jsonl_path: Union[str, "os.PathLike", None] = None,
    ) -> None:
        if ring_size < 1:
            raise ValueError(f"ring_size must be >= 1, got {ring_size}")
        self._lock = threading.Lock()
        self._seq = 0
        self._ring: Deque[dict] = deque(maxlen=ring_size)
        self._path: Optional[Path] = None
        self._sink = None
        if jsonl_path is not None:
            self._path = Path(jsonl_path)
            if self._path.parent != Path(""):
                self._path.parent.mkdir(parents=True, exist_ok=True)
            self._sink = open(self._path, "a", encoding="utf-8")

    # ------------------------------------------------------------------
    @property
    def path(self) -> Optional[Path]:
        """The JSONL sink path, or ``None`` for a memory-only log."""
        return self._path

    @property
    def seq(self) -> int:
        """Number of events emitted so far (next record's ``seq``)."""
        return self._seq

    def emit(self, etype: str, **fields: object) -> dict:
        """Record one event; returns the full record (with ``seq``/``ts``)."""
        with self._lock:
            record = {
                "v": EVENT_SCHEMA_VERSION,
                "seq": self._seq,
                "ts": time.time(),
                "type": etype,
            }
            record.update(fields)
            self._seq += 1
            self._ring.append(record)
            if self._sink is not None:
                self._sink.write(json.dumps(record) + "\n")
        return record

    def tail(self, n: Optional[int] = None, etype: Optional[str] = None) -> List[dict]:
        """The last ``n`` ring-buffered events (all when ``n`` is None),
        optionally filtered by type."""
        with self._lock:
            records = list(self._ring)
        if etype is not None:
            records = [r for r in records if r.get("type") == etype]
        if n is not None:
            records = records[-n:]
        return records

    def flush(self) -> None:
        """Flush the JSONL sink (no-op for memory-only logs)."""
        with self._lock:
            if self._sink is not None:
                self._sink.flush()

    def close(self) -> None:
        """Flush and close the sink; further emits stay in memory only."""
        with self._lock:
            if self._sink is not None:
                self._sink.flush()
                self._sink.close()
                self._sink = None


class NullEventLog:
    """Disabled-path log: accepts every call and drops it."""

    __slots__ = ()
    path = None
    seq = 0

    def emit(self, etype: str, **fields: object) -> None:
        pass

    def tail(self, n: Optional[int] = None, etype: Optional[str] = None) -> List[dict]:
        return []

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


#: Shared singleton handed out whenever event logging is disabled.
NULL_EVENT_LOG = NullEventLog()

_log: Optional[EventLog] = None


def enabled() -> bool:
    """Is decision-provenance event logging currently recording?"""
    return _log is not None


def enable(
    jsonl_path: Union[str, "os.PathLike", None] = None,
    ring_size: int = 4096,
) -> EventLog:
    """Install a fresh process-wide :class:`EventLog` and return it.

    Replaces (and closes) any previously active log.
    """
    global _log
    if _log is not None:
        _log.close()
    _log = EventLog(ring_size=ring_size, jsonl_path=jsonl_path)
    return _log


def disable() -> None:
    """Close and drop the active log (idempotent)."""
    global _log
    if _log is not None:
        _log.close()
        _log = None


def log() -> Union[EventLog, NullEventLog]:
    """The active log, or the shared null log while disabled.

    Hot per-window call sites should additionally guard with
    :func:`enabled` so the disabled path never builds a kwargs dict.
    """
    return _log if _log is not None else NULL_EVENT_LOG


def emit(etype: str, **fields: object) -> Optional[dict]:
    """Module-level shortcut for ``log().emit(...)``; None while disabled."""
    if _log is None:
        return None
    return _log.emit(etype, **fields)


def tail(n: Optional[int] = None, etype: Optional[str] = None) -> List[dict]:
    """Module-level shortcut for ``log().tail(...)``."""
    return log().tail(n, etype)


def validate_event(record: object) -> dict:
    """Validate one record against schema v1; returns it or raises.

    Checks the envelope (``v``/``seq``/``ts``/``type``), the schema
    version, and — for the known :data:`EVENT_TYPES` — the per-type
    required payload fields.  Unknown types pass with a valid envelope so
    consumers stay forward-compatible.
    """
    if not isinstance(record, dict):
        raise ValueError(f"event must be a JSON object, got {type(record).__name__}")
    for key in _REQUIRED_KEYS:
        if key not in record:
            raise ValueError(f"event missing required key {key!r}: {record}")
    if record["v"] != EVENT_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported event schema version {record['v']!r} "
            f"(expected {EVENT_SCHEMA_VERSION})"
        )
    if not isinstance(record["seq"], int) or record["seq"] < 0:
        raise ValueError(f"event seq must be a non-negative int: {record}")
    if not isinstance(record["ts"], (int, float)):
        raise ValueError(f"event ts must be a number: {record}")
    etype = record["type"]
    if not isinstance(etype, str) or not etype:
        raise ValueError(f"event type must be a non-empty string: {record}")
    required = EVENT_TYPES.get(etype)
    if required is not None:
        missing = [f for f in required if f not in record]
        if missing:
            raise ValueError(
                f"event of type {etype!r} missing fields {missing}: {record}"
            )
    return record


def read_jsonl(
    path: Union[str, "os.PathLike"], validate: bool = True
) -> List[dict]:
    """Load an events JSONL file; optionally validate every record.

    Also checks that ``seq`` is strictly increasing when validating —
    a truncated or interleaved log fails loudly instead of producing a
    silently wrong incident report.
    """
    records: List[dict] = []
    last_seq = -1
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid JSON: {exc}") from None
            if validate:
                try:
                    validate_event(record)
                except ValueError as exc:
                    raise ValueError(f"{path}:{lineno}: {exc}") from None
                if record["seq"] <= last_seq:
                    raise ValueError(
                        f"{path}:{lineno}: seq {record['seq']} not increasing "
                        f"(previous {last_seq})"
                    )
                last_seq = record["seq"]
            records.append(record)
    return records


def configure_from_env(environ: Dict[str, str] = os.environ) -> bool:
    """Enable from ``REPRO_EVENTS`` (a JSONL path, or ``mem``/``1``)."""
    raw = environ.get(ENV_VAR, "").strip()
    if not raw:
        return enabled()
    if raw.lower() in ("mem", "1", "true", "yes", "on"):
        enable()
    else:
        enable(jsonl_path=raw)
    return True


# Honour REPRO_EVENTS at import time so any entry point can log events
# without code changes (mirrors REPRO_TRACE in repro.obs).
if os.environ.get(ENV_VAR):
    configure_from_env()
