"""In-process sampling profiler (stdlib only): ``obs.profiler``.

Answers "where is the detector spending its time *right now*?" without
stopping the process and without a third-party dependency: a daemon timer
thread snapshots every thread's Python stack via ``sys._current_frames()``
at a fixed interval and folds the samples into a collapsed-stack table —
the flamegraph wire format (``frame;frame;frame count`` per line), also
exportable through the existing Chrome/Perfetto ``trace_event`` path so
one ``ui.perfetto.dev`` tab shows spans and profile side by side.

Discipline matches the rest of :mod:`repro.obs`:

* **Disabled costs nothing.**  Off by default; :func:`profiler` returns
  the shared :data:`NULL_PROFILER` whose methods are empty, and no timer
  thread exists.  Nothing in the detection hot path ever calls into this
  module — sampling is driven entirely by the profiler's own thread, so
  the PR-6 zero-obs-touch gate is unaffected by construction.
* **Sampling bias is real.**  A sampler only sees stacks at tick
  boundaries: costs shorter than the interval are attributed
  probabilistically, C-extension time (NumPy kernels) is charged to the
  Python frame that called it, and threads blocked in I/O still show
  their current frame.  Treat counts as proportions, not truths.
* **Zero dependencies.**  ``sys`` + ``threading`` + ``time`` + ``json``.

Usage::

    from repro.obs import profiler

    profiler.enable(interval_s=0.01)     # or REPRO_PROFILE=1 / =5 (ms)
    ...                                   # run the workload
    prof = profiler.disable()             # stops sampling, keeps samples
    print(prof.report(top=10))
    prof.export_collapsed("profile.folded")
    prof.export_chrome_trace("profile.json")
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

__all__ = [
    "ENV_VAR",
    "DEFAULT_INTERVAL_S",
    "Profiler",
    "NullProfiler",
    "NULL_PROFILER",
    "enabled",
    "enable",
    "disable",
    "profiler",
    "active",
    "configure_from_env",
]

#: Environment variable toggling the profiler.  Boolean-ish values
#: (``1``/``true``/``yes``/``on``) enable at the default interval; a
#: number enables with that interval **in milliseconds**.
ENV_VAR = "REPRO_PROFILE"

#: Default sampling interval: 10 ms = 100 Hz, low enough to be invisible
#: next to a 200 Hz DAQ hot path, high enough to resolve stage costs.
DEFAULT_INTERVAL_S = 0.01

#: Bound on distinct stacks kept (a runaway recursive workload would
#: otherwise grow the fold table without limit).
_MAX_STACKS = 100_000


def _frame_name(frame: "object") -> str:
    """One collapsed-stack frame label: ``module.qualname``."""
    code = frame.f_code  # type: ignore[attr-defined]
    module = frame.f_globals.get("__name__", "?")  # type: ignore[attr-defined]
    return f"{module}.{code.co_name}"


class Profiler:
    """A running (or stopped-with-data) stack sampler.

    Thread-safe: the sampling thread folds into ``_stacks`` under a lock;
    readers (:meth:`collapsed`, :meth:`report`, exports) take the same
    lock and work on copies.
    """

    def __init__(self, interval_s: float = DEFAULT_INTERVAL_S) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self.interval_s = float(interval_s)
        self.samples = 0
        self.dropped = 0
        self._stacks: Dict[Tuple[str, ...], int] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._started_ts = time.time()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def start(self) -> "Profiler":
        """Start the sampling thread (idempotent)."""
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="repro-profiler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> "Profiler":
        """Stop sampling; accumulated samples remain readable."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        return self

    @property
    def running(self) -> bool:
        return self._thread is not None

    def _loop(self) -> None:
        own_id = threading.get_ident()
        while not self._stop.wait(self.interval_s):
            self.sample_once(exclude={own_id})

    def sample_once(self, exclude: Optional[set] = None) -> int:
        """Take one sample of every thread's stack; returns stacks folded.

        Exposed for deterministic tests; the timer loop calls it too.
        """
        skip = exclude or set()
        folded = 0
        for tid, frame in sys._current_frames().items():
            if tid in skip:
                continue
            stack: List[str] = []
            f: Optional[object] = frame
            while f is not None:
                stack.append(_frame_name(f))
                f = f.f_back  # type: ignore[attr-defined]
            key = tuple(reversed(stack))  # root -> leaf, folded convention
            with self._lock:
                if key in self._stacks:
                    self._stacks[key] += 1
                elif len(self._stacks) < _MAX_STACKS:
                    self._stacks[key] = 1
                else:
                    self.dropped += 1
                    continue
                self.samples += 1
            folded += 1
        return folded

    # ------------------------------------------------------------------
    def stacks(self) -> Dict[Tuple[str, ...], int]:
        """Copy of the fold table (root->leaf tuples to sample counts)."""
        with self._lock:
            return dict(self._stacks)

    def collapsed(self) -> str:
        """The folded-stack document (``frame;frame;frame count`` lines).

        This is the flamegraph.pl / speedscope / inferno wire format;
        stacks are root->leaf, sorted by descending count.
        """
        table = self.stacks()
        lines = [
            f"{';'.join(stack)} {count}"
            for stack, count in sorted(
                table.items(), key=lambda kv: (-kv[1], kv[0])
            )
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def report(self, top: int = 10) -> str:
        """Human-readable top-N functions by self-sample share."""
        table = self.stacks()
        total = sum(table.values())
        if not total:
            return "profiler: no samples collected\n"
        self_counts: Dict[str, int] = {}
        cumulative: Dict[str, int] = {}
        for stack, count in table.items():
            self_counts[stack[-1]] = self_counts.get(stack[-1], 0) + count
            for name in set(stack):
                cumulative[name] = cumulative.get(name, 0) + count
        rows = sorted(
            self_counts.items(), key=lambda kv: (-kv[1], kv[0])
        )[:top]
        width = max(len(name) for name, _ in rows)
        lines = [
            f"profiler: {total} samples @ {self.interval_s * 1e3:g} ms"
            f" ({self.dropped} dropped)",
            f"{'function'.ljust(width)}  self%  cum%",
        ]
        for name, count in rows:
            lines.append(
                f"{name.ljust(width)}"
                f"  {100.0 * count / total:5.1f}"
                f"  {100.0 * cumulative.get(name, count) / total:5.1f}"
            )
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    def export_collapsed(self, path: Union[str, "os.PathLike"]) -> Path:
        """Write :meth:`collapsed` to ``path``; returns the path."""
        out = Path(path)
        if out.parent != Path(""):
            out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(self.collapsed())
        return out

    def chrome_trace(self) -> Dict[str, object]:
        """The profile as a Chrome/Perfetto ``trace_event`` document.

        Each distinct stack renders as one complete ("ph": "X") event
        whose duration is ``count * interval`` with its frames in
        ``args.stack`` — the same document shape
        :func:`repro.obs.tracing.export_chrome_trace` produces, so both
        open in the same viewer.
        """
        table = self.stacks()
        events: List[Dict[str, object]] = []
        cursor_us = 0.0
        for stack, count in sorted(
            table.items(), key=lambda kv: (-kv[1], kv[0])
        ):
            dur_us = count * self.interval_s * 1e6
            events.append(
                {
                    "name": stack[-1],
                    "cat": "profile",
                    "ph": "X",
                    "ts": cursor_us,
                    "dur": dur_us,
                    "pid": os.getpid(),
                    "tid": 0,
                    "args": {"stack": ";".join(stack), "samples": count},
                }
            )
            cursor_us += dur_us
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "producer": "repro.obs.profiler",
                "samples": self.samples,
                "droppedSamples": self.dropped,
                "intervalMs": self.interval_s * 1e3,
            },
        }

    def export_chrome_trace(self, path: Union[str, "os.PathLike"]) -> Path:
        """Write :meth:`chrome_trace` to ``path`` as JSON."""
        out = Path(path)
        if out.parent != Path(""):
            out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(self.chrome_trace(), indent=2) + "\n")
        return out


class NullProfiler:
    """Disabled-path profiler: accepts every call and drops it."""

    __slots__ = ()
    interval_s = 0.0
    samples = 0
    dropped = 0
    running = False

    def start(self) -> "NullProfiler":
        return self

    def stop(self) -> "NullProfiler":
        return self

    def sample_once(self, exclude: Optional[set] = None) -> int:
        return 0

    def stacks(self) -> Dict[Tuple[str, ...], int]:
        return {}

    def collapsed(self) -> str:
        return ""

    def report(self, top: int = 10) -> str:
        return "profiler: disabled\n"

    def chrome_trace(self) -> Dict[str, object]:
        return {"traceEvents": [], "displayTimeUnit": "ms",
                "otherData": {"producer": "repro.obs.profiler"}}


#: Shared no-op returned by :func:`profiler` while sampling is disabled.
NULL_PROFILER = NullProfiler()

_active: Optional[Profiler] = None
_lock = threading.Lock()


def enabled() -> bool:
    """Is a sampler currently running?"""
    return _active is not None


def enable(interval_s: float = DEFAULT_INTERVAL_S) -> Profiler:
    """Start the process-wide sampler (idempotent while running)."""
    global _active
    with _lock:
        if _active is None:
            _active = Profiler(interval_s=interval_s).start()
        return _active


def disable() -> Optional[Profiler]:
    """Stop the process-wide sampler; returns it (with its samples)."""
    global _active
    with _lock:
        prof = _active
        _active = None
    if prof is not None:
        prof.stop()
    return prof


def profiler() -> Union[Profiler, NullProfiler]:
    """The live sampler, or the shared no-op while disabled."""
    prof = _active
    return prof if prof is not None else NULL_PROFILER


def active() -> Optional[Profiler]:
    """The live sampler or ``None`` (when you need the real object)."""
    return _active


def configure_from_env(
    environ: Optional[Dict[str, str]] = None,
) -> Optional[Profiler]:
    """Start the sampler if ``REPRO_PROFILE`` asks for it.

    ``1``/``true``/``yes``/``on`` sample at :data:`DEFAULT_INTERVAL_S`;
    a number is the interval in **milliseconds**; ``0``/``false``/empty
    leave the profiler off.
    """
    env = os.environ if environ is None else environ
    raw = env.get(ENV_VAR, "").strip().lower()
    if raw in ("", "0", "false", "no", "off"):
        return None
    if raw in ("1", "true", "yes", "on"):
        return enable()
    try:
        interval_ms = float(raw)
    except ValueError:
        raise ValueError(
            f"{ENV_VAR} must be boolean-ish or an interval in ms, "
            f"got {raw!r}"
        ) from None
    if interval_ms <= 0:
        raise ValueError(f"{ENV_VAR} interval must be > 0 ms, got {raw!r}")
    return enable(interval_s=interval_ms / 1e3)


# Honour REPRO_PROFILE at import time (mirrors REPRO_TRACE).
if os.environ.get(ENV_VAR):
    configure_from_env()
