"""Tracing spans: monotonic wall/CPU timing with nesting.

A :class:`Span` is a context manager that measures one pipeline stage with
``time.perf_counter`` (wall) and ``time.process_time`` (CPU) and records
the aggregate into a :class:`~repro.obs.metrics.MetricsRegistry` on exit —
including exits caused by an exception, which are counted separately in
``errors``.

Nesting is tracked per thread: a span opened inside another span gets the
qualified name ``parent/child``, so the exported snapshot reads like a
flattened call tree (``repro.printer.firmware.run/sample/thermal``).  Top
level spans carry full ``repro.<module>.<name>`` names; children use short
segment names.

:data:`NULL_SPAN` is the disabled-path singleton: entering and exiting it
does nothing and touches no clock, which is what keeps instrumentation
effectively free when ``REPRO_TRACE=0``.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional, Type

from .metrics import MetricsRegistry

__all__ = ["Span", "NullSpan", "NULL_SPAN", "current_span_path"]

_local = threading.local()


def _stack() -> List[str]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def current_span_path() -> Optional[str]:
    """Qualified name of the innermost open span on this thread, if any."""
    stack = _stack()
    return stack[-1] if stack else None


class Span:
    """Times one ``with`` block and records it into a registry on exit."""

    __slots__ = ("name", "registry", "qualified", "wall", "cpu",
                 "_t0_wall", "_t0_cpu")

    def __init__(self, name: str, registry: MetricsRegistry) -> None:
        self.name = name
        self.registry = registry
        self.qualified = name
        self.wall = 0.0
        self.cpu = 0.0
        self._t0_wall = 0.0
        self._t0_cpu = 0.0

    def __enter__(self) -> "Span":
        stack = _stack()
        if stack:
            self.qualified = f"{stack[-1]}/{self.name}"
        stack.append(self.qualified)
        self._t0_cpu = time.process_time()
        self._t0_wall = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: object,
    ) -> bool:
        self.wall = time.perf_counter() - self._t0_wall
        self.cpu = time.process_time() - self._t0_cpu
        stack = _stack()
        # Pop our own frame even if user code corrupted the stack.
        if stack and stack[-1] == self.qualified:
            stack.pop()
        elif self.qualified in stack:  # pragma: no cover - defensive
            stack.remove(self.qualified)
        self.registry.record_span(
            self.qualified, self.wall, self.cpu, error=exc_type is not None
        )
        return False  # never swallow exceptions


class NullSpan:
    """Do-nothing span for the disabled path; safe to reuse and re-enter."""

    __slots__ = ()
    name = ""
    qualified = ""
    wall = 0.0
    cpu = 0.0

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        return False


#: Shared singleton handed out whenever tracing is disabled.
NULL_SPAN = NullSpan()
