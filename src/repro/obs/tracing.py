"""Tracing spans: monotonic wall/CPU timing with nesting.

A :class:`Span` is a context manager that measures one pipeline stage with
``time.perf_counter`` (wall) and ``time.process_time`` (CPU) and records
the aggregate into a :class:`~repro.obs.metrics.MetricsRegistry` on exit —
including exits caused by an exception, which are counted separately in
``errors``.

Nesting is tracked per thread: a span opened inside another span gets the
qualified name ``parent/child``, so the exported snapshot reads like a
flattened call tree (``repro.printer.firmware.run/sample/thermal``).  Top
level spans carry full ``repro.<module>.<name>`` names; children use short
segment names.

:data:`NULL_SPAN` is the disabled-path singleton: entering and exiting it
does nothing and touches no clock, which is what keeps instrumentation
effectively free when ``REPRO_TRACE=0``.

**Chrome/Perfetto export** is an opt-in second mode on top of the
aggregating registry: :func:`enable_chrome_trace` starts capturing every
span exit as one Chrome ``trace_event`` *complete* (``"ph": "X"``) record,
and :func:`export_chrome_trace` dumps them as a ``{"traceEvents": [...]}``
JSON document that loads directly in ``ui.perfetto.dev`` or
``chrome://tracing``.  Capture is bounded (:data:`CHROME_TRACE_MAX_EVENTS`;
overflow is counted, not grown) and costs one dict append per span, which
is why it is separate from the always-cheap aggregation path.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Type, Union

from .metrics import MetricsRegistry

__all__ = [
    "Span",
    "NullSpan",
    "NULL_SPAN",
    "current_span_path",
    "CHROME_TRACE_MAX_EVENTS",
    "enable_chrome_trace",
    "disable_chrome_trace",
    "chrome_trace_enabled",
    "export_chrome_trace",
]

_local = threading.local()

#: Default cap on captured Chrome trace events; beyond it events are
#: dropped (and counted in ``droppedEvents``) so a traced campaign cannot
#: exhaust memory.
CHROME_TRACE_MAX_EVENTS = 500_000


class _ChromeCapture:
    """Bounded buffer of Chrome ``trace_event`` records."""

    __slots__ = ("events", "dropped", "max_events", "t0", "_lock")

    def __init__(self, max_events: int) -> None:
        self.events: List[dict] = []
        self.dropped = 0
        self.max_events = max_events
        # perf_counter origin: ts fields are microseconds since enable().
        self.t0 = time.perf_counter()
        self._lock = threading.Lock()

    def add(self, name: str, qualified: str, t_start: float, wall: float) -> None:
        record = {
            "name": name,
            "cat": "repro",
            "ph": "X",
            "ts": (t_start - self.t0) * 1e6,
            "dur": wall * 1e6,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "args": {"path": qualified},
        }
        with self._lock:
            if len(self.events) >= self.max_events:
                self.dropped += 1
            else:
                self.events.append(record)


_capture: Optional[_ChromeCapture] = None


def enable_chrome_trace(max_events: int = CHROME_TRACE_MAX_EVENTS) -> None:
    """Start capturing span events for Chrome/Perfetto export.

    Only spans that actually run are captured, so the process-wide switch
    (``obs.enable()`` / ``REPRO_TRACE=1``) must also be on for anything to
    appear.  Calling again restarts the capture with an empty buffer.
    """
    global _capture
    if max_events < 1:
        raise ValueError(f"max_events must be >= 1, got {max_events}")
    _capture = _ChromeCapture(max_events)


def disable_chrome_trace() -> None:
    """Stop capturing and drop the buffer (idempotent)."""
    global _capture
    _capture = None


def chrome_trace_enabled() -> bool:
    """Is span capture for Chrome/Perfetto export active?"""
    return _capture is not None


def export_chrome_trace(
    path: Union[str, "os.PathLike", None] = None,
) -> Union[dict, Path]:
    """The captured spans as a Chrome ``trace_event`` JSON document.

    With ``path`` the document is written there (parents created) and the
    path returned; without, the document dict is returned.  The document
    shape is the stable Chrome trace-file format: ``traceEvents`` (a list
    of ``"ph": "X"`` records with microsecond ``ts``/``dur``),
    ``displayTimeUnit``, and ``otherData`` with capture bookkeeping.
    """
    capture = _capture
    if capture is None:
        raise RuntimeError(
            "chrome trace capture is not enabled; call "
            "obs.enable_chrome_trace() (or pass --chrome-trace) first"
        )
    with capture._lock:
        events = list(capture.events)
        dropped = capture.dropped
    doc: Dict[str, object] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.obs",
            "droppedEvents": dropped,
        },
    }
    if path is None:
        return doc
    out = Path(path)
    if out.parent != Path(""):
        out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc) + "\n")
    return out


def _stack() -> List[str]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def current_span_path() -> Optional[str]:
    """Qualified name of the innermost open span on this thread, if any."""
    stack = _stack()
    return stack[-1] if stack else None


class Span:
    """Times one ``with`` block and records it into a registry on exit."""

    __slots__ = ("name", "registry", "qualified", "wall", "cpu",
                 "_t0_wall", "_t0_cpu")

    def __init__(self, name: str, registry: MetricsRegistry) -> None:
        self.name = name
        self.registry = registry
        self.qualified = name
        self.wall = 0.0
        self.cpu = 0.0
        self._t0_wall = 0.0
        self._t0_cpu = 0.0

    def __enter__(self) -> "Span":
        stack = _stack()
        if stack:
            self.qualified = f"{stack[-1]}/{self.name}"
        stack.append(self.qualified)
        self._t0_cpu = time.process_time()
        self._t0_wall = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: object,
    ) -> bool:
        self.wall = time.perf_counter() - self._t0_wall
        self.cpu = time.process_time() - self._t0_cpu
        stack = _stack()
        # Pop our own frame even if user code corrupted the stack.
        if stack and stack[-1] == self.qualified:
            stack.pop()
        elif self.qualified in stack:  # pragma: no cover - defensive
            stack.remove(self.qualified)
        self.registry.record_span(
            self.qualified, self.wall, self.cpu, error=exc_type is not None
        )
        if _capture is not None:
            _capture.add(self.name, self.qualified, self._t0_wall, self.wall)
        return False  # never swallow exceptions


class NullSpan:
    """Do-nothing span for the disabled path; safe to reuse and re-enter."""

    __slots__ = ()
    name = ""
    qualified = ""
    wall = 0.0
    cpu = 0.0

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        return False


#: Shared singleton handed out whenever tracing is disabled.
NULL_SPAN = NullSpan()
