"""Metric primitives and the process-wide registry.

Three classic metric kinds cover everything the pipeline needs to report:

* :class:`Counter` — a monotonically increasing count (cache hits, windows
  processed, clamp events);
* :class:`Gauge` — a last-value-wins measurement (samples/sec of the most
  recent firmware run);
* :class:`Histogram` — a value distribution with quantile summaries
  (worker queue-wait, per-window latencies).

All of them live in a :class:`MetricsRegistry`, which is thread-safe (one
lock guards creation, each metric guards its own mutation) and exports a
plain-``dict`` snapshot / JSON document that downstream tooling — the CLI's
``--metrics-out``, the benchmark harness, and
``scripts/check_bench_regression.py`` — can consume without importing this
package.

Naming convention: ``repro.<module>.<name>`` for top-level metrics and
spans (e.g. ``repro.eval.engine.cache_hits``); nested spans use short
segment names and are joined with ``/`` by the tracer.
"""

from __future__ import annotations

import json
import math
import threading
from typing import Dict, List, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "SpanStats",
    "MetricsRegistry",
    "SNAPSHOT_VERSION",
]

#: Schema version of :meth:`MetricsRegistry.snapshot` documents.
SNAPSHOT_VERSION = 1


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up; got inc({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """A value distribution with exact quantiles.

    Values are kept verbatim (the workloads here observe thousands of
    values, not millions); ``max_samples`` bounds memory by dropping the
    oldest half when the cap is hit, which keeps quantiles representative
    of the recent distribution.
    """

    __slots__ = ("name", "_values", "_count", "_total", "_lock", "max_samples")

    def __init__(self, name: str, max_samples: int = 65536) -> None:
        if max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples}")
        self.name = name
        self.max_samples = max_samples
        self._values: List[float] = []
        self._count = 0
        self._total = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._total += value
            self._values.append(float(value))
            if len(self._values) > self.max_samples:
                del self._values[: self.max_samples // 2]

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Exact quantile (nearest-rank with linear interpolation)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            values = sorted(self._values)
        if not values:
            return 0.0
        pos = q * (len(values) - 1)
        lo = math.floor(pos)
        hi = math.ceil(pos)
        if lo == hi:
            return values[lo]
        frac = pos - lo
        return values[lo] * (1.0 - frac) + values[hi] * frac

    def summary(self) -> Dict[str, float]:
        with self._lock:
            values = sorted(self._values)
        if not values:
            return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p90": 0.0, "p99": 0.0}

        def q(qq: float) -> float:
            pos = qq * (len(values) - 1)
            lo, hi = math.floor(pos), math.ceil(pos)
            if lo == hi:
                return values[lo]
            frac = pos - lo
            return values[lo] * (1.0 - frac) + values[hi] * frac

        return {
            "count": self._count,
            "mean": self._total / self._count,
            "min": values[0],
            "max": values[-1],
            "p50": q(0.50),
            "p90": q(0.90),
            "p99": q(0.99),
        }


class SpanStats:
    """Aggregated timings of one span name (all invocations merged)."""

    __slots__ = (
        "name", "count", "errors", "wall_total", "wall_min", "wall_max",
        "cpu_total", "_lock",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.errors = 0
        self.wall_total = 0.0
        self.wall_min = math.inf
        self.wall_max = 0.0
        self.cpu_total = 0.0
        self._lock = threading.Lock()

    def record(self, wall: float, cpu: float, error: bool = False) -> None:
        with self._lock:
            self.count += 1
            self.errors += 1 if error else 0
            self.wall_total += wall
            self.wall_min = min(self.wall_min, wall)
            self.wall_max = max(self.wall_max, wall)
            self.cpu_total += cpu

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "errors": self.errors,
            "wall_total_s": self.wall_total,
            "wall_min_s": self.wall_min if self.count else 0.0,
            "wall_max_s": self.wall_max,
            "cpu_total_s": self.cpu_total,
        }


class MetricsRegistry:
    """Thread-safe, process-wide home for all metrics and span aggregates.

    ``counter``/``gauge``/``histogram`` return-or-create by name, so call
    sites never need to pre-register anything.  :meth:`snapshot` produces a
    JSON-safe dict (schema version :data:`SNAPSHOT_VERSION`) and
    :meth:`to_json` its serialized form; ``json.loads(to_json())`` equals
    ``snapshot()`` exactly, which tests rely on.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._spans: Dict[str, SpanStats] = {}

    # -- return-or-create accessors ------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name)
            return metric

    def histogram(self, name: str, max_samples: int = 65536) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(name, max_samples)
            return metric

    def span_stats(self, name: str) -> SpanStats:
        with self._lock:
            stats = self._spans.get(name)
            if stats is None:
                stats = self._spans[name] = SpanStats(name)
            return stats

    def record_span(
        self, name: str, wall: float, cpu: float, error: bool = False
    ) -> None:
        self.span_stats(name).record(wall, cpu, error)

    # -- export ---------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """JSON-safe dict of every metric's current state."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
            spans = dict(self._spans)
        return {
            "version": SNAPSHOT_VERSION,
            "counters": {n: c.value for n, c in sorted(counters.items())},
            "gauges": {n: g.value for n, g in sorted(gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(histograms.items())
            },
            "spans": {n: s.as_dict() for n, s in sorted(spans.items())},
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    # -- cross-process transfer -----------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Lossless, JSON/pickle-safe registry state for merging.

        Unlike :meth:`snapshot` (which summarizes histograms down to
        quantiles), this keeps raw histogram values so a parent process
        can fold worker registries into its own without losing quantile
        fidelity.  Consumed by :meth:`merge_state`; the pair is how
        ``CampaignEngine`` ships per-task metrics across the process
        pool.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
            spans = dict(self._spans)
        hist_state: Dict[str, Dict[str, object]] = {}
        for name, h in histograms.items():
            with h._lock:
                hist_state[name] = {
                    "values": list(h._values),
                    "count": h._count,
                    "total": h._total,
                    "max_samples": h.max_samples,
                }
        span_state: Dict[str, Dict[str, float]] = {}
        for name, s in spans.items():
            with s._lock:
                span_state[name] = {
                    "count": s.count,
                    "errors": s.errors,
                    "wall_total": s.wall_total,
                    "wall_min": s.wall_min if s.count else math.inf,
                    "wall_max": s.wall_max,
                    "cpu_total": s.cpu_total,
                }
        return {
            "version": SNAPSHOT_VERSION,
            "counters": {n: c.value for n, c in counters.items()},
            "gauges": {n: g.value for n, g in gauges.items()},
            "histograms": hist_state,
            "spans": span_state,
        }

    def merge_state(self, state: Dict[str, object]) -> None:
        """Fold a :meth:`state_dict` from another registry into this one.

        Counters and histogram observations *add*, span aggregates merge
        (counts/totals sum, min/max widen), gauges are last-write-wins —
        the same semantics each metric kind has within one process.
        """
        version = state.get("version")
        if version != SNAPSHOT_VERSION:
            raise ValueError(
                f"cannot merge registry state version {version!r}; "
                f"expected {SNAPSHOT_VERSION}"
            )
        counters = state.get("counters", {})
        assert isinstance(counters, dict)
        for name, value in counters.items():
            if value:
                self.counter(name).inc(float(value))
        gauges = state.get("gauges", {})
        assert isinstance(gauges, dict)
        for name, value in gauges.items():
            self.gauge(name).set(float(value))
        histograms = state.get("histograms", {})
        assert isinstance(histograms, dict)
        for name, hs in histograms.items():
            h = self.histogram(
                name, max_samples=int(hs.get("max_samples", 65536))
            )
            values = [float(v) for v in hs["values"]]
            with h._lock:
                h._count += int(hs["count"])
                h._total += float(hs["total"])
                h._values.extend(values)
                if len(h._values) > h.max_samples:
                    del h._values[: len(h._values) - h.max_samples]
        spans = state.get("spans", {})
        assert isinstance(spans, dict)
        for name, ss in spans.items():
            s = self.span_stats(name)
            with s._lock:
                incoming = int(ss["count"])
                if incoming:
                    s.count += incoming
                    s.errors += int(ss["errors"])
                    s.wall_total += float(ss["wall_total"])
                    s.wall_min = min(s.wall_min, float(ss["wall_min"]))
                    s.wall_max = max(s.wall_max, float(ss["wall_max"]))
                    s.cpu_total += float(ss["cpu_total"])

    def reset(self) -> None:
        """Drop every metric (tests and repeated CLI invocations)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._spans.clear()
