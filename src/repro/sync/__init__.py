"""Dynamic synchronization (DSYNC): TDE/TDEB, DWM, DTW, FastDTW."""

from .base import (
    BatchSyncCursor,
    IncrementalSynchronizer,
    SyncCursor,
    SyncResult,
    Synchronizer,
)
from .tde import TdeResult, similarity_profile, tde, tdeb
from .dwm import (
    DwmParams,
    DwmSynchronizer,
    RM3_DWM_PARAMS,
    StreamingDwm,
    UM3_DWM_PARAMS,
)
from .dtw import DtwSynchronizer, dtw_path, path_to_h_disp
from .fastdtw import FastDtwSynchronizer, fastdtw_path
from .fastdtw_reference import ReferenceFastDtwSynchronizer, fastdtw_reference_path
from .online_dtw import OnlineDtw, OnlineDtwSynchronizer

__all__ = [
    "SyncResult",
    "Synchronizer",
    "SyncCursor",
    "IncrementalSynchronizer",
    "BatchSyncCursor",
    "TdeResult",
    "similarity_profile",
    "tde",
    "tdeb",
    "DwmParams",
    "DwmSynchronizer",
    "StreamingDwm",
    "UM3_DWM_PARAMS",
    "RM3_DWM_PARAMS",
    "DtwSynchronizer",
    "dtw_path",
    "path_to_h_disp",
    "FastDtwSynchronizer",
    "fastdtw_path",
    "ReferenceFastDtwSynchronizer",
    "fastdtw_reference_path",
    "OnlineDtw",
    "OnlineDtwSynchronizer",
]
