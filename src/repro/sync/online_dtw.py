"""Online (streaming) DTW, after Dixon's score-following OTW and the
on-line DTW direction the paper cites (Oregi et al. [21]).

Classic DTW needs both complete signals; an IDS wants to synchronize while
the print is still running.  :class:`OnlineDtw` incrementally extends the
dynamic-programming lattice one observed sample at a time, restricted to a
sliding band of reference indexes around the current match — O(band) work
and memory per sample, emitting a horizontal-displacement estimate as each
sample arrives.

This makes the DTW-family comparison with streaming DWM fair: both can now
run in real time, and the accuracy gap (Table IX vs Table VIII) remains.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..signals.signal import Signal
from .base import SyncResult

__all__ = ["OnlineDtw", "OnlineDtwSynchronizer"]

_INF = float("inf")


class OnlineDtw:
    """Incremental DTW of a growing observation against a fixed reference.

    Parameters
    ----------
    reference:
        The complete reference signal ``b``.
    band:
        Half-width (in reference samples) of the admissible band around the
        previous row's best match.  The counterpart of DWM's ``n_ext``.
    """

    def __init__(self, reference: Signal, band: int = 64) -> None:
        if band < 1:
            raise ValueError(f"band must be >= 1, got {band}")
        self.reference = reference
        self.band = band
        self._i = -1                      # index of the last observed sample
        self._centre = 0                  # best reference match of that row
        self._lo = 0                      # first j of the stored row
        self._row: Optional[np.ndarray] = None  # accumulated costs
        self._h_disp: List[float] = []

    # ------------------------------------------------------------------
    @property
    def n_samples_done(self) -> int:
        return self._i + 1

    @property
    def exhausted(self) -> bool:
        """True once the match has reached the end of the reference."""
        return self._centre >= self.reference.n_samples - 1 and self._i >= 0

    def push(self, samples: np.ndarray) -> List[Tuple[int, float]]:
        """Feed observed samples; return the new ``(i, h_disp[i])`` pairs."""
        samples = np.asarray(samples, dtype=np.float64)
        if samples.ndim == 1:
            samples = samples[:, np.newaxis]
        if samples.shape[1] != self.reference.n_channels:
            raise ValueError(
                f"expected {self.reference.n_channels} channels, "
                f"got {samples.shape[1]}"
            )
        out: List[Tuple[int, float]] = []
        for sample in samples:
            out.append(self._advance(sample))
        return out

    # ------------------------------------------------------------------
    def _advance(self, sample: np.ndarray) -> Tuple[int, float]:
        ref = self.reference.data
        m = ref.shape[0]
        self._i += 1

        lo = max(0, self._centre - self.band)
        hi = min(m, self._centre + self.band + 1)
        local = np.linalg.norm(ref[lo:hi] - sample, axis=1)

        if self._row is None:
            # First row: cost accumulates along j only (i is fixed at 0).
            row = np.cumsum(local)
        else:
            prev, prev_lo = self._row, self._lo
            row = np.empty(hi - lo)
            for idx, j in enumerate(range(lo, hi)):
                candidates = []
                p = j - prev_lo
                if 0 <= p < prev.size:
                    candidates.append(prev[p])          # (i-1, j)
                if 0 <= p - 1 < prev.size:
                    candidates.append(prev[p - 1])      # (i-1, j-1)
                if idx > 0:
                    candidates.append(row[idx - 1])     # (i, j-1)
                best = min(candidates) if candidates else _INF
                row[idx] = local[idx] + (best if best < _INF else 0.0)

        self._row, self._lo = row, lo
        # The match may not go backwards in the reference.
        best_idx = int(np.argmin(row))
        self._centre = max(self._centre, lo + best_idx)
        h = float((lo + best_idx) - self._i)
        self._h_disp.append(h)
        return self._i, h

    # ------------------------------------------------------------------
    def result(self) -> SyncResult:
        """Everything synchronized so far as a point-mode SyncResult.

        ``pairs`` follows the greedy per-row best match (sufficient for the
        comparator); a full backtracked path would require O(n·band) memory.
        """
        h = np.asarray(self._h_disp)
        pairs = [(i, int(i + h[i])) for i in range(h.size)]
        return SyncResult(h_disp=h, mode="point", pairs=pairs)


class OnlineDtwSynchronizer:
    """Batch adapter so OnlineDtw can be used like any other synchronizer."""

    def __init__(self, band: int = 64) -> None:
        if band < 1:
            raise ValueError(f"band must be >= 1, got {band}")
        self.band = band

    def synchronize(self, a: Signal, b: Signal) -> SyncResult:
        if a.sample_rate != b.sample_rate:
            raise ValueError(
                f"sample rates differ: a={a.sample_rate}, b={b.sample_rate}"
            )
        online = OnlineDtw(b, band=self.band)
        online.push(a.data)
        return online.result()
