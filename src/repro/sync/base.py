"""Common types for dynamic synchronizers (DSYNC, paper Section VI).

A dynamic synchronizer continuously identifies corresponding points or
windows between an observed signal ``a`` and a reference signal ``b``.  Both
DWM (window-based) and DTW (point-based) reduce to the same artefact: a
*horizontal displacement* array ``h_disp`` saying how far ``b`` is shifted
relative to ``a`` at each index.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Protocol, Tuple, runtime_checkable

import numpy as np

from ..signals.signal import Signal

__all__ = ["SyncResult", "Synchronizer"]


@dataclass(frozen=True)
class SyncResult:
    """Output of a dynamic synchronizer.

    Attributes
    ----------
    h_disp:
        Horizontal displacement of ``b`` with respect to ``a``.  For a
        window-based synchronizer this is indexed by window index ``i``; for
        a point-based one, by sample index.  May be fractional for DTW
        (Eq. 5 averages the matched indexes).
    mode:
        ``"window"`` or ``"point"`` — tells the comparator how to pair up
        samples of ``a`` and ``b``.
    n_win, n_hop:
        Analysis-window geometry (window mode only; 1/1 in point mode).
    scores:
        Optional per-index match quality (unbiased similarity for DWM).
    pairs:
        Point mode only: the DTW warping path as ``(i, j)`` tuples.
    """

    h_disp: np.ndarray
    mode: str
    n_win: int = 1
    n_hop: int = 1
    scores: Optional[np.ndarray] = None
    pairs: Optional[List[Tuple[int, int]]] = None

    def __post_init__(self) -> None:
        if self.mode not in ("window", "point"):
            raise ValueError(f"mode must be 'window' or 'point', got {self.mode!r}")

    @property
    def h_dist(self) -> np.ndarray:
        """Horizontal distance: the absolute value of ``h_disp``."""
        return np.abs(self.h_disp)

    @property
    def n_indexes(self) -> int:
        """Number of synchronized indexes (windows or points)."""
        return int(self.h_disp.shape[0])

    def cadhd(self) -> np.ndarray:
        """Cumulative Absolute Difference of the Horizontal Displacement.

        Eq. (17): ``c_disp[i] = sum_{j<=i} |h_disp[j] - h_disp[j-1]|`` with
        ``h_disp[-1] = 0``.  A signature of how much the synchronizer had to
        "work"; it explodes when DSYNC fails.
        """
        if self.h_disp.size == 0:
            return np.zeros(0)
        prev = np.concatenate([[0.0], self.h_disp[:-1]])
        return np.cumsum(np.abs(self.h_disp - prev))


@runtime_checkable
class Synchronizer(Protocol):
    """Anything that can dynamically synchronize two signals."""

    def synchronize(self, a: Signal, b: Signal) -> SyncResult:
        """Return the horizontal displacements of ``b`` relative to ``a``."""
        ...
