"""Common types for dynamic synchronizers (DSYNC, paper Section VI).

A dynamic synchronizer continuously identifies corresponding points or
windows between an observed signal ``a`` and a reference signal ``b``.  Both
DWM (window-based) and DTW (point-based) reduce to the same artefact: a
*horizontal displacement* array ``h_disp`` saying how far ``b`` is shifted
relative to ``a`` at each index.

Two calling conventions cover every synchronizer:

* :class:`Synchronizer` — the batch protocol: both signals are complete and
  ``synchronize(a, b)`` returns the whole :class:`SyncResult` at once.
* :class:`SyncCursor` — the incremental protocol the unified detection core
  (:mod:`repro.core.engine`) drives: observed samples arrive in chunks via
  :meth:`~SyncCursor.push`, displacements are emitted as soon as they are
  computable, and :meth:`~SyncCursor.finalize` flushes whatever the cursor
  had to hold back.  A synchronizer that can stream natively implements
  :class:`IncrementalSynchronizer` and hands out cursors itself; any other
  :class:`Synchronizer` is adapted by :class:`BatchSyncCursor`, which
  buffers the stream and emits everything at finalization — the same
  interface, just with all the latency at the end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Tuple, runtime_checkable

import numpy as np

from ..signals.signal import Signal

__all__ = [
    "SyncResult",
    "Synchronizer",
    "SyncCursor",
    "IncrementalSynchronizer",
    "BatchSyncCursor",
]


@dataclass(frozen=True)
class SyncResult:
    """Output of a dynamic synchronizer.

    Attributes
    ----------
    h_disp:
        Horizontal displacement of ``b`` with respect to ``a``.  For a
        window-based synchronizer this is indexed by window index ``i``; for
        a point-based one, by sample index.  May be fractional for DTW
        (Eq. 5 averages the matched indexes).
    mode:
        ``"window"`` or ``"point"`` — tells the comparator how to pair up
        samples of ``a`` and ``b``.
    n_win, n_hop:
        Analysis-window geometry (window mode only; 1/1 in point mode).
    scores:
        Optional per-index match quality (unbiased similarity for DWM).
    pairs:
        Point mode only: the DTW warping path as ``(i, j)`` tuples.
    """

    h_disp: np.ndarray
    mode: str
    n_win: int = 1
    n_hop: int = 1
    scores: Optional[np.ndarray] = None
    pairs: Optional[List[Tuple[int, int]]] = None

    def __post_init__(self) -> None:
        if self.mode not in ("window", "point"):
            raise ValueError(f"mode must be 'window' or 'point', got {self.mode!r}")

    @property
    def h_dist(self) -> np.ndarray:
        """Horizontal distance: the absolute value of ``h_disp``."""
        return np.abs(self.h_disp)

    @property
    def n_indexes(self) -> int:
        """Number of synchronized indexes (windows or points)."""
        return int(self.h_disp.shape[0])

    def cadhd(self) -> np.ndarray:
        """Cumulative Absolute Difference of the Horizontal Displacement.

        Eq. (17): ``c_disp[i] = sum_{j<=i} |h_disp[j] - h_disp[j-1]|`` with
        ``h_disp[-1] = 0``.  A signature of how much the synchronizer had to
        "work"; it explodes when DSYNC fails.
        """
        if self.h_disp.size == 0:
            return np.zeros(0)
        prev = np.concatenate([[0.0], self.h_disp[:-1]])
        return np.cumsum(np.abs(self.h_disp - prev))


@runtime_checkable
class Synchronizer(Protocol):
    """Anything that can dynamically synchronize two signals."""

    def synchronize(self, a: Signal, b: Signal) -> SyncResult:
        """Return the horizontal displacements of ``b`` relative to ``a``."""
        ...


@runtime_checkable
class SyncCursor(Protocol):
    """Incremental synchronizer session against one reference signal.

    The cursor owns the per-run synchronization state; the detection engine
    owns everything else.  ``mode``/``n_win``/``n_hop`` describe the index
    geometry of the emitted ``(index, h_disp)`` pairs — for a batch-adapted
    cursor they are only authoritative after :meth:`finalize`, which is also
    the first point at which such a cursor emits anything.
    """

    mode: str
    n_win: int
    n_hop: int

    def push(self, samples: np.ndarray) -> List[Tuple[int, float]]:
        """Feed observed samples; return newly computed ``(i, h_disp)``."""
        ...

    def finalize(self) -> List[Tuple[int, float]]:
        """Flush: return every ``(i, h_disp)`` not yet emitted by push."""
        ...

    def result(self) -> SyncResult:
        """Snapshot of everything synchronized so far."""
        ...

    def state_dict(self) -> Dict[str, object]:
        """JSON-safe serialization of the per-run synchronization state."""
        ...

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot into this cursor."""
        ...


@runtime_checkable
class IncrementalSynchronizer(Protocol):
    """A synchronizer that can stream natively (DWM)."""

    def synchronize(self, a: Signal, b: Signal) -> SyncResult:
        """Return the horizontal displacements of ``b`` relative to ``a``."""
        ...

    def cursor(self, reference: Signal) -> SyncCursor:
        """Open an incremental synchronization session against a reference."""
        ...


class BatchSyncCursor:
    """Adapt any batch :class:`Synchronizer` to the :class:`SyncCursor` API.

    The observed stream is buffered; :meth:`finalize` runs the wrapped
    ``synchronize`` over the complete buffer and emits every index at once.
    This is how point-based synchronizers (DTW/FastDTW) ride the unified
    detection engine: same stage pipeline, all the synchronization latency
    concentrated at the end of the run.
    """

    def __init__(self, synchronizer: Synchronizer, reference: Signal) -> None:
        self.synchronizer = synchronizer
        self.reference = reference
        # Geometry placeholders until finalize() reveals the real values;
        # a batch cursor emits nothing before then, so nothing reads them.
        self.mode = "window"
        self.n_win = 1
        self.n_hop = 1
        # Chunks are collected as-is and concatenated once on demand: a
        # per-push np.concatenate would make buffering a long stream
        # O(n^2) in total copies.
        self._chunks: List[np.ndarray] = []
        self._result: Optional[SyncResult] = None

    @property
    def _buffer(self) -> np.ndarray:
        """The full buffered stream (single concatenation, on demand)."""
        if not self._chunks:
            return np.zeros((0, self.reference.n_channels))
        if len(self._chunks) > 1:
            self._chunks = [np.concatenate(self._chunks, axis=0)]
        return self._chunks[0]

    def push(self, samples: np.ndarray) -> List[Tuple[int, float]]:
        """Buffer observed samples; a batch cursor never emits early."""
        if self._result is not None:
            raise RuntimeError("cursor already finalized")
        samples = np.asarray(samples, dtype=np.float64)
        if samples.ndim == 1:
            samples = samples[:, np.newaxis]
        if samples.shape[0]:
            self._chunks.append(samples.copy())
        return []

    def finalize(self) -> List[Tuple[int, float]]:
        """Run the wrapped synchronizer over the full buffered stream."""
        if self._result is not None:
            raise RuntimeError("cursor already finalized")
        if not self._buffer.shape[0]:
            self._result = SyncResult(h_disp=np.zeros(0), mode=self.mode)
            return []
        observed = Signal(self._buffer, self.reference.sample_rate)
        sync = self.synchronizer.synchronize(observed, self.reference)
        self.mode = sync.mode
        self.n_win = sync.n_win
        self.n_hop = sync.n_hop
        self._result = sync
        return [(i, float(sync.h_disp[i])) for i in range(sync.n_indexes)]

    def result(self) -> SyncResult:
        """The finalized :class:`SyncResult` (empty before finalization)."""
        if self._result is not None:
            return self._result
        return SyncResult(h_disp=np.zeros(0), mode=self.mode,
                          n_win=self.n_win, n_hop=self.n_hop)

    def state_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot: the buffered observed stream."""
        if self._result is not None:
            raise RuntimeError("cannot snapshot a finalized cursor")
        return {
            "kind": "batch",
            "buffer": self._buffer.tolist(),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        if state.get("kind") != "batch":
            raise ValueError(f"not a BatchSyncCursor state: {state.get('kind')!r}")
        buffer = np.asarray(state["buffer"], dtype=np.float64)
        buffer = buffer.reshape(-1, self.reference.n_channels)
        self._chunks = [buffer] if buffer.shape[0] else []
        self._result = None
