"""Dynamic Window Matching (paper Section VI-B) — the core contribution.

DWM slides a pair of analysis windows across the observed signal ``a`` and
the reference signal ``b``.  For each window of ``a`` it searches an
*extended* window of ``b`` (centred on the current displacement estimate)
with biased Time Delay Estimation, producing the horizontal displacement
``h_disp[i]``.  Two stabilisers make this robust:

* **TDEB** (Gaussian bias) keeps the estimate near the previous
  displacement when the window content is periodic or noisy (Fig. 5).
* **A low-frequency displacement track** ``h_disp_low`` updated with gain
  ``eta`` (Eq. 12) provides inertia so a single bad estimate cannot make the
  whole process run away.

The module provides a batch API (:class:`DwmSynchronizer`), a sample-by-
sample streaming API (:class:`StreamingDwm`) for real-time intrusion
detection, and the default parameter sets of Table IV.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .. import obs
from ..signals.metrics import correlation_similarity
from ..signals.ringbuffer import SampleRing
from ..signals.signal import Signal
from .base import SyncResult
from .tde import correlation_profile, tdeb

__all__ = [
    "DwmParams",
    "DwmSynchronizer",
    "StreamingDwm",
    "UM3_DWM_PARAMS",
    "RM3_DWM_PARAMS",
]

SimilarityFn = Callable[[np.ndarray, np.ndarray], float]


@dataclass(frozen=True)
class DwmParams:
    """DWM parameters in seconds (paper Section VI-C and Table IV).

    ``t_win`` is the analysis-window width, ``t_hop`` the hop between
    windows, ``t_ext`` the one-sided extension of the search window,
    ``t_sigma`` the standard deviation of the TDEB bias, and ``eta`` the
    gain of the low-frequency displacement track.
    """

    t_win: float
    t_hop: float
    t_ext: float
    t_sigma: float
    eta: float = 0.1

    def __post_init__(self) -> None:
        if self.t_win <= 0:
            raise ValueError(f"t_win must be positive, got {self.t_win}")
        if not 0 < self.t_hop <= self.t_win:
            raise ValueError(
                f"t_hop must be in (0, t_win={self.t_win}], got {self.t_hop}"
            )
        if self.t_ext <= 0:
            raise ValueError(f"t_ext must be positive, got {self.t_ext}")
        if self.t_sigma <= 0:
            raise ValueError(f"t_sigma must be positive, got {self.t_sigma}")
        if not 0 <= self.eta <= 1:
            raise ValueError(f"eta must be in [0, 1], got {self.eta}")

    def n_win(self, sample_rate: float) -> int:
        return max(2, int(round(self.t_win * sample_rate)))

    def n_hop(self, sample_rate: float) -> int:
        return max(1, int(round(self.t_hop * sample_rate)))

    def n_ext(self, sample_rate: float) -> int:
        return max(1, int(round(self.t_ext * sample_rate)))

    def n_sigma(self, sample_rate: float) -> float:
        return max(0.5, self.t_sigma * sample_rate)

    def scaled(self, factor: float) -> "DwmParams":
        """Scale all time parameters by ``factor`` (eta unchanged)."""
        return replace(
            self,
            t_win=self.t_win * factor,
            t_hop=self.t_hop * factor,
            t_ext=self.t_ext * factor,
            t_sigma=self.t_sigma * factor,
        )


#: Table IV defaults for the two printers of the evaluation.
UM3_DWM_PARAMS = DwmParams(t_win=4.0, t_hop=2.0, t_ext=2.0, t_sigma=1.0, eta=0.1)
RM3_DWM_PARAMS = DwmParams(t_win=1.0, t_hop=0.5, t_ext=0.1, t_sigma=0.05, eta=0.1)


class _DwmState:
    """Mutable per-run DWM state shared by the batch and streaming APIs."""

    __slots__ = ("h_disp", "h_disp_low", "scores", "i")

    def __init__(self) -> None:
        self.h_disp: List[int] = []
        self.scores: List[float] = []
        self.h_disp_low = 0  # h_disp_low[i - 1]; starts at the defined 0
        self.i = 0


def _dwm_step(
    state: _DwmState,
    a_window: np.ndarray,
    b: Signal,
    n_hop: int,
    n_ext: int,
    n_sigma: float,
    eta: float,
    similarity: SimilarityFn,
) -> bool:
    """Run one DWM iteration (algorithm lines 8-11).

    Returns ``False`` when the reference signal cannot supply a full search
    window anymore (the run has outlived the reference), in which case no
    displacement is recorded and the caller should stop.
    """
    i = state.i
    low = state.h_disp_low
    n_win = a_window.shape[0]

    # Extended reference window b{i; low}_E (Eq. 9 with the low-frequency
    # recentre of Eq. 13).  The requested range may poke past either end of
    # b; we clip and keep the actual start so delays map back correctly.
    want_start = i * n_hop - n_ext + low
    want_stop = i * n_hop + n_ext + low + n_win
    start = max(0, want_start)
    stop = min(b.n_samples, want_stop)
    segment = b.data[start:stop, :]
    if segment.shape[0] < n_win:
        return False

    # The bias must be centred where "no displacement change" lands in the
    # clipped segment: absolute sample i*n_hop + low, i.e. local index
    # (i*n_hop + low) - start.
    raw_centre = i * n_hop + low - start
    centre = min(max(raw_centre, 0), segment.shape[0] - n_win)
    with obs.trace("repro.sync.dwm.window"):
        result = tdeb(segment, a_window, sigma=n_sigma,
                      similarity=similarity, centre=centre)
    if obs.enabled():
        obs.counter("repro.sync.dwm.windows").inc()
        if centre != raw_centre:
            # The displacement estimate drifted far enough that the bias
            # centre had to be clamped into the clipped search segment —
            # the precursor of the synchronizer walking off the reference.
            obs.counter("repro.sync.dwm.centre_clamped").inc()

    # delta is (j - n_ext) of the paper, generalised for clipping: how far
    # the match moved from the expected position.
    delta = (start + result.delay) - (i * n_hop + low)
    state.h_disp.append(low + delta)
    state.scores.append(result.score)
    state.h_disp_low = int(round(eta * delta + low))
    state.i += 1
    return True


class DwmSynchronizer:
    """Batch DWM over two complete signals.

    Parameters follow :class:`DwmParams`; the similarity function defaults
    to the channel-averaged correlation coefficient, as in the paper.
    """

    def __init__(
        self,
        params: DwmParams,
        similarity: SimilarityFn = correlation_similarity,
    ) -> None:
        self.params = params
        self.similarity = similarity

    def cursor(self, reference: Signal) -> "StreamingDwm":
        """Open an incremental DWM session against ``reference``.

        This is the single DWM implementation: :meth:`synchronize` is
        "push the whole signal through a cursor", so the batch and
        streaming entry points cannot drift apart.
        """
        return StreamingDwm(reference, self.params, self.similarity)

    def synchronize(self, a: Signal, b: Signal) -> SyncResult:
        """Find ``h_disp[i]`` for every complete window of ``a``.

        Synchronization stops early if the reference ``b`` runs out of
        samples for the search window; the result then simply has fewer
        indexes, which the discriminator's CADHD check will notice if the
        shortfall was caused by a timing attack.
        """
        if a.sample_rate != b.sample_rate:
            raise ValueError(
                f"sample rates differ: a={a.sample_rate}, b={b.sample_rate}"
            )
        cursor = self.cursor(b)
        cursor.push(a.data)
        cursor.finalize()
        return cursor.result()


class StreamingDwm:
    """Real-time DWM: the reference is known, the observation streams in.

    Feed observed samples with :meth:`push`; every time enough samples for
    the next analysis window have accumulated, a DWM step runs and the new
    ``h_disp[i]`` is returned.  This is the algorithm of Section VI-B
    verbatim — line 7's "wait for the window to be available" becomes the
    buffering inside :meth:`push`.

    Example
    -------
    >>> dwm = StreamingDwm(reference, UM3_DWM_PARAMS)
    >>> for chunk in acquisition_system:
    ...     for i, disp in dwm.push(chunk):
    ...         handle(i, disp)
    """

    def __init__(
        self,
        reference: Signal,
        params: DwmParams,
        similarity: SimilarityFn = correlation_similarity,
        *,
        use_fast: Optional[bool] = None,
    ) -> None:
        self.reference = reference
        self.params = params
        self.similarity = similarity
        # Per-step path selection is normally automatic (fast when the
        # default similarity runs with observability off).  ``use_fast``
        # pins one path; the differential harness (repro.eval.diff) uses
        # it to run a fast and a reference cursor in lock-step over the
        # same stream.  ``use_fast=True`` requires the default correlation
        # similarity — _step_fast inlines exactly that metric.
        if use_fast and similarity is not correlation_similarity:
            raise ValueError(
                "use_fast=True requires the default correlation similarity"
            )
        self._use_fast = use_fast
        rate = reference.sample_rate
        self.mode = "window"
        self.n_win = params.n_win(rate)
        self.n_hop = params.n_hop(rate)
        self._n_ext = params.n_ext(rate)
        self._n_sigma = params.n_sigma(rate)
        # Preallocated tail buffer with absolute-index addressing: the
        # prefix every synchronized window already consumed is trimmed
        # (logically — no copy), so a cursor held open for a whole print
        # stays O(window) in memory, not O(print), and a push costs
        # amortized O(chunk) instead of O(buffer).
        self._ring = SampleRing(reference.n_channels)
        self._state = _DwmState()
        self._exhausted = False
        # TDEB's Gaussian bias depends only on (profile length, centre),
        # both of which settle into a handful of values once the stream is
        # away from the reference edges; caching them removes an exp() of
        # search-window length per window.
        self._bias_cache: Dict[Tuple[int, int], np.ndarray] = {}

    @property
    def n_windows_done(self) -> int:
        """How many windows have been synchronized so far."""
        return self._state.i

    def push(self, samples: np.ndarray) -> List[Tuple[int, float]]:
        """Feed new observed samples; return newly computed ``(i, h_disp)``.

        ``samples`` is ``(n, channels)`` or 1-D for single-channel signals.
        """
        samples = np.asarray(samples, dtype=np.float64)
        if samples.ndim == 1:
            samples = samples[:, np.newaxis]
        if samples.shape[0] and samples.shape[1] != self.reference.n_channels:
            raise ValueError(
                f"expected {self.reference.n_channels} channels, "
                f"got {samples.shape[1]}"
            )
        if self._exhausted:
            return []
        self._ring.append(samples)

        # The h_disp_low recurrence makes window i+1's search centre depend
        # on window i's result, so the windows themselves are inherently
        # sequential; the batching win is that every newly-complete window
        # in this push is evaluated on zero-copy ring views through the
        # direct fast step (cached bias, no per-window tracing shims)
        # instead of one fully-wrapped tdeb call per window.
        if self._use_fast is None:
            fast = (
                self.similarity is correlation_similarity
                and not obs.enabled()
            )
        else:
            fast = self._use_fast
        emitted: List[Tuple[int, float]] = []
        while True:
            i = self._state.i
            start = i * self.n_hop
            if start + self.n_win > self._ring.end:
                break
            a_window = self._ring.view(start, start + self.n_win)
            if fast:
                ok = self._step_fast(a_window)
            else:
                ok = _dwm_step(
                    self._state,
                    a_window,
                    self.reference,
                    self.n_hop,
                    self._n_ext,
                    self._n_sigma,
                    self.params.eta,
                    self.similarity,
                )
            if not ok:
                self._exhausted = True
                break
            emitted.append((i, float(self._state.h_disp[-1])))
        if self._exhausted:
            # Walked off the reference: no further window will ever be
            # evaluated, so the buffered tail is dead state.  Resetting the
            # ring to empty at the last window start keeps the serialized
            # cursor state chunking-invariant — the tail (and its end
            # index) would otherwise record where in the stream exhaustion
            # happened to land.
            self._ring.load(
                np.empty((0, self.reference.n_channels)),
                self._state.i * self.n_hop,
            )
        else:
            self._ring.trim_to(self._state.i * self.n_hop)
        return emitted

    def _step_fast(self, a_window: np.ndarray) -> bool:
        """One DWM iteration, inlined for the streaming hot path.

        Replicates ``_dwm_step`` + :func:`~repro.sync.tde.tdeb` for the
        default correlation similarity with observability disabled —
        bit-identical math (differential-tested against the kept
        ``_dwm_step`` reference), minus the per-window span/counter
        machinery and with the Gaussian bias vector cached.
        """
        state = self._state
        i = state.i
        low = state.h_disp_low
        n_win = a_window.shape[0]
        b = self.reference
        want_start = i * self.n_hop - self._n_ext + low
        want_stop = i * self.n_hop + self._n_ext + low + n_win
        start = max(0, want_start)
        stop = min(b.n_samples, want_stop)
        segment = b.data[start:stop, :]
        if segment.shape[0] < n_win:
            return False
        raw_centre = i * self.n_hop + low - start
        centre = min(max(raw_centre, 0), segment.shape[0] - n_win)
        raw = correlation_profile(segment, a_window)
        bias = self._bias(raw.size, centre)
        shifted = raw - raw.min()
        delay = int(np.argmax(shifted * bias))
        delta = (start + delay) - (i * self.n_hop + low)
        state.h_disp.append(low + delta)
        state.scores.append(float(raw[delay]))
        state.h_disp_low = int(round(self.params.eta * delta + low))
        state.i += 1
        return True

    def _bias(self, size: int, centre: int) -> np.ndarray:
        """The TDEB Gaussian bias vector, cached by (size, centre)."""
        key = (size, centre)
        bias = self._bias_cache.get(key)
        if bias is None:
            n = np.arange(size, dtype=np.float64)
            bias = np.exp(-0.5 * ((n - float(centre)) / self._n_sigma) ** 2)
            self._bias_cache[key] = bias
        return bias

    def finalize(self) -> List[Tuple[int, float]]:
        """Flush the stream: DWM emits eagerly, so nothing is pending."""
        return []

    def result(self) -> SyncResult:
        """Snapshot of everything synchronized so far."""
        return SyncResult(
            h_disp=np.asarray(self._state.h_disp, dtype=np.float64),
            mode="window",
            n_win=self.n_win,
            n_hop=self.n_hop,
            scores=np.asarray(self._state.scores, dtype=np.float64),
        )

    def state_dict(self) -> Dict[str, object]:
        """JSON-safe serialization of the per-run DWM state.

        Everything a fresh :class:`StreamingDwm` built with the same
        reference/params needs to continue this run bit-identically:
        the displacement/score history, the low-frequency track, and the
        untrimmed tail of the observed buffer.
        """
        # One C-level tolist() per array instead of per-element Python
        # round-trips: periodic DetectorState checkpointing at high sample
        # rates sits on this path.
        return {
            "kind": "dwm",
            "i": self._state.i,
            "h_disp": np.asarray(self._state.h_disp, dtype=np.int64).tolist(),
            "scores": np.asarray(
                self._state.scores, dtype=np.float64
            ).tolist(),
            "h_disp_low": int(self._state.h_disp_low),
            "buffer": self._ring.tail().tolist(),
            "buf_start": int(self._ring.start),
            "exhausted": bool(self._exhausted),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot into this cursor."""
        if state.get("kind") != "dwm":
            raise ValueError(f"not a StreamingDwm state: {state.get('kind')!r}")
        fresh = _DwmState()
        fresh.i = int(state["i"])  # type: ignore[arg-type]
        fresh.h_disp = np.asarray(state["h_disp"], dtype=np.int64).tolist()
        fresh.scores = np.asarray(state["scores"], dtype=np.float64).tolist()
        fresh.h_disp_low = int(state["h_disp_low"])  # type: ignore[arg-type]
        self._state = fresh
        self._ring.load(
            np.asarray(state["buffer"], dtype=np.float64),
            int(state["buf_start"]),  # type: ignore[arg-type]
        )
        self._exhausted = bool(state["exhausted"])
