"""Dynamic Time Warping (Sakoe & Chiba 1978) — the baseline synchronizer.

Classic O(N·M) dynamic-programming DTW over two multi-channel signals, with
optional window constraints (used by FastDTW's refinement step).  The
warping path is converted into the horizontal-displacement array ``h_disp``
via Eq. (5): when several reference indexes map to the same observed index,
their displacements are averaged.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..signals.signal import Signal
from .base import SyncResult

__all__ = ["DtwSynchronizer", "dtw_path", "path_to_h_disp", "euclidean_point_distance"]

PointDistance = Callable[[np.ndarray, np.ndarray], float]


def euclidean_point_distance(u: np.ndarray, v: np.ndarray) -> float:
    """L2 distance between two per-sample channel vectors."""
    return float(np.linalg.norm(u - v))


def dtw_path(
    a: np.ndarray,
    b: np.ndarray,
    window: Optional[Iterable[Tuple[int, int]]] = None,
) -> Tuple[float, List[Tuple[int, int]]]:
    """DTW between 2-D arrays ``a`` (N, C) and ``b`` (M, C).

    Uses the squared-Euclidean local cost (computed vectorised).  If
    ``window`` is given it is an iterable of admissible ``(i, j)`` cells;
    cells outside it are never visited.  Returns ``(total_cost, path)``
    where the path runs from ``(0, 0)`` to ``(N - 1, M - 1)``.
    """
    a = np.atleast_2d(np.asarray(a, dtype=np.float64))
    b = np.atleast_2d(np.asarray(b, dtype=np.float64))
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("a and b must be 2-D (n_samples, n_channels)")
    n, m = a.shape[0], b.shape[0]
    if n == 0 or m == 0:
        raise ValueError("cannot warp empty signals")
    if a.shape[1] != b.shape[1]:
        raise ValueError(
            f"channel mismatch: a has {a.shape[1]}, b has {b.shape[1]}"
        )

    inf = np.inf
    if window is None:
        cells_by_i: List[Optional[np.ndarray]] = [None] * n  # full rows
    else:
        allowed: Dict[int, List[int]] = {}
        for i, j in window:
            allowed.setdefault(i, []).append(j)
        cells_by_i = [np.asarray(sorted(allowed.get(i, [])), dtype=np.intp)
                      for i in range(n)]

    # Accumulated costs are stored per admissible cell only, so a narrow
    # FastDTW band over a long signal stays O(n * band) in memory instead of
    # O(n * m).
    cost: Dict[Tuple[int, int], float] = {}
    for i in range(n):
        js = cells_by_i[i]
        if js is None:
            local = np.linalg.norm(b - a[i], axis=1)
            j_iter = range(m)
        else:
            if js.size == 0:
                continue
            local = np.linalg.norm(b[js] - a[i], axis=1)
            j_iter = js
        for idx, j in enumerate(j_iter):
            d = local[idx] if js is not None else local[j]
            if i == 0 and j == 0:
                cost[0, 0] = float(d)
                continue
            best = min(
                cost.get((i - 1, j), inf),
                cost.get((i - 1, j - 1), inf),
                cost.get((i, j - 1), inf),
            )
            if best < inf:
                cost[i, j] = float(d) + best

    terminal = cost.get((n - 1, m - 1), inf)
    if not np.isfinite(terminal):
        raise RuntimeError("DTW window excludes the terminal cell")

    # Backtrack greedily along the minimal predecessor.
    path: List[Tuple[int, int]] = [(n - 1, m - 1)]
    i, j = n - 1, m - 1
    while (i, j) != (0, 0):
        candidates = [
            (cost[p], p)
            for p in ((i - 1, j), (i, j - 1), (i - 1, j - 1))
            if p in cost
        ]
        if not candidates:
            raise RuntimeError("DTW backtrack hit a dead end")
        _, (i, j) = min(candidates, key=lambda c: c[0])
        path.append((i, j))
    path.reverse()
    return terminal, path


def path_to_h_disp(path: List[Tuple[int, int]], n: int) -> np.ndarray:
    """Convert a warping path to ``h_disp`` over observed indexes (Eq. 5).

    ``n`` is the observed-signal length; indexes the path never reached
    (possible with a constrained window) repeat the last known value.
    """
    sums = np.zeros(n)
    counts = np.zeros(n)
    for i, j in path:
        if i < n:
            sums[i] += j - i
            counts[i] += 1
    h_disp = np.zeros(n)
    last = 0.0
    for i in range(n):
        if counts[i] > 0:
            last = sums[i] / counts[i]
        h_disp[i] = last
    return h_disp


class DtwSynchronizer:
    """Point-based DSYNC via exact DTW.

    Exact DTW is quadratic in signal length; the paper could only run it on
    spectrograms, never on raw signals ("it took forever").  Use
    :class:`~repro.sync.fastdtw.FastDtwSynchronizer` for anything long.
    """

    def synchronize(self, a: Signal, b: Signal) -> SyncResult:
        if a.sample_rate != b.sample_rate:
            raise ValueError(
                f"sample rates differ: a={a.sample_rate}, b={b.sample_rate}"
            )
        _, path = dtw_path(a.data, b.data)
        h_disp = path_to_h_disp(path, a.n_samples)
        return SyncResult(h_disp=h_disp, mode="point", pairs=path)
