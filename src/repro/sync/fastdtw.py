"""FastDTW (Salvador & Chan 2007): linear-time approximate DTW.

FastDTW recursively coarsens both signals by a factor of two, solves the
small problem exactly, projects the resulting path back to the finer
resolution, and refines it inside a band of configurable ``radius`` around
the projection.  The paper always runs FastDTW with the smallest radius
("the fastest configuration") and still finds it far slower and less
accurate than DWM — Fig. 11 and Table IX reproduce that comparison.
"""

from __future__ import annotations

from typing import List, Set, Tuple

import numpy as np

from ..signals.signal import Signal
from .base import SyncResult
from .dtw import dtw_path, path_to_h_disp

__all__ = ["FastDtwSynchronizer", "fastdtw_path"]

# Below this size the exact algorithm is cheaper than recursing.
_MIN_EXACT_SIZE = 32


def _coarsen(x: np.ndarray) -> np.ndarray:
    """Halve the resolution by averaging adjacent sample pairs."""
    n = x.shape[0] // 2
    return (x[: 2 * n : 2] + x[1 : 2 * n : 2]) / 2.0


def _expand_window(
    path: List[Tuple[int, int]], n: int, m: int, radius: int
) -> Set[Tuple[int, int]]:
    """Project a coarse path to the fine grid and dilate it by ``radius``."""
    window: Set[Tuple[int, int]] = set()
    for ci, cj in path:
        for di in range(-radius, radius + 1):
            for dj in range(-radius, radius + 1):
                i, j = ci + di, cj + dj
                # each coarse cell covers a 2x2 block of fine cells
                for fi in (2 * i, 2 * i + 1):
                    for fj in (2 * j, 2 * j + 1):
                        if 0 <= fi < n and 0 <= fj < m:
                            window.add((fi, fj))
    # Ensure the corners are admissible so a path always exists.
    window.add((0, 0))
    window.add((n - 1, m - 1))
    return window


def fastdtw_path(
    a: np.ndarray, b: np.ndarray, radius: int = 1
) -> Tuple[float, List[Tuple[int, int]]]:
    """Approximate DTW path between 2-D arrays ``a`` and ``b``."""
    a = np.atleast_2d(np.asarray(a, dtype=np.float64))
    b = np.atleast_2d(np.asarray(b, dtype=np.float64))
    if radius < 0:
        raise ValueError(f"radius must be >= 0, got {radius}")
    n, m = a.shape[0], b.shape[0]
    if min(n, m) <= max(_MIN_EXACT_SIZE, radius + 2):
        return dtw_path(a, b)
    _, coarse_path = fastdtw_path(_coarsen(a), _coarsen(b), radius)
    window = _expand_window(coarse_path, n, m, radius)
    return dtw_path(a, b, window=window)


class FastDtwSynchronizer:
    """Point-based DSYNC via FastDTW with a given radius.

    ``radius=1`` is the paper's "fastest configuration".
    """

    def __init__(self, radius: int = 1) -> None:
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        self.radius = radius

    def synchronize(self, a: Signal, b: Signal) -> SyncResult:
        if a.sample_rate != b.sample_rate:
            raise ValueError(
                f"sample rates differ: a={a.sample_rate}, b={b.sample_rate}"
            )
        _, path = fastdtw_path(a.data, b.data, self.radius)
        h_disp = path_to_h_disp(path, a.n_samples)
        return SyncResult(h_disp=h_disp, mode="point", pairs=path)
