"""Time Delay Estimation by the sliding method (paper Section V-B).

TDE finds the best location of a short signal ``y`` inside a longer signal
``x`` by sliding ``y`` across ``x`` and scoring each position with a
similarity function (Eq. 1-2).  TDEB (Time Delay Estimation with Bias,
Section VI-B and Fig. 5) multiplies the similarity array by a Gaussian
window so that, when the content is periodic or noisy and several delays
score equally well, the estimate stays near the centre — i.e. near the
previous window's displacement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from .. import obs
from ..signals.metrics import correlation_similarity

__all__ = ["TdeResult", "tde", "tdeb", "similarity_profile", "correlation_profile"]

SimilarityFn = Callable[[np.ndarray, np.ndarray], float]

# Cached lazy import: correlation_profile sits in DWM's inner loop, and
# re-resolving the scipy import on every call costs a dict lookup chain
# per window.  Resolve once, keep module start-up light.
_FFTCONVOLVE = None


def _get_fftconvolve():
    global _FFTCONVOLVE
    if _FFTCONVOLVE is None:
        from scipy.signal import fftconvolve

        _FFTCONVOLVE = fftconvolve
    return _FFTCONVOLVE


@dataclass(frozen=True)
class TdeResult:
    """Outcome of a TDE run.

    ``delay`` is ``n_delay`` of Eq. (2): the sample offset in ``x`` at which
    ``y`` matches best.  ``score`` is the (possibly biased) similarity at
    that offset, and ``scores`` the full similarity array ``s[n]``.
    """

    delay: int
    score: float
    scores: np.ndarray


def _as_2d(a: np.ndarray) -> np.ndarray:
    a = np.asarray(a, dtype=np.float64)
    return a[:, np.newaxis] if a.ndim == 1 else a


#: Crossover (in multiply-adds, ``n_shifts * n_y * n_channels``) between
#: the direct ``np.correlate`` cross-correlation and scipy's fftconvolve.
#: Below this, the O(n*m) direct product beats the FFT because scipy's
#: per-call dispatch/padding overhead (~0.5 ms) dwarfs the arithmetic —
#: and DWM's streaming search windows sit far below it at DAQ sample
#: rates.  Above it, the O(n log n) FFT wins as before.
_DIRECT_CROSS_MAX_OPS = 2_000_000


def correlation_profile(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Vectorized sliding correlation coefficient, channel-averaged.

    Computes ``s[n] = corr(x[n : n + N_y], y)`` for every admissible shift
    using running sums and a cross-correlation — direct ``np.correlate``
    for small problems, FFT for large ones (see
    :data:`_DIRECT_CROSS_MAX_OPS`) — instead of recomputing Eq. (3) per
    shift.  This is what makes DWM run orders of magnitude faster than DTW
    in practice.
    """
    x2, y2 = _as_2d(x), _as_2d(y)
    n_x, n_y, n_ch = x2.shape[0], y2.shape[0], x2.shape[1]
    n_shifts = n_x - n_y + 1
    eps = 1e-12

    # Cross terms for every channel at once: correlation along the time
    # axis is convolution with the time-reversed template.
    if n_shifts * n_y * n_ch <= _DIRECT_CROSS_MAX_OPS:
        cross = np.empty((n_shifts, n_ch))
        for c in range(n_ch):
            cross[:, c] = np.correlate(x2[:, c], y2[:, c], mode="valid")
    else:
        fftconvolve = _get_fftconvolve()
        cross = fftconvolve(x2, y2[::-1, :], mode="valid", axes=0)  # (shifts, C)

    # Sliding window sums of x and x^2 via cumulative sums (O(n) each).
    cs1 = np.cumsum(np.concatenate([np.zeros((1, n_ch)), x2]), axis=0)
    cs2 = np.cumsum(np.concatenate([np.zeros((1, n_ch)), x2 * x2]), axis=0)
    s1 = cs1[n_y:] - cs1[:-n_y]  # (shifts, C)
    s2 = cs2[n_y:] - cs2[:-n_y]

    y_mean = y2.mean(axis=0, keepdims=True)           # (1, C)
    y_energy = np.sum((y2 - y_mean) ** 2, axis=0)     # (C,)

    num = cross - s1 * y_mean
    var_x = np.maximum(s2 - s1 * s1 / n_y, 0.0)
    den = np.sqrt(var_x * y_energy[np.newaxis, :])
    scores = np.where(den > eps, num / np.maximum(den, eps), 0.0)
    return scores.mean(axis=1)


def similarity_profile(
    x: np.ndarray,
    y: np.ndarray,
    similarity: SimilarityFn = correlation_similarity,
) -> np.ndarray:
    """Similarity array ``s[n] = f(x[n : n + N_y], y)`` (Eq. 1).

    ``x`` and ``y`` may be 1-D or ``(n, c)`` arrays with matching channel
    counts; ``x`` must be at least as long as ``y``.  The default
    correlation similarity takes a vectorized fast path; any custom
    similarity function falls back to an explicit sliding loop.
    """
    x2, y2 = _as_2d(x), _as_2d(y)
    if x2.shape[1] != y2.shape[1]:
        raise ValueError(
            f"channel mismatch: x has {x2.shape[1]}, y has {y2.shape[1]}"
        )
    n_x, n_y = x2.shape[0], y2.shape[0]
    if n_y == 0:
        raise ValueError("y must be non-empty")
    if n_x < n_y:
        raise ValueError(f"x (len {n_x}) is shorter than y (len {n_y})")
    if similarity is correlation_similarity:
        return correlation_profile(x2, y2)
    # Custom similarity: one preallocated strided view over all shifts
    # (shape (n_shifts, n_y, c), zero copies) instead of slicing x2 per
    # shift — the O(n * window) slicing overhead dominated this fallback.
    windows = np.lib.stride_tricks.sliding_window_view(
        x2, n_y, axis=0
    ).transpose(0, 2, 1)
    scores = np.empty(n_x - n_y + 1)
    for n in range(scores.size):
        scores[n] = similarity(windows[n], y2)
    return scores


def tde(
    x: np.ndarray,
    y: np.ndarray,
    similarity: SimilarityFn = correlation_similarity,
) -> TdeResult:
    """Plain sliding-method TDE: the argmax of the similarity array (Eq. 2)."""
    scores = similarity_profile(x, y, similarity)
    delay = int(np.argmax(scores))
    return TdeResult(delay=delay, score=float(scores[delay]), scores=scores)


def tdeb(
    x: np.ndarray,
    y: np.ndarray,
    sigma: float,
    similarity: SimilarityFn = correlation_similarity,
    centre: Optional[int] = None,
) -> TdeResult:
    """TDE with a Gaussian bias towards the centre of the search range.

    ``sigma`` is the Gaussian's standard deviation in samples (the paper's
    ``n_sigma``).  By default the bias is centred on the middle of the
    similarity array, which for DWM's symmetric extended window corresponds
    to "no change from the previous displacement".

    The returned ``score`` is the *unbiased* similarity at the biased argmax,
    so callers can still reason about how well the windows actually matched;
    ``scores`` is the biased array used for the argmax.
    """
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    with obs.trace("similarity_profile"):
        raw = similarity_profile(x, y, similarity)
    if obs.enabled():
        obs.counter("repro.sync.tde.tdeb_calls").inc()
        obs.histogram("repro.sync.tde.search_shifts").observe(raw.size)
    if centre is None:
        centre_f = (raw.size - 1) / 2.0
    else:
        centre_f = float(centre)
    n = np.arange(raw.size, dtype=np.float64)
    bias = np.exp(-0.5 * ((n - centre_f) / sigma) ** 2)
    # Shift scores to be non-negative before applying the multiplicative
    # bias: the correlation similarity can be negative, and multiplying a
    # negative score by a small Gaussian tail would *raise* it, inverting
    # the intended bias direction.
    shifted = raw - raw.min()
    biased = shifted * bias
    delay = int(np.argmax(biased))
    return TdeResult(delay=delay, score=float(raw[delay]), scores=biased)
