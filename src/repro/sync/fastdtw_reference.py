"""Reference (pure-Python) FastDTW — the implementation class the paper ran.

The paper evaluates "FastDTW with the smallest radius for the fastest
speed" using the standard implementation style of the ``fastdtw`` package:
per-cell Python arithmetic, dictionaries for the cost matrix, and a
per-cell distance function call.  That constant factor — hundreds of Python
bytecodes per cell, times ~channels per distance call — is what makes DTW
"consume an excessive amount of computational resources" in Fig. 11.

:mod:`repro.sync.fastdtw` is our vectorized re-engineering of the same
algorithm (identical output path, far faster); this module preserves the
reference behaviour so the paper's DWM-vs-DTW cost comparison can be
reproduced as published.  Use it through
:class:`ReferenceFastDtwSynchronizer` or :func:`fastdtw_reference_path`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..signals.signal import Signal
from .base import SyncResult
from .dtw import path_to_h_disp

__all__ = ["fastdtw_reference_path", "ReferenceFastDtwSynchronizer"]

_MIN_EXACT_SIZE = 16


def _dist(u, v) -> float:
    """Per-cell Euclidean distance, computed in Python as the reference
    implementation does (one function call and a loop per cell)."""
    total = 0.0
    for a, b in zip(u, v):
        diff = a - b
        total += diff * diff
    return total ** 0.5


def _reduce_by_half(x: List) -> List:
    """Average adjacent pairs (pure-Python coarsening)."""
    half = []
    for i in range(0, len(x) - len(x) % 2, 2):
        half.append([(p + q) / 2.0 for p, q in zip(x[i], x[i + 1])])
    return half


def _expand_window(
    path: List[Tuple[int, int]], len_x: int, len_y: int, radius: int
) -> Set[Tuple[int, int]]:
    path_set = set(path)
    for i, j in path:
        for a in range(-radius, radius + 1):
            for b in range(-radius, radius + 1):
                path_set.add((i + a, j + b))
    window: Set[Tuple[int, int]] = set()
    for i, j in path_set:
        for a, b in ((i * 2, j * 2), (i * 2, j * 2 + 1),
                     (i * 2 + 1, j * 2), (i * 2 + 1, j * 2 + 1)):
            if 0 <= a < len_x and 0 <= b < len_y:
                window.add((a, b))
    window.add((0, 0))
    window.add((len_x - 1, len_y - 1))
    return window


def _dtw_windowed(
    x: List, y: List, window: Optional[Set[Tuple[int, int]]]
) -> Tuple[float, List[Tuple[int, int]]]:
    len_x, len_y = len(x), len(y)
    if window is None:
        window = {(i, j) for i in range(len_x) for j in range(len_y)}
    d: Dict[Tuple[int, int], Tuple[float, int, int]] = {}
    d[0, -1] = (float("inf"), 0, 0)
    d[-1, 0] = (float("inf"), 0, 0)
    d[-1, -1] = (0.0, 0, 0)
    for i, j in sorted(window):
        dt = _dist(x[i], y[j])
        options = []
        for pi, pj in ((i - 1, j), (i, j - 1), (i - 1, j - 1)):
            prev = d.get((pi, pj))
            if prev is not None and prev[0] < float("inf"):
                options.append((prev[0] + dt, pi, pj))
        if (i, j) == (0, 0):
            d[i, j] = (dt, -1, -1)
        elif options:
            d[i, j] = min(options)
    if (len_x - 1, len_y - 1) not in d:
        raise RuntimeError("window excludes the terminal cell")
    path = []
    i, j = len_x - 1, len_y - 1
    while (i, j) != (-1, -1):
        path.append((i, j))
        _, i, j = d[i, j]
    path.reverse()
    return d[len_x - 1, len_y - 1][0], path


def fastdtw_reference_path(
    x: List, y: List, radius: int = 1
) -> Tuple[float, List[Tuple[int, int]]]:
    """Pure-Python FastDTW over lists of per-sample channel lists."""
    if radius < 0:
        raise ValueError(f"radius must be >= 0, got {radius}")
    if min(len(x), len(y)) <= max(_MIN_EXACT_SIZE, radius + 2):
        return _dtw_windowed(x, y, None)
    shrunk_x = _reduce_by_half(x)
    shrunk_y = _reduce_by_half(y)
    _, low_res_path = fastdtw_reference_path(shrunk_x, shrunk_y, radius)
    window = _expand_window(low_res_path, len(x), len(y), radius)
    return _dtw_windowed(x, y, window)


class ReferenceFastDtwSynchronizer:
    """Point-based DSYNC via the reference pure-Python FastDTW."""

    def __init__(self, radius: int = 1) -> None:
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        self.radius = radius

    def synchronize(self, a: Signal, b: Signal) -> SyncResult:
        if a.sample_rate != b.sample_rate:
            raise ValueError(
                f"sample rates differ: a={a.sample_rate}, b={b.sample_rate}"
            )
        x = a.data.tolist()
        y = b.data.tolist()
        _, path = fastdtw_reference_path(x, y, self.radius)
        h_disp = path_to_h_disp(path, a.n_samples)
        return SyncResult(h_disp=h_disp, mode="point", pairs=path)
