"""Multi-channel fusion: one NSYNC per side channel, combined verdicts.

The paper evaluates each side channel in isolation; a deployment that
already paid for six sensors should use all of them.  Fig. 10's consistency
result is what makes fusion sound: every well-correlated channel recovers
the same timing relationship, so their verdicts are near-independent
observations of the same process.

:class:`MultiChannelNsyncIds` trains an independent
:class:`~repro.core.pipeline.NsyncIds` per channel and combines the
per-channel verdicts with a configurable policy:

* ``"any"`` — alarm if any channel alarms (highest TPR, paper-style OR);
* ``"majority"`` — alarm if more than half the channels alarm;
* ``k`` (int) — alarm if at least ``k`` channels alarm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Sequence, Tuple, Union

from ..signals.signal import Signal
from ..sync.base import Synchronizer
from .discriminator import Detection
from .pipeline import NsyncIds

__all__ = ["FusionDetection", "MultiChannelNsyncIds"]

Policy = Union[str, int]


@dataclass(frozen=True)
class FusionDetection:
    """Combined verdict plus the per-channel evidence behind it."""

    is_intrusion: bool
    votes: int
    n_channels: int
    per_channel: Dict[str, Detection]

    def alarming_channels(self) -> Tuple[str, ...]:
        """Channel ids whose individual verdict raised the intrusion flag."""
        return tuple(
            cid for cid, det in self.per_channel.items() if det.is_intrusion
        )


def _required_votes(policy: Policy, n_channels: int) -> int:
    if policy == "any":
        return 1
    if policy == "majority":
        return n_channels // 2 + 1
    if isinstance(policy, int):
        if not 1 <= policy <= n_channels:
            raise ValueError(
                f"k-of-n policy needs 1 <= k <= {n_channels}, got {policy}"
            )
        return policy
    raise ValueError(f"unknown policy {policy!r}; expected 'any', 'majority', or int")


class MultiChannelNsyncIds:
    """Independent NSYNC per channel with vote-based fusion.

    Parameters
    ----------
    references:
        Mapping of channel id to that channel's reference signal.
    synchronizer_factory:
        Callable producing a fresh synchronizer per channel (synchronizers
        are stateless here, but window geometry is rate-dependent).
    policy:
        Fusion policy (see module docstring).
    """

    def __init__(
        self,
        references: Mapping[str, Signal],
        synchronizer_factory: Callable[[], Synchronizer],
        policy: Policy = "any",
        metric: str = "correlation",
        filter_window: int = 3,
    ) -> None:
        if not references:
            raise ValueError("need at least one channel")
        self.policy = policy
        self.channels: Dict[str, NsyncIds] = {
            cid: NsyncIds(
                reference,
                synchronizer_factory(),
                metric=metric,
                filter_window=filter_window,
            )
            for cid, reference in references.items()
        }
        # Validate the policy eagerly so misconfiguration fails at build time.
        _required_votes(policy, len(self.channels))

    # ------------------------------------------------------------------
    @property
    def channel_ids(self) -> Tuple[str, ...]:
        """The configured channel ids, in construction order."""
        return tuple(self.channels)

    def fit(
        self,
        benign_runs: Sequence[Mapping[str, Signal]],
        r: float = 0.3,
    ) -> None:
        """Train every channel's thresholds from multi-channel benign runs.

        ``benign_runs`` is a list of ``{channel_id: Signal}`` mappings, one
        per benign printing process.
        """
        for cid, ids in self.channels.items():
            try:
                signals = [run[cid] for run in benign_runs]
            except KeyError:
                raise KeyError(
                    f"benign run is missing channel {cid!r}"
                ) from None
            ids.fit(signals, r=r)

    def detect(self, observed: Mapping[str, Signal]) -> FusionDetection:
        """Classify one multi-channel observation."""
        per_channel: Dict[str, Detection] = {}
        for cid, ids in self.channels.items():
            try:
                signal = observed[cid]
            except KeyError:
                raise KeyError(f"observation is missing channel {cid!r}") from None
            per_channel[cid] = ids.detect(signal)

        votes = sum(det.is_intrusion for det in per_channel.values())
        needed = _required_votes(self.policy, len(self.channels))
        return FusionDetection(
            is_intrusion=votes >= needed,
            votes=votes,
            n_channels=len(self.channels),
            per_channel=per_channel,
        )
