"""Real-time NSYNC: intrusion detection while the print is still running.

The batch :class:`~repro.core.pipeline.NsyncIds` analyzes a finished
recording.  :class:`StreamingNsyncIds` consumes the observed signal in
chunks as the data-acquisition system delivers it, runs streaming DWM, and
evaluates all three discriminator sub-modules incrementally, emitting an
:class:`Alert` at the first window whose evidence crosses a threshold — the
point at which a deployment would stop the printer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from .. import obs
from ..obs import events
from ..signals.signal import Signal
from ..sync.dwm import DwmParams, StreamingDwm
from .comparator import Comparator, DistanceFn, MAX_CORRELATION_DISTANCE
from .discriminator import Thresholds

__all__ = ["Alert", "StreamingNsyncIds", "TRUNCATED_WINDOW_DISTANCE"]

#: Vertical distance reported for a window too short to correlate
#: (fewer than 2 overlapping samples).  This only happens when the
#: synchronizer's displacement estimate walks past the end of the
#: reference; reporting the *maximum* correlation distance (2.0 — perfect
#: anti-correlation, see
#: :data:`~repro.core.comparator.MAX_CORRELATION_DISTANCE`) makes the
#: v_dist sub-module treat it as worst-case evidence rather than silently
#: skipping the window.  Each occurrence additionally emits a
#: ``window_truncated`` event and bumps the
#: ``repro.core.streaming.truncated_windows`` counter.
TRUNCATED_WINDOW_DISTANCE = MAX_CORRELATION_DISTANCE


@dataclass(frozen=True)
class Alert:
    """One threshold violation observed in real time.

    ``time_s`` is the alarm position in print seconds (window index ×
    hop / sample rate) — the number an operator acts on without knowing
    the DWM window geometry.
    """

    window_index: int
    submodule: str  # "c_disp", "h_dist", or "v_dist"
    value: float
    threshold: float
    time_s: float = 0.0


class StreamingNsyncIds:
    """Chunk-by-chunk NSYNC with DWM as the synchronizer.

    Parameters mirror :class:`~repro.core.pipeline.NsyncIds`, except the
    thresholds must already be known (learn them offline with the batch
    pipeline, then deploy here).
    """

    def __init__(
        self,
        reference: Signal,
        params: DwmParams,
        thresholds: Thresholds,
        metric: Union[str, DistanceFn] = "correlation",
        filter_window: int = 3,
    ) -> None:
        if filter_window < 1:
            raise ValueError(f"filter_window must be >= 1, got {filter_window}")
        self.reference = reference
        self.thresholds = thresholds
        self.filter_window = filter_window
        self._dwm = StreamingDwm(reference, params)
        self._comparator = Comparator(metric)
        self._n_win = self._dwm._n_win
        self._n_hop = self._dwm._n_hop
        self._sample_rate = reference.sample_rate
        self._observed = np.zeros((0, reference.n_channels))
        self._prev_disp = 0.0
        self._c_disp = 0.0
        self._c_hist: List[float] = []
        self._h_hist: List[float] = []
        self._v_hist: List[float] = []
        self._alerts: List[Alert] = []
        self._h_dist_f: List[float] = []
        self._v_dist_f: List[float] = []

    # ------------------------------------------------------------------
    @property
    def alerts(self) -> List[Alert]:
        """All alerts raised so far (chronological)."""
        return list(self._alerts)

    @property
    def intrusion_detected(self) -> bool:
        return bool(self._alerts)

    def push(self, samples: np.ndarray) -> List[Alert]:
        """Feed observed samples; return alerts raised by this chunk."""
        samples = np.asarray(samples, dtype=np.float64)
        if samples.ndim == 1:
            samples = samples[:, np.newaxis]
        self._observed = np.concatenate([self._observed, samples], axis=0)

        new_alerts: List[Alert] = []
        with obs.trace("repro.core.streaming.push"):
            for i, disp in self._dwm.push(samples):
                with obs.trace("evaluate_window"):
                    new_alerts.extend(self._evaluate_window(i, disp))
        if obs.enabled():
            obs.counter("repro.core.streaming.samples").inc(samples.shape[0])
            if new_alerts:
                obs.counter("repro.core.streaming.alerts").inc(len(new_alerts))
        self._alerts.extend(new_alerts)
        return new_alerts

    # ------------------------------------------------------------------
    def _evaluate_window(self, i: int, disp: float) -> List[Alert]:
        alerts: List[Alert] = []
        t = self.thresholds
        time_s = i * self._n_hop / self._sample_rate

        # Sub-module 1: CADHD, updated incrementally (Eq. 17).
        self._c_disp += abs(disp - self._prev_disp)
        self._prev_disp = disp
        self._c_hist.append(self._c_disp)
        if self._c_disp > t.c_c:
            alerts.append(Alert(i, "c_disp", self._c_disp, t.c_c, time_s))

        # Sub-module 2: filtered horizontal distance (Eq. 19, 21).
        self._h_hist.append(abs(disp))
        h_f = min(self._h_hist[-self.filter_window :])
        self._h_dist_f.append(h_f)
        if h_f > t.h_c:
            alerts.append(Alert(i, "h_dist", h_f, t.h_c, time_s))

        # Sub-module 3: filtered vertical distance (Eq. 20, 22).
        start = i * self._n_hop
        wa = self._observed[start : start + self._n_win, :]
        offset = int(round(disp))
        wb = self.reference.slice(
            start + offset, start + offset + self._n_win
        ).data
        n = min(wa.shape[0], wb.shape[0])
        if n >= 2:
            v = self._comparator.metric(wa[:n], wb[:n])
        else:
            v = TRUNCATED_WINDOW_DISTANCE
            if obs.enabled():
                obs.counter("repro.core.streaming.truncated_windows").inc()
            if events.enabled():
                events.log().emit("window_truncated", window=i, n=int(n))
        self._v_hist.append(v)
        v_f = min(self._v_hist[-self.filter_window :])
        self._v_dist_f.append(v_f)
        if v_f > t.v_c:
            alerts.append(Alert(i, "v_dist", v_f, t.v_c, time_s))

        if events.enabled():
            log = events.log()
            # Field names mirror NsyncIds._emit_window_evidence so batch
            # and streaming runs produce comparable streams.
            log.emit(
                "window_evidence",
                window=i,
                h_disp=float(disp),
                c_disp=float(self._c_disp),
                h_dist_f=float(h_f),
                v_dist_f=float(v_f),
            )
            for alert in alerts:
                log.emit(
                    "alarm",
                    window=alert.window_index,
                    submodule=alert.submodule,
                    value=float(alert.value),
                    threshold=float(alert.threshold),
                    time_s=float(alert.time_s),
                )
        return alerts

    # ------------------------------------------------------------------
    def evidence(self) -> dict:
        """Snapshot of the evidence arrays accumulated so far.

        Returns a dict with one entry per completed window, matching the
        batch pipeline window-for-window (asserted by the parity tests):

        - ``h_disp`` — raw horizontal displacements from streaming DWM,
          equal to ``SyncResult.h_disp``.
        - ``c_disp`` — final CADHD scalar (kept for backwards
          compatibility; equals ``c_disp_curve[-1]``).
        - ``c_disp_curve`` — cumulative CADHD per window, equal to
          ``SyncResult.cadhd()``.
        - ``h_dist_filtered`` / ``v_dist_filtered`` — trailing-min
          filtered distances, equal to the batch
          :class:`~repro.core.discriminator.DetectionFeatures` arrays.
        """
        return {
            "h_disp": self._dwm.result().h_disp,
            "c_disp": self._c_disp,
            "c_disp_curve": np.asarray(self._c_hist),
            "h_dist_filtered": np.asarray(self._h_dist_f),
            "v_dist_filtered": np.asarray(self._v_dist_f),
        }
