"""Real-time NSYNC: intrusion detection while the print is still running.

The batch :class:`~repro.core.pipeline.NsyncIds` analyzes a finished
recording.  :class:`StreamingNsyncIds` consumes the observed signal in
chunks as the data-acquisition system delivers it, runs streaming DWM, and
evaluates all three discriminator sub-modules incrementally, emitting an
:class:`Alert` at the first window whose evidence crosses a threshold — the
point at which a deployment would stop the printer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from .. import obs
from ..obs import events
from ..signals.signal import Signal
from ..sync.dwm import DwmParams, StreamingDwm
from .comparator import Comparator, DistanceFn, MAX_CORRELATION_DISTANCE
from .discriminator import Thresholds
from .health import SENSOR_FAULT, SanitizePolicy

__all__ = ["Alert", "StreamingNsyncIds", "TRUNCATED_WINDOW_DISTANCE"]

#: Vertical distance reported for a window too short to correlate
#: (fewer than 2 overlapping samples).  This only happens when the
#: synchronizer's displacement estimate walks past the end of the
#: reference; reporting the *maximum* correlation distance (2.0 — perfect
#: anti-correlation, see
#: :data:`~repro.core.comparator.MAX_CORRELATION_DISTANCE`) makes the
#: v_dist sub-module treat it as worst-case evidence rather than silently
#: skipping the window.  Each occurrence additionally emits a
#: ``window_truncated`` event and bumps the
#: ``repro.core.streaming.truncated_windows`` counter.
TRUNCATED_WINDOW_DISTANCE = MAX_CORRELATION_DISTANCE


@dataclass(frozen=True)
class Alert:
    """One threshold violation observed in real time.

    ``time_s`` is the alarm position in print seconds (window index ×
    hop / sample rate) — the number an operator acts on without knowing
    the DWM window geometry.
    """

    window_index: int
    submodule: str  # "c_disp", "h_dist", or "v_dist"
    value: float
    threshold: float
    time_s: float = 0.0


class StreamingNsyncIds:
    """Chunk-by-chunk NSYNC with DWM as the synchronizer.

    Parameters mirror :class:`~repro.core.pipeline.NsyncIds`, except the
    thresholds must already be known (learn them offline with the batch
    pipeline, then deploy here).
    """

    def __init__(
        self,
        reference: Signal,
        params: DwmParams,
        thresholds: Thresholds,
        metric: Union[str, DistanceFn] = "correlation",
        filter_window: int = 3,
        policy: Optional[SanitizePolicy] = None,
    ) -> None:
        if filter_window < 1:
            raise ValueError(f"filter_window must be >= 1, got {filter_window}")
        self.reference = reference
        self.thresholds = thresholds
        self.filter_window = filter_window
        self.policy = policy if policy is not None else SanitizePolicy()
        self._dwm = StreamingDwm(reference, params)
        self._comparator = Comparator(metric)
        self._n_win = self._dwm._n_win
        self._n_hop = self._dwm._n_hop
        self._sample_rate = reference.sample_rate
        self._observed = np.zeros((0, reference.n_channels))
        self._prev_disp = 0.0
        self._c_disp = 0.0
        self._c_hist: List[float] = []
        self._h_hist: List[float] = []
        self._v_hist: List[float] = []
        self._alerts: List[Alert] = []
        self._h_dist_f: List[float] = []
        self._v_dist_f: List[float] = []
        # --- input-sanitization state (see repro.core.health) ---
        n_ch = reference.n_channels
        self._bad = np.zeros(0, dtype=bool)
        self._last_good = np.zeros(n_ch)
        self._have_good = np.zeros(n_ch, dtype=bool)
        self._n_nonfinite = 0
        self._dark_run = np.zeros(n_ch, dtype=np.int64)
        self._longest_dark = 0
        self._prev_raw: Optional[np.ndarray] = None
        self._min_dark = self.policy.min_dark_samples(self._sample_rate)
        self._sensor_fault = False
        self._fault_reasons: List[str] = []
        self._quarantined: List[int] = []

    # ------------------------------------------------------------------
    @property
    def alerts(self) -> List[Alert]:
        """All alerts raised so far (chronological)."""
        return list(self._alerts)

    @property
    def intrusion_detected(self) -> bool:
        return bool(self._alerts)

    def push(self, samples: np.ndarray) -> List[Alert]:
        """Feed observed samples; return alerts raised by this chunk.

        Each chunk passes through the input-sanitization stage first
        (:mod:`repro.core.health` semantics, with cross-chunk carry):
        non-finite samples are repaired by holding the last finite value
        before any detection math sees them, and a channel staying dark
        past :attr:`SanitizePolicy.max_dark_s` raises a fail-closed
        :data:`~repro.core.health.SENSOR_FAULT` alert.
        """
        samples = np.asarray(samples, dtype=np.float64)
        if samples.ndim == 1:
            samples = samples[:, np.newaxis]
        clean, bad_rows = self._sanitize_chunk(samples)
        self._observed = np.concatenate([self._observed, clean], axis=0)
        self._bad = np.concatenate([self._bad, bad_rows])

        new_alerts: List[Alert] = []
        with obs.trace("repro.core.streaming.push"):
            for i, disp in self._dwm.push(clean):
                with obs.trace("evaluate_window"):
                    new_alerts.extend(self._evaluate_window(i, disp))
        fault = self._check_sensor_fault()
        if fault is not None:
            new_alerts.append(fault)
        if obs.enabled():
            obs.counter("repro.core.streaming.samples").inc(samples.shape[0])
            if new_alerts:
                obs.counter("repro.core.streaming.alerts").inc(len(new_alerts))
        self._alerts.extend(new_alerts)
        return new_alerts

    # ------------------------------------------------------------------
    def _sanitize_chunk(self, raw: np.ndarray) -> tuple:
        """Repair one chunk; returns ``(clean, bad_rows)``.

        Mirrors :func:`repro.core.health.sanitize_signal` but with state
        carried across chunk boundaries: the last finite value per channel
        seeds the forward fill, and dark-run lengths continue through
        chunk edges so a disconnect spanning many small chunks is still
        seen as one long run.
        """
        n = raw.shape[0]
        if n == 0:
            return raw, np.zeros(0, dtype=bool)
        bad = ~np.isfinite(raw)
        bad_rows = bad.any(axis=1)
        self._n_nonfinite += int(np.count_nonzero(bad_rows))
        self._update_dark_runs(raw, bad)

        if not bad.any():
            self._last_good = raw[-1].copy()
            self._have_good[:] = True
            return raw, bad_rows
        # Forward fill, seeded by the last finite value seen in earlier
        # chunks (0.0 when a channel has been broken since the start).
        seed = np.where(self._have_good, self._last_good, 0.0)
        ext = np.concatenate([seed[np.newaxis, :], raw], axis=0)
        ext_bad = np.concatenate(
            [np.zeros((1, raw.shape[1]), dtype=bool), bad], axis=0
        )
        idx = np.where(~ext_bad, np.arange(n + 1)[:, np.newaxis], 0)
        np.maximum.accumulate(idx, axis=0, out=idx)
        clean = np.take_along_axis(ext, idx, axis=0)[1:]
        self._last_good = clean[-1].copy()
        self._have_good |= (~bad).any(axis=0)
        return clean, bad_rows

    def _update_dark_runs(self, raw: np.ndarray, bad: np.ndarray) -> None:
        """Continue per-channel constant/non-finite run lengths through
        this chunk (raw data — see :func:`~repro.core.health.sanitize_signal`
        for why dark detection must precede forward-filling)."""
        n = raw.shape[0]
        eps = self.policy.dark_eps
        extend = np.zeros_like(bad)
        if self._prev_raw is not None:
            prev_bad = ~np.isfinite(self._prev_raw)
            with np.errstate(invalid="ignore"):
                extend[0] = np.abs(raw[0] - self._prev_raw) <= eps
            extend[0] |= bad[0] | prev_bad
        if n > 1:
            with np.errstate(invalid="ignore"):
                extend[1:] = np.abs(np.diff(raw, axis=0)) <= eps
            extend[1:] |= bad[1:] | bad[:-1]
        idx = np.arange(n)[:, np.newaxis]
        reset = np.where(~extend, idx, -1)
        np.maximum.accumulate(reset, axis=0, out=reset)
        run = np.where(reset >= 0, idx - reset + 1, idx + 1 + self._dark_run)
        self._dark_run = run[-1].astype(np.int64)
        self._longest_dark = max(self._longest_dark, int(run.max()))
        self._prev_raw = raw[-1].copy()

    def _check_sensor_fault(self) -> Optional[Alert]:
        """Fail-closed verdict: fire the SENSOR_FAULT alert (once) when a
        channel stayed dark past the policy limit or non-finite samples
        flood the stream."""
        if self._sensor_fault or not self.policy.enabled:
            return None
        total = self._observed.shape[0]
        reasons: List[str] = []
        if self._longest_dark >= self._min_dark:
            reasons.append("dark_channel")
        # The fraction rule only kicks in once at least max_dark_s worth of
        # samples arrived, so a short leading NaN burst cannot trip it on a
        # nearly-empty denominator.
        if (
            total >= self._min_dark
            and self._n_nonfinite / total > self.policy.max_bad_fraction
        ):
            reasons.append("nonfinite_fraction")
        if not reasons:
            return None
        self._sensor_fault = True
        self._fault_reasons = reasons
        window = len(self._c_hist)
        time_s = total / self._sample_rate
        longest_s = self._longest_dark / self._sample_rate
        alert = Alert(
            window, SENSOR_FAULT, longest_s, self.policy.max_dark_s, time_s
        )
        if obs.enabled():
            obs.counter("repro.core.streaming.sensor_faults").inc()
        if events.enabled():
            log = events.log()
            log.emit(
                "sensor_fault",
                reason=",".join(reasons),
                window=window,
                time_s=float(time_s),
                longest_dark_s=float(longest_s),
            )
            log.emit(
                "alarm",
                window=window,
                submodule=SENSOR_FAULT,
                value=float(longest_s),
                threshold=float(self.policy.max_dark_s),
                time_s=float(time_s),
            )
        return alert

    # ------------------------------------------------------------------
    def _evaluate_window(self, i: int, disp: float) -> List[Alert]:
        alerts: List[Alert] = []
        t = self.thresholds
        time_s = i * self._n_hop / self._sample_rate

        # A synchronizer emitting a non-finite displacement would poison
        # the cumulative CADHD for the rest of the print; hold the previous
        # estimate for the c/h sub-modules and report worst-case vertical
        # evidence for this window instead.
        degenerate_disp = not math.isfinite(disp)
        if degenerate_disp:
            disp = self._prev_disp

        # Sub-module 1: CADHD, updated incrementally (Eq. 17).
        self._c_disp += abs(disp - self._prev_disp)
        self._prev_disp = disp
        self._c_hist.append(self._c_disp)
        if self._c_disp > t.c_c:
            alerts.append(Alert(i, "c_disp", self._c_disp, t.c_c, time_s))

        # Sub-module 2: filtered horizontal distance (Eq. 19, 21).
        self._h_hist.append(abs(disp))
        h_f = min(self._h_hist[-self.filter_window :])
        self._h_dist_f.append(h_f)
        if h_f > t.h_c:
            alerts.append(Alert(i, "h_dist", h_f, t.h_c, time_s))

        # Sub-module 3: filtered vertical distance (Eq. 20, 22).
        start = i * self._n_hop
        wa = self._observed[start : start + self._n_win, :]
        offset = int(round(disp))
        wb = self.reference.slice(
            start + offset, start + offset + self._n_win
        ).data
        n = min(wa.shape[0], wb.shape[0])
        if n >= 2 and not degenerate_disp:
            v = self._comparator.pair_distance(wa[:n], wb[:n])
        else:
            v = TRUNCATED_WINDOW_DISTANCE
            if obs.enabled():
                obs.counter("repro.core.streaming.truncated_windows").inc()
            if events.enabled():
                events.log().emit("window_truncated", window=i, n=int(n))
        bad_window = self._bad[start : start + self._n_win]
        if bad_window.any():
            self._quarantined.append(i)
            if obs.enabled():
                obs.counter("repro.core.streaming.quarantined_windows").inc()
            if events.enabled():
                events.log().emit(
                    "window_quarantined",
                    window=i,
                    n_bad=int(np.count_nonzero(bad_window)),
                )
        self._v_hist.append(v)
        v_f = min(self._v_hist[-self.filter_window :])
        self._v_dist_f.append(v_f)
        if v_f > t.v_c:
            alerts.append(Alert(i, "v_dist", v_f, t.v_c, time_s))

        if events.enabled():
            log = events.log()
            # Field names mirror NsyncIds._emit_window_evidence so batch
            # and streaming runs produce comparable streams.
            log.emit(
                "window_evidence",
                window=i,
                h_disp=float(disp),
                c_disp=float(self._c_disp),
                h_dist_f=float(h_f),
                v_dist_f=float(v_f),
            )
            for alert in alerts:
                log.emit(
                    "alarm",
                    window=alert.window_index,
                    submodule=alert.submodule,
                    value=float(alert.value),
                    threshold=float(alert.threshold),
                    time_s=float(alert.time_s),
                )
        return alerts

    # ------------------------------------------------------------------
    def evidence(self) -> dict:
        """Snapshot of the evidence arrays accumulated so far.

        Returns a dict with one entry per completed window, matching the
        batch pipeline window-for-window (asserted by the parity tests):

        - ``h_disp`` — raw horizontal displacements from streaming DWM,
          equal to ``SyncResult.h_disp``.
        - ``c_disp`` — final CADHD scalar (kept for backwards
          compatibility; equals ``c_disp_curve[-1]``).
        - ``c_disp_curve`` — cumulative CADHD per window, equal to
          ``SyncResult.cadhd()``.
        - ``h_dist_filtered`` / ``v_dist_filtered`` — trailing-min
          filtered distances, equal to the batch
          :class:`~repro.core.discriminator.DetectionFeatures` arrays.
        """
        return {
            "h_disp": self._dwm.result().h_disp,
            "c_disp": self._c_disp,
            "c_disp_curve": np.asarray(self._c_hist),
            "h_dist_filtered": np.asarray(self._h_dist_f),
            "v_dist_filtered": np.asarray(self._v_dist_f),
        }

    def health(self) -> dict:
        """Channel-health snapshot from the input-sanitization stage.

        JSON-safe, mirroring the batch pipeline's ``Detection.health``
        payload: sample/repair counts, the longest dark run seen so far,
        the fail-closed ``sensor_fault`` verdict with its reasons, and the
        indices of windows whose evidence was computed from repaired
        samples.
        """
        total = self._observed.shape[0]
        return {
            "n_samples": int(total),
            "n_nonfinite": int(self._n_nonfinite),
            "bad_fraction": float(self._n_nonfinite / total) if total else 0.0,
            "longest_dark_s": float(self._longest_dark / self._sample_rate),
            "sensor_fault": bool(self._sensor_fault),
            "reasons": list(self._fault_reasons),
            "quarantined_windows": list(self._quarantined),
        }
