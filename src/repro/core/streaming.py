"""Real-time NSYNC: intrusion detection while the print is still running.

The batch :class:`~repro.core.pipeline.NsyncIds` analyzes a finished
recording; :class:`StreamingNsyncIds` consumes the observed signal in
chunks as the data-acquisition system delivers it.  Both are facades over
the same :class:`~repro.core.engine.DetectionEngine`, which runs streaming
DWM and evaluates all three discriminator sub-modules incrementally,
raising an :class:`~repro.core.engine.Alert` at the first window whose
evidence crosses a threshold — the point at which a deployment would stop
the printer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

import numpy as np

from ..signals.signal import Signal
from ..sync.dwm import DwmParams, DwmSynchronizer
from .comparator import DistanceFn
from .discriminator import Thresholds
from .engine import (  # noqa: F401  (Alert/TRUNCATED_WINDOW_DISTANCE re-export)
    Alert,
    DetectionEngine,
    DetectorState,
    EngineResult,
    TRUNCATED_WINDOW_DISTANCE,
)
from .health import SanitizePolicy

__all__ = ["Alert", "StreamingNsyncIds", "TRUNCATED_WINDOW_DISTANCE"]


class StreamingNsyncIds:
    """Chunk-by-chunk NSYNC with DWM as the synchronizer.

    Parameters mirror :class:`~repro.core.pipeline.NsyncIds`, except the
    thresholds must already be known (learn them offline with the batch
    pipeline, then deploy here).  This class is a thin push-API wrapper
    around one armed :class:`~repro.core.engine.DetectionEngine`; the
    engine itself is exposed as :attr:`engine` for checkpoint/resume.
    """

    def __init__(
        self,
        reference: Signal,
        params: DwmParams,
        thresholds: Thresholds,
        metric: Union[str, DistanceFn] = "correlation",
        filter_window: int = 3,
        policy: Optional[SanitizePolicy] = None,
    ) -> None:
        self.reference = reference
        self.thresholds = thresholds
        self.filter_window = filter_window
        self.policy = policy if policy is not None else SanitizePolicy()
        self.engine = DetectionEngine(
            reference,
            DwmSynchronizer(params),
            thresholds=thresholds,
            metric=metric,
            filter_window=filter_window,
            policy=self.policy,
        )

    # ------------------------------------------------------------------
    @property
    def alerts(self) -> List[Alert]:
        """All alerts raised so far (chronological)."""
        return self.engine.alerts

    @property
    def intrusion_detected(self) -> bool:
        """True once any sub-module (or the sensor-fault rule) fired."""
        return self.engine.intrusion_detected

    def push(self, samples: np.ndarray) -> List[Alert]:
        """Feed observed samples; return alerts raised by this chunk.

        Each chunk passes through the input-sanitization stage first
        (:mod:`repro.core.health` semantics, with cross-chunk carry):
        non-finite samples are repaired by holding the last finite value
        before any detection math sees them, and a channel staying dark
        past :attr:`SanitizePolicy.max_dark_s` raises a fail-closed
        :data:`~repro.core.health.SENSOR_FAULT` alert.
        """
        return self.engine.push(samples)

    def finalize(self) -> EngineResult:
        """End of stream: run the end-of-run checks and assemble the
        final :class:`~repro.core.engine.EngineResult` (with the full
        :class:`~repro.core.discriminator.Detection` verdict)."""
        return self.engine.finalize()

    # ------------------------------------------------------------------
    def evidence(self) -> Dict[str, object]:
        """Snapshot of the evidence arrays accumulated so far.

        Returns a dict with one entry per completed window, matching the
        batch pipeline window-for-window (structurally — both facades run
        the same engine):

        - ``h_disp`` — raw horizontal displacements from streaming DWM,
          equal to ``SyncResult.h_disp``.
        - ``c_disp`` — final CADHD scalar (kept for backwards
          compatibility; equals ``c_disp_curve[-1]``).
        - ``c_disp_curve`` — cumulative CADHD per window, equal to
          ``SyncResult.cadhd()``.
        - ``h_dist_filtered`` / ``v_dist_filtered`` — trailing-min
          filtered distances, equal to the batch
          :class:`~repro.core.discriminator.DetectionFeatures` arrays.
        """
        return self.engine.evidence()

    def health(self) -> Dict[str, object]:
        """Channel-health snapshot from the input-sanitization stage.

        JSON-safe, mirroring the batch pipeline's ``Detection.health``
        payload: sample/repair counts, dark spans and the longest dark run
        seen so far, the fail-closed ``sensor_fault`` verdict with its
        reasons, and the indices of windows whose evidence was computed
        from repaired samples.
        """
        return self.engine.health_dict()

    # ------------------------------------------------------------------
    def state(self) -> DetectorState:
        """Serializable mid-stream checkpoint (see
        :meth:`repro.core.engine.DetectionEngine.state`)."""
        return self.engine.state()

    def restore(self, state: DetectorState) -> None:
        """Load a :meth:`state` checkpoint into this (fresh) detector."""
        self.engine.restore(state)
