"""The unified NSYNC detection core: one incremental engine, two facades.

The paper's IDS (Section VII, Fig. 7) is a single algorithm; this module is
its single implementation.  :class:`DetectionEngine` consumes the observed
signal chunk by chunk and runs an explicit four-stage pipeline over every
chunk::

        chunk ──> sanitize ──> synchronize ──> compare ──> discriminate
                  (health)      (SyncCursor)   (v_dist)    (alerts)

* **sanitize** — repair non-finite samples (forward fill with cross-chunk
  seeds), track dark-channel runs on the raw data, and arm the fail-closed
  SENSOR_FAULT verdict (:mod:`repro.core.health` semantics).
* **synchronize** — feed the clean samples to a
  :class:`~repro.sync.base.SyncCursor`.  DWM streams natively; batch
  synchronizers (DTW/FastDTW) ride behind
  :class:`~repro.sync.base.BatchSyncCursor` and emit at finalization.
* **compare** — one vertical distance per emitted index (Eq. 15/16), with
  the named worst-case fallback for truncated/degenerate windows.
* **discriminate** — incremental CADHD (Eq. 17) and trailing-min filtered
  distances (Eq. 21/22) checked against the thresholds; each sub-module
  raises at most one :class:`Alert`, at its first offending index.

:meth:`DetectionEngine.finalize` flushes the cursor, applies the
end-of-run checks (duration, non-finite fraction), and assembles the
:class:`EngineResult`.  The batch :class:`~repro.core.pipeline.NsyncIds`
is "push the whole signal as one chunk, then finalize"; the streaming
:class:`~repro.core.streaming.StreamingNsyncIds` is "push chunks as the
DAQ delivers them" — batch/streaming parity is structural, not
test-enforced, because there is only one code path.

All cross-chunk carry lives in :class:`DetectorState` (schema-versioned,
JSON-safe via ``to_dict``/``from_dict``), which is what makes
checkpoint/resume and multi-job serving possible: serialize mid-print,
restore into a fresh engine, and the remainder of the run is bit-identical
to an uninterrupted one.

This module is also the only emitter of the detection provenance events
(``window_evidence``, ``window_quarantined``, ``window_truncated``,
``alarm``, ``sensor_fault``, ``run_summary``) — exactly one emission site
per type, shared by both facades.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from .. import obs
from ..obs import events, telemetry
from ..signals.ringbuffer import SampleRing
from ..signals.signal import Signal
from ..sync.base import BatchSyncCursor, SyncCursor, SyncResult, Synchronizer
from .comparator import Comparator, DistanceFn, MAX_CORRELATION_DISTANCE
from .discriminator import (
    Detection,
    DetectionFeatures,
    Discriminator,
    Thresholds,
)
from .health import SENSOR_FAULT, ChannelHealth, SanitizePolicy

__all__ = [
    "Alert",
    "DetectionEngine",
    "DetectorState",
    "EngineResult",
    "STATE_SCHEMA",
    "STATE_VERSION",
    "TRUNCATED_WINDOW_DISTANCE",
]

#: Vertical distance reported for a window too short to correlate (fewer
#: than 2 overlapping samples) or synchronized by a non-finite displacement
#: estimate.  Both mean the synchronizer walked off the reference; reporting
#: the *maximum* correlation distance (2.0 — perfect anti-correlation, see
#: :data:`~repro.core.comparator.MAX_CORRELATION_DISTANCE`) makes the
#: v_dist sub-module treat it as worst-case evidence rather than silently
#: skipping the window.  Each occurrence additionally emits a
#: ``window_truncated`` event and bumps the
#: ``repro.core.engine.truncated_windows`` counter.
TRUNCATED_WINDOW_DISTANCE = MAX_CORRELATION_DISTANCE

#: ``DetectorState.to_dict()`` schema identifier and version.  Bump the
#: version whenever a field is added/renamed so a stale checkpoint fails
#: loudly instead of resuming with half-initialized state.
STATE_SCHEMA = "repro.core.engine/DetectorState"
STATE_VERSION = 1


@dataclass(frozen=True)
class Alert:
    """One threshold violation observed while the print is running.

    Each sub-module (``c_disp``, ``h_dist``, ``v_dist``, ``duration``,
    ``sensor_fault``) raises at most one alert per run, at its first
    offending index.  ``time_s`` is the alarm position in print seconds —
    the number an operator acts on without knowing the DWM window
    geometry — and is computed at every construction site (there is no
    silent ``0.0`` default).
    """

    window_index: int
    submodule: str
    value: float
    threshold: float
    time_s: float

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe rendition (used by :class:`DetectorState`)."""
        return {
            "window_index": int(self.window_index),
            "submodule": self.submodule,
            "value": float(self.value),
            "threshold": float(self.threshold),
            "time_s": float(self.time_s),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "Alert":
        """Rebuild an alert serialized by :meth:`to_dict`."""
        return cls(
            window_index=int(doc["window_index"]),  # type: ignore[call-overload]
            submodule=str(doc["submodule"]),
            value=float(doc["value"]),  # type: ignore[arg-type]
            threshold=float(doc["threshold"]),  # type: ignore[arg-type]
            time_s=float(doc["time_s"]),  # type: ignore[arg-type]
        )


def _encode_optional_floats(row: np.ndarray) -> List[Optional[float]]:
    """Per-entry float list with ``None`` standing in for NaN/inf.

    Strict JSON has no NaN literal; the only non-finite carry in the
    engine is the raw previous sample (used for dark-run continuation,
    where any non-finite value behaves identically), so the encoding is
    lossless for detection behaviour.
    """
    return [float(v) if math.isfinite(float(v)) else None for v in row]


def _decode_optional_floats(values: Sequence[Optional[float]]) -> np.ndarray:
    """Inverse of :func:`_encode_optional_floats` (``None`` becomes NaN)."""
    return np.asarray(
        [float("nan") if v is None else float(v) for v in values],
        dtype=np.float64,
    )


#: Sections a serialized ``DetectorState`` must carry, with the expected
#: container type (``from_dict`` validates before indexing anything).
_STATE_SECTIONS: Tuple[Tuple[str, type], ...] = (
    ("config", dict),
    ("progress", dict),
    ("sanitize", dict),
    ("sync", dict),
    ("evidence", dict),
    ("alerts", list),
    ("fired", list),
)

#: Required keys per dict-valued section — exactly the fields
#: :meth:`DetectionEngine.restore` indexes, so a checkpoint that passes
#: validation cannot die with a ``KeyError`` halfway through a restore.
#: (``sync`` is opaque: its layout belongs to the synchronizer cursor.)
_STATE_REQUIRED_KEYS: Dict[str, Tuple[str, ...]] = {
    "config": ("n_channels", "sample_rate", "filter_window"),
    "progress": ("samples_seen", "buf_start", "buffer", "bad"),
    "sanitize": (
        "last_good", "have_good", "prev_raw", "n_nonfinite", "run_start",
        "longest_dark", "dark_spans", "fault_fired", "fault_reasons",
        "fault_window",
    ),
    "evidence": (
        "prev_disp", "c_disp", "c_hist", "h_hist", "v_hist", "h_f", "v_f",
        "quarantined",
    ),
}

#: Required keys of each serialized alert (what ``Alert.from_dict`` reads).
_ALERT_REQUIRED_KEYS: Tuple[str, ...] = (
    "window_index", "submodule", "value", "threshold", "time_s",
)


def _validate_state_payload(doc: Dict[str, object]) -> None:
    """Check a ``to_dict`` payload is structurally complete.

    A truncated or hand-corrupted checkpoint fails here with a
    ``ValueError`` naming the missing/ill-typed field rather than
    surfacing an opaque ``KeyError`` from deep inside ``restore``.
    """
    for section, expected in _STATE_SECTIONS:
        if section not in doc:
            raise ValueError(
                f"DetectorState payload missing section {section!r}"
            )
        value = doc[section]
        if not isinstance(value, expected):
            raise ValueError(
                f"DetectorState section {section!r} must be a "
                f"{expected.__name__}, got {type(value).__name__}"
            )
    for section, keys in _STATE_REQUIRED_KEYS.items():
        body = doc[section]
        assert isinstance(body, dict)
        for key in keys:
            if key not in body:
                raise ValueError(
                    f"DetectorState payload missing field "
                    f"{section!r}.{key!r}"
                )
    alerts = doc["alerts"]
    assert isinstance(alerts, list)
    for k, alert in enumerate(alerts):
        if not isinstance(alert, dict):
            raise ValueError(
                f"DetectorState alert #{k} must be a dict, "
                f"got {type(alert).__name__}"
            )
        for key in _ALERT_REQUIRED_KEYS:
            if key not in alert:
                raise ValueError(
                    f"DetectorState alert #{k} missing field {key!r}"
                )


@dataclass(frozen=True)
class DetectorState:
    """Serializable snapshot of every piece of cross-chunk carry.

    Grouped by pipeline stage:

    - ``config`` — shape echo (``n_channels``, ``sample_rate``,
      ``filter_window``) validated on :meth:`DetectionEngine.restore` so a
      checkpoint cannot silently resume against a different setup.
    - ``progress`` — ``samples_seen``, ``buf_start``, plus the buffered
      clean-sample tail (``buffer``) and its per-row repair mask (``bad``).
    - ``sanitize`` — forward-fill seeds, dark-run bookkeeping, and the
      fail-closed sensor-fault state.
    - ``sync`` — the :meth:`~repro.sync.base.SyncCursor.state_dict` of the
      synchronizer cursor (DWM history or a batch adapter's buffer).
    - ``evidence`` — the per-index evidence tail (CADHD, raw/filtered
      distances, quarantined indexes).
    - ``alerts`` / ``fired`` — alert state, so a restored run neither
      re-raises nor forgets an alarm.

    ``to_dict``/``from_dict`` round-trip through strict JSON bit-exactly
    (floats serialize via ``repr`` shortest round-trip); this is public
    API, versioned by :data:`STATE_VERSION`.
    """

    config: Dict[str, object]
    progress: Dict[str, object]
    sanitize: Dict[str, object]
    sync: Dict[str, object]
    evidence: Dict[str, object]
    alerts: Tuple[Dict[str, object], ...]
    fired: Tuple[str, ...]
    version: int = STATE_VERSION

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict (strict JSON: no NaN/inf anywhere)."""
        return {
            "schema": STATE_SCHEMA,
            "version": self.version,
            "config": dict(self.config),
            "progress": dict(self.progress),
            "sanitize": dict(self.sanitize),
            "sync": dict(self.sync),
            "evidence": dict(self.evidence),
            "alerts": [dict(a) for a in self.alerts],
            "fired": list(self.fired),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "DetectorState":
        """Validate the schema header and payload, then rebuild the state.

        Every malformed input — wrong schema, unsupported version, a
        missing or ill-typed section, a section missing one of the fields
        :meth:`DetectionEngine.restore` will index — raises a
        :class:`ValueError` naming the offending field, never a raw
        ``KeyError``.  A checkpoint store can therefore treat *any*
        ``ValueError`` as "checkpoint unusable, restart the stream from
        scratch" instead of crashing the process that loaded it.
        """
        schema = doc.get("schema")
        if schema != STATE_SCHEMA:
            raise ValueError(f"not a DetectorState payload: schema={schema!r}")
        version = doc.get("version")
        if version != STATE_VERSION:
            raise ValueError(
                f"unsupported DetectorState version {version!r} "
                f"(this build reads version {STATE_VERSION})"
            )
        _validate_state_payload(doc)
        return cls(
            config=dict(doc["config"]),  # type: ignore[call-overload, arg-type]
            progress=dict(doc["progress"]),  # type: ignore[call-overload, arg-type]
            sanitize=dict(doc["sanitize"]),  # type: ignore[call-overload, arg-type]
            sync=dict(doc["sync"]),  # type: ignore[call-overload, arg-type]
            evidence=dict(doc["evidence"]),  # type: ignore[call-overload, arg-type]
            alerts=tuple(dict(a) for a in doc["alerts"]),  # type: ignore[union-attr]
            fired=tuple(str(s) for s in doc["fired"]),  # type: ignore[union-attr]
            version=int(version),
        )


@dataclass(frozen=True)
class EngineResult:
    """Everything :meth:`DetectionEngine.finalize` derives from one run."""

    sync: SyncResult
    v_dist: np.ndarray
    features: DetectionFeatures
    health: ChannelHealth
    quarantined_windows: Tuple[int, ...]
    #: ``None`` when the engine ran un-thresholded (analyze/fit mode).
    detection: Optional[Detection]
    alerts: Tuple[Alert, ...]


def _finite(value: float) -> Optional[float]:
    """float(value), or None when it would not survive strict JSON."""
    v = float(value)
    return v if math.isfinite(v) else None


class DetectionEngine:
    """Chunk-incremental NSYNC core shared by the batch and streaming IDS.

    Parameters
    ----------
    reference:
        The reference side-channel signal ``b``.
    synchronizer:
        Any :class:`~repro.sync.base.Synchronizer`.  One that implements
        :class:`~repro.sync.base.IncrementalSynchronizer` (DWM) streams
        natively; anything else is adapted via
        :class:`~repro.sync.base.BatchSyncCursor`.
    thresholds:
        Discriminator critical values.  ``None`` runs the engine
        un-thresholded: evidence, health, and quarantine are produced but
        no alerts, alarms, or run summary (this is what ``fit`` uses).
    metric:
        Vertical-distance metric (default the correlation distance).
    filter_window:
        Spike-suppression window for the discriminator (default 3).
    policy:
        Input-sanitization thresholds
        (:class:`~repro.core.health.SanitizePolicy`); ``None`` uses the
        defaults.
    stream_id:
        Optional stream/printer identity.  When set, the engine registers
        a live :class:`~repro.obs.telemetry.StreamHealth` row in the
        process-wide telemetry registry (ingest lag, chunk-latency
        quantiles, alert/quarantine state — what ``repro top`` and the
        Prometheus endpoint render).  Health rows update only on the
        instrumented branch of :meth:`push`: with observability disabled
        the hot path stays telemetry-free.
    """

    def __init__(
        self,
        reference: Signal,
        synchronizer: Synchronizer,
        thresholds: Optional[Thresholds] = None,
        metric: Union[str, DistanceFn] = "correlation",
        filter_window: int = 3,
        policy: Optional[SanitizePolicy] = None,
        stream_id: Optional[str] = None,
    ) -> None:
        if filter_window < 1:
            raise ValueError(f"filter_window must be >= 1, got {filter_window}")
        self.reference = reference
        self.synchronizer = synchronizer
        self.thresholds = thresholds
        self.filter_window = filter_window
        self.policy = policy if policy is not None else SanitizePolicy()
        self._comparator = Comparator(metric)
        cursor_factory = getattr(synchronizer, "cursor", None)
        if callable(cursor_factory):
            self._cursor: SyncCursor = cursor_factory(reference)
        else:
            self._cursor = BatchSyncCursor(synchronizer, reference)
        n_ch = reference.n_channels
        self._rate = float(reference.sample_rate)
        self._n_channels = int(n_ch)
        self._min_dark = self.policy.min_dark_samples(self._rate)
        self.stream_id = stream_id
        self._health_row: Union[
            telemetry.StreamHealth, telemetry.NullStreamHealth
        ] = (
            telemetry.register_stream(stream_id, self._rate)
            if stream_id is not None
            else telemetry.NULL_STREAM_HEALTH
        )
        # --- progress / buffered tail ---
        # Preallocated tail buffers (amortized O(chunk) appends, logical
        # prefix trims) shared by the sanitize and compare stages; both
        # address samples by absolute stream index.
        self._samples_seen = 0
        self._ring = SampleRing(n_ch)
        self._bad_ring = SampleRing(None, dtype=bool)
        self._finalized = False
        # --- sanitize carry (see repro.core.health) ---
        self._last_good = np.zeros(n_ch)
        self._have_good = np.zeros(n_ch, dtype=bool)
        self._prev_raw: Optional[np.ndarray] = None
        # True when the carried previous raw row has a non-finite entry;
        # lets the dark-run tracker skip the errstate-guarded path on the
        # (overwhelmingly common) all-finite chunks.
        self._prev_raw_bad = False
        self._n_nonfinite = 0
        self._run_start = np.zeros(n_ch, dtype=np.int64)
        # Scalar lower bound of _run_start (= the oldest open run): lets
        # the per-push fast path decide "no channel can close a dark span
        # here" with one int compare instead of a numpy reduction.
        self._run_start_min = 0
        self._longest_dark = 0
        self._dark_spans: List[Tuple[int, int]] = []
        self._fault_fired = False
        self._fault_reasons: List[str] = []
        self._fault_window: Optional[int] = None
        self._pending_fault: Optional[Tuple[int, int]] = None
        # --- evidence carry ---
        self._prev_disp = 0.0
        self._c_disp = 0.0
        self._c_hist: List[float] = []
        self._h_hist: List[float] = []
        self._v_hist: List[float] = []
        self._h_f: List[float] = []
        self._v_f: List[float] = []
        self._quarantined: List[int] = []
        # --- alert state ---
        self._alerts: List[Alert] = []
        self._fired: Set[str] = set()

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------
    @property
    def armed(self) -> bool:
        """True when thresholds are set and the engine raises alerts."""
        return self.thresholds is not None

    @property
    def alerts(self) -> List[Alert]:
        """All alerts raised so far (chronological)."""
        return list(self._alerts)

    @property
    def intrusion_detected(self) -> bool:
        """True once any sub-module (or the sensor-fault rule) fired."""
        return bool(self._alerts)

    @property
    def n_indexes(self) -> int:
        """Number of synchronized indexes evaluated so far."""
        return len(self._c_hist)

    @property
    def samples_seen(self) -> int:
        """Absolute number of samples pushed so far.

        This is the resume cursor of the checkpoint/replay contract: a
        client that re-feeds the stream from exactly this sample after a
        :meth:`restore` reproduces the uninterrupted run bit-identically.
        """
        return self._samples_seen

    @property
    def n_quarantined(self) -> int:
        """Number of indexes whose input samples had to be repaired."""
        return len(self._quarantined)

    @property
    def sensor_fault_fired(self) -> bool:
        """True once the fail-closed SENSOR_FAULT verdict fired."""
        return self._fault_fired

    def push(self, samples: np.ndarray) -> List[Alert]:
        """Feed observed samples; return alerts raised by this chunk.

        Runs ``sanitize -> synchronize -> compare -> discriminate`` over
        the chunk.  Every decision depends only on the absolute sample
        prefix seen so far — never on where chunk boundaries fall — so any
        chunking of a signal produces a bit-identical run.
        """
        if self._finalized:
            raise RuntimeError("cannot push after finalize()")
        samples = np.asarray(samples, dtype=np.float64)
        if samples.ndim == 1:
            samples = samples[:, np.newaxis]
        if samples.shape[0] == 0:
            return []
        if samples.shape[1] != self._n_channels:
            raise ValueError(
                f"expected {self._n_channels} channels, got {samples.shape[1]}"
            )
        if not obs.enabled():
            # Disabled-observability fast path: identical stage sequence,
            # but no context-manager entries or counter lookups per push —
            # at DAQ chunk sizes those null shims alone cost measurable
            # throughput (asserted < 3% overhead by
            # benchmarks/bench_engine_throughput.py).
            clean, bad_rows = self._stage_sanitize(samples)
            self._ring.append(clean)
            self._bad_ring.append(bad_rows)
            self._samples_seen += samples.shape[0]
            emitted = self._cursor.push(clean)
            new_alerts = self._ingest(emitted, v_pre=None)
            self._trim()
            return new_alerts
        t0 = time.perf_counter()
        with obs.trace("repro.core.engine.push"):
            with obs.trace("sanitize"):
                clean, bad_rows = self._stage_sanitize(samples)
            self._ring.append(clean)
            self._bad_ring.append(bad_rows)
            self._samples_seen += samples.shape[0]
            with obs.trace("synchronize"):
                emitted = self._cursor.push(clean)
            new_alerts = self._ingest(emitted, v_pre=None)
            self._trim()
        latency_s = time.perf_counter() - t0
        obs.counter("repro.core.engine.samples").inc(samples.shape[0])
        if new_alerts:
            obs.counter("repro.core.engine.alerts").inc(len(new_alerts))
        obs.histogram("repro.core.engine.chunk_latency_s").observe(latency_s)
        self._health_row.observe_chunk(
            samples.shape[0],
            latency_s,
            len(self._c_hist),
            len(self._quarantined),
            self._fault_fired,
        )
        for alert in new_alerts:
            self._health_row.note_alert(alert.submodule, alert.time_s)
        return new_alerts

    def finalize(self) -> EngineResult:
        """Flush the cursor, run the end-of-run checks, assemble the result.

        Terminal: further :meth:`push`/:meth:`finalize` calls raise.
        """
        if self._finalized:
            raise RuntimeError("finalize() may only be called once")
        self._finalized = True
        alerts_before = len(self._alerts)
        with obs.trace("repro.core.engine.finalize"):
            emitted = self._cursor.finalize()
            sync = self._cursor.result()
            v_pre: Optional[np.ndarray] = None
            if sync.mode == "point" and len(self._ring):
                with obs.trace("compare"):
                    observed = Signal(self._ring.tail(), self._rate)
                    v_pre = self._comparator.vertical_distances(
                        observed, self.reference, sync
                    )
            self._ingest(emitted, v_pre=v_pre)
            self._check_fraction_rule()
            health = self._final_health()
            features = DetectionFeatures(
                c_disp=np.asarray(self._c_hist, dtype=np.float64),
                h_dist_filtered=np.asarray(self._h_f, dtype=np.float64),
                v_dist_filtered=np.asarray(self._v_f, dtype=np.float64),
                duration_mismatch=self._duration_mismatch(sync),
            )
            v_dist = (
                v_pre
                if v_pre is not None
                else np.asarray(self._v_hist, dtype=np.float64)
            )
            detection: Optional[Detection] = None
            if self.thresholds is not None:
                with obs.trace("discriminate"):
                    detection = self._stage_discriminate_run(
                        features, sync, health
                    )
        for alert in self._alerts[alerts_before:]:
            self._health_row.note_alert(alert.submodule, alert.time_s)
        self._health_row.mark_finished(intrusion=bool(self._alerts))
        return EngineResult(
            sync=sync,
            v_dist=v_dist,
            features=features,
            health=health,
            quarantined_windows=tuple(self._quarantined),
            detection=detection,
            alerts=tuple(self._alerts),
        )

    def evidence(self) -> Dict[str, object]:
        """Snapshot of the evidence arrays accumulated so far.

        Returns a dict with one entry per evaluated index:

        - ``h_disp`` — raw horizontal displacements
          (= ``SyncResult.h_disp``).
        - ``c_disp`` — current CADHD scalar (equals ``c_disp_curve[-1]``).
        - ``c_disp_curve`` — cumulative CADHD per index
          (= ``SyncResult.cadhd()``).
        - ``h_dist_filtered`` / ``v_dist_filtered`` — trailing-min
          filtered distances, equal to the
          :class:`~repro.core.discriminator.DetectionFeatures` arrays.
        """
        return {
            "h_disp": self._cursor.result().h_disp,
            "c_disp": self._c_disp,
            "c_disp_curve": np.asarray(self._c_hist, dtype=np.float64),
            "h_dist_filtered": np.asarray(self._h_f, dtype=np.float64),
            "v_dist_filtered": np.asarray(self._v_f, dtype=np.float64),
        }

    def health_dict(self) -> Dict[str, object]:
        """JSON-safe channel-health snapshot of the run so far.

        Mirrors ``ChannelHealth.to_dict()`` plus the quarantined-index
        list; usable mid-stream and identical to the final
        ``Detection.health`` payload once the run is finalized.
        """
        total = self._samples_seen
        return {
            "n_samples": int(total),
            "n_nonfinite": int(self._n_nonfinite),
            "bad_fraction": (
                float(self._n_nonfinite / total) if total else 0.0
            ),
            "dark_spans": [[int(a), int(b)] for a, b in self._current_spans()],
            "longest_dark_s": float(self._longest_dark / self._rate),
            "sensor_fault": bool(self._fault_fired),
            "reasons": list(self._fault_reasons),
            "quarantined_windows": list(self._quarantined),
        }

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------
    def state(self) -> DetectorState:
        """Snapshot every piece of cross-chunk carry as a
        :class:`DetectorState`.

        Call between :meth:`push` invocations (not after
        :meth:`finalize`); restoring the snapshot into a fresh engine
        built with the same configuration continues the run bit-exactly.
        """
        if self._finalized:
            raise RuntimeError("cannot snapshot a finalized engine")
        prev_raw = (
            None
            if self._prev_raw is None
            else _encode_optional_floats(self._prev_raw)
        )
        return DetectorState(
            config={
                "n_channels": self._n_channels,
                "sample_rate": self._rate,
                "filter_window": self.filter_window,
            },
            progress={
                # One C-level tolist() per array (not per-element Python
                # loops): checkpointing happens mid-stream, on the clock.
                "samples_seen": int(self._samples_seen),
                "buf_start": int(self._ring.start),
                "buffer": self._ring.tail().tolist(),
                "bad": self._bad_ring.tail().tolist(),
            },
            sanitize={
                "last_good": [float(v) for v in self._last_good],
                "have_good": [bool(b) for b in self._have_good],
                "prev_raw": prev_raw,
                "n_nonfinite": int(self._n_nonfinite),
                "run_start": [int(v) for v in self._run_start],
                "longest_dark": int(self._longest_dark),
                "dark_spans": [[int(a), int(b)] for a, b in self._dark_spans],
                "fault_fired": bool(self._fault_fired),
                "fault_reasons": list(self._fault_reasons),
                "fault_window": self._fault_window,
            },
            sync=self._cursor.state_dict(),
            evidence={
                "prev_disp": float(self._prev_disp),
                "c_disp": float(self._c_disp),
                "c_hist": [float(v) for v in self._c_hist],
                "h_hist": [float(v) for v in self._h_hist],
                "v_hist": [float(v) for v in self._v_hist],
                "h_f": [float(v) for v in self._h_f],
                "v_f": [float(v) for v in self._v_f],
                "quarantined": [int(i) for i in self._quarantined],
            },
            alerts=tuple(a.to_dict() for a in self._alerts),
            fired=tuple(sorted(self._fired)),
        )

    def restore(self, state: DetectorState) -> None:
        """Load a :meth:`state` snapshot into this (fresh) engine.

        The engine must have been constructed with the same reference,
        synchronizer type, and parameters; the configuration echo inside
        the state is validated against this engine's.
        """
        cfg = state.config
        mine = {
            "n_channels": self._n_channels,
            "sample_rate": self._rate,
            "filter_window": self.filter_window,
        }
        for key, want in mine.items():
            if cfg.get(key) != want:
                raise ValueError(
                    f"checkpoint/config mismatch on {key!r}: "
                    f"state has {cfg.get(key)!r}, engine has {want!r}"
                )
        prog = state.progress
        self._samples_seen = int(prog["samples_seen"])  # type: ignore[call-overload]
        buf_start = int(prog["buf_start"])  # type: ignore[call-overload]
        self._ring.load(
            np.asarray(prog["buffer"], dtype=np.float64), buf_start
        )
        self._bad_ring.load(np.asarray(prog["bad"], dtype=bool), buf_start)
        self._finalized = False
        san = state.sanitize
        self._last_good = np.asarray(san["last_good"], dtype=np.float64)
        self._have_good = np.asarray(san["have_good"], dtype=bool)
        raw = san["prev_raw"]
        self._prev_raw = (
            None if raw is None else _decode_optional_floats(raw)  # type: ignore[arg-type]
        )
        self._prev_raw_bad = self._prev_raw is not None and not bool(
            np.isfinite(self._prev_raw).all()
        )
        self._n_nonfinite = int(san["n_nonfinite"])  # type: ignore[call-overload]
        self._run_start = np.asarray(san["run_start"], dtype=np.int64)
        self._run_start_min = int(self._run_start.min())
        self._longest_dark = int(san["longest_dark"])  # type: ignore[call-overload]
        self._dark_spans = [
            (int(a), int(b)) for a, b in san["dark_spans"]  # type: ignore[union-attr]
        ]
        self._fault_fired = bool(san["fault_fired"])
        self._fault_reasons = [str(r) for r in san["fault_reasons"]]  # type: ignore[union-attr]
        fw = san["fault_window"]
        self._fault_window = None if fw is None else int(fw)  # type: ignore[arg-type]
        self._pending_fault = None
        self._cursor.load_state_dict(dict(state.sync))
        ev = state.evidence
        self._prev_disp = float(ev["prev_disp"])  # type: ignore[arg-type]
        self._c_disp = float(ev["c_disp"])  # type: ignore[arg-type]
        self._c_hist = [float(v) for v in ev["c_hist"]]  # type: ignore[union-attr]
        self._h_hist = [float(v) for v in ev["h_hist"]]  # type: ignore[union-attr]
        self._v_hist = [float(v) for v in ev["v_hist"]]  # type: ignore[union-attr]
        self._h_f = [float(v) for v in ev["h_f"]]  # type: ignore[union-attr]
        self._v_f = [float(v) for v in ev["v_f"]]  # type: ignore[union-attr]
        self._quarantined = [int(i) for i in ev["quarantined"]]  # type: ignore[union-attr]
        self._alerts = [Alert.from_dict(dict(a)) for a in state.alerts]
        self._fired = set(state.fired)

    # ------------------------------------------------------------------
    # Stage 1: sanitize
    # ------------------------------------------------------------------
    def _stage_sanitize(
        self, raw: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Repair one chunk; returns ``(clean, bad_rows)``.

        Mirrors :func:`repro.core.health.sanitize_signal` with all state
        carried across chunk boundaries: the last finite value per channel
        seeds the forward fill, and dark runs continue through chunk edges
        so a disconnect spanning many small chunks is still one long run.
        """
        n = raw.shape[0]
        bad = ~np.isfinite(raw)
        bad_rows: np.ndarray = bad.any(axis=1)
        has_bad = bool(bad_rows.any())
        if has_bad:
            self._n_nonfinite += int(np.count_nonzero(bad_rows))
        self._track_dark_runs(raw, bad, has_bad)

        if not has_bad:
            self._last_good = raw[-1].copy()
            self._have_good[:] = True
            return raw, bad_rows
        # Forward fill, seeded by the last finite value seen in earlier
        # chunks (0.0 when a channel has been broken since the start).
        seed = np.where(self._have_good, self._last_good, 0.0)
        ext = np.concatenate([seed[np.newaxis, :], raw], axis=0)
        ext_bad = np.concatenate(
            [np.zeros((1, raw.shape[1]), dtype=bool), bad], axis=0
        )
        idx = np.where(~ext_bad, np.arange(n + 1)[:, np.newaxis], 0)
        np.maximum.accumulate(idx, axis=0, out=idx)
        clean = np.take_along_axis(ext, idx, axis=0)[1:]
        self._last_good = clean[-1].copy()
        self._have_good |= (~bad).any(axis=0)
        return clean, bad_rows

    def _track_dark_runs(
        self, raw: np.ndarray, bad: np.ndarray, has_bad: bool
    ) -> None:
        """Continue per-channel constant/non-finite runs through this chunk.

        Works on the *raw* data (forward-filling first would turn every
        NaN burst into a constant run and double-count it), records the
        closed maximal runs that qualify as dark spans, and — when the
        policy is armed — pins the exact absolute sample at which a run
        first reaches the dark limit, so the fail-closed verdict fires at
        the same sample no matter how the stream was chunked.
        """
        n = raw.shape[0]
        offset = self._samples_seen
        eps = self.policy.dark_eps
        if has_bad or self._prev_raw_bad:
            extend = np.zeros_like(bad)
            if self._prev_raw is not None:
                prev_bad = ~np.isfinite(self._prev_raw)
                with np.errstate(invalid="ignore"):
                    extend[0] = np.abs(raw[0] - self._prev_raw) <= eps
                extend[0] |= bad[0] | prev_bad
            if n > 1:
                with np.errstate(invalid="ignore"):
                    extend[1:] = np.abs(np.diff(raw, axis=0)) <= eps
                extend[1:] |= bad[1:] | bad[:-1]
        else:
            # All-finite chunk with an all-finite carry: the non-finite
            # terms above are identically False and the subtractions
            # cannot trip the invalid-FP guard, so skip the errstate
            # context managers and mask work entirely.
            extend = np.empty_like(bad)
            if self._prev_raw is not None:
                extend[0] = np.abs(raw[0] - self._prev_raw) <= eps
            else:
                extend[0] = False
            if n > 1:
                extend[1:] = np.abs(np.diff(raw, axis=0)) <= eps
        self._prev_raw_bad = has_bad and bool(bad[-1].any())
        if not extend.any():
            # Every run resets at every sample of this chunk: all run
            # lengths are 1, so at most one span per channel can close
            # (the carried run ending at this chunk's first sample), no
            # dark-limit crossing is possible (the limit is >= 2), and
            # the per-channel boundary scan below collapses to O(C).
            # This is the steady-state path for healthy, textured input.
            if offset - self._run_start_min >= self._min_dark:
                carry0 = offset - self._run_start
                for c in np.flatnonzero(carry0 >= self._min_dark):
                    self._dark_spans.append(
                        (int(self._run_start[c]), int(offset))
                    )
            self._run_start[:] = offset + n - 1
            self._run_start_min = offset + n - 1
            self._longest_dark = max(self._longest_dark, 1)
            self._prev_raw = raw[-1].copy()
            return
        idx = np.arange(n)[:, np.newaxis]
        carry = (offset - self._run_start).astype(np.int64)
        reset = np.where(~extend, idx, -1)
        np.maximum.accumulate(reset, axis=0, out=reset)
        run = np.where(reset >= 0, idx - reset + 1, idx + 1 + carry)
        # Close the maximal runs ending inside this chunk (span bookkeeping
        # identical to health._run_bounds over the whole signal).
        for c in range(raw.shape[1]):
            bnd = np.flatnonzero(~extend[:, c])
            if not bnd.size:
                continue
            starts = np.concatenate(
                [[int(self._run_start[c])], offset + bnd[:-1]]
            )
            ends = offset + bnd
            for k in np.flatnonzero(ends - starts >= self._min_dark):
                self._dark_spans.append((int(starts[k]), int(ends[k])))
            self._run_start[c] = int(offset + bnd[-1])
        self._run_start_min = int(self._run_start.min())
        if (
            self.policy.enabled
            and not self._fault_fired
            and self._pending_fault is None
        ):
            hit = np.flatnonzero((run >= self._min_dark).any(axis=1))
            if hit.size:
                r = int(hit[0])
                longest_at_t = max(
                    self._longest_dark, int(run[: r + 1].max())
                )
                self._pending_fault = (offset + r + 1, longest_at_t)
        self._longest_dark = max(self._longest_dark, int(run.max()))
        self._prev_raw = raw[-1].copy()

    def _current_spans(self) -> Tuple[Tuple[int, int], ...]:
        """Dark spans so far: closed runs plus qualifying open runs."""
        spans = list(self._dark_spans)
        for c in range(self._n_channels):
            start = int(self._run_start[c])
            if self._samples_seen - start >= self._min_dark:
                spans.append((start, self._samples_seen))
        return tuple(sorted(set(spans)))

    def _final_health(self) -> ChannelHealth:
        """Freeze the sanitize stage's verdict for the whole run."""
        n = self._samples_seen
        return ChannelHealth(
            n_samples=n,
            n_nonfinite=self._n_nonfinite,
            dark_spans=self._current_spans(),
            longest_dark_s=self._longest_dark / self._rate if n else 0.0,
            sensor_fault=self._fault_fired,
            reasons=tuple(self._fault_reasons),
        )

    def _check_fraction_rule(self) -> None:
        """End-of-run rule: too many non-finite samples overall.

        Evaluated at finalization (like the batch sanitizer always did) so
        the verdict depends on run totals, never on chunk boundaries.
        """
        total = self._samples_seen
        if not self.policy.enabled or not total:
            return
        if self._n_nonfinite / total <= self.policy.max_bad_fraction:
            return
        if not self._fault_fired:
            sink: List[Alert] = []
            self._fire_sensor_fault(
                sink, ("nonfinite_fraction",), total, self._longest_dark
            )
            self._alerts.extend(sink)
        elif "nonfinite_fraction" not in self._fault_reasons:
            self._fault_reasons.append("nonfinite_fraction")

    def _fire_sensor_fault(
        self,
        sink: List[Alert],
        reasons: Tuple[str, ...],
        t_sample: int,
        longest_at_t: int,
    ) -> None:
        """Fail closed: the sensor went away, so the IDS must scream.

        ``t_sample`` is the absolute sample at which the rule crossed;
        the alert anchors at the count of indexes evaluated up to that
        sample, which is chunking-invariant by construction.
        """
        self._fault_fired = True
        self._fault_reasons = list(reasons)
        window = len(self._c_hist)
        self._fault_window = window
        if not self.armed:
            return
        time_s = t_sample / self._rate
        longest_s = longest_at_t / self._rate
        alert = Alert(
            window, SENSOR_FAULT, longest_s, self.policy.max_dark_s, time_s
        )
        sink.append(alert)
        self._fired.add(SENSOR_FAULT)
        if obs.enabled():
            obs.counter("repro.core.engine.sensor_faults").inc()
        if events.enabled():
            events.log().emit(
                "sensor_fault",
                reason=",".join(reasons),
                window=window,
                time_s=float(time_s),
                longest_dark_s=float(longest_s),
            )
            self._emit_alarm(alert)

    # ------------------------------------------------------------------
    # Stages 2-4: synchronize / compare / discriminate per index
    # ------------------------------------------------------------------
    def _ingest(
        self,
        emitted: Sequence[Tuple[int, float]],
        v_pre: Optional[np.ndarray],
    ) -> List[Alert]:
        """Evaluate newly synchronized indexes, interleaving the pending
        sensor fault at its exact crossing sample."""
        new_alerts: List[Alert] = []
        v_batch: Optional[Dict[int, float]] = None
        if v_pre is None and len(emitted) > 1:
            v_batch = self._batch_compare(emitted)
        for i, disp in emitted:
            if self._pending_fault is not None:
                stop = i * self._cursor.n_hop + self._cursor.n_win
                if stop > self._pending_fault[0]:
                    self._fire_sensor_fault(
                        new_alerts, ("dark_channel",), *self._pending_fault
                    )
                    self._pending_fault = None
            self._evaluate_index(
                int(i), float(disp), v_pre, v_batch, new_alerts
            )
        if self._pending_fault is not None:
            self._fire_sensor_fault(
                new_alerts, ("dark_channel",), *self._pending_fault
            )
            self._pending_fault = None
        self._alerts.extend(new_alerts)
        return new_alerts

    def _batch_compare(
        self, emitted: Sequence[Tuple[int, float]]
    ) -> Optional[Dict[int, float]]:
        """Pre-score the clean full windows of one push in a single call.

        Gathers every emitted window that lies fully inside both the
        buffered tail and the reference (finite displacement, no boundary
        clipping) into one ``(k, n_win, c)`` stack and scores it with one
        :meth:`~repro.core.comparator.Comparator.pair_distances` call —
        bit-identical to the per-window scalar path.  Windows that need
        the worst-case fallback are deliberately left out: they emit
        ``window_truncated`` events from inside the per-index loop, and
        pre-scoring them here would reorder the event stream relative to
        a differently-chunked run.
        """
        if self._cursor.mode != "window":
            return None
        n_win, n_hop = self._cursor.n_win, self._cursor.n_hop
        n_ref = self.reference.n_samples
        ref = self.reference.data
        idxs: List[int] = []
        stack_a: List[np.ndarray] = []
        stack_b: List[np.ndarray] = []
        for i, disp in emitted:
            if not math.isfinite(disp):
                continue
            start = int(i) * n_hop
            b0 = start + int(round(disp))
            if b0 < 0 or b0 + n_win > n_ref:
                continue
            if start + n_win > self._ring.end:
                continue
            idxs.append(int(i))
            stack_a.append(self._ring.view(start, start + n_win))
            stack_b.append(ref[b0 : b0 + n_win])
        if not idxs:
            return None
        vals = self._comparator.pair_distances(
            np.stack(stack_a), np.stack(stack_b)
        )
        return {i: float(v) for i, v in zip(idxs, vals)}

    def _evaluate_index(
        self,
        i: int,
        disp: float,
        v_pre: Optional[np.ndarray],
        v_batch: Optional[Dict[int, float]],
        sink: List[Alert],
    ) -> None:
        """Compare + discriminate one synchronized index (window or point).

        This is the single implementation of the per-index evidence math:
        incremental CADHD (Eq. 17), trailing-min filtered horizontal and
        vertical distances (Eq. 19-22), quarantine flagging, and the
        first-crossing alert per sub-module.
        """
        t = self.thresholds
        n_win, n_hop = self._cursor.n_win, self._cursor.n_hop
        time_s = i * n_hop / self._rate

        # A synchronizer emitting a non-finite displacement would poison
        # the cumulative CADHD for the rest of the print; hold the previous
        # estimate for the c/h sub-modules and report worst-case vertical
        # evidence for this index instead.
        degenerate = not math.isfinite(disp)
        if degenerate:
            disp = self._prev_disp

        # Sub-module 1: CADHD, updated incrementally (Eq. 17).
        self._c_disp += abs(disp - self._prev_disp)
        self._prev_disp = disp
        self._c_hist.append(self._c_disp)

        # Sub-module 2: filtered horizontal distance (Eq. 19, 21).
        self._h_hist.append(abs(disp))
        h_f = min(self._h_hist[-self.filter_window:])
        self._h_f.append(h_f)

        # Sub-module 3: filtered vertical distance (Eq. 20, 22).
        v = self._stage_compare(i, disp, degenerate, v_pre, v_batch)
        self._quarantine_check(i, n_win, n_hop)
        self._v_hist.append(v)
        v_f = min(self._v_hist[-self.filter_window:])
        self._v_f.append(v_f)

        if events.enabled():
            events.log().emit(
                "window_evidence",
                window=i,
                h_disp=float(disp),
                c_disp=float(self._c_disp),
                h_dist_f=float(h_f),
                v_dist_f=float(v_f),
            )
        if t is None:
            return
        for submodule, value, threshold in (
            ("c_disp", self._c_disp, t.c_c),
            ("h_dist", h_f, t.h_c),
            ("v_dist", v_f, t.v_c),
        ):
            if submodule in self._fired or not value > threshold:
                continue
            self._fired.add(submodule)
            alert = Alert(i, submodule, value, threshold, time_s)
            sink.append(alert)
            if events.enabled():
                self._emit_alarm(alert)

    def _stage_compare(
        self,
        i: int,
        disp: float,
        degenerate: bool,
        v_pre: Optional[np.ndarray],
        v_batch: Optional[Dict[int, float]],
    ) -> float:
        """Vertical distance for one index, with the worst-case fallback."""
        if not degenerate:
            if v_pre is not None:
                # Point mode: distances were computed wholesale over the
                # warping path (Eq. 15); nothing to window out.
                return float(v_pre[i])
            if v_batch is not None:
                v = v_batch.get(i)
                if v is not None:
                    return v
        n_win, n_hop = self._cursor.n_win, self._cursor.n_hop
        start = i * n_hop
        wa = self._ring.view(start, start + n_win)
        offset = int(round(disp))
        wb = self.reference.slice(
            start + offset, start + offset + n_win
        ).data
        n = min(wa.shape[0], wb.shape[0])
        if n >= 2 and not degenerate:
            return self._comparator.pair_distance(wa[:n], wb[:n])
        if obs.enabled():
            obs.counter("repro.core.engine.truncated_windows").inc()
        if events.enabled():
            events.log().emit("window_truncated", window=i, n=int(n))
        return TRUNCATED_WINDOW_DISTANCE

    def _quarantine_check(self, i: int, n_win: int, n_hop: int) -> None:
        """Flag an index whose input samples had to be repaired."""
        if self._n_nonfinite == 0:
            # Nothing was ever repaired, so no window can be quarantined;
            # skip the per-window mask scan on healthy streams.
            return
        if self._cursor.mode == "window":
            start = i * n_hop
            n_bad = int(
                np.count_nonzero(self._bad_ring.view(start, start + n_win))
            )
        else:
            n_bad = (
                1
                if (i < self._bad_ring.end and bool(self._bad_ring.view(i, i + 1)[0]))
                else 0
            )
        if not n_bad:
            return
        self._quarantined.append(i)
        if obs.enabled():
            obs.counter("repro.core.engine.quarantined_windows").inc()
        if events.enabled():
            events.log().emit("window_quarantined", window=i, n_bad=n_bad)

    def _emit_alarm(self, alert: Alert) -> None:
        """The one ``alarm`` emission site (sub-module, duration, fault)."""
        events.log().emit(
            "alarm",
            window=int(alert.window_index),
            submodule=alert.submodule,
            value=float(alert.value),
            threshold=float(alert.threshold),
            time_s=float(alert.time_s),
        )

    def _trim(self) -> None:
        """Drop the buffered prefix every evaluated window has consumed."""
        low = len(self._c_hist) * self._cursor.n_hop
        self._ring.trim_to(low)
        self._bad_ring.trim_to(low)

    # ------------------------------------------------------------------
    # End-of-run discrimination
    # ------------------------------------------------------------------
    def _duration_mismatch(self, sync: SyncResult) -> float:
        """Deviation between observed and reference process lengths.

        Measured in analysis windows (window mode) or samples (point
        mode).  Covers both directions: the observed print ending
        early/late relative to the reference, and the synchronizer walking
        off the reference before the observation ended.
        """
        if sync.mode == "window":
            n = self._samples_seen
            n_obs = (
                0 if n < sync.n_win else 1 + (n - sync.n_win) // sync.n_hop
            )
            n_ref = self.reference.n_windows(sync.n_win, sync.n_hop)
        else:
            n_obs = self._samples_seen
            n_ref = self.reference.n_samples
        return float(max(abs(n_obs - n_ref), n_obs - sync.n_indexes))

    def _stage_discriminate_run(
        self,
        features: DetectionFeatures,
        sync: SyncResult,
        health: ChannelHealth,
    ) -> Detection:
        """Apply the run-level checks and assemble the final verdict."""
        t = self.thresholds
        assert t is not None
        verdict = Discriminator(t, self.filter_window).detect_features(
            features
        )
        if verdict.duration_fired:
            alert = Alert(
                sync.n_indexes,
                "duration",
                features.duration_mismatch,
                t.d_c,
                self._samples_seen / self._rate,
            )
            self._alerts.append(alert)
            self._fired.add("duration")
            if events.enabled():
                self._emit_alarm(alert)
        first = verdict.first_alarm_index
        if self._fault_fired:
            fault_at = self._fault_window if self._fault_window is not None else 0
            first = fault_at if first is None else min(first, fault_at)
            verdict = replace(
                verdict, is_intrusion=True, sensor_fault_fired=True
            )
        if first is not None:
            verdict = replace(
                verdict,
                first_alarm_index=int(first),
                first_alarm_time=first * sync.n_hop / self._rate,
            )
        verdict = replace(
            verdict,
            health={
                **health.to_dict(),
                "quarantined_windows": list(self._quarantined),
            },
        )
        if events.enabled():
            events.log().emit(
                "run_summary",
                is_intrusion=verdict.is_intrusion,
                fired=list(verdict.fired_submodules()),
                n_windows=int(sync.n_indexes),
                first_alarm_index=verdict.first_alarm_index,
                first_alarm_time=verdict.first_alarm_time,
                # inf (= sub-module disabled) is not valid strict JSON: map
                # to None so the JSONL sink stays loadable everywhere.
                thresholds={
                    "c_c": _finite(t.c_c), "h_c": _finite(t.h_c),
                    "v_c": _finite(t.v_c), "d_c": _finite(t.d_c),
                },
                mode=sync.mode,
                n_win=int(sync.n_win),
                n_hop=int(sync.n_hop),
                sample_rate=self._rate,
            )
        return verdict
