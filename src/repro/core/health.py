"""Input sanitization and channel-health tracking (graceful degradation).

The paper pitches NSYNC as *practical*: an IDS screening a live DAQ for the
whole print.  Real acquisition paths misbehave in ways a simulator never
does — frames drop, ADCs saturate, cables disconnect — and the resulting
degenerate samples are poison for the detection math: a single NaN turns
``correlation_distance`` into NaN, ``NaN > threshold`` is ``False``, and
the IDS silently fails *open*.  This module is the input-sanitization stage
both pipelines (:class:`~repro.core.pipeline.NsyncIds`,
:class:`~repro.core.streaming.StreamingNsyncIds`) run before any detection
math sees a sample:

* **Non-finite samples** (NaN/inf) are replaced by holding the last finite
  value per channel (0.0 when the signal *starts* broken) so downstream
  arithmetic stays finite, and the affected sample positions are recorded
  so the analysis windows that cover them can be flagged and quarantined
  (``window_quarantined`` event + counter).
* **Dark channels** — a stretch where a channel repeats the exact same
  value (a dead sensor, an unplugged DAQ input, a gap of zeros) or emits
  nothing but non-finite garbage — are detected by run length.  A channel
  that stays dark longer than :attr:`SanitizePolicy.max_dark_s` trips a
  **fail-closed** :data:`SENSOR_FAULT` alarm: an intrusion detector whose
  sensor went away must scream, not stay silent.

The thresholds live in :class:`SanitizePolicy`; the per-run findings in
:class:`ChannelHealth`, which both pipelines surface through
``Detection.to_dict()`` / ``repro detect --json``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..signals.signal import Signal

__all__ = [
    "SENSOR_FAULT",
    "SanitizePolicy",
    "ChannelHealth",
    "Sanitized",
    "sanitize_signal",
    "constant_runs",
]

#: Sub-module name under which fail-closed sensor alarms are reported; sits
#: alongside the paper's ``c_disp`` / ``h_dist`` / ``v_dist`` / ``duration``.
SENSOR_FAULT = "sensor_fault"


@dataclass(frozen=True)
class SanitizePolicy:
    """Thresholds for the input-sanitization stage.

    Parameters
    ----------
    max_dark_s:
        A channel repeating the exact same value (or emitting only
        non-finite samples) for at least this long counts as *dark* and
        trips a fail-closed :data:`SENSOR_FAULT`.  Any physical sensor
        carries noise, so a perfectly constant second of samples means the
        acquisition path died, not that the printer went quiet.
    max_bad_fraction:
        Fraction of non-finite samples above which the whole run is
        declared faulty even if no single dark stretch is long enough.
    dark_eps:
        Two consecutive samples closer than this count as "the same value"
        for dark-run purposes.  The default ``0.0`` requires exact
        repetition, which is what dead ADCs produce and what quantized but
        healthy channels do not sustain.
    enabled:
        ``False`` disables the fail-closed verdict: non-finite samples are
        still repaired and health is still reported, but ``sensor_fault``
        never trips.
    """

    max_dark_s: float = 1.0
    max_bad_fraction: float = 0.25
    dark_eps: float = 0.0
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.max_dark_s <= 0:
            raise ValueError(f"max_dark_s must be positive, got {self.max_dark_s}")
        if not 0 < self.max_bad_fraction <= 1:
            raise ValueError(
                f"max_bad_fraction must be in (0, 1], got {self.max_bad_fraction}"
            )
        if self.dark_eps < 0:
            raise ValueError(f"dark_eps must be non-negative, got {self.dark_eps}")

    def min_dark_samples(self, sample_rate: float) -> int:
        """Run length (in samples) at which a constant stretch counts dark."""
        return max(2, int(math.ceil(self.max_dark_s * sample_rate)))


@dataclass(frozen=True)
class ChannelHealth:
    """What the sanitization stage found in one observed signal.

    ``dark_spans`` are ``[start, stop)`` sample spans where some channel
    stayed constant/non-finite past the policy's run-length threshold.
    ``sensor_fault`` is the fail-closed verdict; ``reasons`` names which
    rule(s) tripped it (``"dark_channel"``, ``"nonfinite_fraction"``).
    """

    n_samples: int
    n_nonfinite: int
    dark_spans: Tuple[Tuple[int, int], ...]
    longest_dark_s: float
    sensor_fault: bool
    reasons: Tuple[str, ...]

    @property
    def bad_fraction(self) -> float:
        """Fraction of samples with at least one non-finite channel."""
        return self.n_nonfinite / self.n_samples if self.n_samples else 0.0

    @property
    def is_clean(self) -> bool:
        """True when nothing at all was flagged."""
        return not self.n_nonfinite and not self.dark_spans

    def to_dict(self) -> dict:
        """JSON-safe rendition for ``Detection.to_dict`` / ``--json``."""
        return {
            "n_samples": int(self.n_samples),
            "n_nonfinite": int(self.n_nonfinite),
            "bad_fraction": float(self.bad_fraction),
            "dark_spans": [[int(a), int(b)] for a, b in self.dark_spans],
            "longest_dark_s": float(self.longest_dark_s),
            "sensor_fault": bool(self.sensor_fault),
            "reasons": list(self.reasons),
        }


@dataclass(frozen=True)
class Sanitized:
    """Result of :func:`sanitize_signal`.

    ``signal`` is safe for detection math (every sample finite);
    ``bad_samples`` marks, per time index, whether any channel had to be
    repaired — the pipelines map these onto analysis windows to quarantine
    them.  When the input was already clean, ``signal`` *is* the input
    (no copy).
    """

    signal: Signal
    bad_samples: np.ndarray
    health: ChannelHealth


def _run_bounds(x: np.ndarray, eps: float) -> Tuple[np.ndarray, np.ndarray]:
    """(starts, stops) of maximal constant-or-non-finite runs of 1-D ``x``."""
    n = x.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    bad = ~np.isfinite(x)
    same = np.zeros(n, dtype=bool)
    if n > 1:
        with np.errstate(invalid="ignore"):
            same[1:] = np.abs(np.diff(x)) <= eps
        same[1:] |= bad[1:] | bad[:-1]
    starts = np.flatnonzero(~same)
    stops = np.append(starts[1:], n)
    return starts, stops


def constant_runs(x: np.ndarray, eps: float = 0.0) -> List[Tuple[int, int]]:
    """Maximal ``[start, stop)`` runs of a 1-D array holding one value.

    Non-finite samples extend any run (a sensor emitting NaN is just as
    dead as one repeating a constant).  Every sample belongs to exactly
    one run; healthy data yields runs of length 1.
    """
    starts, stops = _run_bounds(np.asarray(x, dtype=np.float64), eps)
    return list(zip(starts.tolist(), stops.tolist()))


def _forward_fill(data: np.ndarray, bad: np.ndarray) -> np.ndarray:
    """Replace flagged entries by the last finite value in their column.

    Entries that are flagged before any finite value arrived become 0.0.
    """
    n = data.shape[0]
    filled = data.copy()
    idx = np.where(~bad, np.arange(n)[:, np.newaxis], 0)
    np.maximum.accumulate(idx, axis=0, out=idx)
    filled = np.take_along_axis(filled, idx, axis=0)
    # Columns whose very first samples were bad still hold the (bad) row 0:
    # zero whatever is left non-finite.
    still_bad = ~np.isfinite(filled)
    if still_bad.any():
        filled[still_bad] = 0.0
    return filled


def sanitize_signal(
    signal: Signal, policy: SanitizePolicy = SanitizePolicy()
) -> Sanitized:
    """Run the input-sanitization stage over one observed signal.

    Returns the repaired signal (identical object when already clean), the
    per-sample bad mask, and the :class:`ChannelHealth` verdict including
    the fail-closed ``sensor_fault`` flag.
    """
    data = signal.data
    n = data.shape[0]
    bad = ~np.isfinite(data)
    bad_samples = bad.any(axis=1)
    n_nonfinite = int(np.count_nonzero(bad_samples))

    # Dark-channel detection runs on the *raw* data: forward-filling first
    # would turn every NaN burst into a constant run and double-count it.
    min_run = policy.min_dark_samples(signal.sample_rate)
    dark: List[Tuple[int, int]] = []
    longest = 0
    for c in range(data.shape[1]):
        starts, stops = _run_bounds(data[:, c], policy.dark_eps)
        if not starts.size:
            continue
        lengths = stops - starts
        longest = max(longest, int(lengths.max()))
        for k in np.flatnonzero(lengths >= min_run):
            dark.append((int(starts[k]), int(stops[k])))
    dark_spans = tuple(sorted(set(dark)))
    longest_dark_s = longest / signal.sample_rate if n else 0.0

    reasons: List[str] = []
    if policy.enabled:
        if dark_spans:
            reasons.append("dark_channel")
        if n and n_nonfinite / n > policy.max_bad_fraction:
            reasons.append("nonfinite_fraction")
    health = ChannelHealth(
        n_samples=n,
        n_nonfinite=n_nonfinite,
        dark_spans=dark_spans,
        longest_dark_s=longest_dark_s,
        sensor_fault=bool(reasons),
        reasons=tuple(reasons),
    )

    if not bad.any():
        return Sanitized(signal=signal, bad_samples=bad_samples, health=health)
    clean = signal.with_data(_forward_fill(data, bad))
    return Sanitized(signal=clean, bad_samples=bad_samples, health=health)
