"""Comparator: vertical-distance calculation (paper Section VII-A).

Given two signals and the horizontal displacements produced by a dynamic
synchronizer, the comparator computes the *vertical distance* array
``v_dist``: one distance per synchronized window (Eq. 16, DWM) or per
synchronized point (Eq. 15, DTW).  NSYNC defaults to the correlation
distance because it is insensitive to per-run gain changes.
"""

from __future__ import annotations

from typing import Callable, Union

import numpy as np

from ..signals.metrics import DISTANCE_METRICS, correlation_distance
from ..signals.signal import Signal
from ..sync.base import SyncResult

__all__ = ["Comparator", "vertical_distances", "MAX_CORRELATION_DISTANCE"]

DistanceFn = Callable[[np.ndarray, np.ndarray], float]

#: Worst-case correlation distance (Eq. 14): ``1 - r`` with ``r in [-1, 1]``
#: tops out at 2.0 (perfect anti-correlation).  Used as the pessimistic
#: fallback whenever a window pair is too short to correlate (< 2 samples),
#: which only happens when the synchronizer has walked off the reference —
#: the discriminator must see the worst value, not a silent skip.
MAX_CORRELATION_DISTANCE = 2.0


def _resolve_metric(metric: Union[str, DistanceFn]) -> DistanceFn:
    if callable(metric):
        return metric
    try:
        return DISTANCE_METRICS[metric]
    except KeyError:
        raise ValueError(
            f"unknown distance metric {metric!r}; "
            f"expected one of {sorted(DISTANCE_METRICS)}"
        ) from None


class Comparator:
    """Computes vertical distances between synchronized signals.

    Parameters
    ----------
    metric:
        A distance-metric name from
        :data:`repro.signals.metrics.DISTANCE_METRICS` or a callable
        ``d(u, v) -> float``.  Default: ``"correlation"`` (Eq. 14).
    """

    def __init__(self, metric: Union[str, DistanceFn] = "correlation") -> None:
        self.metric = _resolve_metric(metric)

    def vertical_distances(
        self, a: Signal, b: Signal, sync: SyncResult
    ) -> np.ndarray:
        """Vertical distance array ``v_dist`` for a synchronized pair.

        Window mode pairs ``a{i}`` with ``b{i; h_disp[i]}`` (Eq. 16); the
        pair is truncated to the shorter of the two when a window is clipped
        by a signal boundary.  Point mode evaluates ``d(a[i], b[j])`` over
        the warping path and averages duplicates (Eq. 15).
        """
        if sync.mode == "window":
            return self._window_distances(a, b, sync)
        return self._point_distances(a, b, sync)

    # ------------------------------------------------------------------
    def _window_distances(
        self, a: Signal, b: Signal, sync: SyncResult
    ) -> np.ndarray:
        n_win, n_hop = sync.n_win, sync.n_hop
        out = np.empty(sync.n_indexes)
        for i in range(sync.n_indexes):
            disp = int(round(float(sync.h_disp[i])))
            wa = a.window(i, n_win, n_hop).data
            wb = b.window(i, n_win, n_hop, offset=disp).data
            n = min(wa.shape[0], wb.shape[0])
            if n < 2:
                # A vanishing window means the synchronizer walked off the
                # reference; report the worst correlation distance so the
                # discriminator sees it.
                out[i] = MAX_CORRELATION_DISTANCE
                continue
            out[i] = self.metric(wa[:n], wb[:n])
        return out

    def _point_distances(self, a: Signal, b: Signal, sync: SyncResult) -> np.ndarray:
        if sync.pairs is None:
            raise ValueError("point-mode SyncResult is missing its warping path")
        sums = np.zeros(a.n_samples)
        counts = np.zeros(a.n_samples)
        for i, j in sync.pairs:
            if i >= a.n_samples or j >= b.n_samples:
                continue
            # A point's channel vector plays the role of the 1-D input.
            sums[i] += self.metric(a.data[i, :], b.data[j, :])
            counts[i] += 1
        out = np.zeros(a.n_samples)
        mask = counts > 0
        out[mask] = sums[mask] / counts[mask]
        return out


def vertical_distances(
    a: Signal,
    b: Signal,
    sync: SyncResult,
    metric: Union[str, DistanceFn] = "correlation",
) -> np.ndarray:
    """Functional shortcut for :meth:`Comparator.vertical_distances`."""
    return Comparator(metric).vertical_distances(a, b, sync)
