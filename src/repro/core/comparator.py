"""Comparator: vertical-distance calculation (paper Section VII-A).

Given two signals and the horizontal displacements produced by a dynamic
synchronizer, the comparator computes the *vertical distance* array
``v_dist``: one distance per synchronized window (Eq. 16, DWM) or per
synchronized point (Eq. 15, DTW).  NSYNC defaults to the correlation
distance because it is insensitive to per-run gain changes.
"""

from __future__ import annotations

import math
from typing import Callable, Union

import numpy as np

from .. import obs
from ..signals.metrics import _EPS as _METRIC_EPS
from ..signals.metrics import DISTANCE_METRICS, correlation_distance
from ..signals.signal import Signal
from ..sync.base import SyncResult

__all__ = ["Comparator", "vertical_distances", "MAX_CORRELATION_DISTANCE"]

DistanceFn = Callable[[np.ndarray, np.ndarray], float]

#: Worst-case correlation distance (Eq. 14): ``1 - r`` with ``r in [-1, 1]``
#: tops out at 2.0 (perfect anti-correlation).  Used as the pessimistic
#: fallback whenever a window pair is too short to correlate (< 2 samples)
#: or the synchronizer hands over a non-finite displacement — both mean it
#: has walked off the reference — and the discriminator must see the worst
#: value, not a silent skip (and never a NaN, which would compare as benign
#: against every threshold).
MAX_CORRELATION_DISTANCE = 2.0

#: Amplitude spread below which a window counts as constant (zero-variance);
#: matches the ``_EPS`` guard inside :mod:`repro.signals.metrics`.
_CONSTANT_EPS = 1e-12


def _is_constant(window: np.ndarray) -> bool:
    """True when every channel of the window has zero amplitude spread."""
    return bool(np.all(np.ptp(window, axis=0) <= _CONSTANT_EPS))


def _resolve_metric(metric: Union[str, DistanceFn]) -> DistanceFn:
    if callable(metric):
        return metric
    try:
        return DISTANCE_METRICS[metric]
    except KeyError:
        raise ValueError(
            f"unknown distance metric {metric!r}; "
            f"expected one of {sorted(DISTANCE_METRICS)}"
        ) from None


class Comparator:
    """Computes vertical distances between synchronized signals.

    Parameters
    ----------
    metric:
        A distance-metric name from
        :data:`repro.signals.metrics.DISTANCE_METRICS` or a callable
        ``d(u, v) -> float``.  Default: ``"correlation"`` (Eq. 14).
    """

    def __init__(self, metric: Union[str, DistanceFn] = "correlation") -> None:
        self.metric = _resolve_metric(metric)
        # The zero-variance special cases below only make sense for the
        # correlation distance (Pearson's r is undefined on a constant
        # window); other metrics remain well-defined there and are left
        # alone.
        self._correlation_like = self.metric is correlation_distance

    def vertical_distances(
        self, a: Signal, b: Signal, sync: SyncResult
    ) -> np.ndarray:
        """Vertical distance array ``v_dist`` for a synchronized pair.

        Window mode pairs ``a{i}`` with ``b{i; h_disp[i]}`` (Eq. 16); the
        pair is truncated to the shorter of the two when a window is clipped
        by a signal boundary.  Point mode evaluates ``d(a[i], b[j])`` over
        the warping path and averages duplicates (Eq. 15).
        """
        if sync.mode == "window":
            return self._window_distances(a, b, sync)
        return self._point_distances(a, b, sync)

    # ------------------------------------------------------------------
    def pair_distance(self, wa: np.ndarray, wb: np.ndarray) -> float:
        """Distance between one already-truncated window pair, never NaN.

        Adds two guard layers on top of the raw metric:

        * **Zero-variance windows** (correlation metric only): Pearson's r
          is undefined on a constant window.  A constant window matched
          against a varying one means the observed content bears no
          resemblance to the reference (e.g. a frozen printhead), so it
          maps to :data:`MAX_CORRELATION_DISTANCE`; two constant windows
          with identical values are indistinguishable and map to ``0.0``
          (two *different* constants still map to the maximum).
        * **Finiteness**: whatever the metric returns, a non-finite value
          is clamped to :data:`MAX_CORRELATION_DISTANCE` — NaN compares
          ``False`` against every threshold, which would make the IDS fail
          open on degenerate input.
        """
        if self._correlation_like:
            ca, cb = _is_constant(wa), _is_constant(wb)
            if ca or cb:
                if ca and cb and np.array_equal(wa[:1], wb[:1]):
                    return 0.0
                return MAX_CORRELATION_DISTANCE
        value = float(self.metric(wa, wb))
        return value if math.isfinite(value) else MAX_CORRELATION_DISTANCE

    def pair_distances(self, wa: np.ndarray, wb: np.ndarray) -> np.ndarray:
        """Batched :meth:`pair_distance` over stacked ``(k, n, c)`` pairs.

        Bit-identical to calling :meth:`pair_distance` on each pair in
        turn: the batched reductions run over the same axis, in the same
        operation order, on the same float64 values, so numpy produces the
        same bits per window (differential-tested against the scalar
        reference).  Only the correlation metric vectorizes — any other
        metric is an opaque ``d(u, v) -> float`` callable and falls back
        to the per-pair loop.
        """
        wa = np.asarray(wa, dtype=np.float64)
        wb = np.asarray(wb, dtype=np.float64)
        if wa.ndim != 3 or wa.shape != wb.shape:
            raise ValueError(
                f"expected matching (k, n, c) window stacks, "
                f"got {wa.shape} vs {wb.shape}"
            )
        k = wa.shape[0]
        out = np.empty(k)
        if k == 0:
            return out
        if not self._correlation_like:
            for j in range(k):
                out[j] = self.pair_distance(wa[j], wb[j])
            return out
        ca = np.all(np.ptp(wa, axis=1) <= _CONSTANT_EPS, axis=1)
        cb = np.all(np.ptp(wb, axis=1) <= _CONSTANT_EPS, axis=1)
        special = ca | cb
        if special.any():
            out[special] = MAX_CORRELATION_DISTANCE
            both = ca & cb
            if both.any():
                same = both & np.all(wa[:, 0, :] == wb[:, 0, :], axis=1)
                out[same] = 0.0
        rest = ~special
        if rest.any():
            u, v = wa[rest], wb[rest]
            du = u - u.mean(axis=1, keepdims=True)
            dv = v - v.mean(axis=1, keepdims=True)
            num = np.sum(du * dv, axis=1)
            den = np.linalg.norm(du, axis=1) * np.linalg.norm(dv, axis=1)
            scores = np.where(
                den > _METRIC_EPS, num / np.maximum(den, _METRIC_EPS), 0.0
            )
            vals = 1.0 - scores.mean(axis=1)
            out[rest] = np.where(
                np.isfinite(vals), vals, MAX_CORRELATION_DISTANCE
            )
        return out

    def _window_distances(
        self, a: Signal, b: Signal, sync: SyncResult
    ) -> np.ndarray:
        """Vertical distances for every synchronized window (Eq. 16).

        Fast path: all windows that lie fully inside both signals with a
        finite displacement are gathered into one ``(k, n_win, c)`` stack
        and scored by a single :meth:`pair_distances` call.  Boundary-
        clipped, degenerate, or non-finitely-displaced windows take the
        scalar per-window route, which owns the walk-off accounting.
        """
        n_win, n_hop = sync.n_win, sync.n_hop
        k = sync.n_indexes
        if k == 0 or n_win < 2 or not self._correlation_like:
            return self._window_distances_scalar(a, b, sync)
        h = np.asarray(sync.h_disp, dtype=np.float64)
        starts = np.arange(k, dtype=np.float64) * n_hop
        # Eligibility is decided in float64 so absurd displacements (1e300
        # from a walked-off synchronizer) cannot overflow an int cast; the
        # ineligible windows fall through to the scalar path, which works
        # in exact Python ints.
        b0f = starts + np.round(h)
        eligible = (
            np.isfinite(h)
            & (b0f >= 0.0)
            & (b0f + n_win <= b.n_samples)
            & (starts + n_win <= a.n_samples)
        )
        out = np.empty(k)
        idx = np.flatnonzero(eligible)
        if idx.size:
            span = np.arange(n_win)
            a0 = idx * n_hop
            b0 = b0f[idx].astype(np.int64)
            wa = a.data[a0[:, np.newaxis] + span, :]
            wb = b.data[b0[:, np.newaxis] + span, :]
            out[idx] = self.pair_distances(wa, wb)
        for i in np.flatnonzero(~eligible):
            out[i] = self._one_window_distance(a, b, sync, int(i))
        return out

    def _window_distances_scalar(
        self, a: Signal, b: Signal, sync: SyncResult
    ) -> np.ndarray:
        """Reference implementation: one :meth:`pair_distance` per window.

        Kept verbatim as the bit-exactness oracle for the vectorized
        :meth:`_window_distances` (differential-tested), and used directly
        for non-correlation metrics and sub-2-sample windows.
        """
        out = np.empty(sync.n_indexes)
        for i in range(sync.n_indexes):
            out[i] = self._one_window_distance(a, b, sync, i)
        return out

    def _one_window_distance(
        self, a: Signal, b: Signal, sync: SyncResult, i: int
    ) -> float:
        n_win, n_hop = sync.n_win, sync.n_hop
        h = float(sync.h_disp[i])
        if not math.isfinite(h):
            # A non-finite displacement estimate is a synchronizer
            # walk-off, not a crash: int(round(nan)) would raise
            # mid-detection.  Score the window as worst-case instead.
            self._note_walkoff(i, 0)
            return MAX_CORRELATION_DISTANCE
        disp = int(round(h))
        wa = a.window(i, n_win, n_hop).data
        wb = b.window(i, n_win, n_hop, offset=disp).data
        n = min(wa.shape[0], wb.shape[0])
        if n < 2:
            # A vanishing window means the synchronizer walked off the
            # reference (overrun, or an offset so negative the window
            # clamps to nothing); report the worst correlation distance
            # so the discriminator sees it.
            self._note_walkoff(i, n)
            return MAX_CORRELATION_DISTANCE
        return self.pair_distance(wa[:n], wb[:n])

    @staticmethod
    def _note_walkoff(window: int, n: int) -> None:
        """Account one walked-off window.

        Counter only: the ``window_truncated`` *event* is emitted solely by
        the detection engine (:mod:`repro.core.engine`), which owns all
        provenance emission; the standalone comparator API keeps the metric
        so direct callers still see walk-offs in the metrics snapshot.
        """
        if obs.enabled():
            obs.counter("repro.core.comparator.truncated_windows").inc()

    def _point_distances(self, a: Signal, b: Signal, sync: SyncResult) -> np.ndarray:
        if sync.pairs is None:
            raise ValueError("point-mode SyncResult is missing its warping path")
        sums = np.zeros(a.n_samples)
        counts = np.zeros(a.n_samples)
        for i, j in sync.pairs:
            if i >= a.n_samples or j >= b.n_samples:
                continue
            # A point's channel vector plays the role of the 1-D input.
            sums[i] += self.metric(a.data[i, :], b.data[j, :])
            counts[i] += 1
        out = np.zeros(a.n_samples)
        mask = counts > 0
        out[mask] = sums[mask] / counts[mask]
        return out


def vertical_distances(
    a: Signal,
    b: Signal,
    sync: SyncResult,
    metric: Union[str, DistanceFn] = "correlation",
) -> np.ndarray:
    """Functional shortcut for :meth:`Comparator.vertical_distances`."""
    return Comparator(metric).vertical_distances(a, b, sync)
