"""The NSYNC IDS pipeline (paper Section VII, Fig. 7) — batch facade.

All detection math lives in :class:`repro.core.engine.DetectionEngine`;
:class:`NsyncIds` is the batch calling convention over it: feed the whole
observed signal as one chunk, finalize, return the result.  The streaming
facade (:class:`repro.core.streaming.StreamingNsyncIds`) drives the same
engine chunk by chunk, so batch/streaming parity is structural — there is
only one implementation to agree with itself.

Typical usage::

    ids = NsyncIds(reference, DwmSynchronizer(UM3_DWM_PARAMS))
    ids.fit(benign_signals, r=0.3)
    verdict = ids.detect(observed_signal)
    if verdict.is_intrusion:
        stop_the_printer()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple, Union

import numpy as np

from .. import obs
from ..signals.signal import Signal
from ..sync.base import SyncResult, Synchronizer
from .comparator import Comparator, DistanceFn
from .discriminator import Detection, DetectionFeatures, Thresholds
from .engine import DetectionEngine, EngineResult, _finite  # noqa: F401  (re-export)
from .health import ChannelHealth, SanitizePolicy
from .occ import OneClassTrainer

__all__ = ["AnalysisResult", "NsyncIds"]


@dataclass(frozen=True)
class AnalysisResult:
    """Everything NSYNC derives from one observed signal."""

    sync: SyncResult
    v_dist: np.ndarray
    features: DetectionFeatures
    #: Channel-health verdict from the input-sanitization stage.
    health: Optional[ChannelHealth] = None
    #: Indexes of analysis windows whose input samples had to be repaired
    #: (NaN/inf); their evidence comes from sanitized data and is flagged
    #: via ``window_quarantined`` events.
    quarantined_windows: Tuple[int, ...] = ()

    @property
    def duration_mismatch(self) -> float:
        """Window-count deviation of the observed process vs the reference."""
        return self.features.duration_mismatch


class NsyncIds:
    """A complete NSYNC intrusion-detection system for one reference signal.

    Parameters
    ----------
    reference:
        The reference side-channel signal ``b``, recorded from (or simulated
        for) a known-benign printing process.
    synchronizer:
        Any :class:`~repro.sync.base.Synchronizer`; the paper evaluates
        :class:`~repro.sync.dwm.DwmSynchronizer` and
        :class:`~repro.sync.fastdtw.FastDtwSynchronizer`.
    metric:
        Vertical-distance metric (default the correlation distance).
    filter_window:
        Spike-suppression window for the discriminator (default 3).
    policy:
        Input-sanitization thresholds (see
        :class:`~repro.core.health.SanitizePolicy`).  ``None`` uses the
        defaults; pass ``SanitizePolicy(enabled=False)`` to disable the
        fail-closed sensor-fault verdict (non-finite samples are still
        repaired and health still reported).
    """

    def __init__(
        self,
        reference: Signal,
        synchronizer: Synchronizer,
        metric: Union[str, DistanceFn] = "correlation",
        filter_window: int = 3,
        policy: Optional[SanitizePolicy] = None,
    ) -> None:
        self.reference = reference
        self.synchronizer = synchronizer
        self.comparator = Comparator(metric)
        self.filter_window = filter_window
        self.policy = policy if policy is not None else SanitizePolicy()
        self.thresholds: Optional[Thresholds] = None
        self._metric = metric

    # ------------------------------------------------------------------
    def engine(
        self, armed: bool = True, stream_id: Optional[str] = None
    ) -> DetectionEngine:
        """Open a fresh :class:`~repro.core.engine.DetectionEngine`.

        With ``armed=True`` (the default) the engine carries this IDS's
        learned thresholds and raises alerts; this is the handle to use
        for chunked ingestion (the CLI's ``detect --stream`` path) or for
        checkpoint/resume via ``DetectorState``.  ``stream_id`` registers
        the engine in the live telemetry registry (see
        :mod:`repro.obs.telemetry`).
        """
        return DetectionEngine(
            self.reference,
            self.synchronizer,
            thresholds=self.thresholds if armed else None,
            metric=self._metric,
            filter_window=self.filter_window,
            policy=self.policy,
            stream_id=stream_id,
        )

    def _run(self, observed: Signal, armed: bool) -> EngineResult:
        """Feed the whole signal as one chunk and finalize."""
        if observed.sample_rate != self.reference.sample_rate:
            raise ValueError(
                f"sample rates differ: a={observed.sample_rate}, "
                f"b={self.reference.sample_rate}"
            )
        eng = self.engine(armed=armed)
        with obs.trace("repro.core.pipeline.analyze"):
            eng.push(observed.data)
            return eng.finalize()

    def analyze(self, observed: Signal) -> AnalysisResult:
        """Sanitize, synchronize, compare, and featurize one signal.

        Degenerate input (NaN/inf samples) is repaired before any
        detection math runs, so the returned evidence arrays are always
        finite; the affected windows are flagged as quarantined and the
        channel-health verdict rides along on the result.
        """
        result = self._run(observed, armed=False)
        return AnalysisResult(
            sync=result.sync,
            v_dist=result.v_dist,
            features=result.features,
            health=result.health,
            quarantined_windows=result.quarantined_windows,
        )

    def fit(self, benign_signals: Iterable[Signal], r: float = 0.3) -> Thresholds:
        """Learn the discriminator thresholds from benign runs (Eq. 23-28).

        A training run that trips the sanitization stage's sensor-fault
        verdict is rejected outright — thresholds learned from a dark or
        NaN-flooded channel would be meaningless and silently permissive.
        """
        trainer = OneClassTrainer(r=r)
        for k, signal in enumerate(benign_signals):
            analysis = self.analyze(signal)
            if analysis.health is not None and analysis.health.sensor_fault:
                raise ValueError(
                    f"training run {k} failed input sanitization "
                    f"({', '.join(analysis.health.reasons)}); refusing to "
                    "learn thresholds from a faulty channel"
                )
            trainer.add_run(analysis.features)
        self.thresholds = trainer.thresholds()
        return self.thresholds

    def detect(self, observed: Signal) -> Detection:
        """Full pipeline: analyze the signal and apply the discriminator.

        The returned verdict carries ``first_alarm_time`` (seconds into the
        print), derived from the synchronizer's window geometry, plus the
        channel-health report of the sanitization stage.  A sensor-fault
        verdict is **fail-closed**: it raises the intrusion flag even when
        no content sub-module fired.
        """
        if self.thresholds is None:
            raise RuntimeError("call fit() (or set thresholds) before detect()")
        result = self._run(observed, armed=True)
        verdict = result.detection
        assert verdict is not None
        return verdict
